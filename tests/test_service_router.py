"""Tests for consistent-hash shard routing."""

import pytest

from repro.service.router import ShardRouter, route_key_of


def _keys(n):
    return [
        route_key_of("KGC1", "patient-%03d" % (i % 50), "type-%d" % (i % 7))
        for i in range(n)
    ]


class TestConstruction:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            ShardRouter([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            ShardRouter(["a", "a"])

    def test_rejects_zero_replicas(self):
        with pytest.raises(ValueError):
            ShardRouter(["a"], replicas=0)

    def test_shards_property_copies(self):
        router = ShardRouter(["a", "b"])
        router.shards.append("c")
        assert router.shards == ["a", "b"]


class TestRouting:
    def test_deterministic(self):
        router = ShardRouter(["s0", "s1", "s2"])
        first = router.shard_for("KGC1", "alice", "labs")
        assert all(router.shard_for("KGC1", "alice", "labs") == first for _ in range(20))

    def test_two_routers_agree(self):
        """Routing is a pure function of (names, replicas) — no hidden state."""
        a = ShardRouter(["s0", "s1", "s2", "s3"])
        b = ShardRouter(["s0", "s1", "s2", "s3"])
        for key in _keys(100):
            assert a.shard_for(*key) == b.shard_for(*key)

    def test_single_shard_takes_everything(self):
        router = ShardRouter(["only"])
        assert all(router.shard_for(*key) == "only" for key in _keys(50))

    def test_domain_partitions(self):
        """The same (delegator, type) in different domains may route apart."""
        router = ShardRouter(["s%d" % i for i in range(8)])
        routes = {
            router.shard_for("KGC%d" % i, "alice", "labs") for i in range(20)
        }
        assert len(routes) > 1

    def test_every_shard_gets_work(self):
        router = ShardRouter(["s0", "s1", "s2", "s3"])
        counts = router.assignment_counts(_keys(400))
        assert set(counts) == {"s0", "s1", "s2", "s3"}
        assert sum(counts.values()) == 400
        assert all(count > 0 for count in counts.values())


class TestStability:
    def test_adding_one_shard_moves_a_minority(self):
        """The consistent-hashing contract: N->N+1 moves ~1/(N+1), not ~all."""
        keys = _keys(350)
        before = ShardRouter(["s%d" % i for i in range(4)])
        after = ShardRouter(["s%d" % i for i in range(5)])
        moved = before.moved_fraction(after, keys)
        assert 0.0 < moved < 0.45  # ideal is 0.2; modulo hashing would be ~0.8

    def test_moves_only_onto_the_new_shard(self):
        """A key that moves must land on the shard that joined."""
        before = ShardRouter(["s0", "s1", "s2"])
        after = ShardRouter(["s0", "s1", "s2", "s3"])
        for key in _keys(200):
            old, new = before.shard_for(*key), after.shard_for(*key)
            if old != new:
                assert new == "s3"

    def test_identical_fleets_move_nothing(self):
        router = ShardRouter(["s0", "s1"])
        assert router.moved_fraction(ShardRouter(["s0", "s1"]), _keys(100)) == 0.0

    def test_empty_keys_move_nothing(self):
        assert ShardRouter(["a"]).moved_fraction(ShardRouter(["b"]), []) == 0.0
