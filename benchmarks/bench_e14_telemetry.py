"""E14 — what the telemetry layer costs, and that it works end to end.

PR 6 threads tracing, histogram metrics and the structured event log
through every request path, so the obvious question is what that does to
throughput.  Two measured claims:

1. **Telemetry is affordable.**  The E9 repeated-delegatee workload runs
   through two identical fleets — one built with ``telemetry=False``
   (no tracer, no event log), one with telemetry on *and* a fresh
   :class:`TraceContext` injected into every call (the worst case: every
   request records its full span set, every audit line becomes an
   event).  Each measured run is a fresh cold-cache fleet — the same
   shape bench_e9 times — and the median of many paired on/off CPU-time
   ratios is asserted under 5% overhead and recorded in
   ``BENCH_E14.json``.

2. **The acceptance path.**  A real ``repro-pre serve --http``
   subprocess is driven through :class:`RemoteGateway`; the trace id the
   client generated must come back in the ``X-Repro-Trace`` response
   echo AND be retrievable via ``GET /v1/trace/{id}`` with >= 4 named
   stage spans, and ``GET /v1/metrics?format=prometheus`` must serve
   exposition text.

TOY parameters: like E9-E13 this measures workload structure and
instrumentation cost, not key size.
"""

from __future__ import annotations

import gc
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.bench.report import print_table, record_bench_snapshot
from repro.service.driver import (
    build_scheme_setting,
    build_setting,
    drive_requests,
    drive_scheme_requests,
)
from repro.service.gateway import GrantRequest, ReEncryptionGateway
from repro.service.telemetry import TraceContext
from repro.service.wire import RemoteGateway

N_REQUESTS = 120  # the E9 request count
SHARDS = 4
MEASURED_PAIRS = 16
MAX_OVERHEAD = 0.05


class _TracedGateway:
    """Injects a fresh root trace into every call — telemetry's worst case.

    The driver stays oblivious: everything it touches besides the two
    request entry points passes straight through to the real gateway.
    """

    def __init__(self, gateway: ReEncryptionGateway):
        self._gateway = gateway

    def reencrypt(self, request):
        return self._gateway.reencrypt(request, trace=TraceContext.generate())

    def reencrypt_batch(self, requests):
        return self._gateway.reencrypt_batch(requests, trace=TraceContext.generate())

    def __getattr__(self, name):
        return getattr(self._gateway, name)


def _fleet(setting, telemetry: bool) -> ReEncryptionGateway:
    """A fresh fleet holding the setting's keys, telemetry on or off."""
    gateway = ReEncryptionGateway(
        setting.scheme, shard_count=SHARDS, telemetry=telemetry
    )
    for name in setting.gateway.shard_names:
        for key in setting.gateway.shard_named(name).table:
            gateway.grant(GrantRequest(tenant="bench", proxy_key=key))
    return gateway


def _timed_run(setting, telemetry: bool):
    """One cold-cache E9 run (the bench_e9 measurement shape): fresh fleet,
    grants excluded from the timed window, misses pay real crypto.  GC is
    parked during the window — a collection landing in one side of a pair
    would otherwise dwarf the effect under measurement."""
    gateway = _fleet(setting, telemetry=telemetry)
    target = _TracedGateway(gateway) if telemetry else gateway
    gc.collect()
    gc.disable()
    try:
        # CPU time, not wall clock: the drive is single-threaded and
        # CPU-bound, and process_time is blind to scheduler preemption —
        # the noise source that otherwise dwarfs a few-percent effect on
        # a shared machine.
        start = time.process_time()
        drive_requests(
            setting,
            N_REQUESTS,
            seed="e14-stream",
            batch_size=0,
            verify_every=N_REQUESTS + 1,
            gateway=target,
        )
        elapsed = time.process_time() - start
    finally:
        gc.enable()
    spans = gateway.tracer.spans_recorded if telemetry else 0
    events = gateway.event_log.emitted if telemetry else 0
    gateway.close()
    return elapsed, spans, events


def test_e14_telemetry_overhead_under_five_percent():
    setting = build_setting(group_name="TOY", shard_count=SHARDS, seed="e14-run")
    ratios = []
    off_best = on_best = float("inf")
    spans = events = 0
    try:
        # Warm the code paths once (imports, bytecode, allocator) so the
        # first measured pair is not the compilation run.
        _timed_run(setting, telemetry=False)
        _timed_run(setting, telemetry=True)
        # Back-to-back pairs, each yielding one on/off ratio: pairing
        # cancels slow machine drift, the median rides out one-off
        # stalls that a best-of comparison across distant runs cannot.
        # Order alternates within pairs so monotone drift (turbo decay,
        # page-cache warmup) cannot systematically charge one side.
        for pair in range(MEASURED_PAIRS):
            if pair % 2 == 0:
                off_s = _timed_run(setting, telemetry=False)[0]
                on_s, spans, events = _timed_run(setting, telemetry=True)
            else:
                on_s, spans, events = _timed_run(setting, telemetry=True)
                off_s = _timed_run(setting, telemetry=False)[0]
            ratios.append(on_s / off_s)
            off_best = min(off_best, off_s)
            on_best = min(on_best, on_s)
    finally:
        setting.gateway.close()

    off_rps = N_REQUESTS / off_best
    on_rps = N_REQUESTS / on_best
    overhead = statistics.median(ratios) - 1.0
    print_table(
        "E14: telemetry cost on the E9 workload (%d requests, median of %d paired cold runs)"
        % (N_REQUESTS, MEASURED_PAIRS),
        ["fleet", "total ms", "req/s", "spans", "events"],
        [
            ["telemetry off", "%.1f" % (off_best * 1000), "%.0f" % off_rps, "-", "-"],
            [
                "telemetry on (traced)",
                "%.1f" % (on_best * 1000),
                "%.0f" % on_rps,
                str(spans),
                str(events),
            ],
            ["overhead", "%.1f%%" % (100 * overhead), "", "", ""],
        ],
    )
    assert spans > 0, "the traced run recorded no spans — nothing was measured"
    assert events > 0, "the traced run emitted no events — nothing was measured"
    assert overhead < MAX_OVERHEAD, (
        "telemetry overhead %.1f%% exceeds the %.0f%% budget (ratios: %s)"
        % (100 * overhead, 100 * MAX_OVERHEAD, ["%.3f" % r for r in ratios])
    )
    record_bench_snapshot(
        "E14",
        {
            "experiment": "E14",
            "title": "telemetry overhead on the E9 repeated-delegatee workload",
            "group": "TOY",
            "shards": SHARDS,
            "n_requests": N_REQUESTS,
            "measured_pairs": MEASURED_PAIRS,
            "throughput_rps": {
                "telemetry_off": round(off_rps, 1),
                "telemetry_on": round(on_rps, 1),
            },
            "overhead_fraction": round(overhead, 4),
            "overhead_budget": MAX_OVERHEAD,
            "spans_recorded": spans,
            "events_emitted": events,
        },
    )


# ------------------------------------------------- subprocess acceptance


def _spawn_server():
    """A real ``repro-pre serve --http`` process; returns (proc, url)."""
    src = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--group",
        "TOY",
        "--shards",
        "2",
        "--http",
        "0",
    ]
    proc = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env
    )
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.terminate()
        raise AssertionError("server did not come up: %r" % line)
    return proc, line.split()[3]


def test_e14_trace_round_trips_through_a_real_server_process():
    setting = build_scheme_setting(
        scheme_id="tipre/v1",
        group_name="TOY",
        shard_count=2,
        n_patients=2,
        n_delegatees=2,
        n_types=2,
        ciphertexts_per_pair=1,
        seed="e14-wire",
    )
    proc, url = _spawn_server()
    try:
        client = RemoteGateway(url, setting.backend)
        for name in setting.gateway.shard_names:
            for key in list(setting.gateway.shard_named(name).table):
                client.grant(GrantRequest(tenant="bench", proxy_key=key))
        verified = drive_scheme_requests(
            setting, 8, seed="e14-wire-stream", verify_every=1, gateway=client
        )
        assert verified > 0

        # The client's last generated trace id must have been echoed in
        # the response header and must retrieve the server-side spans.
        trace = client.last_trace
        assert trace is not None
        echo = TraceContext.from_header(client.last_trace_echo)
        assert echo is not None and echo.trace_id == trace.trace_id
        spans = client.fetch_trace(trace.trace_id)
        names = sorted({span.name for span in spans})
        assert len(spans) >= 4, "expected >= 4 spans, got %r" % names
        assert all(span.trace_id == trace.trace_id for span in spans)

        exposition = client.metrics_text()
        assert "# TYPE repro_gateway_served_total counter" in exposition
        assert "repro_gateway_latency_ms_bucket" in exposition
        client.close()

        print_table(
            "E14: trace retrieved from a serve --http subprocess",
            ["trace id", "spans", "names"],
            [[trace.trace_id[:16] + "...", str(len(spans)), ", ".join(names)]],
        )
    finally:
        proc.terminate()
        proc.wait(timeout=30)
        setting.gateway.close()
