"""Gateway observability: latency, throughput and shard balance.

Everything is snapshot-based: the live :class:`GatewayMetrics` object
accumulates counters and latency histograms, and :meth:`GatewayMetrics.snapshot`
freezes them into plain dataclasses the CLI and benchmarks render.  The
clock is injectable so tests assert on exact numbers instead of sleeping.

Latency lives in fixed-bucket :class:`~repro.service.telemetry.Histogram`
accumulators rather than sample lists: every observation always counts
(the old lists kept the first 50k samples and silently dropped the rest,
freezing long-run percentiles on startup traffic), and memory stays
bounded by the bucket count rather than the traffic volume.  Count, sum
and max are exact; only the percentiles are bucket-resolution estimates.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.service.cache import CacheStats
from repro.service.telemetry import Histogram, HistogramSnapshot, merge_histogram_snapshots

__all__ = [
    "LatencySummary",
    "MetricsSnapshot",
    "GatewayMetrics",
    "merge_snapshots",
    "WireServerStats",
    "WireStatsSnapshot",
]

# Distinct tenants tracked in the per-tenant outcome counters; traffic
# from tenants past the cap is folded into one overflow label so a churn
# of one-shot tenants cannot grow the metrics without bound.
_MAX_TENANT_LABELS = 1024
_TENANT_OVERFLOW = "_other"


@dataclass(frozen=True)
class LatencySummary:
    """Percentiles over the observations of one operation kind."""

    count: int
    p50_ms: float
    p90_ms: float
    p99_ms: float
    max_ms: float

    @staticmethod
    def of(samples: list[float]) -> "LatencySummary":
        if not samples:
            return LatencySummary(count=0, p50_ms=0.0, p90_ms=0.0, p99_ms=0.0, max_ms=0.0)
        ordered = sorted(samples)

        def pct(q: float) -> float:
            # Nearest-rank on n-1: int(q * n) overshoots the rank (p50 of
            # two samples would report the max), inflating every quantile.
            return ordered[int(q * (len(ordered) - 1))]
        return LatencySummary(
            count=len(ordered),
            p50_ms=pct(0.50),
            p90_ms=pct(0.90),
            p99_ms=pct(0.99),
            max_ms=ordered[-1],
        )

    @staticmethod
    def from_histogram(histogram: HistogramSnapshot) -> "LatencySummary":
        """Summary view of a histogram: exact count/max, estimated quantiles."""
        if histogram.count == 0:
            return LatencySummary(count=0, p50_ms=0.0, p90_ms=0.0, p99_ms=0.0, max_ms=0.0)
        return LatencySummary(
            count=histogram.count,
            p50_ms=histogram.percentile(0.50),
            p90_ms=histogram.percentile(0.90),
            p99_ms=histogram.percentile(0.99),
            max_ms=histogram.max_value,
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen view of the gateway since construction (or last reset)."""

    requests_total: int
    served: int
    rejected: int
    rate_limited: int
    elapsed_s: float
    shard_requests: dict[str, int]
    latency: dict[str, LatencySummary]
    caches: dict[str, CacheStats]
    resizes: int = 0
    keys_migrated: int = 0
    histograms: dict[str, HistogramSnapshot] = field(default_factory=dict)
    outcomes: dict[tuple[str, str], int] = field(default_factory=dict)
    tenant_outcomes: dict[tuple[str, str], int] = field(default_factory=dict)
    # Fairness signals (PR 9): per-tenant shard-lock queue time, and
    # authentication failures by taxonomy code.
    tenant_queue_ms: dict[str, HistogramSnapshot] = field(default_factory=dict)
    auth_failures: dict[str, int] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.served / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def shard_imbalance(self) -> float:
        """max/mean of per-shard request counts; 1.0 is perfect balance."""
        counts = [c for c in self.shard_requests.values()]
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean

    def rows(self) -> list[list[str]]:
        """Render-ready (metric, value) rows for ``repro.bench.report``."""
        rows = [
            ["requests total", str(self.requests_total)],
            ["served", str(self.served)],
            ["rejected (policy)", str(self.rejected)],
            ["rate limited", str(self.rate_limited)],
            ["throughput req/s", "%.1f" % self.throughput_rps],
            ["shard imbalance (max/mean)", "%.2f" % self.shard_imbalance],
        ]
        if self.resizes:
            rows.append(["resizes", str(self.resizes)])
            rows.append(["keys migrated", str(self.keys_migrated)])
        for kind in sorted(self.latency):
            summary = self.latency[kind]
            if summary.count:
                rows.append(
                    ["%s p50/p90 ms" % kind, "%.2f / %.2f" % (summary.p50_ms, summary.p90_ms)]
                )
        for name in sorted(self.caches):
            stats = self.caches[name]
            rows.append(
                [
                    "%s hit rate" % name,
                    "%.1f%% (%d/%d)" % (100 * stats.hit_rate, stats.hits, stats.hits + stats.misses),
                ]
            )
        return rows


def merge_snapshots(parts: dict[str, MetricsSnapshot]) -> MetricsSnapshot:
    """Aggregate per-process snapshots into one fleet-wide view.

    ``parts`` maps a label (a shard process name, or ``"router"`` for the
    routing tier's local metrics) to that process's snapshot.  Counters,
    outcome maps and resize totals sum; ``elapsed_s`` is the max (the
    longest-lived process defines fleet uptime); ``shard_requests`` is
    re-labelled so each *process* becomes one shard entry, keeping
    per-process balance visible after the merge; cache stats are
    prefixed with their process label.  Latency histograms merge
    bucket-wise per operation — a part whose bounds differ from the
    first seen for that op is skipped (mixed-version fleets), never
    mis-added.
    """
    requests_total = served = rejected = rate_limited = 0
    resizes = keys_migrated = 0
    elapsed_s = 0.0
    shard_requests: dict[str, int] = {}
    caches: dict[str, CacheStats] = {}
    histogram_parts: dict[str, list[HistogramSnapshot]] = {}
    queue_parts: dict[str, list[HistogramSnapshot]] = {}
    outcomes: Counter = Counter()
    tenant_outcomes: Counter = Counter()
    auth_failures: Counter = Counter()
    for label in sorted(parts):
        part = parts[label]
        requests_total += part.requests_total
        served += part.served
        rejected += part.rejected
        rate_limited += part.rate_limited
        resizes += part.resizes
        keys_migrated += part.keys_migrated
        elapsed_s = max(elapsed_s, part.elapsed_s)
        shard_requests[label] = sum(part.shard_requests.values()) or part.served
        for name, stats in part.caches.items():
            caches["%s/%s" % (label, name)] = stats
        for kind, histogram in part.histograms.items():
            histogram_parts.setdefault(kind, []).append(histogram)
        for tenant, histogram in part.tenant_queue_ms.items():
            queue_parts.setdefault(tenant, []).append(histogram)
        outcomes.update(part.outcomes)
        tenant_outcomes.update(part.tenant_outcomes)
        auth_failures.update(part.auth_failures)
    histograms: dict[str, HistogramSnapshot] = {}
    for kind, group in histogram_parts.items():
        mergeable = [h for h in group if h.bounds == group[0].bounds]
        histograms[kind] = merge_histogram_snapshots(mergeable)
    tenant_queue_ms: dict[str, HistogramSnapshot] = {}
    for tenant, group in queue_parts.items():
        mergeable = [h for h in group if h.bounds == group[0].bounds]
        tenant_queue_ms[tenant] = merge_histogram_snapshots(mergeable)
    return MetricsSnapshot(
        requests_total=requests_total,
        served=served,
        rejected=rejected,
        rate_limited=rate_limited,
        elapsed_s=elapsed_s,
        shard_requests=shard_requests,
        latency={
            kind: LatencySummary.from_histogram(histogram)
            for kind, histogram in histograms.items()
        },
        caches=caches,
        resizes=resizes,
        keys_migrated=keys_migrated,
        histograms=histograms,
        outcomes=dict(outcomes),
        tenant_outcomes=dict(tenant_outcomes),
        tenant_queue_ms=tenant_queue_ms,
        auth_failures=dict(auth_failures),
    )


@dataclass
class GatewayMetrics:
    """Mutable accumulator the gateway writes into on every request.

    Counter updates take an internal lock: the gateway may observe from
    many shard-pool workers at once, and the stress tests assert that
    ``requests_total == served + rejected + rate_limited`` exactly.
    """

    clock: Callable[[], float] = time.monotonic
    requests_total: int = 0
    served: int = 0
    rejected: int = 0
    rate_limited: int = 0
    resizes: int = 0
    keys_migrated: int = 0
    shard_requests: Counter = field(default_factory=Counter)
    _histograms: dict[str, Histogram] = field(default_factory=dict)
    _outcomes: Counter = field(default_factory=Counter)
    _tenant_outcomes: Counter = field(default_factory=Counter)
    _tenant_queue: dict[str, Histogram] = field(default_factory=dict)
    _auth_failures: Counter = field(default_factory=Counter)
    _tenant_labels: set = field(default_factory=set)
    _started_at: float = field(init=False)
    _lock: threading.Lock = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._started_at = self.clock()
        self._lock = threading.Lock()

    def _tenant_label(self, tenant: str) -> str:
        # Caller holds the lock.
        if tenant in self._tenant_labels:
            return tenant
        if len(self._tenant_labels) < _MAX_TENANT_LABELS:
            self._tenant_labels.add(tenant)
            return tenant
        return _TENANT_OVERFLOW

    def observe(
        self,
        kind: str,
        latency_ms: float,
        shard: str | None = None,
        tenant: str | None = None,
    ) -> None:
        """Record one served operation of ``kind``."""
        with self._lock:
            self.requests_total += 1
            self.served += 1
            if shard is not None:
                self.shard_requests[shard] += 1
            histogram = self._histograms.get(kind)
            if histogram is None:
                histogram = self._histograms[kind] = Histogram()
            self._outcomes[(kind, "ok")] += 1
            if tenant is not None:
                self._tenant_outcomes[(self._tenant_label(tenant), "ok")] += 1
            # Inside our lock so a snapshot never sees served ahead of the
            # histogram count; the nested histogram lock is uncontended.
            histogram.observe(latency_ms)

    def observe_rejection(
        self,
        rate_limited: bool = False,
        op: str | None = None,
        tenant: str | None = None,
        code: str | None = None,
    ) -> None:
        outcome = code or ("rate-limited" if rate_limited else "rejected")
        with self._lock:
            self.requests_total += 1
            if rate_limited:
                self.rate_limited += 1
            else:
                self.rejected += 1
            if op is not None:
                self._outcomes[(op, outcome)] += 1
            if tenant is not None:
                self._tenant_outcomes[(self._tenant_label(tenant), outcome)] += 1

    def observe_queue(self, tenant: str, wait_ms: float) -> None:
        """Record how long one request waited for its shard lock.

        The fairness histogram: a hot tenant monopolising a shard shows
        up as queue-time growth in *other* tenants' distributions.
        """
        with self._lock:
            label = self._tenant_label(tenant)
            histogram = self._tenant_queue.get(label)
            if histogram is None:
                histogram = self._tenant_queue[label] = Histogram()
            histogram.observe(wait_ms)

    def observe_auth_failure(
        self,
        code: str,
        op: str | None = None,
        tenant: str | None = None,
    ) -> None:
        """Record one authentication/authorization rejection.

        Counts into the ordinary rejection totals (the invariant
        ``requests_total == served + rejected + rate_limited`` holds)
        plus a by-code counter for the Prometheus exposition.
        """
        with self._lock:
            self.requests_total += 1
            self.rejected += 1
            self._auth_failures[code] += 1
            if op is not None:
                self._outcomes[(op, code)] += 1
            if tenant is not None:
                self._tenant_outcomes[(self._tenant_label(tenant), code)] += 1

    def observe_resize(self, keys_migrated: int) -> None:
        """Record one fleet resize and how many keys it moved."""
        with self._lock:
            self.resizes += 1
            self.keys_migrated += keys_migrated

    def snapshot(self, caches: dict[str, CacheStats] | None = None) -> MetricsSnapshot:
        with self._lock:
            histograms = {
                kind: histogram.snapshot()
                for kind, histogram in self._histograms.items()
            }
            return MetricsSnapshot(
                requests_total=self.requests_total,
                served=self.served,
                rejected=self.rejected,
                rate_limited=self.rate_limited,
                elapsed_s=self.clock() - self._started_at,
                shard_requests=dict(self.shard_requests),
                latency={
                    kind: LatencySummary.from_histogram(snapshot)
                    for kind, snapshot in histograms.items()
                },
                caches=dict(caches or {}),
                resizes=self.resizes,
                keys_migrated=self.keys_migrated,
                histograms=histograms,
                outcomes=dict(self._outcomes),
                tenant_outcomes=dict(self._tenant_outcomes),
                tenant_queue_ms={
                    tenant: histogram.snapshot()
                    for tenant, histogram in self._tenant_queue.items()
                },
                auth_failures=dict(self._auth_failures),
            )


@dataclass(frozen=True)
class WireStatsSnapshot:
    """A wire server's connection/stream population at one instant."""

    connections_open: int
    connections_total: int
    streams_in_flight: int
    streams_total: int
    streams_peak: int


class WireServerStats:
    """Thread-safe connection and in-flight-stream gauges for a wire server.

    A *connection* is one accepted socket (HTTP keep-alive or mux); a
    *stream* is one request in flight on any connection — on a mux link
    many streams share a socket, which is exactly what these gauges make
    visible (``streams_in_flight`` far above ``connections_open`` means
    multiplexing is doing its job).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.connections_open = 0
        self.connections_total = 0
        self.streams_in_flight = 0
        self.streams_total = 0
        self.streams_peak = 0

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_open += 1
            self.connections_total += 1

    def connection_closed(self) -> None:
        with self._lock:
            self.connections_open -= 1

    def stream_started(self) -> None:
        with self._lock:
            self.streams_in_flight += 1
            self.streams_total += 1
            if self.streams_in_flight > self.streams_peak:
                self.streams_peak = self.streams_in_flight

    def stream_finished(self) -> None:
        with self._lock:
            self.streams_in_flight -= 1

    def snapshot(self) -> WireStatsSnapshot:
        with self._lock:
            return WireStatsSnapshot(
                connections_open=self.connections_open,
                connections_total=self.connections_total,
                streams_in_flight=self.streams_in_flight,
                streams_total=self.streams_total,
                streams_peak=self.streams_peak,
            )
