"""Elementary number theory used by the field, curve and pairing layers.

The functions are the classical textbook algorithms (extended Euclid,
Legendre/Jacobi symbols, Tonelli--Shanks square roots, the Chinese
Remainder Theorem) implemented explicitly so the whole stack is auditable
without external dependencies.  Modular inversion and exponentiation
route through :mod:`repro.math.backend`, so a GMP-backed interpreter
accelerates every caller transparently.
"""

from __future__ import annotations

from repro.math import backend as _backend

__all__ = [
    "egcd",
    "modinv",
    "batch_modinv",
    "jacobi_symbol",
    "legendre_symbol",
    "is_quadratic_residue",
    "sqrt_mod",
    "crt",
    "int_to_bytes",
    "bytes_to_int",
    "bit_length_bytes",
]


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y = g``.

    Iterative extended Euclidean algorithm; works for negative inputs too.
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m``.

    Raises :class:`ZeroDivisionError` when ``gcd(a, m) != 1`` so that callers
    treat a non-invertible element the same way they would treat ``1/0``.
    Dispatched through the active :class:`~repro.math.backend.IntBackend`.
    """
    return _backend.active_backend().modinv(a, m)


def batch_modinv(values: list[int], m: int) -> list[int]:
    """Invert every element of ``values`` modulo ``m`` with ONE inversion.

    Montgomery's trick: multiply prefix products forward, invert the total
    once, then peel inverses off backwards.  Cost is ``3(n-1)`` field
    multiplications plus a single :func:`modinv` — the building block for
    Jacobian-point normalisation and Miller-loop precomputation, where the
    naive path would pay one extended-Euclid per element.

    Raises :class:`ZeroDivisionError` if *any* element is non-invertible
    (callers filter zeros first when they are expected).
    """
    n = len(values)
    if n == 0:
        return []
    prefix = [0] * n
    acc = 1
    for i, v in enumerate(values):
        acc = acc * v % m
        prefix[i] = acc
    inv = modinv(acc, m)
    out = [0] * n
    for i in range(n - 1, 0, -1):
        out[i] = prefix[i - 1] * inv % m
        inv = inv * values[i] % m
    out[0] = inv % m
    return out


def jacobi_symbol(a: int, n: int) -> int:
    """Return the Jacobi symbol ``(a/n)`` for odd positive ``n``."""
    if n <= 0 or n % 2 == 0:
        raise ValueError("Jacobi symbol requires odd positive n, got %d" % n)
    a %= n
    result = 1
    while a != 0:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def legendre_symbol(a: int, p: int) -> int:
    """Return the Legendre symbol ``(a/p)`` for an odd prime ``p``.

    The value is ``1`` for quadratic residues, ``-1`` for non-residues and
    ``0`` when ``p`` divides ``a``.  ``p`` is assumed (not checked) prime.
    """
    return jacobi_symbol(a, p)


def is_quadratic_residue(a: int, p: int) -> bool:
    """Return True when ``a`` is a non-zero square modulo the odd prime ``p``."""
    return legendre_symbol(a, p) == 1


def sqrt_mod(a: int, p: int) -> int:
    """Return a square root of ``a`` modulo the odd prime ``p``.

    Uses the fast exponentiation shortcut when ``p % 4 == 3`` and falls back
    to Tonelli--Shanks otherwise.  Raises :class:`ValueError` when ``a`` is a
    non-residue.  The returned root is the one in ``[0, p)``; the other root
    is ``p - root``.
    """
    a %= p
    if a == 0:
        return 0
    if p == 2:
        return a
    if not is_quadratic_residue(a, p):
        raise ValueError("%d is not a quadratic residue modulo %d" % (a, p))
    if p % 4 == 3:
        return _backend.active_backend().powmod(a, (p + 1) // 4, p)
    # Tonelli--Shanks: write p - 1 = q * 2^s with q odd.
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    # Find a non-residue z (deterministic scan keeps the function pure).
    z = 2
    while is_quadratic_residue(z, p):
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    r = pow(a, (q + 1) // 2, p)
    while t != 1:
        # Find least i in (0, m) with t^(2^i) == 1.
        i = 0
        t2i = t
        while t2i != 1:
            t2i = t2i * t2i % p
            i += 1
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = b * b % p
        t = t * c % p
        r = r * b % p
    return r


def crt(residues: list[int], moduli: list[int]) -> int:
    """Solve ``x = r_i (mod m_i)`` for pairwise-coprime moduli.

    Returns the unique solution in ``[0, prod(moduli))``.
    """
    if len(residues) != len(moduli):
        raise ValueError("residues and moduli must have equal length")
    if not moduli:
        raise ValueError("crt requires at least one congruence")
    x, m = residues[0] % moduli[0], moduli[0]
    for r_i, m_i in zip(residues[1:], moduli[1:]):
        g, p, _ = egcd(m, m_i)
        if g != 1:
            raise ValueError("moduli must be pairwise coprime")
        diff = (r_i - x) % m_i
        x = (x + m * (diff * p % m_i)) % (m * m_i)
        m *= m_i
    return x


def bit_length_bytes(n: int) -> int:
    """Return the number of bytes needed to store ``n`` (at least 1)."""
    return max(1, (n.bit_length() + 7) // 8)


def int_to_bytes(n: int, length: int | None = None) -> bytes:
    """Serialise a non-negative integer big-endian, fixed width if given."""
    if n < 0:
        raise ValueError("cannot serialise negative integer %d" % n)
    if length is None:
        length = bit_length_bytes(n)
    # int() first: backend types (gmpy2.mpz) may not expose to_bytes.
    return int(n).to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Parse a big-endian byte string as a non-negative integer."""
    return int.from_bytes(data, "big")
