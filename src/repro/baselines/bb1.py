"""The Boneh--Boyen BB1 identity-based encryption scheme (EUROCRYPT'04).

The selective-ID secure IBE *without random oracles* that Matsuo's proxy
re-encryption system builds on.  Identities are hashed to scalars
``i = H(id)``; keys and ciphertexts are:

    msk = g2^alpha,    d_id = (g2^alpha * (g1^i * h)^r,  g^r)
    c   = (m * e(g1, g2)^s,  g^s,  (g1^i * h)^s)

Implemented over the same symmetric pairing group as everything else so
that the E2 scheme comparison is apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ec.curve import Point
from repro.math.drbg import RandomSource, system_random
from repro.math.fields import Fp2Element
from repro.pairing.group import PairingGroup

__all__ = ["Bb1Ibe", "Bb1Params", "Bb1MasterKey", "Bb1PrivateKey", "Bb1Ciphertext"]


@dataclass(frozen=True)
class Bb1Params:
    """Public parameters ``(g1, g2, h)`` plus the cached ``v = e(g1, g2)``."""

    domain: str
    g1: Point
    g2: Point
    h: Point
    v: Fp2Element


@dataclass(frozen=True)
class Bb1MasterKey:
    """``msk = g2^alpha``."""

    domain: str
    point: Point


@dataclass(frozen=True)
class Bb1PrivateKey:
    """``(d0, d1) = (g2^alpha * (g1^i * h)^r, g^r)``."""

    domain: str
    identity: str
    d0: Point
    d1: Point


@dataclass(frozen=True)
class Bb1Ciphertext:
    """``(A, B, C) = (m * v^s, g^s, (g1^i * h)^s)``."""

    domain: str
    identity: str
    a: Fp2Element
    b: Point
    c: Point


class Bb1Ibe:
    """One BB1 KGC domain over a symmetric pairing group."""

    def __init__(self, group: PairingGroup, domain: str = "BB1"):
        self.group = group
        self.domain = domain

    def identity_scalar(self, identity: str) -> int:
        """``H(id)``: identities map to Z_q scalars (no random oracle in G1)."""
        return self.group.hash_to_scalar(("bb1|%s|%s" % (self.domain, identity)).encode())

    def setup(self, rng: RandomSource | None = None) -> tuple[Bb1Params, Bb1MasterKey]:
        rng = rng or system_random()
        alpha = self.group.random_scalar(rng)
        g1 = self.group.g1_mul(self.group.generator, alpha)
        g2 = self.group.random_g1(rng)
        h = self.group.random_g1(rng)
        v = self.group.pair(g1, g2)
        params = Bb1Params(domain=self.domain, g1=g1, g2=g2, h=h, v=v)
        return params, Bb1MasterKey(domain=self.domain, point=self.group.g1_mul(g2, alpha))

    def _id_base(self, params: Bb1Params, identity: str) -> Point:
        """``g1^i * h`` for ``i = H(id)``."""
        i = self.identity_scalar(identity)
        return self.group.g1_add(self.group.g1_mul(params.g1, i), params.h)

    def extract(
        self,
        params: Bb1Params,
        master: Bb1MasterKey,
        identity: str,
        rng: RandomSource | None = None,
    ) -> Bb1PrivateKey:
        rng = rng or system_random()
        r = self.group.random_scalar(rng)
        d0 = self.group.g1_add(master.point, self.group.g1_mul(self._id_base(params, identity), r))
        d1 = self.group.g1_mul(self.group.generator, r)
        return Bb1PrivateKey(domain=self.domain, identity=identity, d0=d0, d1=d1)

    def encrypt(
        self,
        params: Bb1Params,
        message: Fp2Element,
        identity: str,
        rng: RandomSource | None = None,
    ) -> Bb1Ciphertext:
        rng = rng or system_random()
        s = self.group.random_scalar(rng)
        a = self.group.gt_mul(message, self.group.gt_exp(params.v, s))
        b = self.group.g1_mul(self.group.generator, s)
        c = self.group.g1_mul(self._id_base(params, identity), s)
        return Bb1Ciphertext(domain=self.domain, identity=identity, a=a, b=b, c=c)

    def decrypt(self, ciphertext: Bb1Ciphertext, key: Bb1PrivateKey) -> Fp2Element:
        """``m = A * e(C, d1) / e(B, d0)``.

        Computed as a product of pairings (``e(C, d1) * e(-B, d0)``) so the
        final exponentiation is paid once, not twice.
        """
        if ciphertext.domain != key.domain or ciphertext.identity != key.identity:
            raise ValueError("ciphertext was not produced for this key")
        ratio = self.group.multi_pair(
            [(ciphertext.c, key.d1), (self.group.g1_neg(ciphertext.b), key.d0)]
        )
        return self.group.gt_mul(ciphertext.a, ratio)
