"""The multi-process shard fleet: routing tier over shard processes.

Three layers of coverage:

* :class:`TestFleetGatewayStatic` — the routing tier's semantics (owner
  placement, dual-tier error taxonomy, traffic-continuing resize,
  metrics merge) over *in-process* wire servers via :class:`StaticFleet`,
  so the logic is exercised without subprocess latency;
* :class:`TestIdempotentReplay` — the revoke/resize replay fix: a
  response dropped mid-flight is retried under the client's request id
  and answered from the server's idempotency window, never re-executed;
* :class:`TestFleetProcesses` / :class:`TestFleetResizeUnderLoad` — the
  real thing: a :class:`FleetSupervisor` fleet of ``repro-pre serve``
  worker *processes* with durable state dirs, including the kill -9
  crash path (taxonomy error, background restart, zero keys lost) and a
  rolling resize under sustained traffic with zero failed requests.
"""

from __future__ import annotations

import http.client
import os
import threading
import time

import pytest

from repro.core.api import create_backend
from repro.core.proxy import ProxyKeyTable
from repro.pairing.group import PairingGroup
from repro.service.driver import (
    DELEGATEE_DOMAIN,
    DELEGATOR_DOMAIN,
    build_setting,
    drive_requests,
)
from repro.service.fleet import FleetGateway, FleetSupervisor, StaticFleet
from repro.service.gateway import (
    EntryMissingError,
    GrantRequest,
    InvalidRequestError,
    ReEncryptionGateway,
    ReEncryptRequest,
    RevokeRequest,
    StoreUnavailableError,
)
from repro.service.wire import GatewayHttpServer, RemoteGateway, WireTransportError


def _small_setting(seed: str):
    return build_setting(
        group_name="TOY",
        shard_count=1,
        n_patients=2,
        n_delegatees=2,
        n_types=2,
        ciphertexts_per_pair=1,
        seed=seed,
    )


def _keys_of(setting) -> list:
    return [
        key
        for name in setting.gateway.shard_names
        for key in setting.gateway.shard_named(name).table
    ]


def _grant_all(setting, gateway) -> int:
    granted = 0
    for key in _keys_of(setting):
        gateway.grant(GrantRequest(tenant="fleet-test", proxy_key=key))
        granted += 1
    return granted


def _reencrypt_request(setting, pool_key, delegatee) -> tuple[ReEncryptRequest, object]:
    (patient, _type_label) = pool_key
    ciphertext, message = setting.pool[pool_key][0]
    request = ReEncryptRequest(
        tenant=patient,
        ciphertext=ciphertext,
        delegatee_domain=DELEGATEE_DOMAIN,
        delegatee=delegatee,
    )
    return request, message


def _verify(setting, request, response, message) -> None:
    recovered = setting.scheme.decrypt_reencrypted(
        response.ciphertext, setting.delegatee_keys[request.delegatee]
    )
    assert recovered == message, "fleet returned a wrong transformation"


# --------------------------------------------------- static (in-process) fleet


@pytest.fixture()
def static_fleet():
    """Two single-shard wire servers behind one FleetGateway, no processes."""
    backend = create_backend("tipre/v1", PairingGroup.shared("TOY"))
    inner = {
        name: ReEncryptionGateway(
            create_backend("tipre/v1", PairingGroup.shared("TOY")), shard_count=1
        )
        for name in ("shard-00", "shard-01")
    }
    servers = {
        name: GatewayHttpServer(gateway).start() for name, gateway in inner.items()
    }
    fleet = StaticFleet(
        backend, {name: server.url for name, server in servers.items()}
    )
    gateway = FleetGateway(fleet)
    try:
        yield gateway, inner
    finally:
        gateway.close()
        for server in servers.values():
            server.close()
        for shard in inner.values():
            shard.close()


class TestFleetGatewayStatic:
    def test_grants_route_to_the_ring_owner_and_serve_end_to_end(self, static_fleet):
        gateway, inner = static_fleet
        setting = _small_setting("fleet-static")
        try:
            granted = _grant_all(setting, gateway)
            assert gateway.key_count() == granted
            # Every key landed exactly on the shard the ring owns it to.
            for name, shard in inner.items():
                for key in shard.shard_named("shard-00").table:
                    assert (
                        gateway._router.shard_for(
                            key.delegator_domain, key.delegator, key.type_label
                        )
                        == name
                    )
            # The identical seeded stream the in-process gateway serves,
            # with decrypt-and-compare verification, through the fleet.
            verified = drive_requests(
                setting, 16, seed="fleet-static-req", batch_size=4,
                verify_every=1, gateway=gateway,
            )
            assert verified == 16
        finally:
            setting.gateway.close()

    def test_revoke_reaches_the_owning_shard(self, static_fleet):
        gateway, _inner = static_fleet
        setting = _small_setting("fleet-revoke")
        try:
            _grant_all(setting, gateway)
            key = _keys_of(setting)[0]
            index = ProxyKeyTable.index_of(key)
            request = RevokeRequest(
                tenant="fleet-test",
                delegator_domain=index[0],
                delegator=index[1],
                delegatee_domain=index[2],
                delegatee=index[3],
                type_label=index[4],
            )
            first = gateway.revoke(request)
            assert first.removed is True
            assert first.shard == gateway._router.shard_for(
                index[0], index[1], index[4]
            )
            assert gateway.revoke(request).removed is False
        finally:
            setting.gateway.close()

    def test_resize_down_migrates_keys_and_retires_the_shard(self, static_fleet):
        """The copy/swap/cleanup protocol over real wire calls: shrinking
        2 -> 1 re-homes every key and leaves no stale copy behind."""
        gateway, inner = static_fleet
        setting = _small_setting("fleet-shrink")
        try:
            granted = _grant_all(setting, gateway)
            migrating = len(list(inner["shard-01"].shard_named("shard-00").table))
            report = gateway.resize(1)
            assert report.old_shard_count == 2
            assert report.new_shard_count == 1
            assert report.shards_removed == ("shard-01",)
            assert report.keys_moved == migrating
            assert gateway.shard_names == ["shard-00"]
            # All keys now live on the surviving shard; the retired one
            # no longer serves (its endpoint left the fleet).
            assert len(list(inner["shard-00"].shard_named("shard-00").table)) == granted
            request, message = _reencrypt_request(
                setting, sorted(setting.pool)[0], setting.delegatees[0]
            )
            response = gateway.reencrypt(request)
            assert response.shard == "shard-00"
            _verify(setting, request, response, message)
        finally:
            setting.gateway.close()

    def test_static_fleet_cannot_grow(self, static_fleet):
        gateway, _inner = static_fleet
        with pytest.raises(InvalidRequestError, match="register their endpoints"):
            gateway.resize(3)

    def test_snapshot_merges_every_shard_plus_the_router(self, static_fleet):
        gateway, _inner = static_fleet
        setting = _small_setting("fleet-metrics")
        try:
            granted = _grant_all(setting, gateway)
            snapshot = gateway.snapshot()
            assert set(snapshot.shard_requests) == {"shard-00", "shard-01", "router"}
            assert snapshot.served == granted
            assert snapshot.shard_requests["shard-00"] + snapshot.shard_requests[
                "shard-01"
            ] == granted
        finally:
            setting.gateway.close()

    def test_fetch_serves_from_the_router_store(self, static_fleet):
        from repro.phr.store import EncryptedPhrStore
        from repro.service.gateway import FetchRequest

        _gateway, _inner = static_fleet
        store = EncryptedPhrStore()
        store.put("alice", "labs", "e1", b"blob")
        gateway = FleetGateway(_gateway.fleet, store=store)
        response = gateway.fetch(FetchRequest(tenant="t", patient="alice", entry_id="e1"))
        assert response.records[0].blob == b"blob"
        with pytest.raises(EntryMissingError):
            gateway.fetch(FetchRequest(tenant="t", patient="alice", entry_id="nope"))
        with pytest.raises(StoreUnavailableError):
            _gateway.fetch(FetchRequest(tenant="t", patient="alice", entry_id="e1"))


# ------------------------------------------------------ idempotent wire replay


class TestIdempotentReplay:
    def test_revoke_replay_after_dropped_response_reports_the_first_outcome(
        self, monkeypatch
    ):
        """Regression: the connection dies *after* the server revoked but
        before the client read the response.  The retry replays under the
        same client request id; the server's idempotency window answers
        from the record instead of re-executing, so the client sees
        removed=True — not the removed=False a second execution returns.
        """
        setting = _small_setting("fleet-idem")
        key = _keys_of(setting)[0]
        index = ProxyKeyTable.index_of(key)
        before = setting.gateway.key_count()

        original_request = http.client.HTTPConnection.request
        original_getresponse = http.client.HTTPConnection.getresponse
        drops = []

        def recording_request(self, method, url, *args, **kwargs):
            self._wire_path = url
            return original_request(self, method, url, *args, **kwargs)

        def dropping_getresponse(self):
            response = original_getresponse(self)
            if not drops and getattr(self, "_wire_path", "").endswith("/revoke"):
                # The server has fully handled the request (the response
                # is on the wire); lose it on the way back, exactly once.
                drops.append(self._wire_path)
                response.read()
                response.close()
                raise ConnectionResetError("response lost mid-flight")
            return response

        monkeypatch.setattr(http.client.HTTPConnection, "request", recording_request)
        monkeypatch.setattr(
            http.client.HTTPConnection, "getresponse", dropping_getresponse
        )
        try:
            with GatewayHttpServer(setting.gateway) as server:
                client = RemoteGateway(
                    server.url, setting.group, trace_requests=False
                )
                response = client.revoke(
                    RevokeRequest(
                        tenant="fleet-test",
                        delegator_domain=index[0],
                        delegator=index[1],
                        delegatee_domain=index[2],
                        delegatee=index[3],
                        type_label=index[4],
                    )
                )
                client.close()
                assert drops, "the drop hook never fired"
                assert response.removed is True
                assert server.dedup.hits == 1
                assert setting.gateway.key_count() == before - 1
        finally:
            setting.gateway.close()


# ------------------------------------------------------- real shard processes


@pytest.fixture(scope="module")
def process_fleet(tmp_path_factory):
    """Three supervised worker processes with durable state dirs, granted."""
    state_root = tmp_path_factory.mktemp("fleet-state")
    setting = _small_setting("fleet-proc")
    supervisor = FleetSupervisor(
        "tipre/v1", shard_count=3, state_root=state_root, group_name="TOY"
    )
    gateway = FleetGateway(supervisor)
    try:
        granted = _grant_all(setting, gateway)
        yield {
            "setting": setting,
            "supervisor": supervisor,
            "gateway": gateway,
            "granted": granted,
        }
    finally:
        gateway.close()
        setting.gateway.close()


class TestFleetProcesses:
    def test_each_process_holds_exactly_its_ring_share(self, process_fleet):
        gateway = process_fleet["gateway"]
        supervisor = process_fleet["supervisor"]
        assert gateway.key_count() == process_fleet["granted"]
        for name in supervisor.names:
            for key in supervisor.client(name).list_keys():
                assert (
                    gateway._router.shard_for(
                        key.delegator_domain, key.delegator, key.type_label
                    )
                    == name
                )

    def test_reencrypt_verifies_end_to_end_across_processes(self, process_fleet):
        gateway = process_fleet["gateway"]
        setting = process_fleet["setting"]
        for pool_key in sorted(setting.pool):
            for delegatee in setting.delegatees:
                request, message = _reencrypt_request(setting, pool_key, delegatee)
                response = gateway.reencrypt(request)
                _verify(setting, request, response, message)
                assert response.shard in supervisor_names(gateway)
        # One batch spanning every route key fans out and reassembles in order.
        batch = [
            _reencrypt_request(setting, pool_key, setting.delegatees[0])
            for pool_key in sorted(setting.pool)
        ]
        responses = gateway.reencrypt_batch([request for request, _ in batch])
        for (request, message), response in zip(batch, responses):
            _verify(setting, request, response, message)

    def test_hosted_two_tier_trace_shows_router_and_shard_spans(self, process_fleet):
        """client -> routing server -> shard process, one trace id end to
        end: the merged waterfall holds the router's shard-call span *and*
        the shard process's own handler spans."""
        gateway = process_fleet["gateway"]
        setting = process_fleet["setting"]
        supervisor = process_fleet["supervisor"]
        with GatewayHttpServer(gateway) as server:
            client = RemoteGateway(server.url, supervisor.backend)
            request, message = _reencrypt_request(
                setting, sorted(setting.pool)[0], setting.delegatees[0]
            )
            response = client.reencrypt(request)
            _verify(setting, request, response, message)
            trace = client.last_trace
            assert trace is not None
            spans = client.fetch_trace(trace.trace_id)
            names = [span.name for span in spans]
            # Routing tier: its own HTTP handler span plus the wire hop.
            assert "shard-call" in names
            # Both tiers handled the same trace: the op's http span appears
            # once per tier in the merged waterfall.
            assert names.count("http:reencrypt") >= 2
            client.close()

    def test_metrics_aggregate_across_the_processes(self, process_fleet):
        gateway = process_fleet["gateway"]
        supervisor = process_fleet["supervisor"]
        snapshot = gateway.snapshot()
        assert set(snapshot.shard_requests) == set(supervisor.names) | {"router"}
        per_shard_served = sum(
            snapshot.shard_requests[name] for name in supervisor.names
        )
        assert per_shard_served >= process_fleet["granted"]
        assert snapshot.served == per_shard_served

    def test_kill_dash_nine_surfaces_taxonomy_then_restart_loses_no_keys(
        self, process_fleet
    ):
        """Satellite 4: SIGKILL one worker mid-batch.  The routing tier
        answers with the wire-transport taxonomy error (bounded time, no
        hang), the supervisor revives the worker in the background from
        its durable state dir, and not one acknowledged grant is lost."""
        gateway = process_fleet["gateway"]
        setting = process_fleet["setting"]
        supervisor = process_fleet["supervisor"]
        keys_before = process_fleet["granted"]
        assert gateway.key_count() == keys_before

        # The victim owns the first pool route key, so the batch below
        # must cross it.
        first_pool_key = sorted(setting.pool)[0]
        victim = gateway._router.shard_for(
            DELEGATOR_DOMAIN, first_pool_key[0], first_pool_key[1]
        )
        restarts_before = supervisor._workers[victim].restarts
        supervisor.kill(victim)

        batch = [
            _reencrypt_request(setting, pool_key, setting.delegatees[0])[0]
            for pool_key in sorted(setting.pool)
        ]
        start = time.monotonic()
        with pytest.raises(WireTransportError) as excinfo:
            gateway.reencrypt_batch(batch)
        assert time.monotonic() - start < 30.0, "crash must not hang the tier"
        assert WireTransportError.code == "wire-transport"
        assert victim in str(excinfo.value)

        # note_failure kicked off a background revival; wait for it.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if (
                supervisor.alive(victim)
                and supervisor._workers[victim].restarts > restarts_before
            ):
                break
            time.sleep(0.1)
        assert supervisor.alive(victim), supervisor.output_of(victim)[-5:]

        # Zero keys lost: the durable log flushed every acknowledged grant.
        assert gateway.key_count() == keys_before
        request, message = _reencrypt_request(
            setting, first_pool_key, setting.delegatees[0]
        )
        response = gateway.reencrypt(request)
        assert response.shard == victim
        _verify(setting, request, response, message)


def supervisor_names(gateway) -> list[str]:
    return gateway.fleet.names


class TestFleetCli:
    def test_serve_fleet_spawns_workers_and_serves_the_wire(self, tmp_path):
        """``serve --http 0 --fleet 2``: the CLI spawns and supervises the
        worker processes and clients drive the routing tier end to end."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--http", "0",
             "--fleet", "2", "--group", "TOY",
             "--state-dir", str(tmp_path / "state")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        setting = _small_setting("fleet-cli")
        try:
            line = proc.stdout.readline()
            assert "fleet gateway listening on" in line, line
            assert "2 shard processes" in line
            url = line.split()[4]
            client = RemoteGateway(url, setting.group)
            for key in _keys_of(setting):
                client.grant(GrantRequest(tenant="cli", proxy_key=key))
            request, message = _reencrypt_request(
                setting, sorted(setting.pool)[0], setting.delegatees[0]
            )
            response = client.reencrypt(request)
            _verify(setting, request, response, message)
            assert response.shard in ("shard-00", "shard-01")
            # Both worker state dirs exist and hold the durable logs.
            children = sorted(p.name for p in (tmp_path / "state").iterdir())
            assert children == ["shard-00", "shard-01"]
            client.close()
            workers = _worker_pids_for(str(tmp_path / "state"))
            assert len(workers) == 2, workers
        finally:
            proc.terminate()
            proc.wait(timeout=30)
            setting.gateway.close()
        # SIGTERM on the routing process must take the shard workers down
        # with it (systemd/docker stop semantics) — no orphaned processes.
        deadline = time.monotonic() + 30
        while _worker_pids_for(str(tmp_path / "state")):
            assert time.monotonic() < deadline, "orphaned fleet workers"
            time.sleep(0.2)


def _worker_pids_for(state_root: str) -> list[int]:
    """PIDs of live ``--shard`` worker processes rooted at *state_root*."""
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open("/proc/%s/cmdline" % entry, "rb") as handle:
                cmdline = handle.read().split(b"\0")
        except OSError:
            continue
        argv = [part.decode(errors="replace") for part in cmdline if part]
        if "--shard" in argv and any(state_root in part for part in argv):
            pids.append(int(entry))
    return pids


# -------------------------------------------------------- resize under traffic


class TestFleetResizeUnderLoad:
    def test_rolling_resize_with_zero_failed_requests(self, tmp_path):
        """Grow 2 -> 3 shard processes while reads keep flowing.  Every
        request issued during the migration must succeed and verify; the
        new ring must own every key afterwards."""
        setting = _small_setting("fleet-roll")
        supervisor = FleetSupervisor(
            "tipre/v1", shard_count=2, state_root=tmp_path / "state", group_name="TOY"
        )
        gateway = FleetGateway(supervisor)
        try:
            granted = _grant_all(setting, gateway)
            pool_keys = sorted(setting.pool)
            failures: list[BaseException] = []
            served = [0]
            stop = threading.Event()

            def hammer(offset: int) -> None:
                position = offset
                while not stop.is_set():
                    pool_key = pool_keys[position % len(pool_keys)]
                    delegatee = setting.delegatees[position % len(setting.delegatees)]
                    position += 1
                    request, message = _reencrypt_request(setting, pool_key, delegatee)
                    try:
                        response = gateway.reencrypt(request)
                        _verify(setting, request, response, message)
                    except BaseException as error:  # noqa: BLE001 - asserted below
                        failures.append(error)
                        return
                    served[0] += 1

            threads = [
                threading.Thread(target=hammer, args=(offset,), daemon=True)
                for offset in range(2)
            ]
            for thread in threads:
                thread.start()
            try:
                report = gateway.resize(3)
            finally:
                # Let traffic overlap the post-swap state briefly, then stop.
                time.sleep(0.3)
                stop.set()
                for thread in threads:
                    thread.join(timeout=30)
            assert not failures, failures[0]
            assert served[0] > 0, "no traffic overlapped the resize"
            assert report.new_shard_count == 3
            assert report.shards_added == ("shard-02",)
            # The migration batches its grant stream: every re-homed key
            # travelled inside a chunked grant_batch call — at most one
            # per (old shard, new owner) pair here, since the chunk size
            # far exceeds the key count — never one wire call per key.
            stats = gateway.last_migration_stats
            assert stats is not None
            assert stats["grant_keys"] == report.keys_moved
            assert stats["grant_calls"] <= 2 * 2  # 2 old shards x 2 foreign owners
            if report.keys_moved > 4:
                assert stats["grant_calls"] < report.keys_moved
            assert stats["revoke_calls"] == report.keys_moved
            assert stats["export_calls"] == 4  # 2 sweeps x 2 old shards
            assert gateway.shard_names == ["shard-00", "shard-01", "shard-02"]
            # The fleet still holds exactly the granted keys, each on the
            # shard the new ring owns it to.
            assert gateway.key_count() == granted
            for name in supervisor.names:
                for key in supervisor.client(name).list_keys():
                    assert (
                        gateway._router.shard_for(
                            key.delegator_domain, key.delegator, key.type_label
                        )
                        == name
                    )
            # And traffic still verifies after the migration settled.
            request, message = _reencrypt_request(
                setting, pool_keys[0], setting.delegatees[0]
            )
            _verify(setting, request, gateway.reencrypt(request), message)
        finally:
            gateway.close()
            setting.gateway.close()

# ------------------------------------------- crash-loop breaker (no processes)


class _DeadProcess:
    """A process handle that is already dead (``poll()`` -> exit code 1)."""

    pid = 4242

    def poll(self):
        return 1

    def wait(self, timeout=None):
        return 1

    def terminate(self):
        pass

    def kill(self):
        pass


class TestCrashLoopBreaker:
    """A worker whose binary dies on every spawn must not fork-bomb the
    supervisor: respawns back off exponentially and the breaker opens at
    the crash-loop threshold.  Runs against a stubbed dead worker with an
    injected clock, so no real processes and no real sleeping."""

    def _supervisor(self, **overrides) -> FleetSupervisor:
        from repro.service.fleet import _Worker

        options = dict(
            backoff_base=0.5,
            backoff_max=4.0,
            crash_loop_threshold=5,
            crash_loop_window=60.0,
        )
        options.update(overrides)
        supervisor = FleetSupervisor(
            "tipre/v1", shard_count=0, group_name="TOY", **options
        )
        supervisor._workers["shard-00"] = _Worker(
            name="shard-00",
            url="http://127.0.0.1:1/",
            process=_DeadProcess(),
            state_dir=None,
        )
        return supervisor

    @staticmethod
    def _drain(supervisor: FleetSupervisor) -> None:
        deadline = time.monotonic() + 10
        while supervisor._reviving:
            assert time.monotonic() < deadline, "revive thread never finished"
            time.sleep(0.005)

    def _wire_up(self, supervisor: FleetSupervisor):
        """Deterministic clock, recorded sleeps, always-failing restarts."""
        now = [0.0]
        delays: list[float] = []
        attempts: list[str] = []
        supervisor._clock = lambda: now[0]

        def fake_sleep(seconds: float) -> None:
            delays.append(seconds)
            now[0] += seconds

        def failing_restart(name: str) -> None:
            attempts.append(name)
            raise WireTransportError("worker binary crashes on start")

        supervisor._sleep = fake_sleep
        supervisor.restart = failing_restart
        return now, delays, attempts

    def test_kill_loop_backs_off_then_opens_the_breaker(self):
        supervisor = self._supervisor()
        now, delays, attempts = self._wire_up(supervisor)
        try:
            for _ in range(4):
                assert supervisor.note_failure("shard-00") is True
                self._drain(supervisor)
                now[0] += 0.1
            # First respawn is immediate, the next three back off 2x each.
            assert delays == [0.5, 1.0, 2.0]
            assert attempts == ["shard-00"] * 4
            # The fifth failure inside the window opens the breaker: no
            # revival starts, the shard stays down.
            assert supervisor.note_failure("shard-00") is False
            self._drain(supervisor)
            assert supervisor.is_broken("shard-00")
            assert len(attempts) == 4
            events = supervisor.events.tail()
            kinds = [event["kind"] for event in events]
            assert "shard-crash-loop" in kinds
            assert [
                event["delay_s"]
                for event in events
                if event["kind"] == "shard-respawn-backoff"
            ] == [0.5, 1.0, 2.0]
            loop_event = next(e for e in events if e["kind"] == "shard-crash-loop")
            assert loop_event["failures"] == 5
            # Open breaker short-circuits every later failure report.
            assert supervisor.note_failure("shard-00") is False
            self._drain(supervisor)
            assert len(attempts) == 4
        finally:
            supervisor.close()

    def test_backoff_cap_and_window_expiry(self):
        supervisor = self._supervisor(backoff_max=1.0, crash_loop_threshold=9)
        now, delays, attempts = self._wire_up(supervisor)
        try:
            for _ in range(5):
                assert supervisor.note_failure("shard-00") is True
                self._drain(supervisor)
                now[0] += 0.1
            assert delays == [0.5, 1.0, 1.0, 1.0]  # capped at backoff_max
            # Failures older than the window age out: after a quiet spell
            # the next failure respawns immediately again.
            now[0] += supervisor.crash_loop_window + 1
            assert supervisor.note_failure("shard-00") is True
            self._drain(supervisor)
            assert delays == [0.5, 1.0, 1.0, 1.0]  # no new backoff sleep
        finally:
            supervisor.close()

    def test_reset_breaker_and_ensure_started_close_the_loop(self):
        from repro.service.fleet import _Worker

        supervisor = self._supervisor(crash_loop_threshold=2)
        now, delays, attempts = self._wire_up(supervisor)
        try:
            assert supervisor.note_failure("shard-00") is True
            self._drain(supervisor)
            assert supervisor.note_failure("shard-00") is False
            assert supervisor.is_broken("shard-00")
            # Operator intervention: the breaker closes and the failure
            # history is forgotten, so the next respawn is immediate.
            supervisor.reset_breaker("shard-00")
            assert not supervisor.is_broken("shard-00")
            assert supervisor.note_failure("shard-00") is True
            self._drain(supervisor)
            assert delays == []  # every attempt here was first-in-window
            assert len(attempts) == 2
            # ensure_started also clears the breaker for the names it spawns.
            supervisor._broken.add("shard-00")
            spawned: list[str] = []

            def fake_spawn(name: str) -> _Worker:
                spawned.append(name)
                return _Worker(
                    name=name,
                    url="http://127.0.0.1:1/",
                    process=_DeadProcess(),
                    state_dir=None,
                )

            supervisor._spawn = fake_spawn
            supervisor.ensure_started(["shard-00"])
            assert spawned == ["shard-00"]
            assert not supervisor.is_broken("shard-00")
        finally:
            supervisor.close()
