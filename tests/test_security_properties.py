"""Tests for the executable property demonstrations and the ablation designs."""

import pytest

from repro.ibe.kgc import KgcRegistry
from repro.security.ablation import LabelOnlyPre, PolicyViolationError
from repro.security.properties import (
    bbs_collusion_recovers_secret,
    bbs_is_bidirectional,
    dodis_ivan_collusion_recovers_secret,
    tipre_collusion_recovers_only_type_key,
    tipre_delegation_is_unidirectional,
    tipre_is_non_interactive,
    tipre_type_isolation_holds,
)

PROPERTY_CHECKS = (
    bbs_is_bidirectional,
    bbs_collusion_recovers_secret,
    dodis_ivan_collusion_recovers_secret,
    tipre_collusion_recovers_only_type_key,
    tipre_type_isolation_holds,
    tipre_is_non_interactive,
    tipre_delegation_is_unidirectional,
)


@pytest.mark.parametrize("check", PROPERTY_CHECKS, ids=lambda c: c.__name__)
def test_property_demonstration(check, group, rng):
    assert check(group, rng)


@pytest.mark.parametrize("check", PROPERTY_CHECKS, ids=lambda c: c.__name__)
def test_property_demonstration_repeats(check, group, rng):
    """Demonstrations hold across fresh randomness, not just one lucky run."""
    for i in range(3):
        assert check(group, rng.fork("repeat-%d" % i))


class TestLabelOnlyAblation:
    @pytest.fixture()
    def setting(self, group, rng):
        registry = KgcRegistry(group, rng)
        kgc1, kgc2 = registry.create("KGC1"), registry.create("KGC2")
        alice = kgc1.extract("alice")
        bob = kgc2.extract("bob")
        return kgc1, kgc2, alice, bob

    def _install(self, scheme, setting, rng, allowed):
        kgc1, kgc2, alice, _ = setting
        scheme.install_delegation(alice, "bob", kgc2.params, allowed, rng)

    def test_honest_proxy_enforces_policy(self, group, setting, rng):
        kgc1, _, alice, bob = setting
        scheme = LabelOnlyPre(group, corrupt_proxy=False)
        self._install(scheme, setting, rng, allowed=["food-stats"])
        allowed_ct = scheme.encrypt(kgc1.params, group.random_gt(rng), "alice", "food-stats", rng)
        secret_ct = scheme.encrypt(kgc1.params, group.random_gt(rng), "alice", "illness", rng)
        scheme.reencrypt(allowed_ct, "alice", "bob")  # served
        with pytest.raises(PolicyViolationError):
            scheme.reencrypt(secret_ct, "alice", "bob")

    def test_corrupt_proxy_leaks_everything(self, group, setting, rng):
        """The failure the paper predicts: one key, no cryptographic types."""
        kgc1, _, alice, bob = setting
        scheme = LabelOnlyPre(group, corrupt_proxy=True)
        self._install(scheme, setting, rng, allowed=["food-stats"])
        secret = group.random_gt(rng)
        secret_ct = scheme.encrypt(kgc1.params, secret, "alice", "illness", rng)
        leaked = scheme.reencrypt(secret_ct, "alice", "bob")
        assert scheme.decrypt_reencrypted(leaked, bob) == secret  # full leak

    def test_round_trip_for_allowed_type(self, group, setting, rng):
        kgc1, _, alice, bob = setting
        scheme = LabelOnlyPre(group)
        self._install(scheme, setting, rng, allowed=["labs"])
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, message, "alice", "labs", rng)
        assert scheme.decrypt(ciphertext, alice) == message
        transformed = scheme.reencrypt(ciphertext, "alice", "bob")
        assert scheme.decrypt_reencrypted(transformed, bob) == message

    def test_unknown_delegation_rejected(self, group, setting, rng):
        kgc1, _, alice, _ = setting
        scheme = LabelOnlyPre(group)
        ciphertext = scheme.encrypt(kgc1.params, group.random_gt(rng), "alice", "labs", rng)
        with pytest.raises(KeyError):
            scheme.reencrypt(ciphertext, "alice", "bob")

    def test_contrast_with_paper_scheme(self, group, setting, rng, pre_setting):
        """Side by side: corrupt proxy leaks under LabelOnly, garbles under ours."""
        kgc1, _, alice_ga, bob_ga = setting
        label_only = LabelOnlyPre(group, corrupt_proxy=True)
        label_only.install_delegation(alice_ga, "bob", setting[1].params, ["food"], rng)
        secret = group.random_gt(rng)
        leaked = label_only.reencrypt(
            label_only.encrypt(kgc1.params, secret, "alice", "illness", rng), "alice", "bob"
        )
        assert label_only.decrypt_reencrypted(leaked, bob_ga) == secret

        scheme, pkgc1, pkgc2, alice, bob = pre_setting
        proxy_key = scheme.pextract(alice, "bob", "food", pkgc2.params, rng)
        ciphertext = scheme.encrypt(pkgc1.params, alice, secret, "illness", rng)
        mixed = scheme.preenc(ciphertext, proxy_key, unchecked=True)
        assert scheme.decrypt_reencrypted(mixed, bob) != secret
