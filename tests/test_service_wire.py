"""Tests for the HTTP/JSON wire layer: codec, server, client loopback.

The codec tests assert *round-trip exactness* — the dataclass decoded
from the wire compares equal (group elements included) to the one that
was encoded — for every request/response type the gateway speaks.  The
loopback tests stand a real :class:`GatewayHttpServer` on an ephemeral
port and check that a :class:`RemoteGateway` observes bit-identical
results and the same error taxonomy as in-process calls.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.phr.store import EncryptedPhrStore
from repro.serialization.containers import serialize_reencrypted
from repro.service.cache import CacheStats, LruCache
from repro.service.driver import DELEGATEE_DOMAIN, build_setting, drive_requests
from repro.service.gateway import (
    DelegationNotFoundError,
    EntryMissingError,
    FetchRequest,
    FetchResponse,
    GatewayError,
    GrantRequest,
    GrantResponse,
    InvalidRequestError,
    RateLimitedError,
    ReEncryptRequest,
    ReEncryptResponse,
    ResizeReport,
    RevokeRequest,
    RevokeResponse,
    StoreUnavailableError,
)
from repro.service.auth import (
    AUTH_HEADER,
    RequestSigner,
    RequestVerifier,
    TenantCredentialStore,
)
from repro.service.metrics import GatewayMetrics
from repro.service.telemetry import TRACE_HEADER, TraceContext
from repro.service.wire import (
    ERROR_TYPES,
    GatewayHttpServer,
    GrantBatchRequest,
    GrantBatchResponse,
    ReEncryptBatchRequest,
    ReEncryptBatchResponse,
    RemoteGateway,
    ResizeRequest,
    WIRE_FORMAT,
    WireTransportError,
    from_wire,
    to_wire,
)
from repro.service.wire.server import IdempotencyWindow


@pytest.fixture()
def pre_objects(pre_setting, group, rng):
    """One of everything the codec must carry: key, ciphertexts, response."""
    scheme, kgc1, kgc2, alice, bob = pre_setting
    proxy_key = scheme.pextract(alice, "bob", "labs", kgc2.params, rng)
    message = group.random_gt(rng)
    ciphertext = scheme.encrypt(kgc1.params, alice, message, "labs", rng)
    reencrypted = scheme.preenc(ciphertext, proxy_key)
    return scheme, proxy_key, ciphertext, reencrypted, message, bob


def _round_trip(group, message, expect=None):
    decoded = from_wire(group, to_wire(group, message), expect=expect)
    assert decoded == message
    return decoded


class TestCodecRoundTrips:
    def test_grant_request(self, group, pre_objects):
        _scheme, proxy_key, *_rest = pre_objects
        _round_trip(group, GrantRequest(tenant="t", proxy_key=proxy_key), GrantRequest)

    def test_grant_response(self, group):
        _round_trip(group, GrantResponse(shard="shard-01"), GrantResponse)

    def test_grant_batch(self, group, pre_objects):
        _scheme, proxy_key, *_rest = pre_objects
        request = GrantRequest(tenant="t", proxy_key=proxy_key)
        _round_trip(
            group, GrantBatchRequest(requests=(request, request)), GrantBatchRequest
        )
        _round_trip(
            group,
            GrantBatchResponse(
                responses=(GrantResponse(shard="shard-00"), GrantResponse(shard="shard-02"))
            ),
            GrantBatchResponse,
        )

    def test_revoke_request_and_response(self, group):
        _round_trip(
            group,
            RevokeRequest(
                tenant="t",
                delegator_domain="KGC1",
                delegator="alice",
                delegatee_domain="KGC2",
                delegatee="bob",
                type_label="labs",
            ),
            RevokeRequest,
        )
        _round_trip(group, RevokeResponse(shard="shard-00", removed=True), RevokeResponse)

    def test_reencrypt_request(self, group, pre_objects):
        _scheme, _key, ciphertext, *_rest = pre_objects
        _round_trip(
            group,
            ReEncryptRequest(
                tenant="t",
                ciphertext=ciphertext,
                delegatee_domain="KGC2",
                delegatee="bob",
            ),
            ReEncryptRequest,
        )

    def test_reencrypt_response(self, group, pre_objects):
        _scheme, _key, _ct, reencrypted, *_rest = pre_objects
        _round_trip(
            group,
            ReEncryptResponse(ciphertext=reencrypted, shard="shard-02", cache_hit=False),
            ReEncryptResponse,
        )

    def test_reencrypt_batch(self, group, pre_objects):
        _scheme, _key, ciphertext, reencrypted, *_rest = pre_objects
        request = ReEncryptRequest(
            tenant="t", ciphertext=ciphertext, delegatee_domain="KGC2", delegatee="bob"
        )
        _round_trip(
            group,
            ReEncryptBatchRequest(requests=(request, request)),
            ReEncryptBatchRequest,
        )
        response = ReEncryptResponse(
            ciphertext=reencrypted, shard="shard-00", cache_hit=True
        )
        _round_trip(
            group,
            ReEncryptBatchResponse(responses=(response, response)),
            ReEncryptBatchResponse,
        )

    def test_fetch_request_optional_fields(self, group):
        _round_trip(group, FetchRequest(tenant="t", patient="p"), FetchRequest)
        _round_trip(
            group,
            FetchRequest(tenant="t", patient="p", entry_id="e-1", category="labs"),
            FetchRequest,
        )

    def test_fetch_response_carries_blobs(self, group):
        store = EncryptedPhrStore()
        store.put("p", "labs", "e-1", b"\x00\x01ciphertext bytes\xff")
        response = FetchResponse(records=(store.get("p", "e-1"),))
        decoded = _round_trip(group, response, FetchResponse)
        assert decoded.records[0].blob == b"\x00\x01ciphertext bytes\xff"

    def test_resize_request_and_report(self, group):
        _round_trip(group, ResizeRequest(tenant="admin", shard_count=6), ResizeRequest)
        _round_trip(
            group,
            ResizeReport(
                old_shard_count=4,
                new_shard_count=6,
                keys_moved=9,
                shards_added=("shard-04", "shard-05"),
                shards_removed=(),
                elapsed_ms=1.25,
            ),
            ResizeReport,
        )

    def test_metrics_snapshot(self, group):
        metrics = GatewayMetrics()
        metrics.observe("reencrypt", 2.5, "shard-00")
        metrics.observe("grant", 0.5, "shard-01")
        metrics.observe_rejection()
        metrics.observe_rejection(rate_limited=True)
        metrics.observe_resize(3)
        cache = LruCache(4, name="key_cache")
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        snapshot = metrics.snapshot(caches={"key_cache": cache.stats()})
        decoded = from_wire(group, to_wire(group, snapshot))
        # elapsed_s moves between snapshot and compare; check fields we froze.
        assert decoded.requests_total == snapshot.requests_total == 4
        assert decoded.served == 2
        assert decoded.rejected == 1 and decoded.rate_limited == 1
        assert decoded.resizes == 1 and decoded.keys_migrated == 3
        assert decoded.shard_requests == {"shard-00": 1, "shard-01": 1}
        assert decoded.latency == snapshot.latency
        assert decoded.caches["key_cache"] == CacheStats(
            name="key_cache",
            size=1,
            capacity=4,
            hits=1,
            misses=1,
            evictions=0,
            invalidations=0,
        )

    def test_every_error_code_round_trips_to_its_class(self, group):
        for code, cls in ERROR_TYPES.items():
            decoded = from_wire(group, to_wire(group, cls("boom %s" % code)))
            assert type(decoded) is cls
            assert decoded.code == code
            assert "boom" in str(decoded)

    def test_unknown_error_code_falls_back_to_base(self, group):
        text = json.dumps(
            {
                "wire": WIRE_FORMAT,
                "type": "error",
                "body": {"code": "never-heard-of-it", "message": "m"},
            }
        )
        decoded = from_wire(group, text)
        assert type(decoded) is GatewayError

    def test_unencodable_object_is_a_type_error(self, group):
        with pytest.raises(TypeError):
            to_wire(group, object())


class TestCodecRejection:
    def test_malformed_json(self, group):
        with pytest.raises(InvalidRequestError):
            from_wire(group, "{not json")

    def test_non_object_message(self, group):
        with pytest.raises(InvalidRequestError):
            from_wire(group, json.dumps([1, 2, 3]))

    def test_wrong_wire_version(self, group):
        text = json.dumps(
            {"wire": "repro-gateway/v999", "type": "grant-response", "body": {"shard": "s"}}
        )
        with pytest.raises(InvalidRequestError, match="wire format"):
            from_wire(group, text)

    def test_missing_wire_version(self, group):
        text = json.dumps({"type": "grant-response", "body": {"shard": "s"}})
        with pytest.raises(InvalidRequestError):
            from_wire(group, text)

    def test_unknown_message_type(self, group):
        text = json.dumps({"wire": WIRE_FORMAT, "type": "teleport-request", "body": {}})
        with pytest.raises(InvalidRequestError, match="unknown wire message type"):
            from_wire(group, text)

    def test_missing_field(self, group):
        text = json.dumps({"wire": WIRE_FORMAT, "type": "grant-response", "body": {}})
        with pytest.raises(InvalidRequestError, match="missing wire field"):
            from_wire(group, text)

    def test_mistyped_field(self, group):
        text = json.dumps(
            {"wire": WIRE_FORMAT, "type": "grant-response", "body": {"shard": 7}}
        )
        with pytest.raises(InvalidRequestError, match="must be str"):
            from_wire(group, text)

    def test_bool_is_not_an_int(self, group):
        text = json.dumps(
            {
                "wire": WIRE_FORMAT,
                "type": "resize-request",
                "body": {"tenant": "t", "shard_count": True},
            }
        )
        with pytest.raises(InvalidRequestError):
            from_wire(group, text)

    def test_corrupt_element_envelope(self, group, pre_objects):
        _scheme, proxy_key, *_rest = pre_objects
        message = json.loads(to_wire(group, GrantRequest(tenant="t", proxy_key=proxy_key)))
        message["body"]["proxy_key"]["payload"] = "AAAA"
        with pytest.raises(InvalidRequestError):
            from_wire(group, json.dumps(message))

    def test_expect_rejects_other_valid_types(self, group):
        text = to_wire(group, GrantResponse(shard="s"))
        with pytest.raises(InvalidRequestError, match="expected"):
            from_wire(group, text, expect=RevokeResponse)

    def test_expect_rejects_error_messages(self, group):
        text = to_wire(group, RateLimitedError("slow down"))
        with pytest.raises(InvalidRequestError):
            from_wire(group, text, expect=GrantResponse)


# ---------------------------------------------------------------- loopback


@pytest.fixture()
def loopback():
    """A live HTTP server over a seeded gateway plus a typed client."""
    setting = build_setting(
        group_name="TOY",
        shard_count=3,
        n_patients=2,
        n_delegatees=2,
        n_types=2,
        ciphertexts_per_pair=1,
        seed="wire-loopback",
    )
    with GatewayHttpServer(setting.gateway, setting.group) as server:
        client = RemoteGateway(server.url, setting.group)
        yield setting, server, client
    setting.gateway.close()


def _request_stream(setting):
    requests = []
    for (patient, type_label), entries in sorted(setting.pool.items()):
        ciphertext, _message = entries[0]
        for delegatee in setting.delegatees:
            requests.append(
                ReEncryptRequest(
                    tenant=patient,
                    ciphertext=ciphertext,
                    delegatee_domain=DELEGATEE_DOMAIN,
                    delegatee=delegatee,
                )
            )
    return requests


class TestLoopback:
    def test_wire_results_bit_identical_to_in_process(self, loopback):
        setting, _server, client = loopback
        group, gateway = setting.group, setting.gateway
        for request in _request_stream(setting):
            wire = client.reencrypt(request)
            local = gateway.reencrypt(request)
            assert serialize_reencrypted(group, wire.ciphertext) == serialize_reencrypted(
                group, local.ciphertext
            )
            assert wire.shard == local.shard

    def test_batch_over_wire_matches_and_preserves_order(self, loopback):
        setting, _server, client = loopback
        requests = _request_stream(setting)
        wire = client.reencrypt_batch(requests)
        local = setting.gateway.reencrypt_batch(requests)
        assert [r.ciphertext for r in wire] == [r.ciphertext for r in local]
        assert [r.shard for r in wire] == [r.shard for r in local]

    def test_decrypted_plaintext_survives_the_wire(self, loopback):
        setting, _server, client = loopback
        (patient, type_label), entries = sorted(setting.pool.items())[0]
        ciphertext, message = entries[0]
        delegatee = setting.delegatees[0]
        response = client.reencrypt(
            ReEncryptRequest(
                tenant=patient,
                ciphertext=ciphertext,
                delegatee_domain=DELEGATEE_DOMAIN,
                delegatee=delegatee,
            )
        )
        recovered = setting.scheme.decrypt_reencrypted(
            response.ciphertext, setting.delegatee_keys[delegatee]
        )
        assert recovered == message

    def test_driver_runs_unchanged_against_the_wire(self, loopback):
        """drive_requests cannot tell a RemoteGateway from the local one."""
        setting, _server, client = loopback
        verified = drive_requests(
            setting, 16, seed="wire-drive", batch_size=4, gateway=client
        )
        assert verified > 0

    def test_revoke_then_reencrypt_is_no_delegation(self, loopback):
        setting, _server, client = loopback
        (patient, type_label), entries = sorted(setting.pool.items())[0]
        ciphertext, _message = entries[0]
        delegatee = setting.delegatees[0]
        revoked = client.revoke(
            RevokeRequest(
                tenant=patient,
                delegator_domain=ciphertext.domain,
                delegator=ciphertext.identity,
                delegatee_domain=DELEGATEE_DOMAIN,
                delegatee=delegatee,
                type_label=ciphertext.type_label,
            )
        )
        assert revoked.removed
        with pytest.raises(DelegationNotFoundError):
            client.reencrypt(
                ReEncryptRequest(
                    tenant=patient,
                    ciphertext=ciphertext,
                    delegatee_domain=DELEGATEE_DOMAIN,
                    delegatee=delegatee,
                )
            )

    def test_rate_limit_maps_to_429_and_raises(self, loopback):
        setting, server, client = loopback
        setting.gateway.set_rate_limit(1.0, burst=1.0)
        request = _request_stream(setting)[0]
        try:
            with pytest.raises(RateLimitedError):
                for _ in range(5):
                    client.reencrypt(request)
        finally:
            setting.gateway.set_rate_limit(None)

    def test_fetch_without_store_is_no_store(self, loopback):
        _setting, _server, client = loopback
        with pytest.raises(StoreUnavailableError):
            client.fetch(FetchRequest(tenant="t", patient="p"))

    def test_metrics_over_wire_counts_served_requests(self, loopback):
        setting, _server, client = loopback
        before = client.snapshot().served
        client.reencrypt(_request_stream(setting)[0])
        after = client.snapshot().served
        assert after == before + 1

    def test_grant_batch_over_wire_installs_every_key(self, loopback):
        setting, _server, client = loopback
        gateway = setting.gateway
        keys = [
            key
            for name in gateway.shard_names
            for key in gateway.shard_named(name).table
        ][:3]
        assert keys, "seeded gateway has no proxy keys"
        for key in keys:
            removed = client.revoke(
                RevokeRequest(
                    tenant="t",
                    delegator_domain=key.delegator_domain,
                    delegator=key.delegator,
                    delegatee_domain=key.delegatee_domain,
                    delegatee=key.delegatee,
                    type_label=key.type_label,
                )
            )
            assert removed.removed
        responses = client.grant_batch(
            [GrantRequest(tenant="t", proxy_key=key) for key in keys]
        )
        assert len(responses) == len(keys)
        for key, response in zip(keys, responses):
            local = gateway.grant(GrantRequest(tenant="t", proxy_key=key))
            assert response.shard == local.shard

    def test_events_tail_over_wire(self, loopback):
        setting, server, client = loopback
        client.reencrypt(_request_stream(setting)[0])
        events = client.events_tail()
        assert events, "server kept no events"
        assert all("kind" in event and "ts" in event for event in events)
        # The GET itself is logged, so compare on sequence, not equality.
        newest = client.events_tail(2)
        assert len(newest) == 2
        assert newest[0]["seq"] + 1 == newest[1]["seq"]
        assert newest[-1]["seq"] >= events[-1]["seq"]
        # Malformed tail values are a 400, not a server error.
        status, _body = _raw_get(server.url, "/v1/events?tail=zero")
        assert status == 400
        status, _body = _raw_get(server.url, "/v1/events?tail=0")
        assert status == 400

    def test_resize_over_wire_moves_keys_and_keeps_serving(self, loopback):
        setting, _server, client = loopback
        total = setting.gateway.key_count()
        report = client.resize(5)
        assert report.new_shard_count == 5
        assert setting.gateway.key_count() == total
        assert client.reencrypt(_request_stream(setting)[0]).ciphertext is not None


def _raw_get(url: str, path: str):
    try:
        with urllib.request.urlopen(url + path, timeout=10.0) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _raw_post(url: str, path: str, data: bytes):
    request = urllib.request.Request(
        url + path, data=data, headers={"Content-Type": "application/json"}, method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestHttpSurface:
    def test_error_bodies_carry_stable_codes_and_statuses(self, loopback):
        _setting, server, _client = loopback
        cases = [
            (b"{broken json", 400, "invalid-request"),
            (json.dumps({"wire": "nope/v0", "type": "x", "body": {}}).encode(), 400, "invalid-request"),
        ]
        for payload, status, code in cases:
            got_status, body = _raw_post(server.url, "/v1/reencrypt", payload)
            assert got_status == status
            envelope = json.loads(body)
            assert envelope["type"] == "error"
            assert envelope["body"]["code"] == code

    def test_wrong_message_type_for_endpoint_rejected(self, loopback):
        setting, server, _client = loopback
        text = to_wire(setting.group, GrantResponse(shard="s"))
        status, body = _raw_post(server.url, "/v1/grant", text.encode())
        assert status == 400
        assert json.loads(body)["body"]["code"] == "invalid-request"

    def test_unknown_endpoint_is_404_error_body(self, loopback):
        _setting, server, _client = loopback
        status, body = _raw_post(server.url, "/v1/nonsense", b"{}")
        assert status == 404
        assert json.loads(body)["body"]["code"] == "invalid-request"

    def test_health_endpoint(self, loopback):
        _setting, server, _client = loopback
        with urllib.request.urlopen(server.url + "/v1/health", timeout=10.0) as response:
            assert response.status == 200
            assert json.loads(response.read()) == {"status": "ok"}

    def test_pre_read_rejection_closes_the_connection(self, loopback):
        """A body the server refuses to read must not desync keep-alive:
        the 400 carries Connection: close so stale bytes die with it."""
        import http.client

        _setting, server, _client = loopback
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10.0)
        try:
            connection.putrequest("POST", "/v1/reencrypt")
            connection.putheader("Content-Length", "not-a-number")
            connection.endheaders()
            response = connection.getresponse()
            body = response.read()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
            assert json.loads(body)["body"]["code"] == "invalid-request"
        finally:
            connection.close()

    def test_chunked_body_rejected_and_connection_closed(self, loopback):
        import http.client

        _setting, server, _client = loopback
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10.0)
        try:
            connection.putrequest("POST", "/v1/reencrypt")
            connection.putheader("Transfer-Encoding", "chunked")
            connection.endheaders()
            connection.send(b"5\r\nhello\r\n0\r\n\r\n")
            response = connection.getresponse()
            body = response.read()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
            assert json.loads(body)["body"]["code"] == "invalid-request"
        finally:
            connection.close()

    def test_posted_error_message_is_rejected_not_executed(self, loopback):
        setting, server, _client = loopback
        text = to_wire(setting.group, RateLimitedError("not a request"))
        status, body = _raw_post(server.url, "/v1/grant", text.encode())
        assert status == 400
        assert json.loads(body)["body"]["code"] == "invalid-request"


class TestRemoteGatewayTransport:
    def test_unreachable_server_is_wire_transport_error(self, group):
        client = RemoteGateway("http://127.0.0.1:9", group, timeout=0.5)
        with pytest.raises(WireTransportError):
            client.snapshot()

    def test_non_wire_2xx_body_is_wire_transport_error(self, loopback):
        """A 200 whose body is not wire JSON (an interposed proxy, version
        skew) must read as a transport fault, not an invalid-request the
        gateway supposedly charged to the caller — /v1/health is exactly
        such a 200 non-wire body."""
        setting, server, _client = loopback
        # negotiate=False keeps the legacy unprefixed route family, so the
        # "health" op lands on the scheme-neutral /v1/health endpoint.
        client = RemoteGateway(server.url, setting.group, negotiate=False)
        with pytest.raises(WireTransportError):
            client._round_trip("GET", "health", None)

    def test_fetch_with_store_round_trips_records(self, pre_setting, group, rng):
        scheme, _kgc1, _kgc2, _alice, _bob = pre_setting
        from repro.service.gateway import ReEncryptionGateway

        store = EncryptedPhrStore()
        store.put("p", "labs", "e-1", b"blob-1")
        store.put("p", "notes", "e-2", b"blob-2")
        gateway = ReEncryptionGateway(scheme, shard_count=2, store=store)
        with GatewayHttpServer(gateway, group) as server:
            client = RemoteGateway(server.url, group)
            response = client.fetch(FetchRequest(tenant="t", patient="p"))
            assert sorted(r.blob for r in response.records) == [b"blob-1", b"blob-2"]
            one = client.fetch(FetchRequest(tenant="t", patient="p", entry_id="e-2"))
            assert one.records[0].blob == b"blob-2"
            with pytest.raises(EntryMissingError):
                client.fetch(FetchRequest(tenant="t", patient="p", entry_id="missing"))
        gateway.close()


# ------------------------------------------------- wire-layer regressions


class TestTraceEchoSanitization:
    """The response echoes a *re-serialized* trace header, never raw bytes."""

    def _get_with_trace(self, server, value: str):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10.0)
        try:
            conn.request("GET", "/v1/health", headers={TRACE_HEADER: value})
            response = conn.getresponse()
            response.read()
            return response.getheader(TRACE_HEADER)
        finally:
            conn.close()

    def test_valid_trace_header_round_trips(self, loopback):
        _setting, server, _client = loopback
        trace = TraceContext.generate()
        assert self._get_with_trace(server, trace.to_header()) == trace.to_header()

    def test_malformed_trace_header_is_dropped_not_echoed(self, loopback):
        _setting, server, _client = loopback
        assert self._get_with_trace(server, "zz-not-a-trace-header") is None
        assert self._get_with_trace(server, "A" * 48 + "-" + "B" * 16) is None

    def test_folded_trace_header_cannot_inject_response_headers(self, loopback):
        """Regression: echoing the raw client value let an obs-folded
        trace header smuggle CR/LF (and so attacker-chosen headers) into
        the response head; the strict re-parse drops it entirely."""
        _setting, server, _client = loopback
        trace = TraceContext.generate()
        with socket.create_connection((server.host, server.port), timeout=10.0) as sock:
            sock.sendall(
                b"GET /v1/health HTTP/1.1\r\n"
                b"Host: h\r\n"
                + b"%s: %s\r\n" % (TRACE_HEADER.encode(), trace.to_header().encode())
                + b" X-Evil: injected\r\n"
                b"Connection: close\r\n\r\n"
            )
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
        head = raw.split(b"\r\n\r\n", 1)[0]
        assert b"X-Evil" not in head
        assert b"injected" not in head


@pytest.fixture()
def observability_auth(tmp_path):
    """An auth-enabled server whose GET observability must be signed."""
    store = TenantCredentialStore.initialize(tmp_path / "tenants.json")
    store.add("clinic-a", secret="a" * 64)
    setting = build_setting(
        group_name="TOY",
        shard_count=2,
        n_patients=1,
        n_delegatees=1,
        n_types=1,
        ciphertexts_per_pair=1,
        seed="wire-observability-auth",
    )
    server = GatewayHttpServer(
        setting.gateway, setting.group, auth=RequestVerifier(store)
    )
    with server:
        yield setting, server
    setting.gateway.close()


class TestObservabilityAuthGate:
    """Regression: metrics/events/traces answered unauthenticated GETs on
    auth-enabled servers, leaking tenant names, audit detail and
    tracebacks to anyone who found the port."""

    GATED = [
        "/v1/events",
        "/v1/metrics?format=prometheus",
        "/v1/trace/" + "ab" * 16,
        "/v1/tipre/v1/metrics",
    ]

    def _get(self, server, path: str, header: str | None = None):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10.0)
        try:
            headers = {} if header is None else {AUTH_HEADER: header}
            conn.request("GET", path, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def test_unsigned_observability_gets_are_401(self, observability_auth):
        _setting, server = observability_auth
        for path in self.GATED:
            status, body = self._get(server, path)
            assert status == 401, path
            assert json.loads(body)["body"]["code"] == "auth-required"

    def test_health_and_scheme_discovery_stay_open(self, observability_auth):
        _setting, server = observability_auth
        for path in ("/v1/health", "/v1/schemes", "/v1/tipre/v1/scheme"):
            status, _body = self._get(server, path)
            assert status == 200, path

    def test_signed_observability_gets_pass(self, observability_auth):
        _setting, server = observability_auth
        signer = RequestSigner("clinic-a", "a" * 64)
        status, body = self._get(
            server, "/v1/events", signer.header("GET", "/v1/events", b"")
        )
        assert status == 200 and b"events" in body
        status, body = self._get(
            server,
            "/v1/metrics?format=prometheus",
            signer.header("GET", "/v1/metrics?format=prometheus", b""),
        )
        assert status == 200 and b"repro_gateway_requests_total" in body
        # An authorized trace lookup that misses is 404, never 401.
        path = "/v1/trace/" + "ab" * 16
        status, body = self._get(server, path, signer.header("GET", path, b""))
        assert status == 404
        assert json.loads(body)["body"]["code"] == "entry-not-found"

    def test_signed_client_reads_observability(self, observability_auth):
        setting, server = observability_auth
        client = RemoteGateway(
            server.url, setting.group, tenant="clinic-a", secret="a" * 64
        )
        assert client.snapshot().requests_total >= 0
        assert isinstance(client.events_tail(), list)
        assert "repro_gateway_requests_total" in client.metrics_text()
        client.close()


class _ReentrancyProbeRng(random.Random):
    """A drop-in RNG whose draws detect unserialized concurrent entry.

    ``random()`` widens its critical section with a scheduler yield, the
    way any multi-step pure-python generator (or a future PEP-703
    free-threaded build) would.  If callers do not hold a lock around
    the draw, overlapping entries are recorded in ``overlaps`` — which
    is exactly the race the sampling lock exists to prevent.  The value
    sequence stays that of ``random.Random(seed)``.
    """

    def __init__(self, seed):
        super().__init__(seed)
        self._inside = 0
        self.overlaps = 0
        self._probe_lock = threading.Lock()

    def random(self):
        with self._probe_lock:
            self._inside += 1
            if self._inside > 1:
                self.overlaps += 1
        try:
            time.sleep(0.0005)  # hold the generator open across a yield
            return super().random()
        finally:
            with self._probe_lock:
                self._inside -= 1


class TestTraceSamplingDeterminism:
    """Regression: both sampling RNGs drew without a lock; concurrent
    draws interleaved inside the generator, so the deterministic seeded
    sequence (and its exact-count guarantee) could not be relied on.
    Hammer both ends with a reentrancy-probing RNG: the probe records
    unserialized entries, and the sampled counts must equal the
    sequential reference exactly."""

    def test_client_sampling_exact_count_under_threads(self, group):
        client = RemoteGateway("http://127.0.0.1:9", group, trace_requests=0.5)
        client._trace_rng = _ReentrancyProbeRng(0xC11E27)
        draws_per_thread, n_threads = 100, 16
        total = draws_per_thread * n_threads
        reference = random.Random(0xC11E27)
        expected = sum(reference.random() < 0.5 for _ in range(total))
        counts = []
        lock = threading.Lock()

        def worker():
            sampled = sum(client._sample_trace() for _ in range(draws_per_thread))
            with lock:
                counts.append(sampled)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert client._trace_rng.overlaps == 0, (
            "%d sampling draws entered the RNG concurrently"
            % client._trace_rng.overlaps
        )
        assert sum(counts) == expected

    def test_server_sampling_exact_count_under_threads(self):
        setting = build_setting(
            group_name="TOY",
            shard_count=2,
            n_patients=1,
            n_delegatees=1,
            n_types=1,
            ciphertexts_per_pair=1,
            seed="wire-sampling",
        )
        with GatewayHttpServer(
            setting.gateway, setting.group, trace_sample=0.5
        ) as server:
            probe = _ReentrancyProbeRng(0x5EED)
            server._httpd.wire_trace_rng = probe
            request = _request_stream(setting)[0]
            body = to_wire(setting.group, request).encode("utf-8")
            traces = [TraceContext.generate() for _ in range(96)]
            errors = []

            def worker(chunk):
                conn = http.client.HTTPConnection(
                    server.host, server.port, timeout=30.0
                )
                try:
                    for trace in chunk:
                        conn.request(
                            "POST",
                            "/v1/reencrypt",
                            body=body,
                            headers={
                                "Content-Type": "application/json",
                                TRACE_HEADER: trace.to_header(),
                            },
                        )
                        response = conn.getresponse()
                        response.read()
                        if response.status != 200:
                            errors.append(response.status)
                finally:
                    conn.close()

            threads = [
                threading.Thread(target=worker, args=(traces[i::16],))
                for i in range(16)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert probe.overlaps == 0, (
                "%d handler threads entered the sampling RNG concurrently"
                % probe.overlaps
            )
            reference = random.Random(0x5EED)
            expected = sum(reference.random() < 0.5 for _ in range(len(traces)))
            sampled = sum(
                1 for trace in traces if setting.gateway.tracer.trace(trace.trace_id)
            )
            assert sampled == expected
        setting.gateway.close()


class TestIdempotencyTakeover:
    """Regression: a waiter that took over a stuck key raced the stale
    executor's completion, which released the fresh claim and recorded
    the stale payload — letting a third retry execute the mutation again."""

    KEY = ("tipre/v1", "revoke", "req-1")

    def test_stale_completion_neither_records_nor_releases(self):
        window = IdempotencyWindow(wait_timeout=0.05)
        cached, stale_owner = window.claim(self.KEY)
        assert cached is None and stale_owner is not None

        outcome = {}
        done = threading.Event()

        def taker():
            outcome["claim"] = window.claim(self.KEY)  # times out, takes over
            done.set()

        thread = threading.Thread(target=taker)
        thread.start()
        assert done.wait(10.0)
        thread.join(5.0)
        cached2, fresh_owner = outcome["claim"]
        assert cached2 is None
        assert fresh_owner is not None and fresh_owner is not stale_owner
        assert window.takeovers == 1

        # The slow original finally finishes: its payload must not be
        # recorded and the taker's in-flight claim must stay claimed.
        window.complete(self.KEY, stale_owner, '"stale-payload"')
        assert window.stale_completions == 1
        assert self.KEY not in window._entries
        assert window._inflight[self.KEY] is fresh_owner

        # The taker's completion is the one a retry replays.
        window.complete(self.KEY, fresh_owner, '"taker-payload"')
        cached3, token3 = window.claim(self.KEY)
        assert token3 is None and cached3 == '"taker-payload"'
        assert window.hits == 1

    def test_failed_execution_releases_without_recording(self):
        window = IdempotencyWindow(wait_timeout=0.05)
        _cached, owner = window.claim(self.KEY)
        window.complete(self.KEY, owner, None)
        cached, retry_owner = window.claim(self.KEY)
        assert cached is None and retry_owner is not None
        window.complete(self.KEY, retry_owner, '"second-try"')
        assert window.claim(self.KEY) == ('"second-try"', None)

    def test_duplicate_waits_for_first_execution(self):
        window = IdempotencyWindow()
        _cached, owner = window.claim(self.KEY)
        got = {}
        done = threading.Event()

        def duplicate():
            got["claim"] = window.claim(self.KEY)
            done.set()

        thread = threading.Thread(target=duplicate)
        thread.start()
        assert not done.wait(0.1), "duplicate executed during the first flight"
        window.complete(self.KEY, owner, '"first-outcome"')
        assert done.wait(10.0)
        thread.join(5.0)
        assert got["claim"] == ('"first-outcome"', None)
