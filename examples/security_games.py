"""Run the IND-ID-DR-CPA security game against concrete adversaries.

Reproduces the empirical side of the paper's Theorem 1: every strategy
the threat model allows — including the type-mixing and collusion attacks
the construction is designed to defeat — wins with probability ~1/2.

Run:  python examples/security_games.py
"""

from repro import HmacDrbg, PairingGroup
from repro.bench import print_table
from repro.security.adversaries import ALL_DR_CPA_ADVERSARIES
from repro.security.games import IndIdDrCpaGame

TRIALS = 60
group = PairingGroup("TOY")  # toy group: the game logic, not the key size

rows = []
for adversary in ALL_DR_CPA_ADVERSARIES:
    root = HmacDrbg("security-games-%s" % adversary.name)
    wins = 0
    for i in range(TRIALS):
        rng = root.fork("trial-%d" % i)
        game = IndIdDrCpaGame(group, rng)
        wins += adversary(game, group, rng).won
    rate = wins / TRIALS
    rows.append(
        [adversary.name, "%d/%d" % (wins, TRIALS), "%.3f" % abs(rate - 0.5)]
    )

print_table(
    "IND-ID-DR-CPA empirical advantage (%d trials each)" % TRIALS,
    ["adversary strategy", "wins", "|advantage|"],
    rows,
)

print(
    "\nEvery in-model strategy hovers at a coin flip.  For contrast, an\n"
    "out-of-model adversary holding the delegator's private key wins every\n"
    "time (see tests/test_security_adversaries.py::test_omniscient_upper_bound)."
)
