"""Low-level canonical binary encoding: length-prefixed records.

A tiny, dependency-free format used by :mod:`repro.serialization.containers`:
every serialized object starts with the 4-byte magic ``TIPR``, a version
byte and a kind byte, followed by length-prefixed fields.  The format is
canonical (no optional whitespace, fixed field order), so byte equality of
encodings is element equality — which the tests rely on.
"""

from __future__ import annotations

__all__ = ["Writer", "Reader", "MAGIC", "VERSION", "EncodingError"]

MAGIC = b"TIPR"
VERSION = 1


class EncodingError(ValueError):
    """Malformed, truncated, or wrong-kind serialized data."""


class Writer:
    """Append-only canonical encoder."""

    def __init__(self, kind: int):
        if not 0 <= kind <= 255:
            raise ValueError("kind must be a byte")
        self._chunks: list[bytes] = [MAGIC, bytes([VERSION, kind])]

    def write_bytes(self, data: bytes) -> "Writer":
        if len(data) > 0xFFFFFFFF:
            raise EncodingError("field too long")
        self._chunks.append(len(data).to_bytes(4, "big"))
        self._chunks.append(data)
        return self

    def write_str(self, text: str) -> "Writer":
        return self.write_bytes(text.encode("utf-8"))

    def write_int(self, value: int) -> "Writer":
        if value < 0:
            raise EncodingError("negative integers are not encodable")
        value = int(value)  # accept bigint-backend values (gmpy2.mpz)
        length = max(1, (value.bit_length() + 7) // 8)
        return self.write_bytes(value.to_bytes(length, "big"))

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class Reader:
    """Sequential decoder; validates magic, version and kind up front."""

    def __init__(self, data: bytes, expect_kind: int):
        if len(data) < 6:
            raise EncodingError("blob too short")
        if data[:4] != MAGIC:
            raise EncodingError("bad magic")
        if data[4] != VERSION:
            raise EncodingError("unsupported version %d" % data[4])
        if data[5] != expect_kind:
            raise EncodingError("expected kind %d, found %d" % (expect_kind, data[5]))
        self._data = data
        self._pos = 6

    def read_bytes(self) -> bytes:
        if self._pos + 4 > len(self._data):
            raise EncodingError("truncated length prefix")
        length = int.from_bytes(self._data[self._pos : self._pos + 4], "big")
        self._pos += 4
        if self._pos + length > len(self._data):
            raise EncodingError("truncated field")
        field = self._data[self._pos : self._pos + length]
        self._pos += length
        return field

    def read_str(self) -> str:
        return self.read_bytes().decode("utf-8")

    def read_int(self) -> int:
        return int.from_bytes(self.read_bytes(), "big")

    def finish(self) -> None:
        """Assert all bytes were consumed (canonical form has no trailer)."""
        if self._pos != len(self._data):
            raise EncodingError("%d trailing bytes" % (len(self._data) - self._pos))
