"""Round-trip and malformed-input tests for the serialization layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hybrid.kem import HybridPre
from repro.serialization.containers import (
    KIND_PARAMS,
    KIND_PRIVATE_KEY,
    KIND_TYPED_CIPHERTEXT,
    deserialize_hybrid,
    deserialize_hybrid_reencrypted,
    deserialize_ibe_ciphertext,
    deserialize_params,
    deserialize_private_key,
    deserialize_proxy_key,
    deserialize_reencrypted,
    deserialize_typed_ciphertext,
    from_json_envelope,
    serialize_hybrid,
    serialize_hybrid_reencrypted,
    serialize_ibe_ciphertext,
    serialize_params,
    serialize_private_key,
    serialize_proxy_key,
    serialize_reencrypted,
    serialize_typed_ciphertext,
    to_json_envelope,
)
from repro.serialization.encoding import MAGIC, EncodingError, Reader, Writer


class TestEncodingPrimitives:
    def test_writer_reader_round_trip(self):
        blob = (
            Writer(7)
            .write_str("hello")
            .write_bytes(b"\x00\x01")
            .write_int(123456789)
            .getvalue()
        )
        reader = Reader(blob, 7)
        assert reader.read_str() == "hello"
        assert reader.read_bytes() == b"\x00\x01"
        assert reader.read_int() == 123456789
        reader.finish()

    def test_magic_and_version_in_header(self):
        blob = Writer(3).getvalue()
        assert blob[:4] == MAGIC
        assert blob[4] == 1
        assert blob[5] == 3

    def test_bad_magic(self):
        with pytest.raises(EncodingError):
            Reader(b"XXXX\x01\x01aaaa", 1)

    def test_bad_version(self):
        with pytest.raises(EncodingError):
            Reader(MAGIC + b"\x09\x01", 1)

    def test_wrong_kind(self):
        blob = Writer(1).getvalue()
        with pytest.raises(EncodingError):
            Reader(blob, 2)

    def test_too_short(self):
        with pytest.raises(EncodingError):
            Reader(b"TIP", 1)

    def test_truncated_field(self):
        blob = Writer(1).write_bytes(b"abcdef").getvalue()
        with pytest.raises(EncodingError):
            Reader(blob[:-3], 1).read_bytes()

    def test_truncated_length_prefix(self):
        blob = Writer(1).getvalue() + b"\x00\x00"
        with pytest.raises(EncodingError):
            Reader(blob, 1).read_bytes()

    def test_trailing_bytes_rejected(self):
        blob = Writer(1).write_str("x").getvalue() + b"junk"
        reader = Reader(blob, 1)
        reader.read_str()
        with pytest.raises(EncodingError):
            reader.finish()

    def test_negative_int_rejected(self):
        with pytest.raises(EncodingError):
            Writer(1).write_int(-1)

    def test_bad_kind_byte(self):
        with pytest.raises(ValueError):
            Writer(300)

    @given(st.binary(max_size=100), st.text(max_size=50), st.integers(min_value=0, max_value=2**128))
    def test_round_trip_property(self, data, text, number):
        blob = Writer(9).write_bytes(data).write_str(text).write_int(number).getvalue()
        reader = Reader(blob, 9)
        assert reader.read_bytes() == data
        assert reader.read_str() == text
        assert reader.read_int() == number
        reader.finish()


@pytest.fixture()
def objects(pre_setting, group, rng):
    """One of everything serialisable."""
    scheme, kgc1, kgc2, alice, bob = pre_setting
    message = group.random_gt(rng)
    typed = scheme.encrypt(kgc1.params, alice, message, "labs", rng)
    proxy_key = scheme.pextract(alice, "bob", "labs", kgc2.params, rng)
    reencrypted = scheme.preenc(typed, proxy_key)
    hybrid_scheme = HybridPre(group, scheme)
    hybrid = hybrid_scheme.encrypt(kgc1.params, alice, b"payload", "labs", rng)
    hybrid_re = hybrid_scheme.reencrypt(hybrid, proxy_key)
    return {
        "typed": typed,
        "proxy_key": proxy_key,
        "reencrypted": reencrypted,
        "ibe": proxy_key.encrypted_blind,
        "key": alice,
        "params": kgc1.params,
        "hybrid": hybrid,
        "hybrid_re": hybrid_re,
    }


class TestContainerRoundTrips:
    def test_typed_ciphertext(self, group, objects):
        blob = serialize_typed_ciphertext(group, objects["typed"])
        assert deserialize_typed_ciphertext(group, blob) == objects["typed"]

    def test_proxy_key(self, group, objects):
        blob = serialize_proxy_key(group, objects["proxy_key"])
        assert deserialize_proxy_key(group, blob) == objects["proxy_key"]

    def test_reencrypted(self, group, objects):
        blob = serialize_reencrypted(group, objects["reencrypted"])
        assert deserialize_reencrypted(group, blob) == objects["reencrypted"]

    def test_ibe_ciphertext(self, group, objects):
        blob = serialize_ibe_ciphertext(group, objects["ibe"])
        assert deserialize_ibe_ciphertext(group, blob) == objects["ibe"]

    def test_private_key(self, group, objects):
        blob = serialize_private_key(group, objects["key"])
        assert deserialize_private_key(group, blob) == objects["key"]

    def test_params(self, group, objects):
        blob = serialize_params(group, objects["params"])
        assert deserialize_params(group, blob) == objects["params"]

    def test_hybrid(self, group, objects):
        blob = serialize_hybrid(group, objects["hybrid"])
        assert deserialize_hybrid(group, blob) == objects["hybrid"]

    def test_hybrid_reencrypted(self, group, objects):
        blob = serialize_hybrid_reencrypted(group, objects["hybrid_re"])
        assert deserialize_hybrid_reencrypted(group, blob) == objects["hybrid_re"]

    def test_canonical_encoding_is_stable(self, group, objects):
        assert serialize_typed_ciphertext(group, objects["typed"]) == serialize_typed_ciphertext(
            group, objects["typed"]
        )

    def test_kind_confusion_rejected(self, group, objects):
        blob = serialize_typed_ciphertext(group, objects["typed"])
        with pytest.raises(EncodingError):
            deserialize_proxy_key(group, blob)

    def test_deserialized_objects_still_work(self, pre_setting, group, objects, rng):
        """A proxy key that crossed the wire still re-encrypts correctly."""
        scheme, _, _, alice, bob = pre_setting
        key_blob = serialize_proxy_key(group, objects["proxy_key"])
        ct_blob = serialize_typed_ciphertext(group, objects["typed"])
        restored_key = deserialize_proxy_key(group, key_blob)
        restored_ct = deserialize_typed_ciphertext(group, ct_blob)
        transformed = scheme.preenc(restored_ct, restored_key)
        original = scheme.decrypt(objects["typed"], alice)
        assert scheme.decrypt_reencrypted(transformed, bob) == original

    def test_wrong_group_params_rejected(self, group, objects):
        from repro.pairing.group import PairingGroup

        other = PairingGroup("SS256")
        blob = serialize_params(group, objects["params"])
        with pytest.raises(EncodingError):
            deserialize_params(other, blob)


class TestJsonEnvelope:
    def test_round_trip(self, group, objects):
        blob = serialize_typed_ciphertext(group, objects["typed"])
        envelope = to_json_envelope(group, blob)
        assert from_json_envelope(group, envelope) == blob

    def test_envelope_metadata(self, group, objects):
        import json

        envelope = json.loads(to_json_envelope(group, serialize_private_key(group, objects["key"])))
        assert envelope["kind"] == "private-key"
        assert envelope["group"] == "TOY"
        assert envelope["format"] == "tipre/v1"

    def test_unknown_kind_rejected(self, group):
        with pytest.raises(EncodingError):
            to_json_envelope(group, MAGIC + bytes([1, 99]))

    def test_bad_json_rejected(self, group):
        with pytest.raises(EncodingError):
            from_json_envelope(group, "{not json")

    def test_wrong_format_rejected(self, group):
        with pytest.raises(EncodingError):
            from_json_envelope(group, '{"format": "other", "group": "TOY", "payload": ""}')

    def test_wrong_group_rejected(self, group, objects):
        from repro.pairing.group import PairingGroup

        envelope = to_json_envelope(group, serialize_params(group, objects["params"]))
        with pytest.raises(EncodingError):
            from_json_envelope(PairingGroup("SS256"), envelope)

    def test_bad_base64_rejected(self, group):
        with pytest.raises(EncodingError):
            from_json_envelope(
                group, '{"format": "tipre/v1", "group": "TOY", "payload": "!!!"}'
            )
