"""Boneh--Franklin identity-based encryption and KGC infrastructure."""

from repro.ibe.boneh_franklin import BonehFranklinIbe
from repro.ibe.full_ident import DecryptionError, FullIdentCiphertext, FullIdentIbe
from repro.ibe.threshold import KeyShareServer, PartialKey, ThresholdKgc
from repro.ibe.kgc import KeyGenerationCenter, KgcRegistry
from repro.ibe.keys import (
    IbeByteCiphertext,
    IbeCiphertext,
    IbeMasterKey,
    IbeParams,
    IbePrivateKey,
)

__all__ = [
    "BonehFranklinIbe",
    "KeyGenerationCenter",
    "KgcRegistry",
    "IbeParams",
    "IbeMasterKey",
    "IbePrivateKey",
    "IbeCiphertext",
    "IbeByteCiphertext",
    "FullIdentIbe",
    "FullIdentCiphertext",
    "DecryptionError",
    "ThresholdKgc",
    "KeyShareServer",
    "PartialKey",
]
