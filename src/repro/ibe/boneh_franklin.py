"""The Boneh--Franklin identity-based encryption scheme (BasicIdent).

Two message encodings are provided, exactly as Section 3.2 of the paper
distinguishes them:

* the **multiplicative variant** used throughout the paper's construction:
  the plaintext is an element of GT and ``c2 = m * e(pk_id, pk)^r``;
* the **original XOR variant** of Boneh and Franklin:
  ``c2 = m XOR H2(e(pk_id, pk)^r)`` for byte-string plaintexts.

Both share Setup/Extract.  Security (IND-ID-CPA under decision BDH in the
random-oracle model) is exercised empirically by
:mod:`repro.security.games`.
"""

from __future__ import annotations

from repro.ibe.keys import (
    IbeByteCiphertext,
    IbeCiphertext,
    IbeMasterKey,
    IbeParams,
    IbePrivateKey,
)
from repro.math.drbg import RandomSource, system_random
from repro.math.fields import Fp2Element
from repro.pairing.group import PairingGroup

__all__ = ["BonehFranklinIbe"]


class BonehFranklinIbe:
    """One KGC domain of the Boneh--Franklin scheme over a pairing group."""

    def __init__(self, group: PairingGroup, domain: str = "KGC"):
        self.group = group
        self.domain = domain

    # ------------------------------------------------------------ key mgmt

    def setup(self, rng: RandomSource | None = None) -> tuple[IbeParams, IbeMasterKey]:
        """Generate ``(params, mk)``: master secret alpha and ``pk = g^alpha``."""
        rng = rng or system_random()
        alpha = self.group.random_scalar(rng)
        public_key = self.group.g1_mul(self.group.generator, alpha)
        params = IbeParams(
            group_name=self.group.params.name, domain=self.domain, public_key=public_key
        )
        return params, IbeMasterKey(domain=self.domain, alpha=alpha)

    def extract(self, master: IbeMasterKey, identity: str) -> IbePrivateKey:
        """Extract ``sk_id = H1(id)^alpha``."""
        if master.domain != self.domain:
            raise ValueError("master key belongs to domain %r" % master.domain)
        pk_id = self.public_key_of(identity)
        return IbePrivateKey(
            domain=self.domain, identity=identity, point=self.group.g1_mul(pk_id, master.alpha)
        )

    def public_key_of(self, identity: str) -> "Point":
        """The identity public key ``pk_id = H1(id)``."""
        return self.group.hash_to_g1(("%s|%s" % (self.domain, identity)).encode("utf-8"))

    # -------------------------------------------- multiplicative variant

    def encrypt(
        self,
        params: IbeParams,
        message: Fp2Element,
        identity: str,
        rng: RandomSource | None = None,
    ) -> IbeCiphertext:
        """Encrypt a GT element: ``(g^r, m * e(pk_id, pk)^r)``."""
        self._check_params(params)
        rng = rng or system_random()
        r = self.group.random_scalar(rng)
        pk_id = self.public_key_of(identity)
        c1 = self.group.g1_mul(self.group.generator, r)
        mask = self.group.gt_exp(self.group.pair(pk_id, params.public_key), r)
        return IbeCiphertext(
            domain=self.domain, identity=identity, c1=c1, c2=self.group.gt_mul(message, mask)
        )

    def decrypt(self, ciphertext: IbeCiphertext, private_key: IbePrivateKey) -> Fp2Element:
        """Recover ``m = c2 / e(sk_id, c1)``."""
        self._check_key(private_key)
        if ciphertext.domain != self.domain:
            raise ValueError("ciphertext belongs to domain %r" % ciphertext.domain)
        mask = self.group.pair(private_key.point, ciphertext.c1)
        return self.group.gt_div(ciphertext.c2, mask)

    # ------------------------------------------------- original XOR variant

    def encrypt_bytes(
        self,
        params: IbeParams,
        message: bytes,
        identity: str,
        rng: RandomSource | None = None,
    ) -> IbeByteCiphertext:
        """Original BasicIdent: ``(g^r, m XOR H2(e(pk_id, pk)^r))``."""
        self._check_params(params)
        rng = rng or system_random()
        r = self.group.random_scalar(rng)
        pk_id = self.public_key_of(identity)
        c1 = self.group.g1_mul(self.group.generator, r)
        shared = self.group.gt_exp(self.group.pair(pk_id, params.public_key), r)
        pad = self.group.hash_gt_to_bytes(shared, len(message))
        masked = bytes(m ^ k for m, k in zip(message, pad))
        return IbeByteCiphertext(domain=self.domain, identity=identity, c1=c1, c2=masked)

    def decrypt_bytes(
        self, ciphertext: IbeByteCiphertext, private_key: IbePrivateKey
    ) -> bytes:
        """Recover ``m = c2 XOR H2(e(sk_id, c1))``."""
        self._check_key(private_key)
        if ciphertext.domain != self.domain:
            raise ValueError("ciphertext belongs to domain %r" % ciphertext.domain)
        shared = self.group.pair(private_key.point, ciphertext.c1)
        pad = self.group.hash_gt_to_bytes(shared, len(ciphertext.c2))
        return bytes(c ^ k for c, k in zip(ciphertext.c2, pad))

    # --------------------------------------------------------------- guards

    def _check_params(self, params: IbeParams) -> None:
        if params.domain != self.domain:
            raise ValueError("params belong to domain %r, not %r" % (params.domain, self.domain))
        if params.group_name != self.group.params.name:
            raise ValueError("params were generated on group %r" % params.group_name)

    def _check_key(self, key: IbePrivateKey) -> None:
        if key.domain != self.domain:
            raise ValueError("private key belongs to domain %r" % key.domain)
