"""Security games, adversary strategies, and executable property checks."""

from repro.security.ablation import LabelOnlyPre, LabelledCiphertext, PolicyViolationError
from repro.security.adversaries import (
    ALL_DR_CPA_ADVERSARIES,
    ColludingDelegateeAdversary,
    PreencObserverAdversary,
    RandomGuessAdversary,
    SideDomainAdversary,
    TypeMixingAdversary,
)
from repro.security.games import (
    GameResult,
    IllegalQueryError,
    IndIdCpaGame,
    IndIdDrCpaGame,
    OneWaynessGame,
    estimate_advantage,
)
from repro.security.stats import (
    AdvantageEstimate,
    binomial_confidence_interval,
    estimate_from_wins,
)
from repro.security.properties import (
    bbs_collusion_recovers_secret,
    bbs_is_bidirectional,
    dodis_ivan_collusion_recovers_secret,
    tipre_collusion_recovers_only_type_key,
    tipre_delegation_is_unidirectional,
    tipre_is_non_interactive,
    tipre_type_isolation_holds,
)

__all__ = [
    "IndIdCpaGame",
    "OneWaynessGame",
    "IndIdDrCpaGame",
    "GameResult",
    "IllegalQueryError",
    "estimate_advantage",
    "RandomGuessAdversary",
    "TypeMixingAdversary",
    "ColludingDelegateeAdversary",
    "PreencObserverAdversary",
    "SideDomainAdversary",
    "ALL_DR_CPA_ADVERSARIES",
    "LabelOnlyPre",
    "LabelledCiphertext",
    "PolicyViolationError",
    "bbs_is_bidirectional",
    "bbs_collusion_recovers_secret",
    "dodis_ivan_collusion_recovers_secret",
    "tipre_collusion_recovers_only_type_key",
    "tipre_type_isolation_holds",
    "tipre_is_non_interactive",
    "tipre_delegation_is_unidirectional",
    "AdvantageEstimate",
    "binomial_confidence_interval",
    "estimate_from_wins",
]
