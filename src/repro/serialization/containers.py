"""Canonical serialization of every key and ciphertext container.

Each container gets a kind byte, a ``serialize_*`` function producing
canonical bytes and a ``deserialize_*`` function that needs the
:class:`~repro.pairing.group.PairingGroup` (group elements cannot be
decoded without their group).  A JSON envelope (base64 payload + readable
metadata) is provided for interoperability and debugging.
"""

from __future__ import annotations

import base64
import json

from repro.core.ciphertexts import ProxyKey, ReEncryptedCiphertext, TypedCiphertext
from repro.hybrid.kem import HybridCiphertext, HybridReEncrypted
from repro.ibe.keys import IbeCiphertext, IbeParams, IbePrivateKey
from repro.pairing.group import PairingGroup
from repro.serialization.encoding import EncodingError, Reader, Writer

__all__ = [
    "KIND_TYPED_CIPHERTEXT",
    "KIND_PROXY_KEY",
    "KIND_REENCRYPTED",
    "KIND_IBE_CIPHERTEXT",
    "KIND_PRIVATE_KEY",
    "KIND_PARAMS",
    "KIND_HYBRID",
    "KIND_HYBRID_REENCRYPTED",
    "serialize_typed_ciphertext",
    "deserialize_typed_ciphertext",
    "serialize_proxy_key",
    "deserialize_proxy_key",
    "serialize_reencrypted",
    "deserialize_reencrypted",
    "serialize_ibe_ciphertext",
    "deserialize_ibe_ciphertext",
    "serialize_private_key",
    "deserialize_private_key",
    "serialize_params",
    "deserialize_params",
    "serialize_hybrid",
    "deserialize_hybrid",
    "serialize_hybrid_reencrypted",
    "deserialize_hybrid_reencrypted",
    "to_json_envelope",
    "from_json_envelope",
]

KIND_TYPED_CIPHERTEXT = 1
KIND_PROXY_KEY = 2
KIND_REENCRYPTED = 3
KIND_IBE_CIPHERTEXT = 4
KIND_PRIVATE_KEY = 5
KIND_PARAMS = 6
KIND_HYBRID = 7
KIND_HYBRID_REENCRYPTED = 8


# ------------------------------------------------------------- IBE objects


def serialize_ibe_ciphertext(group: PairingGroup, ct: IbeCiphertext) -> bytes:
    writer = Writer(KIND_IBE_CIPHERTEXT)
    writer.write_str(ct.domain).write_str(ct.identity)
    writer.write_bytes(group.serialize_g1(ct.c1))
    writer.write_bytes(group.serialize_gt(ct.c2))
    return writer.getvalue()


def deserialize_ibe_ciphertext(group: PairingGroup, data: bytes) -> IbeCiphertext:
    reader = Reader(data, KIND_IBE_CIPHERTEXT)
    domain = reader.read_str()
    identity = reader.read_str()
    c1 = group.deserialize_g1(reader.read_bytes())
    c2 = group.deserialize_gt(reader.read_bytes())
    reader.finish()
    return IbeCiphertext(domain=domain, identity=identity, c1=c1, c2=c2)


def serialize_private_key(group: PairingGroup, key: IbePrivateKey) -> bytes:
    writer = Writer(KIND_PRIVATE_KEY)
    writer.write_str(key.domain).write_str(key.identity)
    writer.write_bytes(group.serialize_g1(key.point))
    return writer.getvalue()


def deserialize_private_key(group: PairingGroup, data: bytes) -> IbePrivateKey:
    reader = Reader(data, KIND_PRIVATE_KEY)
    domain = reader.read_str()
    identity = reader.read_str()
    point = group.deserialize_g1(reader.read_bytes())
    reader.finish()
    return IbePrivateKey(domain=domain, identity=identity, point=point)


def serialize_params(group: PairingGroup, params: IbeParams) -> bytes:
    writer = Writer(KIND_PARAMS)
    writer.write_str(params.group_name).write_str(params.domain)
    writer.write_bytes(group.serialize_g1(params.public_key))
    return writer.getvalue()


def deserialize_params(group: PairingGroup, data: bytes) -> IbeParams:
    reader = Reader(data, KIND_PARAMS)
    group_name = reader.read_str()
    if group_name != group.params.name:
        raise EncodingError(
            "params are for group %r, not %r" % (group_name, group.params.name)
        )
    domain = reader.read_str()
    public_key = group.deserialize_g1(reader.read_bytes())
    reader.finish()
    return IbeParams(group_name=group_name, domain=domain, public_key=public_key)


# ------------------------------------------------------------- PRE objects


def serialize_typed_ciphertext(group: PairingGroup, ct: TypedCiphertext) -> bytes:
    writer = Writer(KIND_TYPED_CIPHERTEXT)
    writer.write_str(ct.domain).write_str(ct.identity).write_str(ct.type_label)
    writer.write_bytes(group.serialize_g1(ct.c1))
    writer.write_bytes(group.serialize_gt(ct.c2))
    return writer.getvalue()


def deserialize_typed_ciphertext(group: PairingGroup, data: bytes) -> TypedCiphertext:
    reader = Reader(data, KIND_TYPED_CIPHERTEXT)
    domain = reader.read_str()
    identity = reader.read_str()
    type_label = reader.read_str()
    c1 = group.deserialize_g1(reader.read_bytes())
    c2 = group.deserialize_gt(reader.read_bytes())
    reader.finish()
    return TypedCiphertext(domain=domain, identity=identity, c1=c1, c2=c2, type_label=type_label)


def serialize_proxy_key(group: PairingGroup, key: ProxyKey) -> bytes:
    writer = Writer(KIND_PROXY_KEY)
    writer.write_str(key.delegator_domain).write_str(key.delegator)
    writer.write_str(key.delegatee_domain).write_str(key.delegatee)
    writer.write_str(key.type_label)
    writer.write_bytes(group.serialize_g1(key.rk_point))
    writer.write_bytes(serialize_ibe_ciphertext(group, key.encrypted_blind))
    return writer.getvalue()


def deserialize_proxy_key(group: PairingGroup, data: bytes) -> ProxyKey:
    reader = Reader(data, KIND_PROXY_KEY)
    delegator_domain = reader.read_str()
    delegator = reader.read_str()
    delegatee_domain = reader.read_str()
    delegatee = reader.read_str()
    type_label = reader.read_str()
    rk_point = group.deserialize_g1(reader.read_bytes())
    encrypted_blind = deserialize_ibe_ciphertext(group, reader.read_bytes())
    reader.finish()
    return ProxyKey(
        delegator_domain=delegator_domain,
        delegator=delegator,
        delegatee_domain=delegatee_domain,
        delegatee=delegatee,
        type_label=type_label,
        rk_point=rk_point,
        encrypted_blind=encrypted_blind,
    )


def serialize_reencrypted(group: PairingGroup, ct: ReEncryptedCiphertext) -> bytes:
    writer = Writer(KIND_REENCRYPTED)
    writer.write_str(ct.delegator_domain).write_str(ct.delegator)
    writer.write_str(ct.delegatee_domain).write_str(ct.delegatee)
    writer.write_str(ct.type_label)
    writer.write_bytes(group.serialize_g1(ct.c1))
    writer.write_bytes(group.serialize_gt(ct.c2))
    writer.write_bytes(serialize_ibe_ciphertext(group, ct.encrypted_blind))
    return writer.getvalue()


def deserialize_reencrypted(group: PairingGroup, data: bytes) -> ReEncryptedCiphertext:
    reader = Reader(data, KIND_REENCRYPTED)
    delegator_domain = reader.read_str()
    delegator = reader.read_str()
    delegatee_domain = reader.read_str()
    delegatee = reader.read_str()
    type_label = reader.read_str()
    c1 = group.deserialize_g1(reader.read_bytes())
    c2 = group.deserialize_gt(reader.read_bytes())
    encrypted_blind = deserialize_ibe_ciphertext(group, reader.read_bytes())
    reader.finish()
    return ReEncryptedCiphertext(
        delegator_domain=delegator_domain,
        delegator=delegator,
        delegatee_domain=delegatee_domain,
        delegatee=delegatee,
        type_label=type_label,
        c1=c1,
        c2=c2,
        encrypted_blind=encrypted_blind,
    )


# ---------------------------------------------------------- hybrid objects


def serialize_hybrid(group: PairingGroup, ct: HybridCiphertext) -> bytes:
    writer = Writer(KIND_HYBRID)
    writer.write_bytes(serialize_typed_ciphertext(group, ct.kem))
    writer.write_bytes(ct.dem)
    return writer.getvalue()


def deserialize_hybrid(group: PairingGroup, data: bytes) -> HybridCiphertext:
    reader = Reader(data, KIND_HYBRID)
    kem = deserialize_typed_ciphertext(group, reader.read_bytes())
    dem = reader.read_bytes()
    reader.finish()
    return HybridCiphertext(kem=kem, dem=dem)


def serialize_hybrid_reencrypted(group: PairingGroup, ct: HybridReEncrypted) -> bytes:
    writer = Writer(KIND_HYBRID_REENCRYPTED)
    writer.write_bytes(serialize_reencrypted(group, ct.kem))
    writer.write_bytes(ct.dem)
    return writer.getvalue()


def deserialize_hybrid_reencrypted(group: PairingGroup, data: bytes) -> HybridReEncrypted:
    reader = Reader(data, KIND_HYBRID_REENCRYPTED)
    kem = deserialize_reencrypted(group, reader.read_bytes())
    dem = reader.read_bytes()
    reader.finish()
    return HybridReEncrypted(kem=kem, dem=dem)


# ----------------------------------------------------------- JSON envelope

_KIND_NAMES = {
    KIND_TYPED_CIPHERTEXT: "typed-ciphertext",
    KIND_PROXY_KEY: "proxy-key",
    KIND_REENCRYPTED: "reencrypted-ciphertext",
    KIND_IBE_CIPHERTEXT: "ibe-ciphertext",
    KIND_PRIVATE_KEY: "private-key",
    KIND_PARAMS: "params",
    KIND_HYBRID: "hybrid-ciphertext",
    KIND_HYBRID_REENCRYPTED: "hybrid-reencrypted",
}


def to_json_envelope(group: PairingGroup, blob: bytes) -> str:
    """Wrap canonical bytes in a readable JSON envelope."""
    if len(blob) < 6 or blob[5] not in _KIND_NAMES:
        raise EncodingError("not a recognised container")
    envelope = {
        "format": "tipre/v1",
        "kind": _KIND_NAMES[blob[5]],
        "group": group.params.name,
        "payload": base64.b64encode(blob).decode("ascii"),
    }
    return json.dumps(envelope, sort_keys=True)


def from_json_envelope(group: PairingGroup, text: str) -> bytes:
    """Unwrap a JSON envelope back to canonical bytes (validating the group)."""
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise EncodingError("invalid JSON envelope") from exc
    if not isinstance(envelope, dict):
        raise EncodingError("envelope must be a JSON object")
    if envelope.get("format") != "tipre/v1":
        raise EncodingError("unknown envelope format")
    if envelope.get("group") != group.params.name:
        raise EncodingError(
            "envelope is for group %r, not %r" % (envelope.get("group"), group.params.name)
        )
    try:
        return base64.b64decode(envelope["payload"], validate=True)
    except (KeyError, ValueError) as exc:
        raise EncodingError("invalid payload") from exc
