"""Tests for the PairingGroup facade and the operation counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench.counters import OperationCounter, count_operations, record_operation
from repro.math.drbg import HmacDrbg
from repro.pairing.group import PairingGroup


@pytest.fixture(scope="module")
def g():
    return PairingGroup("TOY")


class TestConstruction:
    def test_from_name_or_params(self, g):
        from repro.ec.params import get_params

        assert PairingGroup(get_params("TOY")).order == g.order

    def test_repr(self, g):
        assert "TOY" in repr(g)


class TestSampling:
    def test_random_scalar_nonzero(self, g):
        rng = HmacDrbg("s")
        for _ in range(30):
            assert 1 <= g.random_scalar(rng) < g.order

    def test_random_g1_in_subgroup(self, g):
        point = g.random_g1(HmacDrbg("p"))
        assert g.params.is_in_subgroup(point)

    def test_random_gt_in_subgroup(self, g):
        element = g.random_gt(HmacDrbg("t"))
        assert g.params.is_in_gt(element)

    def test_deterministic_with_seeded_rng(self, g):
        assert g.random_g1(HmacDrbg("d")) == g.random_g1(HmacDrbg("d"))


class TestHashing:
    def test_hash_to_scalar_range(self, g):
        for data in (b"", b"a", b"hello world", bytes(100)):
            assert 1 <= g.hash_to_scalar(data) < g.order

    def test_hash_to_scalar_deterministic(self, g):
        assert g.hash_to_scalar("x") == g.hash_to_scalar(b"x")

    def test_hash_to_scalar_distinct(self, g):
        values = {g.hash_to_scalar(bytes([i])) for i in range(50)}
        assert len(values) == 50

    def test_hash_to_g1(self, g):
        point = g.hash_to_g1(b"identity")
        assert g.params.is_in_subgroup(point)

    def test_hash_gt_to_bytes_length_and_determinism(self, g):
        element = g.random_gt(HmacDrbg("h"))
        for length in (1, 16, 32, 64, 100):
            pad = g.hash_gt_to_bytes(element, length)
            assert len(pad) == length
        assert g.hash_gt_to_bytes(element) == g.hash_gt_to_bytes(element)


class TestGroupOperations:
    def test_g1_mul_reduces_scalar(self, g):
        point = g.random_g1(HmacDrbg("m"))
        assert g.g1_mul(point, g.order + 3) == g.g1_mul(point, 3)

    def test_g1_identity(self, g):
        assert g.g1_identity().is_infinity()
        point = g.random_g1(HmacDrbg("m"))
        assert g.g1_add(point, g.g1_identity()) == point
        assert g.g1_add(point, g.g1_neg(point)).is_infinity()

    def test_gt_generator_cached_and_nontrivial(self, g):
        gen = g.gt_generator()
        assert gen is g.gt_generator()
        assert not gen.is_one()
        assert g.params.is_in_gt(gen)

    def test_gt_operations(self, g):
        rng = HmacDrbg("gt-ops")
        x, y = g.random_gt(rng), g.random_gt(rng)
        assert g.gt_div(g.gt_mul(x, y), y) == x
        assert g.gt_mul(x, g.gt_inverse(x)) == g.gt_identity()
        assert g.gt_exp(x, g.order + 2) == g.gt_exp(x, 2)

    @given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=1, max_value=10**6))
    def test_pair_bilinearity_via_facade(self, a, b):
        group = PairingGroup("TOY")
        lhs = group.pair(group.g1_mul(group.generator, a), group.g1_mul(group.generator, b))
        rhs = group.gt_exp(group.pair(group.generator, group.generator), a * b)
        assert lhs == rhs


class TestSerialization:
    def test_g1_round_trip(self, g):
        rng = HmacDrbg("ser")
        for _ in range(10):
            point = g.random_g1(rng)
            blob = g.serialize_g1(point)
            assert len(blob) == g.g1_element_size()
            assert g.deserialize_g1(blob) == point

    def test_g1_infinity_round_trip(self, g):
        blob = g.serialize_g1(g.g1_identity())
        assert g.deserialize_g1(blob).is_infinity()

    def test_g1_bad_length(self, g):
        with pytest.raises(ValueError):
            g.deserialize_g1(b"\x00" * 3)

    def test_g1_bad_tag(self, g):
        blob = bytearray(g.serialize_g1(g.generator))
        blob[0] = 9
        with pytest.raises(ValueError):
            g.deserialize_g1(bytes(blob))

    def test_g1_off_curve_x(self, g):
        size = g.g1_element_size() - 1
        # Find an x that is not on the curve.
        for x in range(2, 300):
            if g.params.curve.lift_x(g.params.base_field(x)) is None:
                blob = bytes([0]) + x.to_bytes(size, "big")
                with pytest.raises(ValueError):
                    g.deserialize_g1(blob)
                return
        pytest.fail("no off-curve x found")

    def test_gt_round_trip(self, g):
        element = g.random_gt(HmacDrbg("ser-gt"))
        blob = g.serialize_gt(element)
        assert len(blob) == g.gt_element_size()
        assert g.deserialize_gt(blob) == element

    def test_gt_bad_length(self, g):
        with pytest.raises(ValueError):
            g.deserialize_gt(b"\x01\x02")

    def test_scalar_size(self, g):
        assert g.scalar_size() == (g.order.bit_length() + 7) // 8


class TestCounters:
    def test_pairing_recorded(self, g):
        with count_operations() as counter:
            g.pair(g.generator, g.generator)
        assert counter.get("pairing") == 1

    def test_mul_and_exp_recorded(self, g):
        rng = HmacDrbg("c")
        with count_operations() as counter:
            point = g.g1_mul(g.generator, 5)
            g.gt_exp(g.gt_generator(), 3)
        assert counter.get("g1_mul") >= 1
        assert counter.get("gt_exp") >= 1
        assert counter.total() >= 2

    def test_nested_counters(self, g):
        with count_operations() as outer:
            g.g1_mul(g.generator, 2)
            with count_operations() as inner:
                g.g1_mul(g.generator, 3)
        assert inner.get("g1_mul") == 1
        assert outer.get("g1_mul") == 2

    def test_no_active_counter_is_noop(self):
        record_operation("anything")  # must not raise

    def test_counter_api(self):
        counter = OperationCounter()
        counter.record("x")
        counter.record("x", 4)
        assert counter.get("x") == 5
        assert counter.get("missing") == 0
        assert counter.as_dict() == {"x": 5}
        assert "x=5" in repr(counter)
