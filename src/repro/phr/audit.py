"""Append-only audit log for the PHR system.

Every security-relevant action — uploads, grants, revocations,
re-encryption requests (served or refused) — is recorded.  The log is a
hash chain: each event carries the SHA-256 of its predecessor, so tests
can verify tamper-evidence (:meth:`AuditLog.verify_chain`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

__all__ = ["AuditEvent", "AuditLog"]


@dataclass(frozen=True)
class AuditEvent:
    """One immutable audit record."""

    sequence: int
    action: str
    actor: str
    subject: str
    detail: dict
    prev_digest: str

    def digest(self) -> str:
        """The event's chained SHA-256 digest."""
        body = json.dumps(
            {
                "sequence": self.sequence,
                "action": self.action,
                "actor": self.actor,
                "subject": self.subject,
                "detail": self.detail,
                "prev": self.prev_digest,
            },
            sort_keys=True,
        ).encode("utf-8")
        return hashlib.sha256(body).hexdigest()


_GENESIS = "0" * 64


@dataclass
class AuditLog:
    """A hash-chained, append-only event log."""

    _events: list[AuditEvent] = field(default_factory=list)

    def record(self, action: str, actor: str, subject: str, **detail) -> AuditEvent:
        prev = self._events[-1].digest() if self._events else _GENESIS
        event = AuditEvent(
            sequence=len(self._events),
            action=action,
            actor=actor,
            subject=subject,
            detail=detail,
            prev_digest=prev,
        )
        self._events.append(event)
        return event

    def events(self, action: str | None = None, actor: str | None = None) -> list[AuditEvent]:
        """Filtered copy of the log."""
        selected = self._events
        if action is not None:
            selected = [e for e in selected if e.action == action]
        if actor is not None:
            selected = [e for e in selected if e.actor == actor]
        return list(selected)

    def __len__(self) -> int:
        return len(self._events)

    def verify_chain(self) -> bool:
        """Recompute the hash chain; False indicates tampering."""
        prev = _GENESIS
        for index, event in enumerate(self._events):
            if event.sequence != index or event.prev_digest != prev:
                return False
            prev = event.digest()
        return True
