"""Optimised scalar multiplication: wNAF and fixed-base windowing.

The schoolbook double-and-add in :class:`~repro.ec.curve.Point` is the
reference implementation; this module provides two classic speedups used
by the :class:`~repro.pairing.group.PairingGroup` facade:

* **wNAF (width-w non-adjacent form)** for arbitrary points: fewer adds
  because the signed digit encoding has ~1/(w+1) density and negation is
  free on elliptic curves.
* **Fixed-base windowing** for repeatedly-used bases (the group generator
  and KGC public keys): a one-time table of size ``2^w * ceil(bits/w)``
  turns every subsequent multiplication into pure additions.

Both are verified against the schoolbook ladder by property tests; the
E1-extension benchmark (``bench_e8_substrate.py``) prices the gain.
"""

from __future__ import annotations

from repro.ec.curve import Point

__all__ = ["wnaf_mul", "FixedBaseTable", "wnaf_digits"]

_DEFAULT_WIDTH = 4


def wnaf_digits(scalar: int, width: int = _DEFAULT_WIDTH) -> list[int]:
    """The width-``w`` non-adjacent form of a non-negative scalar.

    Digits are returned least-significant first; every non-zero digit is
    odd with absolute value below ``2^(w-1)``, and any two non-zero digits
    are separated by at least ``w - 1`` zeros.
    """
    if scalar < 0:
        raise ValueError("wNAF is defined here for non-negative scalars")
    if width < 2:
        raise ValueError("window width must be at least 2")
    digits: list[int] = []
    modulus = 1 << width
    half = 1 << (width - 1)
    while scalar > 0:
        if scalar & 1:
            digit = scalar % modulus
            if digit >= half:
                digit -= modulus
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


def wnaf_mul(point: Point, scalar: int, width: int = _DEFAULT_WIDTH) -> Point:
    """Scalar multiplication via wNAF; agrees with ``point * scalar``."""
    if scalar < 0:
        return wnaf_mul(-point, -scalar, width)
    if scalar == 0 or point.is_infinity():
        return point.curve.infinity()
    # Precompute the odd multiples P, 3P, ..., (2^(w-1) - 1)P: 2^(w-2) points.
    double_point = point.double()
    odd_multiples = [point]
    for _ in range(max(1, 1 << (width - 2)) - 1):
        odd_multiples.append(odd_multiples[-1] + double_point)
    digits = wnaf_digits(scalar, width)
    result = point.curve.infinity()
    for digit in reversed(digits):
        result = result.double()
        if digit > 0:
            result = result + odd_multiples[(digit - 1) // 2]
        elif digit < 0:
            result = result - odd_multiples[(-digit - 1) // 2]
    return result


class FixedBaseTable:
    """Precomputed windowed table for one fixed base point.

    With window width ``w`` and a maximum scalar of ``bits`` bits the table
    stores ``ceil(bits / w)`` rows of ``2^w`` points; a multiplication then
    needs only one addition per row (no doublings at all).
    """

    def __init__(self, base: Point, bits: int, width: int = _DEFAULT_WIDTH):
        if base.is_infinity():
            raise ValueError("fixed-base table needs a non-identity base")
        if bits < 1 or width < 1:
            raise ValueError("bits and width must be positive")
        self.base = base
        self.width = width
        self.bits = bits
        self._rows: list[list[Point]] = []
        row_base = base
        for _ in range((bits + width - 1) // width):
            row = [base.curve.infinity()]
            for _ in range((1 << width) - 1):
                row.append(row[-1] + row_base)
            self._rows.append(row)
            # Advance the row base by 2^width doublings.
            for _ in range(width):
                row_base = row_base.double()

    def mul(self, scalar: int) -> Point:
        """Multiply the fixed base by ``scalar`` (reduced into range)."""
        if scalar < 0:
            raise ValueError("scalar must be non-negative (reduce mod q first)")
        if scalar.bit_length() > self.bits:
            raise ValueError("scalar exceeds the table's %d-bit capacity" % self.bits)
        mask = (1 << self.width) - 1
        result = self.base.curve.infinity()
        for row in self._rows:
            result = result + row[scalar & mask]
            scalar >>= self.width
        return result

    def table_size(self) -> int:
        """Number of precomputed points held."""
        return sum(len(row) for row in self._rows)
