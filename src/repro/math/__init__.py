"""Number-theoretic and finite-field substrate.

Everything the elliptic-curve and pairing layers need, built from scratch:

* :mod:`repro.math.ntheory` -- gcd/inverse, Legendre/Jacobi, Tonelli--Shanks,
  CRT, byte conversion helpers.
* :mod:`repro.math.primes` -- Miller--Rabin and prime generation.
* :mod:`repro.math.fields` -- F_p and F_{p^2} arithmetic.
* :mod:`repro.math.drbg` -- seedable HMAC-DRBG and an OS-entropy source.
"""

from repro.math.backend import (
    IntBackend,
    active_backend,
    available_backends,
    backend_name,
    set_int_backend,
)
from repro.math.drbg import HmacDrbg, RandomSource, SystemRandomSource, system_random
from repro.math.fields import Fp2Element, FpElement, PrimeField, QuadraticExtField
from repro.math.ntheory import (
    batch_modinv,
    bytes_to_int,
    crt,
    egcd,
    int_to_bytes,
    is_quadratic_residue,
    jacobi_symbol,
    legendre_symbol,
    modinv,
    sqrt_mod,
)
from repro.math.primes import is_probable_prime, next_prime, random_prime
from repro.math.shamir import Share, reconstruct_secret, split_secret

__all__ = [
    "HmacDrbg",
    "RandomSource",
    "SystemRandomSource",
    "system_random",
    "PrimeField",
    "FpElement",
    "QuadraticExtField",
    "Fp2Element",
    "egcd",
    "modinv",
    "batch_modinv",
    "IntBackend",
    "active_backend",
    "available_backends",
    "backend_name",
    "set_int_backend",
    "jacobi_symbol",
    "legendre_symbol",
    "is_quadratic_residue",
    "sqrt_mod",
    "crt",
    "int_to_bytes",
    "bytes_to_int",
    "is_probable_prime",
    "random_prime",
    "next_prime",
    "Share",
    "split_secret",
    "reconstruct_secret",
]
