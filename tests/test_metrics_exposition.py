"""Prometheus exposition tests: validity, escaping, per-scheme isolation.

The scrape endpoint must serve a document any Prometheus server would
ingest, so these tests parse the exposition with a small strict parser
(format 0.0.4: ``# HELP``/``# TYPE`` once per family, ``name{labels}
value`` samples, backslash escaping in label values) rather than
grepping for substrings.  The multi-scheme tests host one bare fleet for
**every** registered backend side by side and assert one scrape stays a
valid document with per-scheme counter isolation.
"""

from __future__ import annotations

import re
import urllib.request

import pytest

from repro.core.api import available_schemes, create_backend
from repro.service.gateway import ReEncryptionGateway
from repro.service.metrics import GatewayMetrics
from repro.service.telemetry import escape_label_value, render_prometheus
from repro.service.wire import GatewayHttpServer
from repro.service.wire.server import PROMETHEUS_CONTENT_TYPE

ALL_SCHEMES = sorted(available_schemes())

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    return float(text)


def parse_exposition(text: str):
    """Strictly parse exposition text into (samples, families).

    ``samples`` maps (metric name, frozenset of label pairs) -> value;
    ``families`` maps family name -> declared TYPE.  Raises AssertionError
    on anything a Prometheus scraper would reject.
    """
    samples: dict[tuple[str, frozenset], float] = {}
    families: dict[str, str] = {}
    helped: set[str] = set()
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            assert name not in helped, "duplicate HELP for %s" % name
            helped.add(name)
            continue
        if line.startswith("# TYPE "):
            _hash, _kw, name, kind = line.split(" ", 3)
            assert name not in families, "duplicate TYPE for %s" % name
            assert kind in {"counter", "gauge", "histogram"}
            families[name] = kind
            continue
        assert not line.startswith("#"), "unknown comment line: %r" % line
        match = _SAMPLE_RE.match(line)
        assert match, "unparseable sample line: %r" % line
        name = match.group("name")
        raw_labels = match.group("labels") or ""
        labels = frozenset(
            (label, _unescape(value)) for label, value in _LABEL_RE.findall(raw_labels)
        )
        # The label regex must consume the whole label string (a stray
        # unescaped quote would silently drop labels otherwise).
        rebuilt = ",".join(
            '%s="%s"' % (label, value) for label, value in _LABEL_RE.findall(raw_labels)
        )
        assert rebuilt == raw_labels, "malformed labels: %r" % raw_labels
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
        assert family in families, "sample %r lacks a TYPE declaration" % name
        key = (name, labels)
        assert key not in samples, "duplicate sample: %r" % (key,)
        samples[key] = _parse_value(match.group("value"))
    return samples, families


def _sample(samples, name, **labels):
    matches = [
        value
        for (sample_name, sample_labels), value in samples.items()
        if sample_name == name and frozenset(labels.items()) <= sample_labels
    ]
    assert len(matches) == 1, "expected one %s%r, found %d" % (name, labels, len(matches))
    return matches[0]


# ------------------------------------------------------------- render units


class TestRenderPrometheus:
    def _snapshot(self, **observe_kwargs):
        metrics = GatewayMetrics()
        metrics.observe("reencrypt", 2.0, shard="shard-00", tenant="alice")
        metrics.observe("reencrypt", 4.0, shard="shard-01", tenant="alice")
        metrics.observe("grant", 1.0, shard="shard-00", tenant="bob")
        metrics.observe_rejection(rate_limited=True, op="reencrypt", tenant="bob")
        metrics.observe_rejection(op="fetch", tenant="alice", code="entry-not-found")
        return metrics.snapshot()

    def test_document_parses_and_counters_match(self):
        samples, families = parse_exposition(
            render_prometheus({"tipre/v1": self._snapshot()})
        )
        assert families["repro_gateway_served_total"] == "counter"
        assert families["repro_gateway_latency_ms"] == "histogram"
        assert _sample(samples, "repro_gateway_served_total", scheme="tipre/v1") == 3
        assert _sample(samples, "repro_gateway_rate_limited_total", scheme="tipre/v1") == 1
        assert _sample(samples, "repro_gateway_rejected_total", scheme="tipre/v1") == 1
        assert _sample(
            samples, "repro_gateway_outcomes_total",
            scheme="tipre/v1", op="fetch", outcome="entry-not-found",
        ) == 1
        assert _sample(
            samples, "repro_gateway_tenant_outcomes_total",
            scheme="tipre/v1", tenant="alice", outcome="ok",
        ) == 2
        assert _sample(
            samples, "repro_gateway_tenant_outcomes_total",
            scheme="tipre/v1", tenant="alice", outcome="entry-not-found",
        ) == 1
        assert _sample(
            samples, "repro_gateway_shard_requests_total",
            scheme="tipre/v1", shard="shard-00",
        ) == 2

    def test_histogram_buckets_are_cumulative_and_end_at_count(self):
        samples, _families = parse_exposition(
            render_prometheus({"tipre/v1": self._snapshot()})
        )
        buckets = sorted(
            (dict(labels)["le"], value)
            for (name, labels), value in samples.items()
            if name == "repro_gateway_latency_ms_bucket"
            and ("op", "reencrypt") in labels
        )
        values = [value for _le, value in sorted(
            buckets, key=lambda pair: _parse_value(pair[0])
        )]
        assert values == sorted(values), "bucket counts must be cumulative"
        inf_count = _sample(
            samples, "repro_gateway_latency_ms_bucket",
            op="reencrypt", le="+Inf",
        )
        total = _sample(samples, "repro_gateway_latency_ms_count", op="reencrypt")
        assert inf_count == total == 2
        assert _sample(
            samples, "repro_gateway_latency_ms_sum", op="reencrypt"
        ) == pytest.approx(6.0)

    def test_label_values_escape_quotes_backslashes_newlines(self):
        wicked = 'ten"ant\\with\nnewline'
        metrics = GatewayMetrics()
        metrics.observe("reencrypt", 1.0, tenant=wicked)
        text = render_prometheus({"tipre/v1": metrics.snapshot()})
        samples, _families = parse_exposition(text)
        assert _sample(
            samples, "repro_gateway_tenant_outcomes_total",
            tenant=wicked, outcome="ok",
        ) == 1

    def test_escape_label_value_order(self):
        # Backslash first: escaping the quote's backslash twice would
        # corrupt the value.
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_families_emitted_once_across_schemes(self):
        text = render_prometheus(
            {"tipre/v1": self._snapshot(), "afgh/v1": self._snapshot()}
        )
        assert text.count("# TYPE repro_gateway_served_total counter") == 1
        samples, _families = parse_exposition(text)
        assert _sample(samples, "repro_gateway_served_total", scheme="tipre/v1") == 3
        assert _sample(samples, "repro_gateway_served_total", scheme="afgh/v1") == 3

    def test_empty_snapshot_set_renders_empty_document(self):
        samples, families = parse_exposition(render_prometheus({}) + "")
        assert samples == {}


# ----------------------------------------------------------- live endpoint


def _scrape(url: str, path: str = "/v1/metrics?format=prometheus"):
    with urllib.request.urlopen(url + path, timeout=10.0) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


@pytest.fixture()
def six_fleet_server(group):
    """One bare fleet per registered backend, hosted side by side."""
    gateways = [
        ReEncryptionGateway(create_backend(scheme_id, group), shard_count=2)
        for scheme_id in ALL_SCHEMES
    ]
    with GatewayHttpServer(gateways=gateways) as server:
        yield server, dict(zip(ALL_SCHEMES, gateways))
    for gateway in gateways:
        gateway.close()


class TestLiveExposition:
    def test_all_registered_schemes_are_hosted(self):
        assert len(ALL_SCHEMES) == 6

    def test_one_scrape_covers_every_scheme_with_isolated_counters(
        self, six_fleet_server
    ):
        server, fleets = six_fleet_server
        for index, scheme_id in enumerate(ALL_SCHEMES):
            for _ in range(index + 1):
                fleets[scheme_id].metrics.observe(
                    "reencrypt", 1.0, shard="shard-00", tenant="t-" + scheme_id
                )
        status, content_type, body = _scrape(server.url)
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        samples, _families = parse_exposition(body.decode("utf-8"))
        for index, scheme_id in enumerate(ALL_SCHEMES):
            assert _sample(
                samples, "repro_gateway_served_total", scheme=scheme_id
            ) == index + 1
            # Tenant counters never leak across fleets.
            assert _sample(
                samples, "repro_gateway_tenant_outcomes_total",
                scheme=scheme_id, tenant="t-" + scheme_id, outcome="ok",
            ) == index + 1

    def test_counters_are_monotone_across_scrapes(self, six_fleet_server):
        server, fleets = six_fleet_server
        fleets[ALL_SCHEMES[0]].metrics.observe("reencrypt", 1.0)
        _status, _ct, first = _scrape(server.url)
        before, families = parse_exposition(first.decode("utf-8"))
        for scheme_id in ALL_SCHEMES:
            fleets[scheme_id].metrics.observe("reencrypt", 2.0)
        _status, _ct, second = _scrape(server.url)
        after, _families = parse_exposition(second.decode("utf-8"))
        for key, value in before.items():
            name, _labels = key
            family = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in families:
                    family = name[: -len(suffix)]
            if families.get(family) == "gauge":
                continue
            assert key in after, "counter series vanished: %r" % (key,)
            assert after[key] >= value, "counter went backwards: %r" % (key,)

    def test_prefixed_scrape_serves_exactly_one_scheme(self, six_fleet_server):
        server, fleets = six_fleet_server
        target = ALL_SCHEMES[0]
        fleets[target].metrics.observe("reencrypt", 1.0)
        status, content_type, body = _scrape(
            server.url, "/v1/%s/metrics?format=prometheus" % target
        )
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        samples, _families = parse_exposition(body.decode("utf-8"))
        schemes = {
            dict(labels)["scheme"]
            for (name, labels), _value in samples.items()
            if name == "repro_gateway_served_total"
        }
        assert schemes == {target}

    def test_unprefixed_json_metrics_still_refused_on_multischeme(
        self, six_fleet_server
    ):
        """format=prometheus is the only unprefixed metrics spelling that
        stays meaningful when several fleets are hosted."""
        server, _fleets = six_fleet_server
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _scrape(server.url, "/v1/metrics")
        assert excinfo.value.code == 400
