"""E6 — empirical adversary advantage in the IND-ID-DR-CPA game.

The experimental counterpart of Theorem 1: each adversary strategy the
threat model admits plays the full oracle game many times; the report
shows win rates statistically indistinguishable from 1/2.  As the
positive control, an out-of-model "omniscient" adversary (holding the
delegator's key) wins every round — the game itself is winnable, the
scheme is what prevents it.
"""

from __future__ import annotations

from repro.bench.report import print_table
from repro.math.drbg import HmacDrbg
from repro.pairing.group import PairingGroup
from repro.security.adversaries import ALL_DR_CPA_ADVERSARIES
from repro.security.games import IndIdDrCpaGame
from repro.security.stats import estimate_from_wins

TRIALS = 50


def _run(adversary, group, trials: int, seed: str) -> int:
    root = HmacDrbg(seed)
    wins = 0
    for i in range(trials):
        rng = root.fork("trial-%d" % i)
        game = IndIdDrCpaGame(group, rng)
        wins += adversary(game, group, rng).won
    return wins


def test_e6_advantage_report(benchmark):
    group = PairingGroup.shared("TOY")
    rows = []
    for adversary in ALL_DR_CPA_ADVERSARIES:
        wins = _run(adversary, group, TRIALS, "e6-%s" % adversary.name)
        estimate = estimate_from_wins(adversary.name, wins, TRIALS)
        rows.append(
            [
                adversary.name,
                "%d/%d" % (wins, TRIALS),
                "%.3f" % estimate.advantage,
                "[%.2f, %.2f]" % (estimate.rate_low, estimate.rate_high),
                "yes" if estimate.consistent_with_zero_advantage() else "NO",
            ]
        )
        assert estimate.consistent_with_zero_advantage(), adversary.name

    # Positive control: out-of-model key access wins always.
    root = HmacDrbg("e6-omniscient")
    control_wins = 0
    control_trials = 10
    for i in range(control_trials):
        rng = root.fork("t%d" % i)
        game = IndIdDrCpaGame(group, rng)
        alice_key = game._kgc1.extract("alice")  # deliberate rule break
        m0, m1 = group.random_gt(rng), group.random_gt(rng)
        challenge = game.challenge(m0, m1, "t", "alice")
        recovered = game.scheme.decrypt(challenge, alice_key)
        control_wins += game.finish(0 if recovered == m0 else 1).won
    control = estimate_from_wins("(control) omniscient", control_wins, control_trials)
    rows.append(
        [
            "(control) omniscient key holder",
            "%d/%d" % (control_wins, control_trials),
            "%.3f" % control.advantage,
            "[%.2f, %.2f]" % (control.rate_low, control.rate_high),
            "yes" if control.consistent_with_zero_advantage() else "NO",
        ]
    )
    assert control_wins == control_trials
    assert not control.consistent_with_zero_advantage()

    print_table(
        "E6: IND-ID-DR-CPA empirical advantage (%d trials per strategy)" % TRIALS,
        ["adversary strategy", "wins", "|advantage|", "95% CI (rate)", "adv=0 plausible"],
        rows,
    )

    adversary = ALL_DR_CPA_ADVERSARIES[0]
    counter = [0]

    def one_game():
        counter[0] += 1
        rng = HmacDrbg("e6-bench-%d" % counter[0])
        adversary(IndIdDrCpaGame(group, rng), group, rng)

    benchmark.pedantic(one_game, rounds=3, iterations=1)


def test_e6_game_round_latency(benchmark):
    """Cost of one full game round (two KGC setups + oracles + challenge)."""
    group = PairingGroup.shared("TOY")
    adversary = ALL_DR_CPA_ADVERSARIES[1]  # type-mixing: the busiest strategy
    counter = [0]

    def one_round():
        counter[0] += 1
        rng = HmacDrbg("e6-round-%d" % counter[0])
        adversary(IndIdDrCpaGame(group, rng), group, rng)

    benchmark.group = "E6 game rounds"
    benchmark.pedantic(one_round, rounds=3, iterations=1)
