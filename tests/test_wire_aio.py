"""Conformance tests for the asyncio wire stack against the threaded one.

The threaded :class:`GatewayHttpServer` + pooled :class:`RemoteGateway`
pair is the reference implementation; these tests stand all three stacks
up over *identically seeded* gateways and assert the asyncio server
(HTTP/1.1 mode and mux framing mode) answers byte-for-byte what the
reference answers — success payloads and taxonomy error bodies alike.
On top of the byte conformance: typed-client parity for every operation,
auth and TLS variants, and the one-socket multiplexing bound.
"""

from __future__ import annotations

import dataclasses
import sys
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serialization.containers import serialize_reencrypted
from repro.service.auth import (
    AuthRequiredError,
    BadSignatureError,
    RequestVerifier,
    TenantCredentialStore,
    server_context,
)
from repro.service.driver import DELEGATEE_DOMAIN, build_setting, drive_requests
from repro.service.gateway import (
    DelegationNotFoundError,
    FetchRequest,
    GrantRequest,
    RateLimitedError,
    ReEncryptRequest,
    RevokeRequest,
    StoreUnavailableError,
)
from repro.service.telemetry import EventLog
from repro.service.wire import (
    AsyncGatewayServer,
    GatewayHttpServer,
    GrantBatchRequest,
    MuxRemoteGateway,
    ReEncryptBatchRequest,
    RemoteGateway,
    WireTransportError,
    connect_gateway,
    to_wire,
)
from repro.service.wire.codec import KeyExportRequest, ResizeRequest

SEED = "aio-conformance"
PREFIX = "/v1/tipre/v1"
REPO_ROOT = Path(__file__).resolve().parents[1]


def _build():
    return build_setting(
        group_name="TOY",
        shard_count=3,
        n_patients=2,
        n_delegatees=2,
        n_types=2,
        ciphertexts_per_pair=1,
        seed=SEED,
    )


def _first_keys(gateway, count=2):
    return [
        key
        for name in gateway.shard_names
        for key in gateway.shard_named(name).table
    ][:count]


def _reencrypt_requests(setting, count=2):
    requests = []
    for (patient, _type_label), entries in sorted(setting.pool.items()):
        ciphertext, _message = entries[0]
        requests.append(
            ReEncryptRequest(
                tenant=patient,
                ciphertext=ciphertext,
                delegatee_domain=DELEGATEE_DOMAIN,
                delegatee=setting.delegatees[0],
            )
        )
    return requests[:count]


def _op_sequence(setting):
    """The scripted request stream every stack replays identically.

    Covers every POST op, the GET surface, cache-hit repeats, batches,
    and the negative paths whose error bodies must match byte-for-byte.
    Fixed request ids keep revoke/resize payload bytes deterministic.
    """
    backend = setting.gateway.backend
    key0, key1 = _first_keys(setting.gateway)
    r0, r1 = _reencrypt_requests(setting)

    def revoke_of(key, request_id):
        return RevokeRequest(
            tenant="t",
            delegator_domain=key.delegator_domain,
            delegator=key.delegator,
            delegatee_domain=key.delegatee_domain,
            delegatee=key.delegatee,
            type_label=key.type_label,
            request_id=request_id,
        )

    def wire(message):
        return to_wire(backend, message).encode("utf-8")

    return [
        ("GET", "/v1/health", None),
        ("GET", "/v1/schemes", None),
        ("GET", PREFIX + "/scheme", None),
        ("POST", PREFIX + "/revoke", wire(revoke_of(key0, "aa" * 16))),
        ("POST", PREFIX + "/grant", wire(GrantRequest(tenant="t", proxy_key=key0))),
        (
            "POST",
            PREFIX + "/grant",
            wire(
                GrantBatchRequest(
                    requests=(
                        GrantRequest(tenant="t", proxy_key=key0),
                        GrantRequest(tenant="t", proxy_key=key1),
                    )
                )
            ),
        ),
        ("POST", PREFIX + "/reencrypt", wire(r0)),
        ("POST", PREFIX + "/reencrypt", wire(r0)),  # cache-hit flag parity
        ("POST", PREFIX + "/reencrypt", wire(ReEncryptBatchRequest(requests=(r0, r1)))),
        ("POST", PREFIX + "/export", wire(KeyExportRequest(tenant="admin"))),
        ("POST", PREFIX + "/fetch", wire(FetchRequest(tenant="t", patient="p"))),
        ("POST", PREFIX + "/reencrypt", b"{broken json"),
        ("POST", PREFIX + "/grant", wire(r0)),  # wrong message type for endpoint
        ("POST", "/v1/nonsense", b"{}"),
        ("POST", PREFIX + "/revoke", wire(revoke_of(key0, "cc" * 16))),
        ("POST", PREFIX + "/reencrypt", wire(r0)),  # revoked: error-path parity
        ("POST", PREFIX + "/grant", wire(GrantRequest(tenant="t", proxy_key=key0))),
    ]


def _replay(client, sequence):
    return [
        client._raw_request(method, path, data) for method, path, data in sequence
    ]


@pytest.fixture()
def three_stacks():
    """Reference, asyncio-HTTP and asyncio-mux stacks over identical twins."""
    settings_ = [_build() for _ in range(3)]
    threaded = GatewayHttpServer(settings_[0].gateway, settings_[0].group).start()
    aio_http = AsyncGatewayServer(settings_[1].gateway, settings_[1].group).start()
    aio_mux = AsyncGatewayServer(settings_[2].gateway, settings_[2].group).start()
    clients = [
        RemoteGateway(threaded.url, settings_[0].group),
        RemoteGateway(aio_http.http_url, settings_[1].group),
        MuxRemoteGateway(aio_mux.url, settings_[2].group),
    ]
    try:
        yield settings_, clients
    finally:
        for client in clients:
            client.close()
        for server in (threaded, aio_http, aio_mux):
            server.close()
        for setting in settings_:
            setting.gateway.close()


class TestCrossStackConformance:
    def test_every_op_bit_identical_across_stacks(self, three_stacks):
        """Same scripted stream -> same (status, body) bytes on all three."""
        settings_, clients = three_stacks
        transcripts = [
            _replay(client, _op_sequence(setting))
            for setting, client in zip(settings_, clients)
        ]
        reference = transcripts[0]
        for transcript in transcripts[1:]:
            assert transcript == reference
        # Sanity: the script really exercised both outcomes.
        statuses = [status for status, _body in reference]
        assert 200 in statuses and 400 in statuses
        assert 404 in statuses and 503 in statuses

    def test_resize_parity_across_stacks(self, three_stacks):
        """Resize moves identical keys everywhere; only timing may differ."""
        settings_, clients = three_stacks
        reports = []
        for setting, client in zip(settings_, clients):
            body = to_wire(
                setting.gateway.backend,
                ResizeRequest(tenant="admin", shard_count=5, request_id="bb" * 16),
            ).encode("utf-8")
            status, raw = client._raw_request("POST", PREFIX + "/resize", body)
            assert status == 200
            report = client._decode_round_trip(status, raw.decode("utf-8"), "/resize")
            reports.append(dataclasses.replace(report, elapsed_ms=0.0))
        assert reports[1] == reports[0]
        assert reports[2] == reports[0]

    def test_mux_taxonomy_matches_reference(self, three_stacks):
        settings_, clients = three_stacks
        for setting, client in zip(settings_, clients):
            request = _reencrypt_requests(setting, 1)[0]
            ciphertext = request.ciphertext
            revoked = client.revoke(
                RevokeRequest(
                    tenant=request.tenant,
                    delegator_domain=ciphertext.domain,
                    delegator=ciphertext.identity,
                    delegatee_domain=request.delegatee_domain,
                    delegatee=request.delegatee,
                    type_label=ciphertext.type_label,
                )
            )
            assert revoked.removed
            with pytest.raises(DelegationNotFoundError):
                client.reencrypt(request)
            with pytest.raises(StoreUnavailableError):
                client.fetch(FetchRequest(tenant="t", patient="p"))


# ----------------------------------------------------------- typed mux client


@pytest.fixture()
def mux_loopback():
    setting = _build()
    with AsyncGatewayServer(setting.gateway, setting.group) as server:
        client = MuxRemoteGateway(server.url, setting.group)
        try:
            yield setting, server, client
        finally:
            client.close()
    setting.gateway.close()


class TestMuxTypedClient:
    def test_reencrypt_bit_identical_to_in_process(self, mux_loopback):
        setting, _server, client = mux_loopback
        group, gateway = setting.group, setting.gateway
        for request in _reencrypt_requests(setting):
            wire = client.reencrypt(request)
            local = gateway.reencrypt(request)
            assert serialize_reencrypted(group, wire.ciphertext) == serialize_reencrypted(
                group, local.ciphertext
            )
            assert wire.shard == local.shard

    def test_batch_preserves_order(self, mux_loopback):
        setting, _server, client = mux_loopback
        requests = _reencrypt_requests(setting)
        wire = client.reencrypt_batch(requests)
        local = setting.gateway.reencrypt_batch(requests)
        assert [r.ciphertext for r in wire] == [r.ciphertext for r in local]

    def test_decrypted_plaintext_survives_the_mux(self, mux_loopback):
        setting, _server, client = mux_loopback
        (patient, _type_label), entries = sorted(setting.pool.items())[0]
        ciphertext, message = entries[0]
        delegatee = setting.delegatees[0]
        response = client.reencrypt(
            ReEncryptRequest(
                tenant=patient,
                ciphertext=ciphertext,
                delegatee_domain=DELEGATEE_DOMAIN,
                delegatee=delegatee,
            )
        )
        recovered = setting.scheme.decrypt_reencrypted(
            response.ciphertext, setting.delegatee_keys[delegatee]
        )
        assert recovered == message

    def test_driver_runs_unchanged_over_mux(self, mux_loopback):
        setting, _server, client = mux_loopback
        verified = drive_requests(
            setting, 16, seed="mux-drive", batch_size=4, gateway=client
        )
        assert verified > 0

    def test_observability_surface_over_mux(self, mux_loopback):
        setting, _server, client = mux_loopback
        client.reencrypt(_reencrypt_requests(setting, 1)[0])
        trace_id = client.last_trace.trace_id
        assert client.snapshot().served >= 1
        text = client.metrics_text()
        assert "repro_wire_connections_open" in text
        assert "repro_wire_streams_in_flight" in text
        events = client.events_tail(2)
        assert len(events) == 2
        spans = client.fetch_trace(trace_id)
        assert any(span.name == "http:reencrypt" for span in spans)

    def test_rate_limit_maps_through_mux(self, mux_loopback):
        setting, _server, client = mux_loopback
        setting.gateway.set_rate_limit(1.0, burst=1.0)
        try:
            with pytest.raises(RateLimitedError):
                for _ in range(5):
                    client.reencrypt(_reencrypt_requests(setting, 1)[0])
        finally:
            setting.gateway.set_rate_limit(None)

    def test_resize_and_export_over_mux(self, mux_loopback):
        setting, _server, client = mux_loopback
        total = setting.gateway.key_count()
        report = client.resize(5)
        assert report.new_shard_count == 5
        assert setting.gateway.key_count() == total
        assert len(client.list_keys()) == total

    def test_unreachable_mux_server_is_wire_transport_error(self, group):
        client = MuxRemoteGateway("mux://127.0.0.1:9", group, timeout=0.5)
        with pytest.raises(WireTransportError):
            client.snapshot()
        client.close()

    def test_url_validation(self, group):
        with pytest.raises(ValueError, match="mux"):
            MuxRemoteGateway("http://127.0.0.1:80", group)
        with pytest.raises(ValueError, match="explicit port"):
            MuxRemoteGateway("mux://127.0.0.1", group)


class TestConnectGateway:
    def test_url_scheme_dispatch(self, group):
        mux = connect_gateway("mux://127.0.0.1:9", group, pool_size=8)
        assert isinstance(mux, MuxRemoteGateway)
        pooled = connect_gateway("http://127.0.0.1:9", group, pool_size=8)
        assert isinstance(pooled, RemoteGateway)
        assert not isinstance(pooled, MuxRemoteGateway)
        assert pooled.pool_size == 8
        with pytest.raises(ValueError):
            connect_gateway("ftp://127.0.0.1:9", group)


# ------------------------------------------------------------- multiplexing


class TestMultiplexing:
    def test_many_threads_one_socket(self, mux_loopback):
        setting, server, client = mux_loopback
        request = _reencrypt_requests(setting, 1)[0]
        client.reencrypt(request)  # negotiate before the stampede
        errors = []

        def worker():
            try:
                for _ in range(3):
                    client.reencrypt(request)
            except Exception as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(32)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert client.connections_opened == 1
        # The server decrements its gauge a beat after the response hits
        # the wire; give the event loop a moment to drain.
        deadline = time.monotonic() + 5.0
        stats = server.stats.snapshot()
        while stats.streams_in_flight and time.monotonic() < deadline:
            time.sleep(0.01)
            stats = server.stats.snapshot()
        assert stats.connections_total == 1
        assert stats.streams_total >= 97  # negotiation + warm-up + 32 * 3
        assert stats.streams_in_flight == 0
        assert client.peak_streams <= server.max_streams

    @settings(max_examples=5, deadline=None)
    @given(n_threads=st.integers(min_value=2, max_value=12))
    def test_stream_gauges_bounded_under_concurrency(self, mux_loopback, n_threads):
        _setting, _server, client = mux_loopback
        # The fixture (and its gauges) persists across hypothesis
        # examples; reset the high-water mark so each example's bound
        # reflects only its own thread count.
        client.peak_streams = 0
        results = []

        def worker():
            results.append(client.snapshot().requests_total)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == n_threads
        assert client.connections_opened == 1
        assert client.streams_in_flight == 0
        assert 0 < client.peak_streams <= n_threads + 1


# --------------------------------------------------------------- auth + TLS


@pytest.fixture()
def mux_auth_loopback(tmp_path):
    store = TenantCredentialStore.initialize(tmp_path / "tenants.json")
    store.add("clinic-a", secret="a" * 64)
    setting = _build()
    events = EventLog()
    server = AsyncGatewayServer(
        setting.gateway,
        setting.group,
        event_log=events,
        auth=RequestVerifier(store),
    )
    with server:
        yield setting, server, events
    setting.gateway.close()


class TestMuxAuth:
    def test_signed_mux_client_succeeds(self, mux_auth_loopback):
        setting, server, _events = mux_auth_loopback
        client = MuxRemoteGateway(
            server.url, setting.group, tenant="clinic-a", secret="a" * 64
        )
        response = client.reencrypt(_reencrypt_requests(setting, 1)[0])
        assert response.shard
        # GET observability is signature-gated; the signing client passes.
        assert client.snapshot().served >= 1
        assert client.events_tail(1)
        client.close()

    def test_unsigned_mux_request_rejected(self, mux_auth_loopback):
        setting, server, events = mux_auth_loopback
        client = MuxRemoteGateway(server.url, setting.group)
        with pytest.raises(AuthRequiredError):
            client.reencrypt(_reencrypt_requests(setting, 1)[0])
        # GET observability decodes through the taxonomy on the snapshot
        # path; events_tail surfaces the non-200 as a transport error.
        with pytest.raises(AuthRequiredError):
            client.snapshot()
        with pytest.raises(WireTransportError):
            client.events_tail()
        client.close()
        codes = [e["code"] for e in events.tail() if e["kind"] == "auth-failure"]
        assert "auth-required" in codes

    def test_bad_signature_rejected_over_mux(self, mux_auth_loopback):
        setting, server, _events = mux_auth_loopback
        client = MuxRemoteGateway(
            server.url, setting.group, tenant="clinic-a", secret="wrong"
        )
        with pytest.raises(BadSignatureError):
            client.reencrypt(_reencrypt_requests(setting, 1)[0])
        client.close()

    def test_auth_parity_with_threaded_stack(self, mux_auth_loopback, tmp_path):
        """The same signed request stream decodes identically on both stacks."""
        setting_mux, server, _events = mux_auth_loopback
        store = TenantCredentialStore.initialize(tmp_path / "ref-tenants.json")
        store.add("clinic-a", secret="a" * 64)
        setting_ref = _build()
        with GatewayHttpServer(
            setting_ref.gateway, setting_ref.group, auth=RequestVerifier(store)
        ) as reference:
            ref_client = RemoteGateway(
                reference.url, setting_ref.group, tenant="clinic-a", secret="a" * 64
            )
            mux_client = MuxRemoteGateway(
                server.url, setting_mux.group, tenant="clinic-a", secret="a" * 64
            )
            ref = ref_client.reencrypt(_reencrypt_requests(setting_ref, 1)[0])
            mux = mux_client.reencrypt(_reencrypt_requests(setting_mux, 1)[0])
            assert serialize_reencrypted(
                setting_ref.group, ref.ciphertext
            ) == serialize_reencrypted(setting_mux.group, mux.ciphertext)
            ref_client.close()
            mux_client.close()
        setting_ref.gateway.close()


@pytest.fixture(scope="module")
def dev_cert(tmp_path_factory):
    out = tmp_path_factory.mktemp("aio-tls")
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import gen_dev_cert
    finally:
        sys.path.pop(0)
    return gen_dev_cert.generate(out)


class TestMuxTls:
    def test_muxs_and_https_round_trip_with_pinned_ca(self, dev_cert):
        cert_path, key_path = dev_cert
        setting = _build()
        server = AsyncGatewayServer(
            setting.gateway,
            setting.group,
            tls=server_context(str(cert_path), str(key_path)),
        )
        with server:
            assert server.url.startswith("muxs://")
            assert server.http_url.startswith("https://")
            mux_client = MuxRemoteGateway(
                server.url, setting.group, tls_ca=str(cert_path)
            )
            http_client = RemoteGateway(
                server.http_url, setting.group, tls_ca=str(cert_path)
            )
            request = _reencrypt_requests(setting, 1)[0]
            over_mux = mux_client.reencrypt(request)
            over_https = http_client.reencrypt(request)
            assert serialize_reencrypted(
                setting.group, over_mux.ciphertext
            ) == serialize_reencrypted(setting.group, over_https.ciphertext)
            mux_client.close()
            http_client.close()
        setting.gateway.close()

    def test_wrong_ca_fails_clean_over_muxs(self, dev_cert, tmp_path):
        cert_path, key_path = dev_cert
        wrong_ca = tmp_path / "wrong-ca.pem"
        import gen_dev_cert

        other_cert, _other_key = gen_dev_cert.generate(tmp_path)
        wrong_ca.write_bytes(other_cert.read_bytes())
        setting = _build()
        server = AsyncGatewayServer(
            setting.gateway,
            setting.group,
            tls=server_context(str(cert_path), str(key_path)),
        )
        with server:
            client = MuxRemoteGateway(
                server.url, setting.group, tls_ca=str(wrong_ca), timeout=5.0
            )
            with pytest.raises(WireTransportError):
                client.scheme_info()
            client.close()
        setting.gateway.close()


# ----------------------------------------------------------------- fleet


class TestAsyncFleet:
    def test_async_workers_speak_mux(self):
        from repro.service.fleet import FleetSupervisor

        supervisor = FleetSupervisor(
            "tipre/v1", shard_count=1, group_name="TOY", async_workers=True
        )
        try:
            name = supervisor.names[0]
            assert supervisor.url_of(name).startswith("mux://")
            client = supervisor.client(name)
            assert isinstance(client, MuxRemoteGateway)
            assert [e["scheme"] for e in client.schemes_info()] == ["tipre/v1"]
        finally:
            supervisor.close()
