"""Per-tenant admission policy on top of the credential store.

The gateway's built-in limiter is one global ``TokenBucket`` with the
same rate for every tenant; this engine replaces those hard-coded
defaults with the limits each tenant's credential declares (rate, burst,
total-request quota, max batch size).  The contract with
:meth:`ReEncryptionGateway._admit` is three-valued:

* the tenant has per-tenant limits and they admit -> ``True`` (the
  global limiter is skipped — a tenant with its own budget is never
  charged against the shared one);
* the limits deny -> :class:`RateLimitedError` /
  :class:`QuotaExceededError` (same taxonomy the wire already maps);
* the tenant is unknown or declares no limits -> ``False`` and the
  gateway falls through to its global bucket, so anonymous mode and
  unconfigured tenants behave exactly as before.
"""

from __future__ import annotations

import threading
import time

from repro.service.gateway import QuotaExceededError, RateLimitedError, TokenBucket

__all__ = ["PolicyEngine"]


class PolicyEngine:
    """Admission decisions driven by per-tenant credentials."""

    def __init__(self, store, clock=time.monotonic):
        self.store = store
        self._clock = clock
        self._lock = threading.Lock()
        # tenant -> (rate, burst, bucket); rebuilt when the credential's
        # limits change (e.g. the config file was edited under us).
        self._buckets: dict[str, tuple[float, float, TokenBucket]] = {}
        self._spent: dict[str, int] = {}

    def _bucket(self, tenant: str, rate_per_s: float, burst: float) -> TokenBucket:
        with self._lock:
            cached = self._buckets.get(tenant)
            if cached is not None and cached[0] == rate_per_s and cached[1] == burst:
                return cached[2]
            bucket = TokenBucket(rate_per_s, burst, clock=self._clock)
            self._buckets[tenant] = (rate_per_s, burst, bucket)
            return bucket

    def admit(self, tenant: str, op: str, cost: float = 1.0) -> bool:
        """Apply the tenant's own limits; see the module docstring contract."""
        credential = self.store.lookup(tenant)
        if credential is None:
            return False
        decided = False
        if credential.quota is not None:
            decided = True
            with self._lock:
                spent = self._spent.get(tenant, 0)
                if spent + cost > credential.quota:
                    raise QuotaExceededError(
                        "tenant %r exhausted its quota of %d requests"
                        % (tenant, credential.quota)
                    )
                self._spent[tenant] = spent + int(cost)
        if credential.rate_per_s is not None:
            decided = True
            burst = credential.burst if credential.burst is not None else credential.rate_per_s
            if not self._bucket(tenant, credential.rate_per_s, burst).allow(tenant, cost):
                raise RateLimitedError(
                    "tenant %r exceeded its configured rate of %.3g/s"
                    % (tenant, credential.rate_per_s)
                )
        return decided

    def max_batch(self, tenant: str) -> int | None:
        credential = self.store.lookup(tenant)
        return credential.max_batch if credential is not None else None

    def quota_spent(self, tenant: str) -> int:
        with self._lock:
            return self._spent.get(tenant, 0)
