"""A uniform adapter interface over every PRE scheme for the E2/E4 benches.

Historically each adapter re-implemented one scheme's lifecycle by hand;
since the backend API landed (:mod:`repro.core.api`) the adapter is a
*thin shim* over the registered :class:`~repro.core.api.PreBackend` —
the very same objects the production gateway serves — normalised to the
benchmark's five-step lifecycle:

    setup -> encrypt -> rekey -> reencrypt -> decrypt (both sides)

and the property matrix of experiment E4 (the Ateniese et al. taxonomy
the paper cites) is read straight off each backend's declared
:class:`~repro.core.api.SchemeCapabilities`.  Benchmarks iterate
``all_adapters(group)``, so *registering a backend automatically adds a
row to every comparison table* — and every scheme the tables compare is
the one the gateway actually runs.
"""

from __future__ import annotations

from typing import Any

from repro.baselines.backends import (
    AfghBackend,
    BbsBackend,
    DodisIvanBackend,
    GreenAtenieseBackend,
    MatsuoBackend,
)
from repro.core.api import PROPERTY_NAMES, PreBackend
from repro.core.tipre_backend import TipreBackend
from repro.math.drbg import RandomSource
from repro.pairing.group import PairingGroup

__all__ = ["PreAdapter", "all_adapters", "PROPERTY_NAMES"]

DELEGATOR_DOMAIN = "KGC1"
DELEGATEE_DOMAIN = "KGC2"
DELEGATOR = "delegator"
DELEGATEE = "delegatee"


class PreAdapter:
    """One registered backend, normalised to the shared bench lifecycle.

    The two parties are ``delegator`` (KGC1) and ``delegatee`` (KGC2 —
    collapsed onto KGC1 for single-authority schemes), and every
    encryption uses one fixed type label, mirroring the original
    hand-written adapters.
    """

    TYPE = "benchmark-type"

    def __init__(self, group: PairingGroup, backend_class: type[PreBackend] = TipreBackend):
        self.group = group
        self.backend_class = backend_class
        self.name = backend_class.display_name
        self.properties = backend_class.capabilities.properties()
        self.backend: PreBackend | None = None

    @property
    def _delegatee_domain(self) -> str:
        return DELEGATOR_DOMAIN if self.backend_class.single_authority else DELEGATEE_DOMAIN

    def setup(self, rng: RandomSource) -> None:
        """Generate all global parameters and party keys."""
        self.backend = self.backend_class(self.group)
        self.backend.setup(rng)
        self.backend.create_party(DELEGATOR_DOMAIN, DELEGATOR, rng)
        self.backend.create_party(self._delegatee_domain, DELEGATEE, rng)

    def sample_message(self, rng: RandomSource) -> Any:
        """A uniform plaintext from this scheme's message space."""
        return self.backend.sample_message(rng)

    def encrypt(self, message: Any, rng: RandomSource) -> Any:
        """Encrypt for the delegator."""
        return self.backend.encrypt(DELEGATOR_DOMAIN, DELEGATOR, message, self.TYPE, rng)

    def rekey(self, rng: RandomSource) -> Any:
        """Produce the delegator->delegatee re-encryption key."""
        return self.backend.rekey(
            DELEGATOR_DOMAIN, DELEGATOR, self._delegatee_domain, DELEGATEE, self.TYPE, rng
        )

    def reencrypt(self, ciphertext: Any, rk: Any) -> Any:
        """Proxy transformation."""
        return self.backend.reencrypt(ciphertext, rk)

    def decrypt_original(self, ciphertext: Any) -> Any:
        """Delegator-side decryption."""
        return self.backend.decrypt_original(ciphertext, DELEGATOR_DOMAIN, DELEGATOR)

    def decrypt_reencrypted(self, ciphertext: Any) -> Any:
        """Delegatee-side decryption."""
        return self.backend.decrypt_reencrypted(ciphertext, self._delegatee_domain, DELEGATEE)

    def ciphertext_components(self, ciphertext: Any) -> int:
        """Number of group-element components (for the size table)."""
        return self.backend.ciphertext_components(ciphertext)


def all_adapters(group: PairingGroup) -> list[PreAdapter]:
    """Every scheme adapter, the paper's scheme first."""
    return [
        PreAdapter(group, backend_class)
        for backend_class in (
            TipreBackend,
            GreenAtenieseBackend,
            AfghBackend,
            BbsBackend,
            DodisIvanBackend,
            MatsuoBackend,
        )
    ]
