"""E2 — the paper's scheme vs every baseline PRE scheme.

Same message load through the shared adapter lifecycle on SS256:
encryption, re-encryption key generation, proxy transformation and
delegatee decryption, plus the ciphertext/key size table.

Expected shape: the paper's scheme costs within a small constant of
Green--Ateniese (its closest relative — the delta is one GT exponentiation
for the type binding), both cost more than raw ElGamal-based schemes
(pairings vs G1 multiplications), and only the paper's scheme offers
per-type delegation.
"""

from __future__ import annotations

import pytest

from repro.baselines.interface import all_adapters
from repro.bench.report import print_table
from repro.core.scheme import TypeAndIdentityPre
from repro.math.drbg import HmacDrbg
from repro.pairing.group import PairingGroup

_ADAPTER_IDS = [a.name for a in all_adapters(PairingGroup.shared("SS256"))]


def _prepared(name: str):
    group = PairingGroup.shared("SS256")
    adapter = next(a for a in all_adapters(group) if a.name == name)
    rng = HmacDrbg("e2-%s" % name)
    adapter.setup(rng)
    message = adapter.sample_message(rng)
    ciphertext = adapter.encrypt(message, rng)
    rekey = adapter.rekey(rng)
    transformed = adapter.reencrypt(ciphertext, rekey)
    return adapter, rng, message, ciphertext, rekey, transformed


@pytest.mark.parametrize("name", _ADAPTER_IDS)
def test_encrypt(benchmark, name):
    adapter, rng, message, *_ = _prepared(name)
    benchmark.group = "E2 encrypt"
    benchmark.pedantic(lambda: adapter.encrypt(message, rng), rounds=5, iterations=1)


@pytest.mark.parametrize("name", _ADAPTER_IDS)
def test_reencrypt(benchmark, name):
    adapter, _, _, ciphertext, rekey, _ = _prepared(name)
    benchmark.group = "E2 re-encrypt"
    benchmark.pedantic(lambda: adapter.reencrypt(ciphertext, rekey), rounds=5, iterations=1)


@pytest.mark.parametrize("name", _ADAPTER_IDS)
def test_decrypt_reencrypted(benchmark, name):
    adapter, _, message, _, _, transformed = _prepared(name)
    benchmark.group = "E2 re-decrypt"
    result = benchmark.pedantic(
        lambda: adapter.decrypt_reencrypted(transformed), rounds=5, iterations=1
    )
    assert result == message


def test_e2_size_report(benchmark):
    """Ciphertext / proxy-key size table (bytes on the wire, SS256)."""
    group = PairingGroup.shared("SS256")
    g1, gt = group.g1_element_size(), group.gt_element_size()
    scheme = TypeAndIdentityPre(group)
    rows = [
        ["type-and-identity (this paper)", str(scheme.ciphertext_size()),
         str(scheme.reencrypted_size()), str(scheme.proxy_key_size())],
        ["Green-Ateniese IBP1", str(g1 + gt), str(2 * (g1 + gt)), str(2 * g1 + gt)],
        ["AFGH (2nd level)", str(g1 + gt), str(2 * gt), str(g1)],
        ["BBS", str(2 * g1), str(2 * g1), str(group.scalar_size())],
        ["Dodis-Ivan", str(2 * g1), str(2 * g1), str(2 * group.scalar_size())],
        ["Matsuo-style (BB1)", str(2 * g1 + gt), str(g1 + 3 * gt + g1),
         str(2 * g1 + (2 * g1 + gt))],
    ]
    print_table(
        "E2: serialized sizes on SS256 (bytes): original ct / re-encrypted ct / proxy key",
        ["scheme", "ciphertext", "re-encrypted", "proxy key"],
        rows,
    )
    benchmark.pedantic(lambda: scheme.ciphertext_size(), rounds=3, iterations=1)
