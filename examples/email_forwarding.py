"""Email forwarding with type-scoped delegation (the intro's other use case).

The paper's introduction lists email forwarding among classic PRE
applications.  With *types*, a vacationing manager can forward only
work-related mail to a deputy while private mail stays sealed — one key
pair, one untrusted mail server acting as the proxy, real byte payloads
via the hybrid layer.

Run:  python examples/email_forwarding.py
"""

from repro import HmacDrbg, HybridPre, KgcRegistry, PairingGroup
from repro.core import ProxyService

rng = HmacDrbg("email-forwarding")
group = PairingGroup("SS256")

registry = KgcRegistry(group, rng)
corp = registry.create("corp-kgc")
partner = registry.create("partner-kgc")

manager = corp.extract("manager@corp.example")
deputy = partner.extract("deputy@partner.example")

hybrid = HybridPre(group)
mailserver = ProxyService(hybrid.scheme, name="mailserver")

# Incoming mail is filed by folder; the folder is the ciphertext *type*.
inbox = [
    ("work", b"Subject: Q3 budget review\n\nNumbers attached."),
    ("work", b"Subject: customer escalation\n\nPlease respond today."),
    ("private", b"Subject: dentist appointment\n\nTuesday 10:00."),
]
stored = [
    (folder, hybrid.encrypt(corp.params, manager, body, folder, rng))
    for folder, body in inbox
]
print("mail server stores %d encrypted messages" % len(stored))

# Vacation: forward the *work* folder only. One local Pextract, no
# interaction with the deputy or either KGC.
mailserver.install_key(
    hybrid.scheme.pextract(manager, "deputy@partner.example", "work", partner.params, rng)
)

forwarded = blocked = 0
for folder, ciphertext in stored:
    if mailserver.can_reencrypt(ciphertext.kem, "partner-kgc", "deputy@partner.example"):
        key = mailserver.get_key(ciphertext.kem, "partner-kgc", "deputy@partner.example")
        message = hybrid.decrypt_reencrypted(hybrid.reencrypt(ciphertext, key), deputy)
        print("forwarded to deputy: %s" % message.decode().splitlines()[0])
        forwarded += 1
    else:
        print("kept sealed (%s folder)" % folder)
        blocked += 1

assert forwarded == 2 and blocked == 1

# The manager reads everything as usual.
for folder, ciphertext in stored:
    hybrid.decrypt(ciphertext, manager)
print("manager still reads all %d messages with the single key pair" % len(stored))

# Vacation over: revoke.
mailserver.revoke_key(
    "corp-kgc", "manager@corp.example", "partner-kgc", "deputy@partner.example", "work"
)
assert not mailserver.can_reencrypt(stored[0][1].kem, "partner-kgc", "deputy@partner.example")
print("delegation revoked — the deputy is locked out again")
