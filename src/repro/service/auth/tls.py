"""TLS contexts for the gateway wire, on stdlib ``ssl`` only.

Two helpers, one per side.  The server loads a cert/key pair
(``serve --tls-cert/--tls-key``); the client either trusts the system
store (bare ``https://`` URLs) or pins a specific CA file
(``--tls-ca``), which is how tests, CI and the fleet's shard links trust
the self-signed development certificate from ``tools/gen_dev_cert.py``
without touching system trust.  Hostname checking stays on in both
client modes — the dev certificate carries ``DNS:localhost`` and
``IP:127.0.0.1`` SANs so loopback deployments verify cleanly.
"""

from __future__ import annotations

import ssl

__all__ = ["server_context", "client_context"]


def server_context(certfile: str, keyfile: str | None = None) -> ssl.SSLContext:
    """A server-side context serving ``certfile`` (+ ``keyfile``)."""
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.minimum_version = ssl.TLSVersion.TLSv1_2
    context.load_cert_chain(certfile, keyfile)
    return context


def client_context(cafile: str | None = None) -> ssl.SSLContext:
    """A verifying client-side context, optionally pinned to one CA file."""
    if cafile is None:
        return ssl.create_default_context()
    context = ssl.create_default_context(cafile=cafile)
    context.check_hostname = True
    context.verify_mode = ssl.CERT_REQUIRED
    return context
