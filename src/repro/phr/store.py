"""Encrypted PHR storage.

The store is the paper's semi-trusted database: it holds only *serialized
ciphertext bytes* and routing metadata (patient, category, entry id).  It
never receives keys or plaintext objects — the type system here mirrors
the trust boundary, which is why the interface traffics in ``bytes``
rather than ciphertext dataclasses.

Two implementations share the interface: the in-memory
:class:`EncryptedPhrStore` (tests, benchmarks) and the durable
:class:`FilePhrStore` (one blob file per record plus a JSON index), which
a :class:`~repro.phr.actors.CategoryProxy` can use unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "StoredRecord",
    "EncryptedPhrStore",
    "FilePhrStore",
    "EntryNotFoundError",
    "StoreSchemeMismatchError",
]


class EntryNotFoundError(KeyError):
    """No stored ciphertext matches the requested entry."""


class StoreSchemeMismatchError(ValueError):
    """The on-disk store was sealed by a different scheme's backend.

    Ciphertext blobs are opaque bytes, so nothing else would catch a
    ``green/ateniese-fo`` fleet opening a ``tipre/v1`` store — the
    mismatch would surface only later, as undecodable garbage handed to
    a delegatee.  The index header stamps the sealing scheme so the
    open fails immediately and namedly instead.
    """


@dataclass(frozen=True)
class StoredRecord:
    """One opaque ciphertext plus its routing metadata."""

    patient: str
    category: str
    entry_id: str
    blob: bytes


@dataclass
class EncryptedPhrStore:
    """An in-memory ciphertext store keyed by (patient, entry_id)."""

    name: str = "phr-store"
    _records: dict[tuple[str, str], StoredRecord] = field(default_factory=dict)

    def put(self, patient: str, category: str, entry_id: str, blob: bytes) -> None:
        """Store (or overwrite) one ciphertext."""
        if not isinstance(blob, bytes):
            raise TypeError("the store accepts only serialized bytes")
        self._records[(patient, entry_id)] = StoredRecord(
            patient=patient, category=category, entry_id=entry_id, blob=blob
        )

    def get(self, patient: str, entry_id: str) -> StoredRecord:
        record = self._records.get((patient, entry_id))
        if record is None:
            raise EntryNotFoundError("no entry %r for patient %r" % (entry_id, patient))
        return record

    def delete(self, patient: str, entry_id: str) -> bool:
        return self._records.pop((patient, entry_id), None) is not None

    def entries_for(self, patient: str, category: str | None = None) -> list[StoredRecord]:
        """All records of a patient, optionally filtered by category."""
        return sorted(
            (
                record
                for record in self._records.values()
                if record.patient == patient
                and (category is None or record.category == category)
            ),
            key=lambda record: record.entry_id,
        )

    def patients(self) -> list[str]:
        return sorted({record.patient for record in self._records.values()})

    def record_count(self) -> int:
        return len(self._records)

    def size_bytes(self) -> int:
        """Total ciphertext bytes held (for the E3/E5 storage accounting)."""
        return sum(len(record.blob) for record in self._records.values())


class FilePhrStore:
    """A durable ciphertext store: one blob file per record + a JSON index.

    Layout under ``root``::

        index.json                   {"version": 3,
                                      "scheme": "tipre/v1" | None,
                                      "entries": {"patient|entry_id":
                                                  {"category": ..., "size": ...}}}
        blobs/<patient>/<entry_id>.bin

    The index is rewritten atomically-enough for a research store (write
    then rename).  Blob sizes live in the index so ``size_bytes`` never
    stats the filesystem, and an in-memory per-patient map makes
    ``entries_for`` read only the blobs it returns instead of scanning
    every index key.

    ``scheme_id`` seals the store to one scheme: blobs are opaque bytes,
    so without the stamp a store written by one backend would open
    cleanly under another and only fail much later, on deserialization.
    Passing a scheme id stamps new stores and verifies existing ones
    (raising :class:`StoreSchemeMismatchError` on a cross-scheme open);
    passing ``None`` adopts whatever the store already records.

    Older indexes migrate in place on open: version 1 (a flat
    ``{"patient|entry_id": "category"}`` map) stats each blob once;
    version 2 (no ``scheme`` field) adopts the opener's scheme id.  The
    interface matches :class:`EncryptedPhrStore`, so proxies work with
    either backend.
    """

    INDEX_VERSION = 3

    def __init__(
        self,
        root: str | Path,
        name: str = "phr-file-store",
        scheme_id: str | None = None,
    ):
        self.name = name
        self.scheme_id = scheme_id
        self._root = Path(root)
        self._blob_dir = self._root / "blobs"
        self._blob_dir.mkdir(parents=True, exist_ok=True)
        self._index_path = self._root / "index.json"
        # key -> {"category": str, "size": int}
        self._index: dict[str, dict] = {}
        # patient -> {entry_id -> index key}; rebuilt on open, maintained on writes.
        self._by_patient: dict[str, dict[str, str]] = {}
        if self._index_path.exists():
            self._load_index(json.loads(self._index_path.read_text()))

    def _load_index(self, raw: dict) -> None:
        version = raw.get("version")
        if version == self.INDEX_VERSION:
            stored_scheme = raw.get("scheme")
            if stored_scheme is not None and self.scheme_id is not None:
                if stored_scheme != self.scheme_id:
                    raise StoreSchemeMismatchError(
                        "store %s was sealed by scheme %r; this backend speaks %r"
                        % (self._root, stored_scheme, self.scheme_id)
                    )
            elif stored_scheme is not None:
                # Opener did not declare a scheme: adopt the stored one.
                self.scheme_id = stored_scheme
            elif self.scheme_id is not None:
                # Unsealed store opened by a declared backend: seal it now.
                self._index = raw["entries"]
                self._rebuild_patient_map()
                self._flush_index()
                return
            self._index = raw["entries"]
        elif version == 2:
            # Version-2 had entries-with-sizes but no scheme stamp; adopt
            # the opener's scheme (or stay unsealed) and rewrite in place.
            self._index = raw["entries"]
            self._rebuild_patient_map()
            self._flush_index()
            return
        else:
            # Version-1 flat format: migrate, statting each blob exactly once.
            self._index = {
                key: {"category": category, "size": self._blob_path(*key.split("|", 1)).stat().st_size}
                for key, category in raw.items()
            }
            self._rebuild_patient_map()
            self._flush_index()
            return
        self._rebuild_patient_map()

    def _rebuild_patient_map(self) -> None:
        self._by_patient = {}
        for key in self._index:
            patient, entry_id = key.split("|", 1)
            self._by_patient.setdefault(patient, {})[entry_id] = key

    @staticmethod
    def _index_key(patient: str, entry_id: str) -> str:
        if "|" in patient:
            raise ValueError("patient names must not contain '|'")
        return "%s|%s" % (patient, entry_id)

    def _blob_path(self, patient: str, entry_id: str) -> Path:
        # Entry ids come from our generator / callers; guard path traversal.
        safe_patient = patient.replace("/", "_").replace("..", "_")
        safe_entry = entry_id.replace("/", "_").replace("..", "_")
        return self._blob_dir / safe_patient / ("%s.bin" % safe_entry)

    def _flush_index(self) -> None:
        tmp = self._index_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(
                {
                    "version": self.INDEX_VERSION,
                    "scheme": self.scheme_id,
                    "entries": self._index,
                },
                sort_keys=True,
            )
        )
        tmp.replace(self._index_path)

    def put(self, patient: str, category: str, entry_id: str, blob: bytes) -> None:
        if not isinstance(blob, bytes):
            raise TypeError("the store accepts only serialized bytes")
        key = self._index_key(patient, entry_id)
        path = self._blob_path(patient, entry_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(blob)
        self._index[key] = {"category": category, "size": len(blob)}
        self._by_patient.setdefault(patient, {})[entry_id] = key
        self._flush_index()

    def get(self, patient: str, entry_id: str) -> StoredRecord:
        meta = self._index.get(self._index_key(patient, entry_id))
        if meta is None:
            raise EntryNotFoundError("no entry %r for patient %r" % (entry_id, patient))
        blob = self._blob_path(patient, entry_id).read_bytes()
        return StoredRecord(
            patient=patient, category=meta["category"], entry_id=entry_id, blob=blob
        )

    def delete(self, patient: str, entry_id: str) -> bool:
        key = self._index_key(patient, entry_id)
        if key not in self._index:
            return False
        del self._index[key]
        patient_entries = self._by_patient.get(patient, {})
        patient_entries.pop(entry_id, None)
        if not patient_entries:
            self._by_patient.pop(patient, None)
        self._flush_index()
        self._blob_path(patient, entry_id).unlink(missing_ok=True)
        return True

    def entries_for(self, patient: str, category: str | None = None) -> list[StoredRecord]:
        records = []
        for entry_id, key in self._by_patient.get(patient, {}).items():
            if category is not None and self._index[key]["category"] != category:
                continue
            records.append(self.get(patient, entry_id))
        return sorted(records, key=lambda record: record.entry_id)

    def headers_for(
        self, patient: str, category: str | None = None
    ) -> list[tuple[str, str, int]]:
        """(entry_id, category, size) rows for a patient — no blob reads."""
        return sorted(
            (entry_id, self._index[key]["category"], self._index[key]["size"])
            for entry_id, key in self._by_patient.get(patient, {}).items()
            if category is None or self._index[key]["category"] == category
        )

    def patients(self) -> list[str]:
        return sorted(self._by_patient)

    def record_count(self) -> int:
        return len(self._index)

    def size_bytes(self) -> int:
        return sum(meta["size"] for meta in self._index.values())
