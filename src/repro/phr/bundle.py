"""FHIR-flavoured bundle import/export for PHR entries.

Provider systems exchange health records as JSON bundles (FHIR's
``Bundle`` resource being the de-facto shape).  This module maps a
minimal, FHIR-inspired bundle format onto :class:`~repro.phr.records.PhrEntry`
objects, so a hospital export can be ingested straight into the encrypted
store and a granted requester can re-export what they were allowed to
read.

The mapping is intentionally small (this is a crypto reproduction, not a
FHIR engine): each bundle entry carries a ``resourceType`` mapped to our
category taxonomy, an id, an author, a date and a free-form payload.
"""

from __future__ import annotations

import json

from repro.phr.records import PhrEntry

__all__ = ["export_bundle", "import_bundle", "RESOURCE_TYPE_BY_CATEGORY", "BundleError"]


class BundleError(ValueError):
    """Malformed bundle document."""


RESOURCE_TYPE_BY_CATEGORY = {
    "illness-history": "Condition",
    "medication": "MedicationStatement",
    "lab-results": "Observation",
    "vaccinations": "Immunization",
    "allergies": "AllergyIntolerance",
    "vitals": "Observation.vital-signs",
    "food-statistics": "NutritionIntake",
    "emergency-profile": "Patient.emergency",
}

_CATEGORY_BY_RESOURCE_TYPE = {v: k for k, v in RESOURCE_TYPE_BY_CATEGORY.items()}


def export_bundle(patient: str, entries: list[PhrEntry]) -> str:
    """Serialise entries as a FHIR-flavoured JSON bundle."""
    resources = []
    for entry in entries:
        resource_type = RESOURCE_TYPE_BY_CATEGORY.get(entry.category)
        if resource_type is None:
            raise BundleError("category %r has no resource mapping" % entry.category)
        resources.append(
            {
                "resource": {
                    "resourceType": resource_type,
                    "id": entry.entry_id,
                    "subject": patient,
                    "recorder": entry.author,
                    "effectiveDateTime": entry.created_at,
                    "payload": entry.content,
                }
            }
        )
    bundle = {
        "resourceType": "Bundle",
        "type": "collection",
        "total": len(resources),
        "entry": resources,
    }
    return json.dumps(bundle, sort_keys=True, indent=2)


def import_bundle(document: str) -> tuple[str, list[PhrEntry]]:
    """Parse a bundle; returns ``(patient, entries)``.

    Raises :class:`BundleError` for structurally invalid documents or
    unknown resource types — never silently drops records.
    """
    try:
        bundle = json.loads(document)
    except json.JSONDecodeError as exc:
        raise BundleError("bundle is not valid JSON") from exc
    if bundle.get("resourceType") != "Bundle":
        raise BundleError("document is not a Bundle resource")
    raw_entries = bundle.get("entry")
    if not isinstance(raw_entries, list):
        raise BundleError("Bundle.entry must be a list")
    if bundle.get("total") != len(raw_entries):
        raise BundleError("Bundle.total disagrees with the entry count")

    patients = set()
    entries = []
    for wrapper in raw_entries:
        resource = wrapper.get("resource") if isinstance(wrapper, dict) else None
        if not isinstance(resource, dict):
            raise BundleError("every bundle entry needs a resource object")
        category = _CATEGORY_BY_RESOURCE_TYPE.get(resource.get("resourceType"))
        if category is None:
            raise BundleError("unknown resourceType %r" % resource.get("resourceType"))
        for field in ("id", "subject", "recorder", "effectiveDateTime"):
            if field not in resource:
                raise BundleError("resource missing %r" % field)
        patients.add(resource["subject"])
        entries.append(
            PhrEntry(
                entry_id=resource["id"],
                category=category,
                author=resource["recorder"],
                created_at=resource["effectiveDateTime"],
                content=resource.get("payload", {}),
            )
        )
    if len(patients) > 1:
        raise BundleError("bundle mixes records of multiple patients")
    patient = patients.pop() if patients else ""
    return patient, entries
