"""A self-contained gateway workload: build, drive, verify, report.

``repro-pre serve`` and the E9 benchmark both need the same thing — a
two-domain delegation setting, a shard fleet behind a gateway, and a
repeated-delegatee request stream — so it lives here once.  Everything is
seeded: two runs with the same arguments produce the same grants, the
same request sequence and the same cache behaviour.

Two families of entry points:

* :func:`build_setting` / :func:`run_demo` / :func:`run_remote_demo` —
  the original workload, hard-seeded to the paper's scheme (kept
  byte-stable for the E9/E10/E11 benchmarks);
* :func:`build_scheme_setting` / :func:`run_scheme_demo` /
  :func:`run_remote_scheme_demo` — the scheme-agnostic equivalents: the
  same shape of workload driven through any registered
  :class:`~repro.core.api.PreBackend`, locally or over the wire, with
  the same decrypt-and-compare verification.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.api import TIPRE_SCHEME_ID, PreBackend, create_backend
from repro.core.scheme import TypeAndIdentityPre
from repro.ibe.keys import IbePrivateKey
from repro.ibe.kgc import KgcRegistry
from repro.math.drbg import HmacDrbg
from repro.math.fields import Fp2Element
from repro.pairing.group import PairingGroup
from repro.service.gateway import (
    GrantRequest,
    RateLimitedError,
    ReEncryptionGateway,
    ReEncryptRequest,
)
from repro.service.metrics import MetricsSnapshot

__all__ = [
    "DemoSetting",
    "DemoReport",
    "SchemeDemoSetting",
    "build_setting",
    "run_demo",
    "run_remote_demo",
    "build_scheme_setting",
    "drive_scheme_requests",
    "resolve_remote_group",
    "run_scheme_demo",
    "run_remote_scheme_demo",
]

DELEGATOR_DOMAIN = "KGC1"
DELEGATEE_DOMAIN = "KGC2"


@dataclass
class DemoSetting:
    """A fully-granted delegation universe ready to serve requests."""

    group: PairingGroup
    scheme: TypeAndIdentityPre
    gateway: ReEncryptionGateway
    patients: list[str]
    delegatees: list[str]
    types: list[str]
    delegatee_keys: dict[str, IbePrivateKey]
    # (patient, type) -> list of (ciphertext, plaintext GT element)
    pool: dict[tuple[str, str], list[tuple[object, Fp2Element]]]


@dataclass(frozen=True)
class DemoReport:
    """What one driven workload did, ready for table rendering."""

    snapshot: MetricsSnapshot
    shard_count: int
    requests: int
    batch_size: int
    verified: int
    shard_keys: dict[str, int]
    workers: int = 0
    state_dir: str | None = None
    scheme_id: str = TIPRE_SCHEME_ID
    # The last request's trace id on a remote drive (fetchable via
    # ``repro-pre trace`` / GET /v1/trace/{id}); None for in-process runs.
    trace_id: str | None = None

    def rows(self) -> list[list[str]]:
        rows = [
            ["scheme", self.scheme_id],
            # A remote drive cannot see the fleet size; 0 means unknown.
            ["shards", str(self.shard_count) if self.shard_count else "-"],
            ["workers", str(self.workers) if self.workers else "sequential"],
            ["state dir", self.state_dir or "in-memory"],
            ["batch size", str(self.batch_size) if self.batch_size > 1 else "unbatched"],
            ["plaintexts verified", str(self.verified)],
            # Remote drives cannot see per-shard tables; show "-" then.
            ["keys per shard", " ".join(str(n) for n in self.shard_keys.values()) or "-"],
        ]
        if self.trace_id is not None:
            rows.append(["sample trace id", self.trace_id])
        rows.extend(self.snapshot.rows())
        return rows


def build_setting(
    group_name: str = "TOY",
    shard_count: int = 4,
    n_patients: int = 4,
    n_delegatees: int = 3,
    n_types: int = 3,
    ciphertexts_per_pair: int = 2,
    seed: str = "gateway-demo",
    rate_per_s: float | None = None,
    scheme: TypeAndIdentityPre | None = None,
    workers: int = 0,
    state_dir: str | None = None,
    group: PairingGroup | None = None,
) -> DemoSetting:
    """Stand up KGCs, users, grants and a ciphertext pool behind a gateway.

    ``group`` overrides the ``group_name`` lookup — the remote drivers
    pass the group a multi-scheme server actually hosts the scheme on
    (which may be a per-scheme derived group, not the shared base).
    """
    if group is None:
        group = scheme.group if scheme is not None else PairingGroup.shared(group_name)
    rng = HmacDrbg(seed)
    registry = KgcRegistry(group, rng)
    kgc1 = registry.create(DELEGATOR_DOMAIN)
    kgc2 = registry.create(DELEGATEE_DOMAIN)
    scheme = scheme or TypeAndIdentityPre(group)
    # The limiter is attached after the grant phase (below): the demo rate
    # limits the request stream, not its own setup.
    gateway = ReEncryptionGateway(
        scheme, shard_count=shard_count, workers=workers, state_dir=state_dir
    )

    patients = ["patient-%02d" % i for i in range(n_patients)]
    delegatees = ["reader-%02d" % i for i in range(n_delegatees)]
    types = ["type-%d" % i for i in range(n_types)]
    delegatee_keys = {name: kgc2.extract(name) for name in delegatees}

    pool: dict[tuple[str, str], list[tuple[object, Fp2Element]]] = {}
    for patient in patients:
        patient_key = kgc1.extract(patient)
        for type_label in types:
            for delegatee in delegatees:
                gateway.grant(
                    GrantRequest(
                        tenant=patient,
                        proxy_key=scheme.pextract(
                            patient_key, delegatee, type_label, kgc2.params, rng
                        ),
                    )
                )
            entries = pool.setdefault((patient, type_label), [])
            for _ in range(ciphertexts_per_pair):
                message = group.random_gt(rng)
                ciphertext = scheme.encrypt(kgc1.params, patient_key, message, type_label, rng)
                entries.append((ciphertext, message))
    if rate_per_s is not None:
        gateway.set_rate_limit(rate_per_s)
    return DemoSetting(
        group=group,
        scheme=scheme,
        gateway=gateway,
        patients=patients,
        delegatees=delegatees,
        types=types,
        delegatee_keys=delegatee_keys,
        pool=pool,
    )


def _drive_stream(
    setting,
    gateway,
    delegatee_domain: str,
    verify,
    n_requests: int,
    seed: str,
    batch_size: int,
    verify_every: int,
) -> int:
    """The shared seeded request loop behind both driver families.

    ``setting`` only needs ``patients``/``types``/``delegatees``/``pool``;
    ``verify(request, response, message)`` is the family-specific
    decrypt-and-compare (and must raise on mismatch).  The RNG draw
    order is part of the drivers' bit-stability contract — never reorder
    the four choices.
    """
    rng = HmacDrbg(seed)
    verified = 0
    pending: list[tuple[ReEncryptRequest, object]] = []

    def checked(request: ReEncryptRequest, response, message) -> None:
        nonlocal verified
        verify(request, response, message)
        verified += 1

    for i in range(n_requests):
        patient = rng.choice(setting.patients)
        type_label = rng.choice(setting.types)
        delegatee = rng.choice(setting.delegatees)
        ciphertext, message = rng.choice(setting.pool[(patient, type_label)])
        request = ReEncryptRequest(
            tenant=patient,
            ciphertext=ciphertext,
            delegatee_domain=delegatee_domain,
            delegatee=delegatee,
        )
        # A rate-limited request is a normal workload outcome: the gateway
        # already counted it; the stream moves on (a batch is dropped whole).
        if batch_size > 1:
            pending.append((request, message))
            if len(pending) >= batch_size:
                try:
                    responses = gateway.reencrypt_batch([r for r, _ in pending])
                except RateLimitedError:
                    responses = []
                for j, (response, (req, msg)) in enumerate(zip(responses, pending)):
                    if (i + j) % verify_every == 0:
                        checked(req, response, msg)
                pending.clear()
        else:
            try:
                response = gateway.reencrypt(request)
            except RateLimitedError:
                continue
            if i % verify_every == 0:
                checked(request, response, message)
    if pending:
        try:
            responses = gateway.reencrypt_batch([r for r, _ in pending])
        except RateLimitedError:
            responses = []
        for response, (req, msg) in zip(responses, pending):
            checked(req, response, msg)
        pending.clear()
    return verified


def _grant_all_remote(local_gateway: ReEncryptionGateway, remote) -> None:
    """Install every locally-built proxy key on a remote gateway.

    The server may rate-limit grants (a bare remote process has no
    setup-phase grace) — wait out the bucket instead of aborting.
    """
    for name in local_gateway.shard_names:
        for key in list(local_gateway.shard_named(name).table):
            request = GrantRequest(tenant="driver", proxy_key=key)
            for _attempt in range(200):
                try:
                    remote.grant(request)
                    break
                except RateLimitedError:
                    time.sleep(0.05)
            else:
                raise RateLimitedError(
                    "remote gateway rate limit never admitted the grant phase"
                )


def drive_requests(
    setting: DemoSetting,
    n_requests: int,
    seed: str = "gateway-requests",
    batch_size: int = 0,
    verify_every: int = 8,
    gateway=None,
) -> int:
    """Replay a seeded repeated-delegatee stream; returns verified count.

    Every ``verify_every``-th response is decrypted with the delegatee's
    key and compared to the stored plaintext — the end-to-end check that
    caching and batching never change what the delegatee recovers.

    ``gateway`` overrides the setting's own gateway: pass a
    :class:`~repro.service.wire.client.RemoteGateway` and the identical
    stream drives a remote process instead — same requests, same
    verification, which is exactly how the CLI's ``--connect`` mode and
    the E11 benchmark compare wire against in-process behaviour.
    """

    def verify(request: ReEncryptRequest, response, message: Fp2Element) -> None:
        recovered = setting.scheme.decrypt_reencrypted(
            response.ciphertext, setting.delegatee_keys[request.delegatee]
        )
        assert recovered == message, "gateway returned a wrong transformation"

    return _drive_stream(
        setting,
        gateway if gateway is not None else setting.gateway,
        DELEGATEE_DOMAIN,
        verify,
        n_requests,
        seed,
        batch_size,
        verify_every,
    )


def run_demo(
    group_name: str = "TOY",
    shard_count: int = 4,
    n_requests: int = 200,
    seed: str = "gateway-demo",
    batch_size: int = 0,
    rate_per_s: float | None = None,
    workers: int = 0,
    state_dir: str | None = None,
) -> DemoReport:
    """Build a setting, drive a request stream, return the rendered report.

    With ``state_dir`` the granted delegations land in durable per-shard
    logs, so a second ``serve`` run against the same directory starts
    with every key already installed.
    """
    setting = build_setting(
        group_name=group_name,
        shard_count=shard_count,
        seed=seed,
        rate_per_s=rate_per_s,
        workers=workers,
        state_dir=state_dir,
    )
    try:
        verified = drive_requests(
            setting, n_requests, seed=seed + "-requests", batch_size=batch_size
        )
        return DemoReport(
            snapshot=setting.gateway.snapshot(),
            shard_count=shard_count,
            requests=n_requests,
            batch_size=batch_size,
            verified=verified,
            shard_keys=setting.gateway.shard_key_counts(),
            workers=workers,
            state_dir=state_dir,
        )
    finally:
        setting.gateway.close()


def resolve_remote_group(
    url: str,
    scheme_id: str,
    base_name: str = "TOY",
    timeout: float = 10.0,
    tls_ca: str | None = None,
) -> PairingGroup:
    """The pairing group a remote server hosts ``scheme_id`` on.

    A multi-scheme server runs every hosted scheme on its own derived
    group (``"<BASE>:<scheme>"``) rather than the shared base; a
    single-scheme server keeps the shared base.  This probe reads the
    server's ``/v1/schemes`` document and returns the matching local
    group, so a ``--connect`` client builds its delegation universe on
    the parameters the server will actually accept.  A server that does
    not host the scheme (or cannot be probed) yields the shared base —
    the client's normal negotiation then raises the canonical error.
    """
    from repro.service.wire.aio_client import connect_gateway
    from repro.service.wire.client import WireTransportError

    base = PairingGroup.shared(base_name)
    try:
        probe = connect_gateway(
            url,
            base,
            timeout=timeout,
            negotiate=False,
            trace_requests=False,
            tls_ca=tls_ca,
        )
        try:
            entries = probe.schemes_info()
        finally:
            probe.close()
    except WireTransportError:
        return base
    derived_name = "%s:%s" % (base_name.upper(), scheme_id)
    for entry in entries:
        if not isinstance(entry, dict) or entry.get("scheme") != scheme_id:
            continue
        hosted_group = entry.get("group")
        if hosted_group == base.params.name:
            return base
        if hosted_group == derived_name:
            return PairingGroup.for_scheme(base_name, scheme_id)
        break
    return base


def run_remote_demo(
    url: str,
    group_name: str = "TOY",
    n_requests: int = 200,
    seed: str = "gateway-demo",
    batch_size: int = 0,
    pool_size: int = 1,
    tenant: str | None = None,
    secret: str | None = None,
    tls_ca: str | None = None,
    trace_requests: bool | float = True,
) -> DemoReport:
    """Drive a *remote* gateway over HTTP with the same seeded workload.

    The delegation universe is built locally (the "twin"), its proxy keys
    are granted to the remote fleet over the wire, and then the identical
    request stream of :func:`run_demo` is replayed through a
    :class:`~repro.service.wire.client.RemoteGateway` — with the same
    end-to-end decrypt-and-compare verification, which only passes if the
    remote process returns bit-identical transformations.  The server can
    be a bare ``repro-pre serve --http`` process: it needs no prior state,
    only the same pairing group.
    """
    from repro.service.wire.aio_client import connect_gateway

    group = resolve_remote_group(url, TIPRE_SCHEME_ID, group_name, tls_ca=tls_ca)
    setting = build_setting(group_name=group_name, seed=seed, group=group)
    try:
        with connect_gateway(
            url,
            setting.group,
            pool_size=pool_size,
            tenant=tenant,
            secret=secret,
            tls_ca=tls_ca,
            trace_requests=trace_requests,
        ) as remote:
            _grant_all_remote(setting.gateway, remote)
            verified = drive_requests(
                setting,
                n_requests,
                seed=seed + "-requests",
                batch_size=batch_size,
                gateway=remote,
            )
            last_trace = getattr(remote, "last_trace", None)
            snapshot = remote.snapshot()
        return DemoReport(
            snapshot=snapshot,
            shard_count=0,
            requests=n_requests,
            batch_size=batch_size,
            verified=verified,
            shard_keys={},
            state_dir=None,
            trace_id=last_trace.trace_id if last_trace is not None else None,
        )
    finally:
        setting.gateway.close()


# ------------------------------------------------- scheme-agnostic workload


@dataclass
class SchemeDemoSetting:
    """A fully-granted delegation universe over one registered backend.

    The backend holds every party's key material (the client side of the
    deployment); the gateway holds only proxy keys — exactly the trust
    split of the paper's semi-trusted proxy, for any scheme.
    """

    scheme_id: str
    backend: PreBackend
    gateway: ReEncryptionGateway
    patients: list[str]
    delegatees: list[str]
    types: list[str]
    delegator_domain: str
    delegatee_domain: str
    # (patient, type) -> list of (wrapped ciphertext, plaintext)
    pool: dict[tuple[str, str], list[tuple[object, object]]] = field(default_factory=dict)

    @property
    def group(self):
        return self.backend.group


def build_scheme_setting(
    scheme_id: str = TIPRE_SCHEME_ID,
    group_name: str = "TOY",
    shard_count: int = 4,
    n_patients: int = 4,
    n_delegatees: int = 3,
    n_types: int = 3,
    ciphertexts_per_pair: int = 2,
    seed: str = "gateway-demo",
    rate_per_s: float | None = None,
    workers: int = 0,
    state_dir: str | None = None,
    group: PairingGroup | None = None,
) -> SchemeDemoSetting:
    """Stand up parties, grants and a ciphertext pool for any backend.

    The same shape as :func:`build_setting` — patients delegating typed
    records to readers behind a sharded gateway — but every scheme
    operation goes through the registered backend, so the identical
    workload exercises ``tipre/v1`` and every baseline alike.  ``group``
    overrides the ``group_name`` lookup (see :func:`build_setting`).
    """
    if group is None:
        group = PairingGroup.shared(group_name)
    backend = create_backend(scheme_id, group)
    rng = HmacDrbg(seed)
    backend.setup(rng)
    delegator_domain = DELEGATOR_DOMAIN
    delegatee_domain = (
        delegator_domain if backend.single_authority else DELEGATEE_DOMAIN
    )
    gateway = ReEncryptionGateway(
        backend, shard_count=shard_count, workers=workers, state_dir=state_dir
    )

    patients = ["patient-%02d" % i for i in range(n_patients)]
    delegatees = ["reader-%02d" % i for i in range(n_delegatees)]
    types = ["type-%d" % i for i in range(n_types)]
    for patient in patients:
        backend.create_party(delegator_domain, patient, rng)
    for delegatee in delegatees:
        backend.create_party(delegatee_domain, delegatee, rng)

    setting = SchemeDemoSetting(
        scheme_id=scheme_id,
        backend=backend,
        gateway=gateway,
        patients=patients,
        delegatees=delegatees,
        types=types,
        delegator_domain=delegator_domain,
        delegatee_domain=delegatee_domain,
    )
    for patient in patients:
        for type_label in types:
            for delegatee in delegatees:
                gateway.grant(
                    GrantRequest(
                        tenant=patient,
                        proxy_key=backend.rekey(
                            delegator_domain,
                            patient,
                            delegatee_domain,
                            delegatee,
                            type_label,
                            rng,
                        ),
                    )
                )
            entries = setting.pool.setdefault((patient, type_label), [])
            for _ in range(ciphertexts_per_pair):
                message = backend.sample_message(rng)
                entries.append(
                    (
                        backend.encrypt(
                            delegator_domain, patient, message, type_label, rng
                        ),
                        message,
                    )
                )
    if rate_per_s is not None:
        gateway.set_rate_limit(rate_per_s)
    return setting


def drive_scheme_requests(
    setting: SchemeDemoSetting,
    n_requests: int,
    seed: str = "gateway-requests",
    batch_size: int = 0,
    verify_every: int = 8,
    gateway=None,
) -> int:
    """Replay a seeded repeated-delegatee stream; returns verified count.

    The same stream shape as :func:`drive_requests` (shared loop);
    verification decrypts through the backend, so it works for every
    scheme's message space.  ``gateway`` may be a
    :class:`~repro.service.wire.client.RemoteGateway` speaking the same
    backend.
    """

    def verify(request: ReEncryptRequest, response, message) -> None:
        recovered = setting.backend.decrypt_reencrypted(
            response.ciphertext, setting.delegatee_domain, request.delegatee
        )
        assert recovered == message, "gateway returned a wrong transformation"

    return _drive_stream(
        setting,
        gateway if gateway is not None else setting.gateway,
        setting.delegatee_domain,
        verify,
        n_requests,
        seed,
        batch_size,
        verify_every,
    )


def run_scheme_demo(
    scheme_id: str = TIPRE_SCHEME_ID,
    group_name: str = "TOY",
    shard_count: int = 4,
    n_requests: int = 200,
    seed: str = "gateway-demo",
    batch_size: int = 0,
    rate_per_s: float | None = None,
    workers: int = 0,
    state_dir: str | None = None,
) -> DemoReport:
    """The E9-style demo for any registered backend."""
    setting = build_scheme_setting(
        scheme_id=scheme_id,
        group_name=group_name,
        shard_count=shard_count,
        seed=seed,
        rate_per_s=rate_per_s,
        workers=workers,
        state_dir=state_dir,
    )
    try:
        verified = drive_scheme_requests(
            setting, n_requests, seed=seed + "-requests", batch_size=batch_size
        )
        return DemoReport(
            snapshot=setting.gateway.snapshot(),
            shard_count=shard_count,
            requests=n_requests,
            batch_size=batch_size,
            verified=verified,
            shard_keys=setting.gateway.shard_key_counts(),
            workers=workers,
            state_dir=state_dir,
            scheme_id=scheme_id,
        )
    finally:
        setting.gateway.close()


def run_remote_scheme_demo(
    url: str,
    scheme_id: str = TIPRE_SCHEME_ID,
    group_name: str = "TOY",
    n_requests: int = 200,
    seed: str = "gateway-demo",
    batch_size: int = 0,
    pool_size: int = 1,
    tenant: str | None = None,
    secret: str | None = None,
    tls_ca: str | None = None,
    trace_requests: bool | float = True,
) -> DemoReport:
    """Drive a *remote* gateway running any scheme over HTTP.

    Builds the delegation universe locally (all party secrets stay on
    this side), negotiates the scheme with the server, grants every
    proxy key over the wire and replays the seeded stream with full
    decrypt-and-compare verification — the end-to-end proof that a
    remote ``serve --http --scheme X`` process returns transformations
    the delegatee can actually open.
    """
    from repro.service.wire.aio_client import connect_gateway

    group = resolve_remote_group(url, scheme_id, group_name, tls_ca=tls_ca)
    setting = build_scheme_setting(
        scheme_id=scheme_id, group_name=group_name, seed=seed, group=group
    )
    try:
        with connect_gateway(
            url,
            setting.backend,
            pool_size=pool_size,
            tenant=tenant,
            secret=secret,
            tls_ca=tls_ca,
            trace_requests=trace_requests,
        ) as remote:
            _grant_all_remote(setting.gateway, remote)
            verified = drive_scheme_requests(
                setting,
                n_requests,
                seed=seed + "-requests",
                batch_size=batch_size,
                gateway=remote,
            )
            last_trace = getattr(remote, "last_trace", None)
            snapshot = remote.snapshot()
        return DemoReport(
            snapshot=snapshot,
            shard_count=0,
            requests=n_requests,
            batch_size=batch_size,
            verified=verified,
            shard_keys={},
            state_dir=None,
            scheme_id=scheme_id,
            trace_id=last_trace.trace_id if last_trace is not None else None,
        )
    finally:
        setting.gateway.close()
