"""The gateway as a real server: HTTP/JSON wire protocol walkthrough.

The paper's proxy is a semi-trusted *server* patients and clinicians
reach over a network.  This example makes that literal: it starts a
`GatewayHttpServer` on an ephemeral port, then talks to it only through
`RemoteGateway` — grants, a single re-encryption, a batch, a revocation
and the error taxonomy all cross a real socket as versioned JSON, and
the delegatee still recovers the exact plaintexts.

Run:  python examples/wire_gateway.py

(TOY parameters: the point here is the wire, not key size.)
"""

from repro import HmacDrbg, KgcRegistry, PairingGroup, TypeAndIdentityPre
from repro.serialization.containers import serialize_reencrypted
from repro.service import (
    DelegationNotFoundError,
    GatewayHttpServer,
    GrantRequest,
    ReEncryptionGateway,
    ReEncryptRequest,
    RemoteGateway,
    RevokeRequest,
)

rng = HmacDrbg("wire-example")

# 1. The usual two-domain setting; the gateway process owns the shards.
group = PairingGroup("TOY")
registry = KgcRegistry(group, rng)
kgc1 = registry.create("KGC1")
kgc2 = registry.create("KGC2")
scheme = TypeAndIdentityPre(group)
gateway = ReEncryptionGateway(scheme, shard_count=4)

alice = kgc1.extract("alice")
bob = kgc2.extract("bob")

# 2. Put the gateway behind HTTP and build the typed client.  From here
#    on, nothing touches `gateway` directly — every call is a request.
server = GatewayHttpServer(gateway, group).start()
client = RemoteGateway(server.url, group)
print("gateway serving on %s" % server.url)

# 3. Grants travel the wire as canonical proxy-key envelopes.
for type_label in ("labs", "medication"):
    response = client.grant(
        GrantRequest(
            tenant="alice",
            proxy_key=scheme.pextract(alice, "bob", type_label, kgc2.params, rng),
        )
    )
    print("wire grant %-10s -> %s" % (type_label, response.shard))

# 4. One re-encryption over HTTP; the response decodes to the exact
#    bytes an in-process call returns, so bob's decryption is unchanged.
report = group.random_gt(rng)
ciphertext = scheme.encrypt(kgc1.params, alice, report, "labs", rng)
request = ReEncryptRequest(
    tenant="clinic", ciphertext=ciphertext, delegatee_domain="KGC2", delegatee="bob"
)
wire_response = client.reencrypt(request)
in_process = gateway.reencrypt(request)
assert serialize_reencrypted(group, wire_response.ciphertext) == serialize_reencrypted(
    group, in_process.ciphertext
)
assert scheme.decrypt_reencrypted(wire_response.ciphertext, bob) == report
print("single re-encryption over the wire: byte-identical, decrypts: OK")

# 5. A batch is one POST: N medication entries, one HTTP round trip.
entries = [group.random_gt(rng) for _ in range(3)]
batch = [
    ReEncryptRequest(
        tenant="clinic",
        ciphertext=scheme.encrypt(kgc1.params, alice, entry, "medication", rng),
        delegatee_domain="KGC2",
        delegatee="bob",
    )
    for entry in entries
]
for response, entry in zip(client.reencrypt_batch(batch), entries):
    assert scheme.decrypt_reencrypted(response.ciphertext, bob) == entry
print("batched re-encryption over the wire: 3 plaintexts recovered by bob: OK")

# 6. Revocation over the wire; the stable error code comes back as the
#    same exception class an in-process caller would catch.
client.revoke(
    RevokeRequest(
        tenant="alice",
        delegator_domain="KGC1",
        delegator="alice",
        delegatee_domain="KGC2",
        delegatee="bob",
        type_label="labs",
    )
)
try:
    client.reencrypt(request)
    raise AssertionError("revoked delegation must not re-encrypt")
except DelegationNotFoundError as error:
    print("after revoke, the wire answers 404 %s: %s" % (error.code, error))

# 7. The operator's view, fetched as a metrics-snapshot message.
snapshot = client.snapshot()
print(
    "server metrics over the wire: %d served, %d rejected, reencrypt p50 %.2f ms"
    % (snapshot.served, snapshot.rejected, snapshot.latency["reencrypt"].p50_ms)
)

server.close()
gateway.close()
