"""The gateway as a PRE *platform*: every registered scheme, end to end.

Three layers of proof that the service stack is scheme-agnostic:

* in-process: the seeded E9-style workload (grants, caching, batching,
  decrypt-and-compare verification) driven through each backend;
* over the wire: a live :class:`GatewayHttpServer` + negotiated
  :class:`RemoteGateway` doing grant -> re-encrypt -> decrypt per scheme;
* the guard rails: scheme negotiation refuses a mismatched server, the
  codec rejects foreign-scheme messages as ``invalid-request``, and the
  KEM-result cache is bypassed for backends without
  ``deterministic_reencrypt``.
"""

from __future__ import annotations

import pytest

from repro.core.api import create_backend
from repro.service.driver import (
    build_scheme_setting,
    drive_scheme_requests,
    run_scheme_demo,
)
from repro.service.gateway import (
    GrantRequest,
    InvalidRequestError,
    ReEncryptionGateway,
    ReEncryptRequest,
)
from repro.service.wire import (
    GatewayHttpServer,
    RemoteGateway,
    SchemeMismatchError,
    from_wire,
    to_wire,
)

# The wire matrix: the paper's scheme plus representative baselines with
# different message spaces (GT vs G1) and key shapes (point vs scalar).
WIRE_SCHEMES = ["tipre/v1", "green-ateniese/v1", "afgh/v1", "bbs/v1"]
ALL_SCHEMES = WIRE_SCHEMES + ["dodis-ivan/v1", "matsuo/v1"]


def _small_setting(scheme_id, **kwargs):
    defaults = dict(
        scheme_id=scheme_id,
        group_name="TOY",
        shard_count=3,
        n_patients=2,
        n_delegatees=2,
        n_types=2,
        ciphertexts_per_pair=1,
        seed="multischeme-" + scheme_id,
    )
    defaults.update(kwargs)
    return build_scheme_setting(**defaults)


class TestInProcessEveryScheme:
    @pytest.mark.parametrize("scheme_id", ALL_SCHEMES)
    def test_seeded_workload_verifies(self, scheme_id):
        report = run_scheme_demo(
            scheme_id=scheme_id,
            shard_count=2,
            n_requests=24,
            batch_size=4,
            seed="e12-style-" + scheme_id,
        )
        assert report.scheme_id == scheme_id
        assert report.verified > 0
        assert report.snapshot.served > 0

    @pytest.mark.parametrize("scheme_id", ALL_SCHEMES)
    def test_revoked_delegation_stops_serving(self, scheme_id):
        from repro.service.gateway import DelegationNotFoundError, RevokeRequest

        setting = _small_setting(scheme_id)
        try:
            (patient, type_label), entries = sorted(setting.pool.items())[0]
            ciphertext, _message = entries[0]
            delegatee = setting.delegatees[0]
            setting.gateway.revoke(
                RevokeRequest(
                    tenant=patient,
                    delegator_domain=setting.delegator_domain,
                    delegator=patient,
                    delegatee_domain=setting.delegatee_domain,
                    delegatee=delegatee,
                    type_label=type_label,
                )
            )
            with pytest.raises(DelegationNotFoundError):
                setting.gateway.reencrypt(
                    ReEncryptRequest(
                        tenant=patient,
                        ciphertext=ciphertext,
                        delegatee_domain=setting.delegatee_domain,
                        delegatee=delegatee,
                    )
                )
        finally:
            setting.gateway.close()

    @pytest.mark.parametrize("scheme_id", ["afgh/v1", "green-ateniese/v1"])
    def test_durable_state_dir_survives_restart(self, scheme_id, tmp_path):
        state_dir = str(tmp_path / "fleet")
        setting = _small_setting(scheme_id, state_dir=state_dir)
        installed = setting.gateway.key_count()
        setting.gateway.close()
        assert installed > 0

        # A fresh fleet on the same state dir serves every delegation.
        backend = create_backend(scheme_id, setting.group)
        gateway = ReEncryptionGateway(backend, shard_count=3, state_dir=state_dir)
        try:
            assert gateway.key_count() == installed
            (patient, _type), entries = sorted(setting.pool.items())[0]
            ciphertext, message = entries[0]
            response = gateway.reencrypt(
                ReEncryptRequest(
                    tenant=patient,
                    ciphertext=ciphertext,
                    delegatee_domain=setting.delegatee_domain,
                    delegatee=setting.delegatees[0],
                )
            )
            # The *original* backend holds the party keys; the restarted
            # server-side backend never needs them.
            recovered = setting.backend.decrypt_reencrypted(
                response.ciphertext, setting.delegatee_domain, setting.delegatees[0]
            )
            assert recovered == message
        finally:
            gateway.close()


class TestWireEveryScheme:
    @pytest.mark.parametrize("scheme_id", WIRE_SCHEMES)
    def test_grant_reencrypt_decrypt_over_the_wire(self, scheme_id):
        """The acceptance anchor: a bare server process per scheme."""
        setting = _small_setting(scheme_id)
        group = setting.group
        # The server side: a fresh backend with no party state at all.
        server_gateway = ReEncryptionGateway(create_backend(scheme_id, group), shard_count=2)
        try:
            with GatewayHttpServer(server_gateway) as server:
                client = RemoteGateway(server.url, setting.backend)
                info = client.scheme_info()
                assert info["scheme"] == scheme_id
                assert info["group"] == group.params.name
                # grant every proxy key over the wire ...
                for name in setting.gateway.shard_names:
                    for key in list(setting.gateway.shard_named(name).table):
                        client.grant(GrantRequest(tenant="t", proxy_key=key))
                # ... then re-encrypt remotely and decrypt locally.
                verified = drive_scheme_requests(
                    setting,
                    12,
                    seed="wire-" + scheme_id,
                    batch_size=3,
                    verify_every=1,
                    gateway=client,
                )
                assert verified == 12
        finally:
            server_gateway.close()
            setting.gateway.close()

    def test_client_refuses_mismatched_server_scheme(self, group):
        server_gateway = ReEncryptionGateway(create_backend("tipre/v1", group), shard_count=1)
        try:
            with GatewayHttpServer(server_gateway) as server:
                client = RemoteGateway(server.url, create_backend("afgh/v1", group))
                with pytest.raises(SchemeMismatchError, match="tipre/v1"):
                    client.snapshot()
        finally:
            server_gateway.close()

    def test_unnegotiated_mismatched_message_is_invalid_request(self, group, rng):
        """Even with negotiation off, the codec rejects foreign envelopes."""
        afgh = create_backend("afgh/v1", group)
        afgh.setup(rng)
        afgh.create_party("D", "a", rng)
        afgh.create_party("D", "b", rng)
        key = afgh.rekey("D", "a", "D", "b", "t", rng)
        server_gateway = ReEncryptionGateway(create_backend("tipre/v1", group), shard_count=1)
        try:
            with GatewayHttpServer(server_gateway) as server:
                client = RemoteGateway(server.url, afgh, negotiate=False)
                with pytest.raises(InvalidRequestError):
                    client.grant(GrantRequest(tenant="t", proxy_key=key))
        finally:
            server_gateway.close()

    def test_codec_rejects_foreign_scheme_messages(self, group, rng):
        afgh = create_backend("afgh/v1", group)
        afgh.setup(rng)
        afgh.create_party("D", "a", rng)
        afgh.create_party("D", "b", rng)
        key = afgh.rekey("D", "a", "D", "b", "t", rng)
        message = to_wire(afgh, GrantRequest(tenant="t", proxy_key=key))
        with pytest.raises(InvalidRequestError, match="scheme"):
            from_wire(group, message)  # bare group = the tipre backend


class TestCacheAdmissionGating:
    def test_nondeterministic_backend_bypasses_result_cache(self, rng):
        """A backend without deterministic_reencrypt never replays results."""
        from repro.baselines.backends import AfghBackend
        from repro.core.api import SchemeCapabilities

        class RandomizedAfgh(AfghBackend):
            # Same cryptography; declares its transform non-replayable.
            capabilities = SchemeCapabilities(
                **{**AfghBackend.capabilities.as_dict(), "deterministic_reencrypt": False}
            )

        from repro.pairing.group import PairingGroup

        group = PairingGroup("TOY")
        backend = RandomizedAfgh(group)
        backend.setup(rng)
        backend.create_party("D", "alice", rng)
        backend.create_party("D", "bob", rng)
        gateway = ReEncryptionGateway(backend, shard_count=1)
        try:
            gateway.grant(
                GrantRequest(
                    tenant="t", proxy_key=backend.rekey("D", "alice", "D", "bob", "t", rng)
                )
            )
            message = backend.sample_message(rng)
            ciphertext = backend.encrypt("D", "alice", message, "t", rng)
            request = ReEncryptRequest(
                tenant="t", ciphertext=ciphertext, delegatee_domain="D", delegatee="bob"
            )
            responses = [gateway.reencrypt(request) for _ in range(4)]
            batch = gateway.reencrypt_batch([request, request])
            assert not any(r.cache_hit for r in responses + batch)
            stats = gateway.cache_stats()["result_cache"]
            assert stats.hits == 0 and stats.size == 0
            # Correctness is unaffected: every response decrypts.
            for response in responses + batch:
                assert (
                    backend.decrypt_reencrypted(response.ciphertext, "D", "bob") == message
                )
        finally:
            gateway.close()

    def test_deterministic_backend_still_caches(self, rng):
        setting = _small_setting("afgh/v1")
        try:
            (patient, _type), entries = sorted(setting.pool.items())[0]
            ciphertext, _message = entries[0]
            request = ReEncryptRequest(
                tenant=patient,
                ciphertext=ciphertext,
                delegatee_domain=setting.delegatee_domain,
                delegatee=setting.delegatees[0],
            )
            first = setting.gateway.reencrypt(request)
            second = setting.gateway.reencrypt(request)
            assert not first.cache_hit and second.cache_hit
        finally:
            setting.gateway.close()
