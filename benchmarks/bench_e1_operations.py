"""E1 — per-operation cost of the paper's scheme across security levels.

For each algorithm of Section 4.1 (Setup/Extract come from Boneh--Franklin;
Encrypt1, Decrypt1, Pextract, Preenc and the delegatee decryption are the
scheme's own), measure wall time on TOY / SS256 / SS512 and report the
exact group-operation profile (pairings, G1 multiplications, GT
exponentiations, hash-to-point calls).

The headline shape (matching the construction's arithmetic):

* Encrypt1 / Decrypt1 / Preenc / re-decrypt each cost ~1 pairing;
* Pextract costs ~1 IBE encryption (1 pairing) plus 2 G1 multiplications;
* everything scales with the base-field size (pairings dominate).
"""

from __future__ import annotations

import pytest

from repro.bench.counters import count_operations
from repro.bench.report import print_table
from repro.core.scheme import TypeAndIdentityPre
from repro.ibe.kgc import KgcRegistry
from repro.math.drbg import HmacDrbg
from repro.pairing.group import PairingGroup

LEVELS = ("TOY", "SS256", "SS512")
_ROUNDS = {"TOY": 20, "SS256": 5, "SS512": 3}


def _setting(level: str):
    group = PairingGroup.shared(level)
    rng = HmacDrbg("e1-%s" % level)
    registry = KgcRegistry(group, rng)
    kgc1, kgc2 = registry.create("KGC1"), registry.create("KGC2")
    scheme = TypeAndIdentityPre(group)
    alice, bob = kgc1.extract("alice"), kgc2.extract("bob")
    message = group.random_gt(rng)
    ciphertext = scheme.encrypt(kgc1.params, alice, message, "t", rng)
    proxy_key = scheme.pextract(alice, "bob", "t", kgc2.params, rng)
    transformed = scheme.preenc(ciphertext, proxy_key)
    return group, rng, scheme, kgc1, kgc2, alice, bob, message, ciphertext, proxy_key, transformed


def _operations(level: str):
    (group, rng, scheme, kgc1, kgc2, alice, bob, message,
     ciphertext, proxy_key, transformed) = _setting(level)
    return {
        "encrypt": lambda: scheme.encrypt(kgc1.params, alice, message, "t", rng),
        "decrypt": lambda: scheme.decrypt(ciphertext, alice),
        "pextract": lambda: scheme.pextract(alice, "bob", "t", kgc2.params, rng),
        "preenc": lambda: scheme.preenc(ciphertext, proxy_key),
        "decrypt_reenc": lambda: scheme.decrypt_reencrypted(transformed, bob),
    }


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("operation", ["encrypt", "decrypt", "pextract", "preenc", "decrypt_reenc"])
def test_operation_latency(benchmark, level, operation):
    """One pytest-benchmark series per (security level, algorithm)."""
    fn = _operations(level)[operation]
    benchmark.group = "E1 %s" % level
    benchmark.name = operation
    benchmark.pedantic(fn, rounds=_ROUNDS[level], iterations=1, warmup_rounds=1)


def test_e1_report(benchmark):
    """Print the E1 table: op profile + |p| scaling (captured in bench logs)."""
    rows = []
    for level in LEVELS:
        operations = _operations(level)
        for name, fn in operations.items():
            with count_operations() as counter:
                fn()
            rows.append(
                [
                    level,
                    name,
                    str(counter.get("pairing")),
                    str(counter.get("g1_mul")),
                    str(counter.get("gt_exp")),
                    str(counter.get("hash_to_g1")),
                ]
            )
    print_table(
        "E1: group-operation profile per algorithm",
        ["params", "algorithm", "pairings", "G1 mul", "GT exp", "hash-to-G1"],
        rows,
    )
    # Anchor the table-printing test with a tiny benchmark so it runs
    # under --benchmark-only as well.
    operations = _operations("TOY")
    benchmark.pedantic(operations["preenc"], rounds=3, iterations=1)
