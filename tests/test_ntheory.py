"""Unit and property tests for repro.math.ntheory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.math.ntheory import (
    bytes_to_int,
    crt,
    egcd,
    int_to_bytes,
    is_quadratic_residue,
    jacobi_symbol,
    legendre_symbol,
    modinv,
    sqrt_mod,
)

P_3MOD4 = 1000003  # prime, = 3 (mod 4)
P_1MOD4 = 1000033  # prime, = 1 (mod 4): exercises Tonelli--Shanks
SMALL_PRIMES = (3, 5, 7, 11, 13, 101, 65537)


class TestEgcd:
    def test_basic(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == g

    def test_coprime(self):
        g, x, y = egcd(17, 31)
        assert g == 1
        assert 17 * x + 31 * y == 1

    def test_zero_operands(self):
        assert egcd(0, 5)[0] == 5
        assert egcd(5, 0)[0] == 5
        assert egcd(0, 0)[0] == 0

    @given(st.integers(min_value=-10**12, max_value=10**12),
           st.integers(min_value=-10**12, max_value=10**12))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        if a or b:
            assert a % g == 0 and b % g == 0


class TestModinv:
    def test_known(self):
        assert modinv(3, 7) == 5  # 3*5 = 15 = 1 (mod 7)

    def test_negative_input(self):
        assert modinv(-3, 7) * (-3) % 7 == 1

    def test_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            modinv(0, 7)

    def test_non_invertible_raises(self):
        with pytest.raises(ZeroDivisionError):
            modinv(6, 9)

    @given(st.integers(min_value=1, max_value=P_3MOD4 - 1))
    def test_inverse_property(self, a):
        assert a * modinv(a, P_3MOD4) % P_3MOD4 == 1


class TestJacobiLegendre:
    def test_jacobi_requires_odd_positive(self):
        with pytest.raises(ValueError):
            jacobi_symbol(3, 8)
        with pytest.raises(ValueError):
            jacobi_symbol(3, -5)

    def test_zero_when_shared_factor(self):
        assert jacobi_symbol(15, 45) == 0

    @pytest.mark.parametrize("p", SMALL_PRIMES)
    def test_legendre_matches_euler_criterion(self, p):
        for a in range(1, min(p, 60)):
            euler = pow(a, (p - 1) // 2, p)
            expected = 1 if euler == 1 else (-1 if euler == p - 1 else 0)
            assert legendre_symbol(a, p) == expected

    @given(st.integers(min_value=1, max_value=10**6))
    def test_squares_are_residues(self, a):
        if a % P_3MOD4 != 0:
            assert is_quadratic_residue(a * a, P_3MOD4)


class TestSqrtMod:
    @pytest.mark.parametrize("p", [P_3MOD4, P_1MOD4, 13, 17, 97])
    def test_roots_square_back(self, p):
        for a in range(1, 40):
            square = a * a % p
            root = sqrt_mod(square, p)
            assert root * root % p == square

    def test_zero(self):
        assert sqrt_mod(0, P_3MOD4) == 0

    def test_non_residue_raises(self):
        # Find a non-residue and check the error path.
        for a in range(2, 100):
            if not is_quadratic_residue(a, P_1MOD4):
                with pytest.raises(ValueError):
                    sqrt_mod(a, P_1MOD4)
                return
        pytest.fail("no non-residue found (impossible)")

    @given(st.integers(min_value=1, max_value=P_1MOD4 - 1))
    def test_tonelli_shanks_property(self, a):
        square = a * a % P_1MOD4
        root = sqrt_mod(square, P_1MOD4)
        assert root in (a, P_1MOD4 - a)


class TestCrt:
    def test_textbook(self):
        # x = 2 (mod 3), x = 3 (mod 5), x = 2 (mod 7)  =>  x = 23
        assert crt([2, 3, 2], [3, 5, 7]) == 23

    def test_single_congruence(self):
        assert crt([4], [9]) == 4

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            crt([1, 2], [3])

    def test_empty(self):
        with pytest.raises(ValueError):
            crt([], [])

    def test_non_coprime_raises(self):
        with pytest.raises(ValueError):
            crt([1, 2], [4, 6])

    @given(st.integers(min_value=0, max_value=3 * 5 * 7 * 11 - 1))
    def test_round_trip(self, x):
        moduli = [3, 5, 7, 11]
        residues = [x % m for m in moduli]
        assert crt(residues, moduli) == x


class TestByteConversion:
    def test_round_trip(self):
        for n in (0, 1, 255, 256, 2**64, 2**128 + 12345):
            assert bytes_to_int(int_to_bytes(n)) == n

    def test_fixed_width(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            int_to_bytes(-1)

    def test_zero_is_one_byte(self):
        assert int_to_bytes(0) == b"\x00"

    @given(st.integers(min_value=0, max_value=2**256))
    def test_round_trip_property(self, n):
        assert bytes_to_int(int_to_bytes(n)) == n
