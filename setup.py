"""Legacy setuptools shim (the sandbox lacks the wheel package)."""

from setuptools import setup

setup()
