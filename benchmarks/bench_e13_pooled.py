"""E13 — concurrent clients: pooled connections, multi-scheme hosting,
and the secured wire.

PR 5 gives :class:`~repro.service.wire.client.RemoteGateway` a bounded
keep-alive connection pool and lets one server process host several
scheme fleets.  PR 9 adds TLS + HMAC tenant authentication and
per-tenant policy; the new legs measure that the security layer
isolates and costs what it claims (recorded in ``BENCH_E13.json``).
Measured claims:

1. **Pooled beats single-connection under concurrent load.**  Eight
   client threads drive the same request stream through one shared
   client, pool of 1 (the PR-4 behaviour: every thread serializes on a
   single socket) vs pool of 8.  The fleet models remote shards the way
   E10 does — each transformation charges a service round trip — so the
   single connection's head-of-line blocking is visible as wall clock:
   with one socket only one request is ever in flight, so shard
   latencies sum; with a pool they overlap across server handler
   threads.  The gain is asserted, and responses must stay bit-identical
   to the sequential reference (no cross-talk).

2. **One process, several scheme fleets.**  A real ``repro-pre serve
   --http --scheme tipre/v1 --scheme afgh/v1`` subprocess hosts two
   fleets; pooled clients drive both concurrently over the
   scheme-prefixed routes with full decrypt-and-compare verification.
   This is the CLI-to-wire acceptance path, measured per scheme.

3. **An abusive tenant cannot starve well-behaved ones.**  One flooder
   with a per-tenant rate limit hammers the gateway while three signed
   well-behaved clients run their workload.  The flooder gets throttled
   (``rate-limited`` rejections) and the well-behaved clients keep 100%
   success with a p99 that holds against their uncontended baseline.

4. **TLS + HMAC costs under 15%.**  The same reencrypt stream (the E9
   workload, unbatched and batch=8) through a plaintext anonymous
   server vs an HTTPS server demanding signed requests, best-of-N
   interleaved repetitions.  The budget is gated on the batched leg —
   per-round-trip security cost amortizes across batch items — and the
   unbatched per-request cost is recorded alongside it.

TOY parameters: like E9-E12 this measures workload structure and
transport, not key size.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import repro
from repro.bench.report import print_table
from repro.core.proxy import ProxyService
from repro.serialization.containers import serialize_reencrypted
from repro.service.driver import (
    DELEGATEE_DOMAIN,
    build_scheme_setting,
    build_setting,
    drive_scheme_requests,
    resolve_remote_group,
)
from repro.service.gateway import GrantRequest, ReEncryptionGateway, ReEncryptRequest
from repro.service.wire import GatewayHttpServer, RemoteGateway

THREADS = 8
SHARDS = 16  # spreads the 8 per-thread route keys so shard locks rarely collide
REMOTE_RTT_S = 0.005  # modelled service latency of one remote shard call (as E10)


@dataclass
class RemoteShardStub(ProxyService):
    """A proxy shard that charges a service round-trip per transformation."""

    latency_s: float = 0.0

    def reencrypt_with_key(self, ciphertext, key):
        if self.latency_s:
            time.sleep(self.latency_s)
        return super().reencrypt_with_key(ciphertext, key)


def _setting():
    """8 (patient, type) route keys x 6 ciphertexts x 2 delegatees."""
    return build_setting(
        group_name="TOY",
        shard_count=2,
        n_patients=4,
        n_types=2,
        n_delegatees=2,
        ciphertexts_per_pair=6,
        seed="e13-pooled",
    )


def _installed_keys(gateway):
    keys = []
    for name in gateway.shard_names:
        keys.extend(gateway.shard_named(name).table)
    return keys


def _thread_partitions(setting):
    """One distinct request list per thread, each on its own route key.

    Distinct ciphertexts keep the result cache cold (every request pays
    the modelled shard latency), and the per-thread route keys map to
    different shards, so pooled concurrency is limited by the transport —
    the thing under test — not by shard-lock collisions.
    """
    partitions = []
    for patient in setting.patients:
        for type_label in setting.types:
            requests = []
            for ciphertext, _message in setting.pool[(patient, type_label)]:
                for delegatee in setting.delegatees:
                    requests.append(
                        ReEncryptRequest(
                            tenant=patient,
                            ciphertext=ciphertext,
                            delegatee_domain=DELEGATEE_DOMAIN,
                            delegatee=delegatee,
                        )
                    )
            partitions.append(requests)
    assert len(partitions) == THREADS
    return partitions


def _latency_gateway(scheme, keys):
    def factory(name, table):
        from repro.core.proxy import ProxyKeyTable

        return RemoteShardStub(
            scheme,
            name=name,
            table=table if table is not None else ProxyKeyTable(),
            latency_s=REMOTE_RTT_S,
        )

    gateway = ReEncryptionGateway(scheme, shard_count=SHARDS, shard_factory=factory)
    for key in keys:
        gateway.grant(GrantRequest(tenant="bench", proxy_key=key))
    return gateway


def _drive_pool(url, group, partitions, expected, pool_size):
    """8 barrier-started threads through one shared client; wall clock."""
    client = RemoteGateway(url, group, pool_size=pool_size)
    mismatches = []
    errors = []
    lock = threading.Lock()
    start_line = threading.Barrier(THREADS + 1)
    finish_line = threading.Barrier(THREADS + 1)

    def worker(thread_id, requests):
        try:
            start_line.wait(timeout=60)
            for index, request in enumerate(requests):
                response = client.reencrypt(request)
                blob = serialize_reencrypted(group, response.ciphertext)
                if blob != expected[thread_id][index]:
                    with lock:
                        mismatches.append((thread_id, index))
            finish_line.wait(timeout=120)
        except BaseException as error:  # noqa: BLE001 - reported to the bench
            with lock:
                errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(i, requests), daemon=True)
        for i, requests in enumerate(partitions)
    ]
    for thread in threads:
        thread.start()
    start_line.wait(timeout=60)
    start = time.perf_counter()
    finish_line.wait(timeout=120)
    elapsed_s = time.perf_counter() - start
    for thread in threads:
        thread.join(timeout=60)
    client.close()
    assert not errors, errors
    assert not mismatches, "cross-talk between pooled responses: %r" % mismatches
    assert client.peak_connections <= pool_size
    return elapsed_s, client.connections_opened, client.peak_connections


def test_e13_pooled_client_beats_single_connection_under_concurrency():
    setting = _setting()
    keys = _installed_keys(setting.gateway)
    group = setting.group
    partitions = _thread_partitions(setting)
    # The sequential in-process reference: what every schedule must return.
    expected = [
        [
            serialize_reencrypted(group, setting.gateway.reencrypt(request).ciphertext)
            for request in requests
        ]
        for requests in partitions
    ]
    n = sum(len(requests) for requests in partitions)

    rows = []
    timings = {}
    for pool_size in (1, THREADS):
        # A fresh fleet per configuration: cold caches, so every request
        # pays the modelled shard round trip in both runs.
        gateway = _latency_gateway(setting.scheme, keys)
        with GatewayHttpServer(gateway) as server:
            elapsed_s, opened, peak = _drive_pool(
                server.url, group, partitions, expected, pool_size
            )
        gateway.close()
        timings[pool_size] = elapsed_s
        rows.append(
            [
                "pool=%d" % pool_size,
                "%.1f" % (elapsed_s * 1000),
                "%.0f" % (n / elapsed_s),
                str(opened),
                str(peak),
            ]
        )
    setting.gateway.close()

    single_s, pooled_s = timings[1], timings[THREADS]
    rows[1].append("%.2fx" % (single_s / pooled_s))
    rows[0].append("1.00x")
    print_table(
        "E13: %d threads x shared client, %d requests, %.0fms modelled shard RTT"
        % (THREADS, n, REMOTE_RTT_S * 1000),
        ["client", "total ms", "req/s", "dials", "peak conns", "gain"],
        rows,
    )

    # The acceptance anchor: a pool must beat head-of-line blocking on a
    # single socket once shard service time dominates.
    assert pooled_s < single_s, (
        "pooled client (%.1fms) did not beat the single connection (%.1fms)"
        % (pooled_s * 1000, single_s * 1000)
    )


# ------------------------------------------------- multi-scheme subprocess


def _spawn_server(scheme_ids):
    """A real ``repro-pre serve --http`` process; returns (proc, url)."""
    src = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--group",
        "TOY",
        "--shards",
        "2",
        "--http",
        "0",
    ]
    for scheme_id in scheme_ids:
        command += ["--scheme", scheme_id]
    proc = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env
    )
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.terminate()
        raise AssertionError("server did not come up: %r" % line)
    return proc, line.split()[3]


def _drive_scheme_concurrently(setting, url, pool_size, n_requests):
    """Grant a fleet over the wire, then drive it from one pooled client."""
    client = RemoteGateway(url, setting.backend, pool_size=pool_size)
    for name in setting.gateway.shard_names:
        for key in list(setting.gateway.shard_named(name).table):
            client.grant(GrantRequest(tenant="bench", proxy_key=key))
    start = time.perf_counter()
    verified = drive_scheme_requests(
        setting,
        n_requests,
        seed="e13-" + setting.scheme_id,
        verify_every=4,
        gateway=client,
    )
    elapsed_s = time.perf_counter() - start
    client.close()
    return verified, elapsed_s


def test_e13_one_process_hosts_two_scheme_fleets():
    """A single CLI server process serves tipre and afgh side by side,
    driven concurrently, with end-to-end decrypt verification."""
    scheme_ids = ["tipre/v1", "afgh/v1"]
    settings = {}
    proc, url = _spawn_server(scheme_ids)
    try:
        # A multi-scheme server hosts each fleet on its own derived pairing
        # group (the single-group hosting fix); probe for the right one.
        settings = {
            scheme_id: build_scheme_setting(
                scheme_id=scheme_id,
                group_name="TOY",
                shard_count=2,
                n_patients=2,
                n_delegatees=2,
                n_types=2,
                ciphertexts_per_pair=2,
                seed="e13-multihost-" + scheme_id,
                group=resolve_remote_group(url, scheme_id, "TOY"),
            )
            for scheme_id in scheme_ids
        }
        probe = RemoteGateway(url, settings["tipre/v1"].backend)
        hosted = [doc["scheme"] for doc in probe.schemes_info()]
        probe.close()
        assert hosted == scheme_ids, "server does not host both fleets"

        results = {}
        failures = []

        def drive(scheme_id):
            try:
                results[scheme_id] = _drive_scheme_concurrently(
                    settings[scheme_id], url, pool_size=4, n_requests=48
                )
            except BaseException as error:  # noqa: BLE001 - reported below
                failures.append((scheme_id, error))

        threads = [
            threading.Thread(target=drive, args=(scheme_id,), daemon=True)
            for scheme_id in scheme_ids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not failures, failures

        rows = []
        for scheme_id in scheme_ids:
            verified, elapsed_s = results[scheme_id]
            assert verified > 0, "no plaintext verified for %s" % scheme_id
            rows.append(
                [scheme_id, "48", str(verified), "%.0f" % (48 / elapsed_s)]
            )
        print_table(
            "E13: one serve --http process, two scheme fleets driven concurrently",
            ["scheme", "requests", "verified", "req/s"],
            rows,
        )
    finally:
        proc.terminate()
        proc.wait(timeout=30)
        for setting in settings.values():
            setting.gateway.close()


# --------------------------------------------------- secured-wire legs (PR 9)

# Both security legs contribute to one BENCH_E13.json document; the
# snapshot is recorded once both have run (file order under pytest).
_SNAPSHOT: dict = {}

WELL_BEHAVED = ("clinic-a", "clinic-b", "clinic-c")
FLOODER = "flooder"
FLOODER_RATE = 40.0  # per-tenant cap the abuser keeps slamming into
REQUESTS_PER_CLIENT = 60
FLOODER_ATTEMPTS = 400
OVERHEAD_REQUESTS = 200
OVERHEAD_REPS = 3
OVERHEAD_LIMIT = 1.15  # TLS + HMAC must stay within 15% of plaintext


def _percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * fraction))]


def _secured_setting(tmp_path, seed):
    """A granted TOY universe plus a credential store for the bench tenants."""
    from repro.service.auth import PolicyEngine, RequestVerifier, TenantCredentialStore

    setting = build_setting(
        group_name="TOY",
        shard_count=2,
        n_patients=4,
        n_types=2,
        n_delegatees=2,
        ciphertexts_per_pair=6,
        seed=seed,
    )
    store = TenantCredentialStore.initialize(tmp_path / "tenants.json")
    for tenant in WELL_BEHAVED:
        store.add(tenant, secret=tenant * 16)
    store.add(FLOODER, secret=FLOODER * 8, rate_per_s=FLOODER_RATE, burst=FLOODER_RATE)
    setting.gateway.policy = PolicyEngine(store)
    return setting, store, RequestVerifier(store)


def _timed_worker(client, requests, latencies_ms, errors, lock):
    try:
        for request in requests:
            start = time.perf_counter()
            client.reencrypt(request)
            with lock:
                latencies_ms.append((time.perf_counter() - start) * 1000)
    except BaseException as error:  # noqa: BLE001 - reported to the bench
        with lock:
            errors.append(error)


def _client_stream(partition):
    """Cycle a partition's distinct requests up to the per-client count."""
    stream = []
    while len(stream) < REQUESTS_PER_CLIENT:
        stream.extend(partition[: REQUESTS_PER_CLIENT - len(stream)])
    return stream


def _drive_well_behaved(url, group, partitions, with_flooder):
    """3 signed clients x 60 requests; optionally one concurrent flooder.

    Returns (per-request latencies in ms, flooder ok count, flooder
    throttled count).  Every well-behaved request must succeed — errors
    propagate as assertions.
    """
    from repro.service.gateway import RateLimitedError as RateLimited

    latencies_ms: list[float] = []
    errors: list[BaseException] = []
    flooder_stats = {"ok": 0, "throttled": 0}
    lock = threading.Lock()
    stop = threading.Event()

    def flood():
        client = RemoteGateway(
            url, group, tenant=FLOODER, secret=FLOODER * 8, trace_requests=False
        )
        request = partitions[len(WELL_BEHAVED)][0]
        try:
            for _ in range(FLOODER_ATTEMPTS):
                if stop.is_set():
                    break
                try:
                    client.reencrypt(request)
                    flooder_stats["ok"] += 1
                except RateLimited:
                    flooder_stats["throttled"] += 1
        finally:
            client.close()

    clients = [
        RemoteGateway(url, group, tenant=tenant, secret=tenant * 16)
        for tenant in WELL_BEHAVED
    ]
    workers = [
        threading.Thread(
            target=_timed_worker,
            args=(client, _client_stream(partitions[i]), latencies_ms, errors, lock),
            daemon=True,
        )
        for i, client in enumerate(clients)
    ]
    flooder_thread = threading.Thread(target=flood, daemon=True) if with_flooder else None
    if flooder_thread is not None:
        flooder_thread.start()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=300)
    stop.set()
    if flooder_thread is not None:
        flooder_thread.join(timeout=300)
    for client in clients:
        client.close()
    assert not errors, "well-behaved tenant failed under contention: %r" % errors
    assert len(latencies_ms) == len(WELL_BEHAVED) * REQUESTS_PER_CLIENT
    return latencies_ms, flooder_stats["ok"], flooder_stats["throttled"]


def test_e13_adversarial_tenant_cannot_starve_well_behaved(tmp_path):
    """Leg 3: signed multi-tenant load with one throttled abuser."""
    setting, store, verifier = _secured_setting(tmp_path, "e13-adversarial")
    partitions = _thread_partitions(setting)
    with GatewayHttpServer(setting.gateway, setting.group, auth=verifier) as server:
        baseline_ms, _, _ = _drive_well_behaved(
            server.url, setting.group, partitions, with_flooder=False
        )
        contended_ms, flooder_ok, flooder_throttled = _drive_well_behaved(
            server.url, setting.group, partitions, with_flooder=True
        )
    snapshot = setting.gateway.metrics.snapshot()
    setting.gateway.close()

    baseline_p99 = _percentile(baseline_ms, 0.99)
    contended_p99 = _percentile(contended_ms, 0.99)
    print_table(
        "E13: adversarial tenant vs %d well-behaved signed clients" % len(WELL_BEHAVED),
        ["leg", "requests", "success", "p50 ms", "p99 ms"],
        [
            [
                "baseline",
                str(len(baseline_ms)),
                "100%",
                "%.1f" % _percentile(baseline_ms, 0.5),
                "%.1f" % baseline_p99,
            ],
            [
                "contended",
                str(len(contended_ms)),
                "100%",
                "%.1f" % _percentile(contended_ms, 0.5),
                "%.1f" % contended_p99,
            ],
            [
                "flooder",
                str(flooder_ok + flooder_throttled),
                "%d ok / %d throttled" % (flooder_ok, flooder_throttled),
                "-",
                "-",
            ],
        ],
    )

    # The abuser actually hit its per-tenant cap ...
    assert flooder_throttled > 0, "flooder was never rate limited"
    assert snapshot.rate_limited >= flooder_throttled
    # ... and the flooder's rejections are attributed to it, not to the
    # well-behaved tenants (authenticated attribution, not body-claimed).
    assert snapshot.tenant_outcomes.get((FLOODER, "rate-limited"), 0) > 0
    for tenant in WELL_BEHAVED:
        assert snapshot.tenant_outcomes.get((tenant, "rate-limited"), 0) == 0
    # Well-behaved p99 holds: a generous envelope (10x + scheduling
    # slack) that still fails on actual starvation, where the flooder's
    # unthrottled stream would multiply tail latency by orders of
    # magnitude.
    assert contended_p99 <= baseline_p99 * 10 + 50, (
        "well-behaved p99 degraded from %.1fms to %.1fms under flooding"
        % (baseline_p99, contended_p99)
    )

    _SNAPSHOT["adversarial_isolation"] = {
        "well_behaved_tenants": len(WELL_BEHAVED),
        "requests_per_client": REQUESTS_PER_CLIENT,
        "flooder_rate_per_s": FLOODER_RATE,
        "flooder_ok": flooder_ok,
        "flooder_throttled": flooder_throttled,
        "baseline_p50_ms": round(_percentile(baseline_ms, 0.5), 2),
        "baseline_p99_ms": round(baseline_p99, 2),
        "contended_p50_ms": round(_percentile(contended_ms, 0.5), 2),
        "contended_p99_ms": round(contended_p99, 2),
        "well_behaved_success_rate": 1.0,
    }
    _maybe_record()


OVERHEAD_BATCH = 8  # the E9 batched leg's size


def _sequential_elapsed(
    url, group, requests, batch_size=0, tenant=None, secret=None, tls_ca=None
):
    client = RemoteGateway(
        url, group, tenant=tenant, secret=secret, tls_ca=tls_ca, trace_requests=False
    )
    # Warm up outside the timed window: scheme negotiation, the dial and
    # (on https) the TLS handshake are per-connection costs the keep-alive
    # pool amortizes away; the leg measures steady-state per-request cost.
    client.scheme_info()
    start = time.perf_counter()
    if batch_size > 1:
        for offset in range(0, len(requests), batch_size):
            client.reencrypt_batch(requests[offset : offset + batch_size])
    else:
        for request in requests:
            client.reencrypt(request)
    elapsed_s = time.perf_counter() - start
    client.close()
    return elapsed_s


def test_e13_tls_hmac_overhead_within_budget(tmp_path):
    """Leg 4: the secured wire costs < 15% over plaintext (E9 shape)."""
    from repro.service.auth import RequestVerifier, TenantCredentialStore, server_context

    sys.path.insert(0, str(Path(repro.__file__).resolve().parents[2] / "tools"))
    try:
        import gen_dev_cert
    finally:
        sys.path.pop(0)
    cert_path, key_path = gen_dev_cert.generate(tmp_path / "tls")

    setting = _setting()
    requests = [
        request for partition in _thread_partitions(setting) for request in partition
    ][:OVERHEAD_REQUESTS]
    store = TenantCredentialStore.initialize(tmp_path / "tenants.json")
    store.add("bench", secret="c" * 64)

    keys = _installed_keys(setting.gateway)
    runs: dict[tuple[str, int], list[float]] = {}

    def fresh_gateway():
        # No modelled shard latency here: the leg measures the *relative*
        # cost of the security layer, so the plaintext side must not be
        # padded with sleeps that would dilute the overhead.
        gateway = ReEncryptionGateway(setting.scheme, shard_count=2)
        for key in keys:
            gateway.grant(GrantRequest(tenant="bench", proxy_key=key))
        return gateway

    # Interleaved repetitions on fresh fleets: both configurations see
    # identical cache state and any machine noise hits both evenly.
    for _ in range(OVERHEAD_REPS):
        for batch_size in (0, OVERHEAD_BATCH):
            gateway = fresh_gateway()
            with GatewayHttpServer(gateway) as server:
                runs.setdefault(("plain", batch_size), []).append(
                    _sequential_elapsed(
                        server.url, setting.group, requests, batch_size
                    )
                )
            gateway.close()

            gateway = fresh_gateway()
            server = GatewayHttpServer(
                gateway,
                tls=server_context(str(cert_path), str(key_path)),
                auth=RequestVerifier(store),
            )
            with server:
                runs.setdefault(("secure", batch_size), []).append(
                    _sequential_elapsed(
                        server.url,
                        setting.group,
                        requests,
                        batch_size,
                        tenant="bench",
                        secret="c" * 64,
                        tls_ca=str(cert_path),
                    )
                )
            gateway.close()
    setting.gateway.close()

    rows = []
    overheads = {}
    for batch_size in (0, OVERHEAD_BATCH):
        plain_s = min(runs[("plain", batch_size)])
        secure_s = min(runs[("secure", batch_size)])
        overheads[batch_size] = (plain_s, secure_s, secure_s / plain_s - 1.0)
        shape = "unbatched" if batch_size == 0 else "batch=%d" % batch_size
        rows.append(
            [shape, "plaintext anonymous", "%.1f" % (plain_s * 1000),
             "%.0f" % (len(requests) / plain_s), "-"]
        )
        rows.append(
            [shape, "TLS + HMAC", "%.1f" % (secure_s * 1000),
             "%.0f" % (len(requests) / secure_s),
             "%+.1f%%" % ((secure_s / plain_s - 1.0) * 100)]
        )
    print_table(
        "E13: TLS + HMAC overhead, %d reencrypts (E9 workload), best of %d"
        % (len(requests), OVERHEAD_REPS),
        ["shape", "wire", "total ms", "req/s", "overhead"],
        rows,
    )

    # The budget is gated on the batched leg: per-round-trip security
    # cost (TLS records, one HMAC verify, replay bookkeeping) amortizes
    # across the batch items, which is how a throughput-sensitive
    # deployment runs.  The unbatched overhead is a fixed ~fraction of a
    # millisecond per round trip on TOY-sized requests; it is recorded,
    # and sanity-bounded rather than budget-gated.
    plain_s, secure_s, batched_overhead = overheads[OVERHEAD_BATCH]
    assert secure_s <= plain_s * OVERHEAD_LIMIT, (
        "secured wire overhead %.1f%% exceeds the %.0f%% budget"
        % (batched_overhead * 100, (OVERHEAD_LIMIT - 1) * 100)
    )
    _, _, unbatched_overhead = overheads[0]
    assert unbatched_overhead < 1.0, (
        "unbatched secured wire more than doubled cost: %+.1f%%"
        % (unbatched_overhead * 100)
    )

    _SNAPSHOT["tls_hmac_overhead"] = {
        "requests": len(requests),
        "repetitions": OVERHEAD_REPS,
        "batch_size": OVERHEAD_BATCH,
        "batched_plaintext_best_ms": round(plain_s * 1000, 2),
        "batched_secured_best_ms": round(secure_s * 1000, 2),
        "batched_overhead_fraction": round(batched_overhead, 4),
        "unbatched_overhead_fraction": round(unbatched_overhead, 4),
        "budget_fraction": round(OVERHEAD_LIMIT - 1.0, 4),
    }
    _maybe_record()


# --------------------------------------------- mux-vs-pool curve (PR 10)

CURVE_CLIENTS = (1, 8, 64, 512)
CURVE_REQUESTS = 1024
MUX_AHEAD_AT = 64  # the concurrency level where mux must pull ahead


def _curve_stream(setting):
    """1024 requests cycled over the 96 distinct granted routes."""
    base = [
        request for partition in _thread_partitions(setting) for request in partition
    ]
    stream = []
    while len(stream) < CURVE_REQUESTS:
        stream.extend(base[: CURVE_REQUESTS - len(stream)])
    return stream


def _drive_curve_clients(client, stream, n_clients):
    """Split the stream across n_clients barrier-started threads sharing
    one client object; returns the wall clock of the concurrent phase."""
    chunks = [stream[i::n_clients] for i in range(n_clients)]
    errors: list[BaseException] = []
    lock = threading.Lock()
    start_line = threading.Barrier(n_clients + 1)
    finish_line = threading.Barrier(n_clients + 1)

    def worker(requests):
        try:
            start_line.wait(timeout=120)
            for request in requests:
                client.reencrypt(request)
            finish_line.wait(timeout=600)
        except BaseException as error:  # noqa: BLE001 - reported to the bench
            with lock:
                errors.append(error)
            # Break both barriers so the run fails with the real error
            # instead of deadlocking the remaining workers.
            start_line.abort()
            finish_line.abort()

    threads = [
        threading.Thread(target=worker, args=(chunk,), daemon=True)
        for chunk in chunks
    ]
    for thread in threads:
        thread.start()
    try:
        start_line.wait(timeout=120)
        start = time.perf_counter()
        finish_line.wait(timeout=600)
    except threading.BrokenBarrierError:
        assert not errors, errors
        raise
    elapsed_s = time.perf_counter() - start
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, errors
    return elapsed_s


def test_e13_mux_connection_curve():
    """Leg 5 (PR 10): connections-vs-throughput for the pooled threaded
    wire against the framed mux wire.

    The same warm-cache reencrypt stream is pushed by 1, 8, 64 and 512
    concurrent client threads.  The threaded stack pays one socket (and
    one server handler thread) per concurrent client; the mux stack
    multiplexes every thread over a single framed connection.  At low
    concurrency the two are equivalent; once connection setup and
    per-connection threads dominate (>= 64 clients) the mux side must be
    ahead.  Responses stay on warm gateway caches so the leg measures
    transport structure, not scheme math.
    """
    from repro.service.wire import AsyncGatewayServer, MuxRemoteGateway

    setting = _setting()
    group = setting.group
    stream = _curve_stream(setting)
    # Warm every distinct route once in-process: both transports then
    # serve pure cache hits out of the same gateway object.
    seen = set()
    for request in stream:
        key = id(request)
        if key not in seen:
            seen.add(key)
            setting.gateway.reencrypt(request)

    curve = {}
    rows = []
    for n_clients in CURVE_CLIENTS:
        with GatewayHttpServer(setting.gateway, group) as server:
            pooled = RemoteGateway(
                server.url, group, pool_size=n_clients, trace_requests=False
            )
            threaded_s = _drive_curve_clients(pooled, stream, n_clients)
            dials = pooled.connections_opened
            pooled.close()

        with AsyncGatewayServer(setting.gateway, group, max_streams=1024) as server:
            mux = MuxRemoteGateway(server.url, group, trace_requests=False)
            mux_s = _drive_curve_clients(mux, stream, n_clients)
            peak_streams = mux.peak_streams
            assert mux.connections_opened == 1
            mux.close()

        curve[n_clients] = {
            "threaded_s": threaded_s,
            "mux_s": mux_s,
            "threaded_dials": dials,
            "mux_peak_streams": peak_streams,
        }
        rows.append(
            [
                str(n_clients),
                "%.0f" % (CURVE_REQUESTS / threaded_s),
                str(dials),
                "%.0f" % (CURVE_REQUESTS / mux_s),
                str(peak_streams),
                "%.2fx" % (threaded_s / mux_s),
            ]
        )
    setting.gateway.close()

    print_table(
        "E13: connections vs throughput, %d warm reencrypts per point"
        % CURVE_REQUESTS,
        ["clients", "pool req/s", "dials", "mux req/s", "peak streams", "mux gain"],
        rows,
    )

    # The acceptance anchor: one multiplexed socket overtakes the
    # connection pool once per-connection overhead dominates.
    for n_clients in CURVE_CLIENTS:
        if n_clients < MUX_AHEAD_AT:
            continue
        point = curve[n_clients]
        assert point["mux_s"] < point["threaded_s"], (
            "mux (%.1fms) behind the pool (%.1fms) at %d clients"
            % (point["mux_s"] * 1000, point["threaded_s"] * 1000, n_clients)
        )

    _SNAPSHOT["mux_connection_curve"] = {
        "requests_per_point": CURVE_REQUESTS,
        "mux_ahead_at": MUX_AHEAD_AT,
        "points": {
            str(n_clients): {
                "threaded_req_s": round(CURVE_REQUESTS / point["threaded_s"], 1),
                "mux_req_s": round(CURVE_REQUESTS / point["mux_s"], 1),
                "threaded_dials": point["threaded_dials"],
                "mux_peak_streams": point["mux_peak_streams"],
                "mux_gain": round(point["threaded_s"] / point["mux_s"], 3),
            }
            for n_clients, point in curve.items()
        },
    }
    _maybe_record()


def _maybe_record():
    required = {"adversarial_isolation", "tls_hmac_overhead", "mux_connection_curve"}
    if required <= set(_SNAPSHOT):
        from repro.bench.report import record_bench_snapshot

        record_bench_snapshot(
            "E13",
            {
                "experiment": "E13 secured wire: tenant isolation and TLS+HMAC cost",
                "group": "TOY",
                "threads": THREADS,
                **_SNAPSHOT,
            },
        )
