"""The reduced Tate pairing on type-A supersingular curves.

For ``P, Q`` in the order-``q`` subgroup G1 of ``E(F_p): y^2 = x^3 + x``,
the symmetric pairing is

    e(P, Q) = f_{q,P}(phi(Q)) ^ ((p^2 - 1) / q)

where ``phi(x, y) = (-x, i*y)`` is the distortion map and ``f_{q,P}`` is the
Miller function.  Two classic optimisations apply on this curve:

* **Denominator elimination** — vertical-line values lie in F_p, and every
  element of F_p^* is annihilated by the final exponentiation because
  ``(p^2 - 1)/q = (p - 1) * ((p + 1)/q)``; the Miller loop therefore keeps
  only the tangent/secant line numerators.
* **Frobenius-assisted final exponentiation** — ``f^(p-1)`` is computed as
  ``conj(f) / f`` (one conjugation + one inversion) before the remaining
  ``(p+1)/q`` power.

The default path runs on :class:`~repro.pairing.miller.MillerPrecomp`:
the doubling/addition chain for the first argument is computed in
Jacobian coordinates and folded into per-step line coefficients with two
batch inversions, after which evaluating at any ``Q`` is inversion-free.
Callers with a repeatedly-used first argument (the
:class:`~repro.pairing.group.PairingGroup` cache) pass ``precomp=`` and
skip even that; :func:`tate_pairing_batch` additionally shares the
Frobenius-step inversion across a whole batch of second arguments.  The
original affine Miller loop is kept as :func:`miller_loop_affine` /
:func:`tate_pairing_affine` — the conformance reference the property
suite and the E8 benchmark compare against.
"""

from __future__ import annotations

from repro.bench.counters import record_operation
from repro.ec.curve import Point
from repro.ec.supersingular import SupersingularCurve
from repro.math.fields import Fp2Element
from repro.math.ntheory import modinv
from repro.pairing.miller import (
    MillerPrecomp,
    final_exponentiation_batch,
    final_exponentiation_raw,
    fp2_mul_raw,
)

__all__ = [
    "tate_pairing",
    "tate_pairing_affine",
    "tate_pairing_batch",
    "miller_loop",
    "miller_loop_affine",
    "multi_tate_pairing",
]


# --------------------------------------------------------------------------
# Affine reference path (the seed implementation, kept for conformance).


def _line_value(params: SupersingularCurve, t: Point, s: Point, xq: int, yq: int) -> Fp2Element | None:
    """Evaluate the line through ``t`` and ``s`` at the distorted point.

    ``(xq, yq)`` are the base-field coordinates of Q; the evaluation point is
    ``phi(Q) = (-xq, i*yq)``.  Returns ``None`` when the line is vertical
    (its value lies in F_p and is killed by the final exponentiation).
    """
    p = params.p
    xt, yt = int(t.x), int(t.y)
    if t == s:
        if yt == 0:
            return None  # vertical tangent at a 2-torsion point
        slope = (3 * xt * xt + 1) * modinv(2 * yt, p) % p
    else:
        xs, ys = int(s.x), int(s.y)
        if xt == xs:
            return None  # vertical secant (s == -t)
        slope = (ys - yt) * modinv((xs - xt) % p, p) % p
    # l(phi(Q)) = y_phi - yt - slope * (x_phi - xt) with x_phi = -xq in F_p
    # and y_phi = yq * i, so the value is (-yt - slope*(-xq - xt)) + yq*i.
    real = (-yt - slope * ((-xq - xt) % p)) % p
    return Fp2Element(params.ext_field, real, yq)


def miller_loop_affine(params: SupersingularCurve, point: Point, xq: int, yq: int) -> Fp2Element:
    """``f_{q,P}(phi(Q))`` by the affine textbook loop (reference path)."""
    ext = params.ext_field
    f = ext.one()
    t = point
    bits = bin(params.q)[3:]  # skip the leading 1: standard left-to-right loop
    for bit in bits:
        line = _line_value(params, t, t, xq, yq)
        f = f.square() if line is None else f.square() * line
        t = t.double()
        if bit == "1":
            line = _line_value(params, t, point, xq, yq)
            if line is not None:
                f = f * line
            t = t + point
    if not t.is_infinity():
        raise ArithmeticError("Miller loop did not terminate at infinity; P not of order q")
    return f


def tate_pairing_affine(params: SupersingularCurve, p_point: Point, q_point: Point) -> Fp2Element:
    """``e(P, Q)`` via the affine reference Miller loop (recorded)."""
    record_operation("pairing")
    if p_point.is_infinity() or q_point.is_infinity():
        return params.gt_identity()
    if p_point.curve != params.curve or q_point.curve != params.curve:
        raise ValueError("pairing inputs must be base-curve points")
    f = miller_loop_affine(params, p_point, int(q_point.x), int(q_point.y))
    return _final_exponentiation(params, f)


def _final_exponentiation(params: SupersingularCurve, f: Fp2Element) -> Fp2Element:
    """``f^((p^2-1)/q)``: Frobenius for the (p-1) part, then the cofactor."""
    fa, fb = final_exponentiation_raw(params, f.a, f.b)
    return Fp2Element(params.ext_field, fa, fb)


# --------------------------------------------------------------------------
# Default path: Jacobian-chain Miller precomputation.


def miller_loop(params: SupersingularCurve, point: Point, xq: int, yq: int) -> Fp2Element:
    """Compute the Miller function value ``f_{q,P}(phi(Q))`` (no final exp)."""
    return MillerPrecomp(params, point).evaluate(xq, yq)


def tate_pairing(
    params: SupersingularCurve,
    p_point: Point,
    q_point: Point,
    precomp: MillerPrecomp | None = None,
) -> Fp2Element:
    """The symmetric reduced Tate pairing ``e(P, Q)`` with values in GT.

    Both inputs must lie in the order-``q`` subgroup of ``E(F_p)``.  Returns
    the GT identity when either input is the point at infinity.  Passing a
    :class:`MillerPrecomp` built for ``p_point`` skips the chain walk (the
    pairing is symmetric, so callers may swap arguments to hit one).
    """
    record_operation("pairing")
    if p_point.is_infinity() or q_point.is_infinity():
        return params.gt_identity()
    if p_point.curve != params.curve or q_point.curve != params.curve:
        raise ValueError("pairing inputs must be base-curve points")
    if precomp is None:
        precomp = MillerPrecomp(params, p_point)
    fa, fb = precomp.evaluate_raw(q_point.x.value, q_point.y.value)
    fa, fb = final_exponentiation_raw(params, fa, fb)
    return Fp2Element(params.ext_field, fa, fb)


def multi_tate_pairing(
    params: SupersingularCurve,
    pairs: list[tuple[Point, Point]],
    precomps: list[MillerPrecomp | None] | None = None,
) -> Fp2Element:
    """The product of pairings ``prod_i e(P_i, Q_i)`` with one final exponentiation.

    Classic optimisation for verification equations of the form
    ``e(A, B) * e(C, D) = ...``: the Miller values are multiplied *before*
    the (expensive) final exponentiation, which is then paid once instead
    of once per pair.  Identity inputs contribute a factor 1.  Recorded as
    a single ``pairing`` plus one ``pairing_extra`` per additional pair so
    the E1/E8 cost accounting stays honest.  ``precomps`` optionally
    supplies a :class:`MillerPrecomp` per pair (aligned with ``pairs``,
    ``None`` entries are built on the fly).
    """
    if precomps is None:
        precomps = [None] * len(pairs)
    live = [
        (p, q, pre)
        for (p, q), pre in zip(pairs, precomps)
        if not p.is_infinity() and not q.is_infinity()
    ]
    if not live:
        return params.gt_identity()
    record_operation("pairing")
    if len(live) > 1:
        record_operation("pairing_extra", len(live) - 1)
    p_mod = params.base_field.p
    fa, fb = 1, 0
    first = True
    for p_point, q_point, pre in live:
        if p_point.curve != params.curve or q_point.curve != params.curve:
            raise ValueError("pairing inputs must be base-curve points")
        if pre is None:
            pre = MillerPrecomp(params, p_point)
        ga, gb = pre.evaluate_raw(q_point.x.value, q_point.y.value)
        if first:
            fa, fb = ga, gb
            first = False
        else:
            fa, fb = fp2_mul_raw(fa, fb, ga, gb, p_mod)
    fa, fb = final_exponentiation_raw(params, fa, fb)
    return Fp2Element(params.ext_field, fa, fb)


def tate_pairing_batch(
    params: SupersingularCurve,
    fixed: Point,
    points: list[Point],
    precomp: MillerPrecomp | None = None,
) -> list[Fp2Element]:
    """``[e(fixed, Q) for Q in points]`` sharing one Miller precomputation.

    The chain walk for ``fixed`` is paid once for the whole batch and the
    Frobenius-step inversions of the final exponentiations are folded into
    a single batch inversion; each entry still gets its own cofactor power
    (the results are independent GT elements, unlike
    :func:`multi_tate_pairing`'s single product).  Recorded as one
    ``pairing`` per live entry — each result is a full pairing to callers
    even though the batch amortises most of the work.
    """
    if not points:
        return []
    identity = params.gt_identity()
    if fixed.is_infinity():
        record_operation("pairing", len(points))
        return [identity] * len(points)
    if fixed.curve != params.curve:
        raise ValueError("pairing inputs must be base-curve points")
    record_operation("pairing", len(points))
    if precomp is None:
        precomp = MillerPrecomp(params, fixed)
    live_index = []
    raw_values = []
    for i, q_point in enumerate(points):
        if q_point.is_infinity():
            continue
        if q_point.curve != params.curve:
            raise ValueError("pairing inputs must be base-curve points")
        live_index.append(i)
        raw_values.append(precomp.evaluate_raw(q_point.x.value, q_point.y.value))
    out = [identity] * len(points)
    for i, (fa, fb) in zip(live_index, final_exponentiation_batch(params, raw_values)):
        out[i] = Fp2Element(params.ext_field, fa, fb)
    return out
