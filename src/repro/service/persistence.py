"""Durable proxy-key storage: an append log behind :class:`ProxyKeyTable`.

The paper's proxy is a *long-lived* semi-trusted server: delegators hand
it re-encryption keys once and expect them to keep working.  A gateway
that forgets every delegation on restart is therefore not a reproduction
of the deployment — this module gives each shard a file-backed table that
survives process death and fleet resizes.

Design: a classic write-ahead append log with periodic compaction.

* Every effective table mutation (install / successful revoke) appends
  one JSON line carrying a CRC32 of its payload.  Installs embed the
  proxy key as the library's binary serialization (base64), so the log
  round-trips through :mod:`repro.serialization` and is portable across
  processes.
* The first line is a version header naming the format and the pairing
  group; opening a log written for a different group fails loudly
  instead of deserializing garbage points.
* Replay applies records in order.  A torn or corrupt *tail* — the only
  damage an append-crash can cause — is detected by parse/CRC failure;
  the file is truncated back to the last good record and the table opens
  with every preceding mutation intact.
* Compaction rewrites the log as one install per live key, via a
  temporary file and :func:`os.replace`, so a crash mid-compaction
  leaves either the old log or the new one — never a half file.  It
  triggers automatically once the log holds several times more records
  than live keys.

:class:`DurableProxyKeyTable` wires the store into
:class:`~repro.core.proxy.ProxyKeyTable` through the
:class:`~repro.core.proxy.KeyTableBackend` protocol, so every caller of
the plain table (shards, the gateway, tests) works unchanged on top of
the durable one.
"""

from __future__ import annotations

import base64
import json
import os
import threading
import zlib
from pathlib import Path

from repro.core.api import TIPRE_SCHEME_ID, PreBackend, resolve_backend
from repro.core.ciphertexts import ProxyKey
from repro.core.proxy import KeyIndex, ProxyKeyTable
from repro.pairing.group import PairingGroup

__all__ = [
    "AppendLogKeyStore",
    "DurableProxyKeyTable",
    "LogFormatError",
    "scheme_state_subdir",
]

LOG_FORMAT = "repro-proxy-key-log"
LOG_VERSION = 1


def scheme_state_subdir(state_dir: str | Path, scheme_id: str) -> Path:
    """The per-scheme durable-state directory under a shared ``--state-dir``.

    A server hosting several scheme fleets gives each one an isolated
    key-table directory, so two schemes can never interleave logs (the
    log header's scheme stamp would refuse a mix anyway — this keeps the
    layout legible too).  Slashes in the wire-stable scheme id map to
    ``-`` on disk: ``tipre/v1`` -> ``<state_dir>/tipre-v1``.
    """
    return Path(state_dir) / scheme_id.replace("/", "-")


class LogFormatError(ValueError):
    """The log file's header is missing, unversioned or for another group."""


def _crc_of(payload: str) -> int:
    return zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF


class AppendLogKeyStore:
    """The file side of a durable key table (implements ``KeyTableBackend``).

    The store only ever *appends* during normal operation; reads happen
    once, at :meth:`replay`.  ``record_count`` tracks log growth so the
    owning table can decide when compaction pays for itself.
    """

    def __init__(
        self, path: str | Path, group: PairingGroup | PreBackend, fsync: bool = False
    ):
        self.path = Path(path)
        # ``group`` historically was a bare PairingGroup (implying the
        # paper's scheme); any PreBackend selects another scheme, whose
        # id is stamped into (and checked against) the log header.
        self.backend = resolve_backend(group)
        self.group = self.backend.group
        self.fsync = fsync
        self.record_count = 0
        self.recovered_bytes = 0  # torn tail dropped by the last replay
        self._file = None

    # ----------------------------------------------------------------- replay

    def replay(self) -> list[ProxyKey]:
        """Load the log (creating it if absent) and return the live keys.

        Applies installs and revokes in order; a record that fails to
        parse, fails its CRC or fails deserialization marks the torn
        tail — everything from that byte on is truncated away and the
        preceding state is returned.  A file that is empty, or whose
        header line itself is torn (no trailing newline — a crash during
        log creation), is re-initialized as a fresh log; a *complete*
        header that names the wrong format or group still fails loudly,
        so a foreign file is never silently overwritten.
        """
        if not self.path.exists() or self.path.stat().st_size == 0:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(self._header_line())
            self._open_for_append()
            return []

        live: dict[KeyIndex, ProxyKey] = {}
        good_offset = 0
        records = 0
        with open(self.path, "rb") as handle:
            header = handle.readline()
            if not header.endswith(b"\n"):
                # Torn header write: the log died at creation; start over.
                self.recovered_bytes = len(header)
                with open(self.path, "w", encoding="utf-8") as fresh:
                    fresh.write(self._header_line())
                self._open_for_append()
                return []
            self._check_header(header)
            good_offset = handle.tell()
            for raw in iter(handle.readline, b""):
                at = handle.tell()
                # A line without its newline is a torn append mid-write.
                if not raw.endswith(b"\n") or not self._apply(raw, live):
                    break
                good_offset = at
                records += 1
        size = self.path.stat().st_size
        self.recovered_bytes = size - good_offset
        if self.recovered_bytes:
            with open(self.path, "rb+") as handle:
                handle.truncate(good_offset)
        self.record_count = records
        self._open_for_append()
        return list(live.values())

    def _apply(self, raw: bytes, live: dict[KeyIndex, ProxyKey]) -> bool:
        """Apply one record line to ``live``; False marks the torn tail."""
        try:
            record = json.loads(raw.decode("utf-8"))
            op = record["op"]
            if op == "install":
                payload = record["key"]
                if record["crc"] != _crc_of(payload):
                    return False
                key = self.backend.deserialize_proxy_key(base64.b64decode(payload))
                live[ProxyKeyTable.index_of(key)] = key
            elif op == "revoke":
                index = tuple(record["index"])
                if len(index) != 5 or record["crc"] != _crc_of("|".join(index)):
                    return False
                live.pop(index, None)
            else:
                return False
        except (ValueError, KeyError, TypeError):
            return False
        return True

    def _header_line(self) -> str:
        header = {
            "format": LOG_FORMAT,
            "version": LOG_VERSION,
            "group": self.group.params.name,
            "scheme": self.backend.scheme_id,
        }
        return json.dumps(header, sort_keys=True) + "\n"

    def _check_header(self, raw: bytes) -> None:
        try:
            header = json.loads(raw.decode("utf-8"))
        except ValueError as error:
            raise LogFormatError("unreadable log header in %s" % self.path) from error
        if header.get("format") != LOG_FORMAT or header.get("version") != LOG_VERSION:
            raise LogFormatError(
                "%s is not a version-%d %s file" % (self.path, LOG_VERSION, LOG_FORMAT)
            )
        if header.get("group") != self.group.params.name:
            raise LogFormatError(
                "log %s was written for group %r, not %r"
                % (self.path, header.get("group"), self.group.params.name)
            )
        # Logs from before the backend API carry no scheme field; they
        # were all written by the paper's scheme.
        scheme = header.get("scheme", TIPRE_SCHEME_ID)
        if scheme != self.backend.scheme_id:
            raise LogFormatError(
                "log %s was written under scheme %r, not %r"
                % (self.path, scheme, self.backend.scheme_id)
            )

    # ----------------------------------------------------------------- writes

    def _open_for_append(self) -> None:
        self._file = open(self.path, "a", encoding="utf-8")

    def _append(self, record: dict) -> None:
        if self._file is None:
            raise ValueError("store %s is closed" % self.path)
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.record_count += 1

    def on_install(self, key: ProxyKey) -> None:
        payload = base64.b64encode(self.backend.serialize_proxy_key(key)).decode("ascii")
        self._append({"op": "install", "key": payload, "crc": _crc_of(payload)})

    def on_revoke(self, index: KeyIndex) -> None:
        self._append(
            {"op": "revoke", "index": list(index), "crc": _crc_of("|".join(index))}
        )

    def rewrite(self, keys: list[ProxyKey]) -> None:
        """Compact: replace the log with one install per live key, atomically."""
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(self._header_line())
            for key in keys:
                payload = base64.b64encode(self.backend.serialize_proxy_key(key)).decode(
                    "ascii"
                )
                handle.write(
                    json.dumps(
                        {"op": "install", "key": payload, "crc": _crc_of(payload)},
                        sort_keys=True,
                    )
                    + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        if self._file is not None:
            self._file.close()
        os.replace(tmp, self.path)
        self.record_count = len(keys)
        self._open_for_append()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def delete(self) -> None:
        """Close and remove the log file (a retired shard's state)."""
        self.close()
        self.path.unlink(missing_ok=True)


class DurableProxyKeyTable(ProxyKeyTable):
    """A :class:`ProxyKeyTable` whose state survives process death.

    Opening the table replays the append log at ``path``; every later
    install/revoke is logged before the call returns.  The table
    self-compacts when the log exceeds ``auto_compact_ratio`` times the
    live key count (and at least ``auto_compact_min`` records), so a
    grant/revoke-heavy workload cannot grow the file without bound.
    All mutations are serialized by an internal lock — shards may be
    driven from a thread pool.
    """

    def __init__(
        self,
        path: str | Path,
        group: PairingGroup | PreBackend,
        auto_compact_ratio: float = 4.0,
        auto_compact_min: int = 256,
        fsync: bool = False,
    ):
        if auto_compact_ratio < 1.0:
            raise ValueError("auto_compact_ratio must be >= 1")
        self._store = AppendLogKeyStore(path, group, fsync=fsync)
        super().__init__(backend=self._store)
        self._lock = threading.RLock()
        self.auto_compact_ratio = auto_compact_ratio
        self.auto_compact_min = auto_compact_min
        self.load(self._store.replay())

    @property
    def path(self) -> Path:
        return self._store.path

    @property
    def log_records(self) -> int:
        """Records currently in the log (grows until compaction)."""
        return self._store.record_count

    @property
    def recovered_bytes(self) -> int:
        """Bytes of torn tail dropped when the table was opened."""
        return self._store.recovered_bytes

    def install(self, key: ProxyKey) -> None:
        with self._lock:
            super().install(key)
            self._maybe_compact()

    def revoke(self, index: KeyIndex) -> bool:
        with self._lock:
            removed = super().revoke(index)
            if removed:
                self._maybe_compact()
            return removed

    def _maybe_compact(self) -> None:
        if self._store.record_count < self.auto_compact_min:
            return
        if self._store.record_count > self.auto_compact_ratio * max(1, len(self)):
            self.compact()

    def compact(self) -> None:
        """Shrink the log to exactly the live keys (crash-safe rewrite)."""
        with self._lock:
            self._store.rewrite(list(self))

    def close(self) -> None:
        with self._lock:
            self._store.close()

    def delete(self) -> None:
        """Close and remove the backing file (used when a shard retires)."""
        with self._lock:
            self._store.delete()
