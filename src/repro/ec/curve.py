"""Short Weierstrass elliptic curves ``y^2 = x^3 + a*x + b``.

The implementation is generic over the coefficient field: the same
:class:`EllipticCurve` works over F_p (the base group G1 lives there) and
over F_{p^2} (where the distortion map sends points for pairing
evaluation).  Points are immutable; the identity is represented explicitly
by :attr:`Point.infinity`.

Single additions stay affine (one field inversion each — the Miller loop
needs the slopes anyway and the code is easy to audit), but scalar
multiplication over prime fields routes through the inversion-free
Jacobian kernels in :mod:`repro.ec.jacobian` and normalises once at the
end.  :meth:`Point.mul_schoolbook` keeps the affine double-and-add ladder
as the conformance reference; property tests assert both paths produce
bit-identical points.
"""

from __future__ import annotations

from repro.ec import jacobian as _jac
from repro.math.fields import PrimeField

__all__ = ["EllipticCurve", "Point"]


class EllipticCurve:
    """The curve ``y^2 = x^3 + a*x + b`` over ``field``."""

    __slots__ = ("field", "a", "b")

    def __init__(self, field, a, b):
        self.field = field
        self.a = a if not isinstance(a, int) else field(a)
        self.b = b if not isinstance(b, int) else field(b)
        disc = 4 * self.a * self.a * self.a + 27 * self.b * self.b
        if disc.is_zero():
            raise ValueError("singular curve: 4a^3 + 27b^2 = 0")

    def point(self, x, y) -> "Point":
        """Construct a point, verifying the curve equation."""
        x = x if not isinstance(x, int) else self.field(x)
        y = y if not isinstance(y, int) else self.field(y)
        point = Point(self, x, y)
        if not self.contains(point):
            raise ValueError("point is not on the curve")
        return point

    def infinity(self) -> "Point":
        """The identity element of the curve group."""
        return Point(self, None, None)

    def contains(self, point: "Point") -> bool:
        """Check the curve equation (the identity is always contained)."""
        if point.is_infinity():
            return point.curve == self
        lhs = point.y * point.y
        rhs = point.x * point.x * point.x + self.a * point.x + self.b
        return point.curve == self and lhs == rhs

    def lift_x(self, x, y_parity: int = 0) -> "Point | None":
        """Return a point with the given x-coordinate, or None.

        ``y_parity`` selects between the two roots by the parity of the
        y-coordinate's integer value (base-field curves only).
        """
        x = x if not isinstance(x, int) else self.field(x)
        rhs = x * x * x + self.a * x + self.b
        if not rhs.is_square():
            return None
        y = rhs.sqrt()
        if int(y) % 2 != y_parity % 2:
            y = -y
        return Point(self, x, y)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, EllipticCurve)
            and self.field == other.field
            and self.a == other.a
            and self.b == other.b
        )

    def __hash__(self) -> int:
        return hash(("EllipticCurve", self.field, self.a, self.b))

    def __repr__(self) -> str:
        return "EllipticCurve(y^2 = x^3 + %r*x + %r over %r)" % (self.a, self.b, self.field)


class Point:
    """An affine point on an :class:`EllipticCurve`, or the identity."""

    __slots__ = ("curve", "x", "y")

    def __init__(self, curve: EllipticCurve, x, y):
        object.__setattr__(self, "curve", curve)
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def __setattr__(self, name, value):
        raise AttributeError("Point is immutable")

    def is_infinity(self) -> bool:
        return self.x is None

    def __neg__(self) -> "Point":
        if self.is_infinity():
            return self
        return Point(self.curve, self.x, -self.y)

    def __add__(self, other: "Point") -> "Point":
        if not isinstance(other, Point):
            return NotImplemented
        if self.curve != other.curve:
            raise ValueError("points are on different curves")
        if self.is_infinity():
            return other
        if other.is_infinity():
            return self
        if self.x == other.x:
            if self.y == -other.y:
                return self.curve.infinity()
            return self._double()
        slope = (other.y - self.y) / (other.x - self.x)
        x3 = slope * slope - self.x - other.x
        y3 = slope * (self.x - x3) - self.y
        return Point(self.curve, x3, y3)

    def __sub__(self, other: "Point") -> "Point":
        return self + (-other)

    def _double(self) -> "Point":
        if self.is_infinity() or self.y.is_zero():
            return self.curve.infinity()
        slope = (3 * self.x * self.x + self.curve.a) / (2 * self.y)
        x3 = slope * slope - self.x - self.x
        y3 = slope * (self.x - x3) - self.y
        return Point(self.curve, x3, y3)

    def double(self) -> "Point":
        """Public doubling (used by the Miller loop)."""
        return self._double()

    def __mul__(self, scalar: int) -> "Point":
        if not isinstance(scalar, int):
            return NotImplemented
        if scalar < 0:
            return (-self) * (-scalar)
        if isinstance(self.curve.field, PrimeField):
            return self._mul_jacobian(scalar)
        return self.mul_schoolbook(scalar)

    __rmul__ = __mul__

    def _mul_jacobian(self, scalar: int) -> "Point":
        """Inversion-free ladder for prime-field curves (one final modinv)."""
        if scalar == 0 or self.is_infinity():
            return self.curve.infinity()
        field = self.curve.field
        affine = _jac.jac_scalar_mul(
            self.x.value, self.y.value, scalar, self.curve.a.value, field.p
        )
        if affine is None:
            return self.curve.infinity()
        return Point(self.curve, field(affine[0]), field(affine[1]))

    def mul_schoolbook(self, scalar: int) -> "Point":
        """Affine double-and-add: the conformance reference for every
        optimised multiplication path (Jacobian, wNAF, fixed-base)."""
        if not isinstance(scalar, int):
            raise TypeError("scalar must be an int")
        if scalar < 0:
            return (-self).mul_schoolbook(-scalar)
        result = self.curve.infinity()
        addend = self
        while scalar:
            if scalar & 1:
                result = result + addend
            addend = addend._double()
            scalar >>= 1
        return result

    def __eq__(self, other) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        if self.curve != other.curve:
            return False
        if self.is_infinity() or other.is_infinity():
            return self.is_infinity() and other.is_infinity()
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        if self.is_infinity():
            return hash((self.curve, "infinity"))
        return hash((self.curve, self.x, self.y))

    def __repr__(self) -> str:
        if self.is_infinity():
            return "Point(infinity)"
        return "Point(%r, %r)" % (self.x, self.y)
