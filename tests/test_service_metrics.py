"""Tests for gateway metrics: percentiles, throughput, shard balance."""

from repro.service.cache import LruCache
from repro.service.metrics import GatewayMetrics, LatencySummary


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestLatencySummary:
    def test_empty_is_all_zero(self):
        summary = LatencySummary.of([])
        assert (summary.count, summary.p50_ms, summary.max_ms) == (0, 0.0, 0.0)

    def test_percentiles_over_known_samples(self):
        summary = LatencySummary.of([float(i) for i in range(1, 101)])  # 1..100 ms
        assert summary.count == 100
        assert summary.p50_ms == 50.0
        assert summary.p90_ms == 90.0
        assert summary.p99_ms == 99.0
        assert summary.max_ms == 100.0

    def test_single_sample(self):
        summary = LatencySummary.of([7.5])
        assert summary.p50_ms == summary.p99_ms == summary.max_ms == 7.5

    def test_two_samples_p50_is_the_min_not_the_max(self):
        """Regression: int(q * n) indexed past the median — p50 of two
        samples reported the max, inflating every published p50/p90."""
        summary = LatencySummary.of([1.0, 9.0])
        assert summary.p50_ms == 1.0  # rank int(0.50 * 1) = 0
        assert summary.p90_ms == 1.0  # rank int(0.90 * 1) = 0
        assert summary.max_ms == 9.0

    def test_four_samples_exact_ranks(self):
        summary = LatencySummary.of([4.0, 2.0, 3.0, 1.0])
        assert summary.p50_ms == 2.0  # rank int(0.50 * 3) = 1
        assert summary.p90_ms == 3.0  # rank int(0.90 * 3) = 2
        assert summary.p99_ms == 3.0  # rank int(0.99 * 3) = 2
        assert summary.max_ms == 4.0


class TestSnapshot:
    def test_throughput_uses_injected_clock(self):
        clock = ManualClock()
        metrics = GatewayMetrics(clock=clock)
        for _ in range(10):
            metrics.observe("reencrypt", 1.0, "shard-00")
        clock.now = 2.0
        snapshot = metrics.snapshot()
        assert snapshot.throughput_rps == 5.0
        assert snapshot.elapsed_s == 2.0

    def test_zero_elapsed_throughput_is_zero(self):
        metrics = GatewayMetrics(clock=ManualClock())
        metrics.observe("reencrypt", 1.0, "shard-00")
        assert metrics.snapshot().throughput_rps == 0.0

    def test_shard_imbalance(self):
        metrics = GatewayMetrics(clock=ManualClock())
        for _ in range(30):
            metrics.observe("reencrypt", 1.0, "shard-00")
        for _ in range(10):
            metrics.observe("reencrypt", 1.0, "shard-01")
        # max/mean = 30 / 20
        assert metrics.snapshot().shard_imbalance == 1.5

    def test_perfect_balance_and_empty_are_one(self):
        metrics = GatewayMetrics(clock=ManualClock())
        assert metrics.snapshot().shard_imbalance == 1.0
        metrics.observe("reencrypt", 1.0, "a")
        metrics.observe("reencrypt", 1.0, "b")
        assert metrics.snapshot().shard_imbalance == 1.0

    def test_rejections_split_by_cause(self):
        metrics = GatewayMetrics(clock=ManualClock())
        metrics.observe_rejection(rate_limited=True)
        metrics.observe_rejection()
        snapshot = metrics.snapshot()
        assert snapshot.rate_limited == 1
        assert snapshot.rejected == 1
        assert snapshot.requests_total == 2
        assert snapshot.served == 0

    def test_rows_render_for_the_report_table(self):
        clock = ManualClock()
        metrics = GatewayMetrics(clock=clock)
        metrics.observe("reencrypt", 2.0, "shard-00")
        clock.now = 1.0
        cache = LruCache(4, name="key_cache")
        cache.put("k", 1)
        cache.get("k")
        rows = metrics.snapshot(caches={"key_cache": cache.stats()}).rows()
        labels = [row[0] for row in rows]
        assert "throughput req/s" in labels
        assert "reencrypt p50/p90 ms" in labels
        assert "key_cache hit rate" in labels
        assert all(len(row) == 2 for row in rows)
