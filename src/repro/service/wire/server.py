"""The gateway behind HTTP: stdlib threading server, stable error bodies.

:class:`GatewayHttpServer` puts one or *several*
:class:`~repro.service.gateway.ReEncryptionGateway` fleets (or anything
with the same typed API) behind ``http.server.ThreadingHTTPServer`` —
the paper's semi-trusted proxy finally answers over a socket instead of
a method call, and one process can host a fleet per scheme backend.

Every hosted fleet owns a scheme-id-prefixed route family::

    POST /v1/{scheme}/grant        install a proxy key
    POST /v1/{scheme}/revoke       remove a delegation
    POST /v1/{scheme}/reencrypt    transform one ciphertext, or a batch
    POST /v1/{scheme}/fetch        read stored ciphertext blobs
    POST /v1/{scheme}/resize       rebalance that fleet's shards
    GET  /v1/{scheme}/metrics      that fleet's live metrics snapshot
    GET  /v1/{scheme}/scheme       that fleet's scheme document

where ``{scheme}`` is the backend's wire-stable id (slash included:
``/v1/tipre/v1/reencrypt``).  Two routes are scheme-neutral::

    GET  /v1/schemes               every hosted fleet's scheme document
    GET  /v1/health                liveness probe (no gateway call)
    GET  /v1/events?tail=N         newest N structured server events

and the *legacy unprefixed* family (``/v1/grant``, ``/v1/reencrypt``,
``/v1/scheme``, ...) keeps working verbatim whenever the server hosts
exactly one scheme — a pre-multi-scheme client or a bare ``curl`` never
notices the difference.  On a multi-scheme server an unprefixed
operation is ambiguous and is rejected as ``invalid-request`` naming the
hosted ids.

Each fleet is fully isolated: its own shards, caches, durable key
tables and metrics — the only shared thing is the listening socket.
Mismatched messages that reach a fleet anyway (an element envelope for
another scheme) are rejected by the codec as ``invalid-request``.

Every failure body is ``{"wire": ..., "type": "error", "body": {code,
message}}`` with the taxonomy's stable ``code``, and the HTTP status is
derived from that code (`429` rate-limited, `404` no-delegation /
entry-not-found, `400` invalid-request, `503` no-store, `500` anything
else), so HTTP-level callers and :class:`RemoteGateway` agree on
semantics without parsing prose.

Thread-safety comes for free: every gateway already serializes on its
shard locks, so the threading server can hand every connection its own
handler thread.
"""

from __future__ import annotations

import dataclasses
import json
import random
import threading
import traceback
from collections import OrderedDict
from contextlib import nullcontext
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Sequence
from urllib.parse import parse_qs, urlsplit

from repro.core.api import PreBackend, resolve_backend
from repro.pairing.group import PairingGroup
from repro.service.gateway import (
    EntryMissingError,
    FetchRequest,
    GatewayError,
    GrantRequest,
    InvalidRequestError,
    ReEncryptRequest,
    RevokeRequest,
)
from repro.service.auth.errors import ForbiddenError
from repro.service.auth.signing import AUTH_HEADER
from repro.service.telemetry import (
    TRACE_HEADER,
    EventLog,
    TraceContext,
    render_prometheus,
    span_to_json,
)
from repro.service.wire.codec import (
    GrantBatchRequest,
    GrantBatchResponse,
    KeyExportRequest,
    KeyExportResponse,
    ReEncryptBatchRequest,
    ReEncryptBatchResponse,
    ResizeRequest,
    from_wire,
    neutral_error_to_wire,
    scheme_document,
    to_wire,
)

__all__ = [
    "GatewayHttpServer",
    "IdempotencyWindow",
    "STATUS_BY_CODE",
    "PROMETHEUS_CONTENT_TYPE",
    "build_host_map",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

# Taxonomy code -> HTTP status.  Codes not listed map to 500.
STATUS_BY_CODE = {
    "rate-limited": 429,
    "quota-exceeded": 429,
    "no-delegation": 404,
    "entry-not-found": 404,
    "invalid-request": 400,
    "no-store": 503,
    # A routing tier that cannot reach a shard process is the server
    # being (partially) unavailable, not the request being wrong.
    "wire-transport": 503,
    # Authentication failures (who are you?) are 401; an authenticated
    # tenant whose roles refuse the operation is 403.
    "auth-failed": 401,
    "auth-required": 401,
    "auth-unknown-tenant": 401,
    "auth-bad-signature": 401,
    "auth-stale-timestamp": 401,
    "auth-replay": 401,
    "auth-forbidden": 403,
}

_MAX_BODY_BYTES = 64 * 1024 * 1024  # refuse absurd Content-Length up front

# The per-fleet operation names (the last path segment after the scheme
# prefix, or the whole tail for the legacy unprefixed family).
_POST_OPS = frozenset({"grant", "revoke", "reencrypt", "fetch", "resize", "export"})
_GET_OPS = frozenset({"metrics", "scheme"})

# Mutations whose wire replay must be deduplicated by client request id.
_IDEMPOTENT_OPS = frozenset({"revoke", "resize"})


def build_host_map(gateway=None, group=None, gateways=None):
    """Validate the hosted-fleet arguments into ``(hosts, scheme_ids)``.

    Shared by the threaded and asyncio servers so both accept the exact
    same ``gateway``/``group``/``gateways`` spellings: ``hosts`` maps
    each scheme id to its ``(fleet, backend)`` pair, ``scheme_ids``
    keeps the hosting order.
    """
    if gateways is None:
        if gateway is None:
            raise ValueError("pass a gateway (or a gateways sequence)")
        gateways = [gateway]
    elif gateway is not None:
        raise ValueError("pass either gateway or gateways, not both")
    gateways = list(gateways)
    if not gateways:
        raise ValueError("gateways must not be empty")
    hosts: dict[str, tuple] = {}
    scheme_ids: list[str] = []
    for fleet in gateways:
        # The wire speaks each gateway's own backend when it has one (an
        # in-process ReEncryptionGateway always does); ``group`` is the
        # legacy spelling and the fallback for bare gateway-like objects.
        backend = getattr(fleet, "backend", None)
        if backend is None:
            if group is None:
                raise ValueError("gateway has no backend; pass group or backend")
            backend = resolve_backend(group)
        if backend.scheme_id in hosts:
            raise ValueError(
                "scheme %r is already hosted; one fleet per scheme"
                % backend.scheme_id
            )
        hosts[backend.scheme_id] = (fleet, backend)
        scheme_ids.append(backend.scheme_id)
    return hosts, scheme_ids


class IdempotencyWindow:
    """A bounded single-flight LRU of completed mutation responses.

    Revoke and resize are not blind replays: rerunning one against the
    state its first run produced mis-reports the outcome (``removed``
    flips to False, a second migration moves zero keys).  So the server
    remembers, per ``(scheme, op, request_id)``, the encoded response of
    the execution that completed — a retry carrying the same id gets
    that response verbatim instead of a second execution.

    :meth:`claim` is also a single-flight gate: while one thread
    executes a key, a duplicate blocks until the executor finishes (or
    its wait times out and it takes over), so the drop-retry race — the
    retry arriving while the original request is still running — cannot
    execute twice either.  Failed executions are never recorded; their
    retry executes for real.

    Each claim is stamped with an owner token.  When a waiter takes
    over a stuck key, the original (slow, not dead) executor's
    :meth:`complete` arrives holding a stale token: it must neither
    record its payload nor release the taker's in-flight claim —
    otherwise a third retry would see a free key and execute again
    while the taker is still running.
    """

    def __init__(self, capacity: int = 4096, wait_timeout: float = 30.0):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.wait_timeout = wait_timeout
        self.hits = 0
        self.takeovers = 0
        self.stale_completions = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, str] = OrderedDict()
        self._inflight: dict[tuple, _InflightClaim] = {}

    def claim(self, key: tuple) -> "tuple[str | None, _InflightClaim | None]":
        """``(recorded_response, None)``, or ``(None, token)`` once the
        caller owns execution; the token must be passed to :meth:`complete`."""
        while True:
            with self._lock:
                payload = self._entries.get(key)
                if payload is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return payload, None
                claim = self._inflight.get(key)
                if claim is None:
                    claim = _InflightClaim()
                    self._inflight[key] = claim
                    return None, claim
            if not claim.event.wait(self.wait_timeout):
                with self._lock:
                    # The executor is stuck or died without completing;
                    # take over if nobody else already has.  The stale
                    # owner's eventual complete() sees a token mismatch
                    # and cannot clobber this fresh claim.
                    if self._inflight.get(key) is claim:
                        takeover = _InflightClaim()
                        self._inflight[key] = takeover
                        self.takeovers += 1
                        return None, takeover
                # Someone else already took over (or the executor just
                # finished): loop and wait on whatever claim is current.

    def complete(self, key: tuple, token: "_InflightClaim", payload: str | None) -> None:
        """Record a successful payload (or release the claim on failure).

        A stale ``token`` — one whose claim was taken over while it ran —
        records nothing and leaves the current owner's claim in place; it
        only wakes threads still parked on the stale event so they re-queue
        behind the current owner.
        """
        with self._lock:
            if self._inflight.get(key) is not token:
                self.stale_completions += 1
            else:
                del self._inflight[key]
                if payload is not None:
                    self._entries[key] = payload
                    self._entries.move_to_end(key)
                    while len(self._entries) > self.capacity:
                        self._entries.popitem(last=False)
        token.event.set()


class _InflightClaim:
    """One in-flight execution's identity: its owner token and wake event."""

    __slots__ = ("event",)

    def __init__(self):
        self.event = threading.Event()


class _UnknownEndpoint(Exception):
    def __init__(self, path: str):
        super().__init__(path)
        self.path = path


class _GatewayRequestHandler(BaseHTTPRequestHandler):
    """One HTTP request -> one gateway call, errors mapped to the taxonomy."""

    server_version = "repro-gateway/1.0"
    # HTTP/1.1 + explicit Content-Length on every response enables client
    # keep-alive without chunked encoding.
    protocol_version = "HTTP/1.1"
    # Persistent connections interleave small writes both ways; leaving
    # Nagle on stalls every keep-alive round trip behind a delayed ACK.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        # Not stderr (operators never see a daemon's stderr) and not a
        # silent pass (PR 6): every line the stdlib would have printed
        # becomes a structured event in the server's bounded event log.
        log = getattr(self.server, "wire_event_log", None)
        if log is not None:
            log.emit(
                "http-log",
                client=self.client_address[0],
                message=format % args,
            )

    # ------------------------------------------------------------- plumbing

    def _send_payload(
        self, status: int, data: bytes, content_type: str, close: bool = False
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        # Echo the request's trace header so the caller can correlate the
        # response (and any retrieved trace) with the id it generated.
        trace_echo = getattr(self, "_trace_echo", None)
        if trace_echo:
            self.send_header(TRACE_HEADER, trace_echo)
        if close:
            # Also flips self.close_connection in the base class, so the
            # keep-alive loop ends after this response.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(data)

    def _send_json(self, status: int, payload: str, close: bool = False) -> None:
        self._send_payload(
            status, payload.encode("utf-8"), "application/json", close=close
        )

    def _send_text(self, status: int, payload: str, content_type: str) -> None:
        self._send_payload(status, payload.encode("utf-8"), content_type)

    def _send_gateway_error(
        self, error: GatewayError, backend: PreBackend | None = None, close: bool = False
    ) -> None:
        """Error body, scheme-tagged when a fleet was resolved, neutral else."""
        status = STATUS_BY_CODE.get(error.code, 500)
        payload = (
            to_wire(backend, error) if backend is not None else neutral_error_to_wire(error)
        )
        self._send_json(status, payload, close=close)

    def _send_unknown_endpoint(self, path: str) -> None:
        # Unknown endpoints (and unknown scheme prefixes) are 404s, but
        # carry the stable invalid-request body like every other rejection.
        self._send_json(
            404, neutral_error_to_wire(InvalidRequestError("unknown endpoint %r" % path))
        )

    def _read_body(self) -> bytes:
        if self.headers.get("Transfer-Encoding"):
            # Chunked bodies are never drained here, which would leave
            # framing bytes to desync the keep-alive stream; the caller
            # closes the connection on this rejection.
            raise InvalidRequestError("Transfer-Encoding is not supported")
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise InvalidRequestError("invalid Content-Length") from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise InvalidRequestError("unacceptable Content-Length %d" % length)
        return self.rfile.read(length)

    def _resolve(self, path: str):
        """Route a path to ``(op, gateway, backend)``.

        ``/v1/{scheme}/{op}`` selects the hosted fleet whose scheme id
        matches; the id's own slash is part of the prefix, so the *last*
        segment is the operation.  A bare ``/v1/{op}`` is the legacy
        spelling and only resolves while exactly one fleet is hosted.
        """
        if not path.startswith("/v1/"):
            raise _UnknownEndpoint(path)
        rest = path[len("/v1/"):]
        hosts = self.server.wire_hosts
        if "/" in rest:
            scheme_id, op = rest.rsplit("/", 1)
            pair = hosts.get(scheme_id)
            if pair is None:
                raise _UnknownEndpoint(path)
            return op, pair[0], pair[1]
        if self.server.wire_single is None:
            raise InvalidRequestError(
                "this server hosts several schemes (%s); use /v1/<scheme>/%s"
                % (", ".join(self.server.wire_scheme_ids), rest)
            )
        gateway, backend = hosts[self.server.wire_single]
        return rest, gateway, backend

    def _send_prometheus(self, hosts: dict) -> None:
        snapshots = {
            scheme_id: fleet.snapshot() for scheme_id, (fleet, _backend) in hosts.items()
        }
        self._send_text(200, render_prometheus(snapshots), PROMETHEUS_CONTENT_TYPE)

    def _send_trace(self, trace_id: str) -> None:
        """Scheme-neutral trace retrieval: search every hosted fleet's ring."""
        for scheme_id in self.server.wire_scheme_ids:
            fleet, _backend = self.server.wire_hosts[scheme_id]
            tracer = getattr(fleet, "tracer", None)
            if tracer is None:
                continue
            spans = tracer.trace(trace_id)
            if spans:
                self._send_json(
                    200,
                    json.dumps(
                        {
                            "trace": trace_id,
                            "scheme": scheme_id,
                            "spans": [span_to_json(span) for span in spans],
                        },
                        sort_keys=True,
                    ),
                )
                return
        self._send_json(
            404,
            neutral_error_to_wire(EntryMissingError("no trace %r" % trace_id)),
        )

    def _send_events(self, tail: str) -> None:
        """Scheme-neutral event retrieval: the newest ``tail`` entries of
        the server's structured event log, oldest first."""
        log = getattr(self.server, "wire_event_log", None)
        if log is None:
            self._send_json(
                404,
                neutral_error_to_wire(
                    EntryMissingError("this server keeps no event log")
                ),
            )
            return
        count: int | None = None
        if tail:
            try:
                count = int(tail)
            except ValueError:
                count = -1
            if count < 1:
                self._send_json(
                    400,
                    neutral_error_to_wire(
                        InvalidRequestError("tail must be a positive integer")
                    ),
                )
                return
        self._send_json(
            200, json.dumps({"events": log.tail(count)}, sort_keys=True)
        )

    def _sanitized_trace_echo(self) -> str | None:
        """The trace header to echo: re-serialized from the parse, or None.

        Reflecting the raw client value would let a header with embedded
        CR/LF split the keep-alive response stream; round-tripping through
        :meth:`TraceContext.from_header` (strict hex ids) drops anything
        malformed and re-serializes the rest from parts we generated.
        """
        trace = TraceContext.from_header(self.headers.get(TRACE_HEADER))
        return trace.to_header() if trace is not None else None

    def _authorize_observability(self, op: str) -> bool:
        """Signature gate for GET observability routes on an auth server.

        Metrics, events and traces expose tenant names, audit detail and
        tracebacks — on a server with a verifier installed they demand a
        valid signature like any POST (health and scheme discovery stay
        open; they are what unauthenticated clients negotiate against).
        Any valid tenant may read them: observability is not role-gated,
        only authenticated.  Sends the 401 itself when the gate fails.
        """
        verifier = getattr(self.server, "wire_auth", None)
        if verifier is None:
            return True
        try:
            # The client signs the path it requests, query string included.
            verifier.verify("GET", self.path, b"", self.headers.get(AUTH_HEADER))
        except GatewayError as error:
            log = getattr(self.server, "wire_event_log", None)
            if log is not None:
                log.emit(
                    "auth-failure",
                    op=op,
                    code=error.code,
                    client=self.client_address[0],
                    detail=str(error),
                )
            self._send_gateway_error(error)
            return False
        return True

    # ------------------------------------------------------------ endpoints

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
        self._trace_echo = self._sanitized_trace_echo()
        parts = urlsplit(self.path)
        base = parts.path
        query = parse_qs(parts.query)
        out_format = (query.get("format") or [""])[0]
        if base == "/v1/health":
            self._send_json(200, json.dumps({"status": "ok"}))
            return
        if base == "/v1/schemes":
            self._send_json(
                200,
                json.dumps(
                    {
                        "schemes": [
                            scheme_document(self.server.wire_hosts[scheme_id][1])
                            for scheme_id in self.server.wire_scheme_ids
                        ]
                    },
                    sort_keys=True,
                ),
            )
            return
        if base.startswith("/v1/trace/"):
            if self._authorize_observability("trace"):
                self._send_trace(base[len("/v1/trace/"):])
            return
        if base == "/v1/events":
            if self._authorize_observability("events"):
                self._send_events((query.get("tail") or [""])[0])
            return
        if base == "/v1/metrics" and out_format == "prometheus":
            # One scrape covers every hosted fleet (scheme is a label), so
            # the unprefixed spelling stays meaningful on a multi-scheme
            # server even though the JSON spelling would be ambiguous.
            if self._authorize_observability("metrics"):
                self._send_prometheus(self.server.wire_hosts)
            return
        try:
            op, gateway, backend = self._resolve(base)
            if op not in _GET_OPS:
                raise _UnknownEndpoint(base)
        except _UnknownEndpoint as error:
            self._send_unknown_endpoint(error.path)
            return
        except InvalidRequestError as error:
            self._send_gateway_error(error)
            return
        if op == "metrics":
            if not self._authorize_observability("metrics"):
                return
            if out_format == "prometheus":
                self._send_prometheus({backend.scheme_id: (gateway, backend)})
            else:
                self._send_json(200, to_wire(backend, gateway.snapshot()))
        else:  # op == "scheme"
            self._send_json(200, json.dumps(scheme_document(backend), sort_keys=True))

    def _authenticate(self, op: str, base: str, raw: bytes, gateway, backend):
        """Verify the request signature and the tenant's role for ``op``.

        Returns the authenticated tenant name, or ``None`` when the
        server runs without a credential store (anonymous mode — the
        default, and bit-identical to the pre-auth wire).  Raises the
        auth taxonomy errors; callers map them like any gateway error.
        """
        verifier = getattr(self.server, "wire_auth", None)
        if verifier is None:
            return None
        credential = verifier.verify("POST", base, raw, self.headers.get(AUTH_HEADER))
        if not verifier.store.allows(credential, op):
            raise ForbiddenError(
                "tenant %r (roles: %s) may not call %r"
                % (credential.tenant, ", ".join(credential.roles) or "-", op)
            )
        return credential.tenant

    def _auth_failure(self, op: str, gateway, backend, error: GatewayError) -> None:
        """Record one auth rejection: metrics, structured event, error body."""
        header = self.headers.get(AUTH_HEADER) or ""
        tenant = None
        for part in header.split(";"):
            if part.startswith("tenant="):
                tenant = part[len("tenant="):] or None
                break
        metrics = getattr(gateway, "metrics", None)
        if metrics is not None and hasattr(metrics, "observe_auth_failure"):
            metrics.observe_auth_failure(error.code, op=op, tenant=tenant)
        log = getattr(self.server, "wire_event_log", None)
        if log is not None:
            log.emit(
                "auth-failure",
                scheme=backend.scheme_id,
                op=op,
                code=error.code,
                tenant=tenant,
                client=self.client_address[0],
                detail=str(error),
            )
        self._send_gateway_error(error, backend)

    @staticmethod
    def _stamp_tenant(request, tenant: str):
        """Rewrite the request's self-declared tenant to the verified one.

        Quotas, rate limits, metrics and audit records must attribute to
        the identity that *signed* the request, not whatever the body
        claims — otherwise one tenant spends another's budget.
        """
        if isinstance(request, (GrantBatchRequest, ReEncryptBatchRequest)):
            return dataclasses.replace(
                request,
                requests=tuple(
                    dataclasses.replace(item, tenant=tenant)
                    for item in request.requests
                ),
            )
        return dataclasses.replace(request, tenant=tenant)

    def _dispatch(
        self, op: str, gateway, backend: PreBackend, raw: bytes, trace,
        auth_tenant: str | None = None,
    ):
        """Decode, execute and encode one operation under optional spans.

        ``trace`` is the request's parsed :class:`TraceContext` (or None);
        it is only forwarded to gateways that actually expose a telemetry
        surface — bare gateway-like test doubles keep their old call
        signatures.  ``auth_tenant`` (set only on authenticated servers)
        overrides every decoded request's tenant field.
        """
        tracer = getattr(gateway, "tracer", None)
        traced = tracer is not None and trace is not None
        root = tracer.span(trace, "http:%s" % op) if traced else nullcontext(None)
        with root as http_span:
            sub = http_span.context if http_span is not None else None
            with (
                tracer.span(sub, "decode", {"bytes": len(raw)})
                if traced
                else nullcontext()
            ):
                if op == "grant":
                    request = from_wire(
                        backend, raw, expect=(GrantRequest, GrantBatchRequest)
                    )
                elif op == "revoke":
                    request = from_wire(backend, raw, expect=RevokeRequest)
                elif op == "reencrypt":
                    request = from_wire(
                        backend, raw, expect=(ReEncryptRequest, ReEncryptBatchRequest)
                    )
                elif op == "fetch":
                    request = from_wire(backend, raw, expect=FetchRequest)
                elif op == "export":
                    request = from_wire(backend, raw, expect=KeyExportRequest)
                else:  # op == "resize"
                    request = from_wire(backend, raw, expect=ResizeRequest)
                if auth_tenant is not None:
                    request = self._stamp_tenant(request, auth_tenant)
            # Revoke/resize retries carry a client-generated request id;
            # a duplicate gets the recorded response, never a re-execution.
            dedup = getattr(self.server, "wire_dedup", None)
            dedup_key = None
            dedup_token = None
            if dedup is not None and op in _IDEMPOTENT_OPS:
                request_id = getattr(request, "request_id", None)
                if request_id:
                    dedup_key = (backend.scheme_id, op, request_id)
                    cached, dedup_token = dedup.claim(dedup_key)
                    if cached is not None:
                        if http_span is not None:
                            http_span.set("idempotent_replay", True)
                        return cached
            try:
                kwargs = {"trace": sub} if traced else {}
                if op == "grant":
                    if isinstance(request, GrantBatchRequest):
                        response = GrantBatchResponse(
                            responses=tuple(
                                gateway.grant(item, **kwargs)
                                for item in request.requests
                            )
                        )
                    else:
                        response = gateway.grant(request, **kwargs)
                elif op == "revoke":
                    response = gateway.revoke(request, **kwargs)
                elif op == "reencrypt":
                    if isinstance(request, ReEncryptBatchRequest):
                        response = ReEncryptBatchResponse(
                            responses=tuple(
                                gateway.reencrypt_batch(list(request.requests), **kwargs)
                            )
                        )
                    else:
                        response = gateway.reencrypt(request, **kwargs)
                elif op == "fetch":
                    response = gateway.fetch(request, **kwargs)
                elif op == "export":
                    response = KeyExportResponse(keys=tuple(gateway.list_keys()))
                else:  # op == "resize"
                    response = gateway.resize(
                        request.shard_count, tenant=request.tenant, **kwargs
                    )
                with (
                    tracer.span(sub, "encode") if traced else nullcontext()
                ):
                    payload = to_wire(backend, response)
            except BaseException:
                if dedup_token is not None:
                    dedup.complete(dedup_key, dedup_token, None)
                raise
            if dedup_token is not None:
                dedup.complete(dedup_key, dedup_token, payload)
        return payload

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler name
        trace = TraceContext.from_header(self.headers.get(TRACE_HEADER))
        self._trace_echo = trace.to_header() if trace is not None else None
        # Server-side head sampling: the echo header still round-trips
        # (so the client's correlation id survives), but only the sampled
        # fraction records spans.  Metrics count every request regardless.
        sample = getattr(self.server, "wire_trace_sample", 1.0)
        if trace is not None and sample < 1.0:
            # One shared deterministic RNG across handler threads: the
            # lock keeps its Mersenne-Twister state (and the exact
            # sampled-count guarantee) intact under concurrency.
            with self.server.wire_trace_rng_lock:
                sampled = self.server.wire_trace_rng.random() < sample
            if not sampled:
                trace = None
        try:
            raw = self._read_body()
        except InvalidRequestError as error:
            # The body was never read, so this HTTP/1.1 connection is
            # desynchronized — close it with the rejection instead of
            # letting unread body bytes masquerade as the next request.
            self._send_gateway_error(error, close=True)
            return
        base = urlsplit(self.path).path
        try:
            op, gateway, backend = self._resolve(base)
            if op not in _POST_OPS:
                raise _UnknownEndpoint(base)
        except _UnknownEndpoint as error:
            self._send_unknown_endpoint(error.path)
            return
        except InvalidRequestError as error:
            self._send_gateway_error(error)
            return
        try:
            auth_tenant = self._authenticate(op, base, raw, gateway, backend)
        except GatewayError as error:
            self._auth_failure(op, gateway, backend, error)
            return
        try:
            payload = self._dispatch(
                op, gateway, backend, raw, trace, auth_tenant=auth_tenant
            )
        except GatewayError as error:
            self._send_gateway_error(error, backend)
        except Exception as error:  # noqa: BLE001 - wire boundary
            # Nothing library-internal may leak as a stack trace; the
            # closed taxonomy's base code is the catch-all — but the full
            # detail lands in the structured event log, where an operator
            # can actually find it (PR 6: these used to vanish).
            log = getattr(self.server, "wire_event_log", None)
            if log is not None:
                log.emit(
                    "server-error",
                    scheme=backend.scheme_id,
                    op=op,
                    error=str(error),
                    error_type=type(error).__name__,
                    trace=trace.trace_id if trace is not None else None,
                    traceback=traceback.format_exc(limit=8),
                )
            self._send_gateway_error(GatewayError("internal error: %s" % error), backend)
        else:
            self._send_json(200, payload)


class _EventedThreadingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer whose per-connection crashes become events.

    The stdlib prints a traceback to stderr and drops the connection;
    here the traceback also lands in the structured event log so a
    dropped connection is diagnosable after the fact.
    """

    wire_event_log: EventLog | None = None

    # The socketserver default backlog of 5 resets connections the moment
    # a pooled client dials its sockets in one burst; listen deep enough
    # that a fleet-sized pool (hundreds of connections) can connect while
    # handler threads are still being spawned.
    request_queue_size = 1024

    def handle_error(self, request, client_address) -> None:  # noqa: D102
        log = self.wire_event_log
        if log is not None:
            log.emit(
                "connection-error",
                client=str(client_address),
                traceback=traceback.format_exc(limit=8),
            )


class GatewayHttpServer:
    """Serve one or more gateways over HTTP/JSON; in-thread or blocking.

    ``gateway`` hosts a single fleet (the historical spelling, with
    ``group`` as the backend fallback for bare gateway-like objects);
    ``gateways`` hosts one fleet per element side by side, each routed
    under its backend's scheme-id prefix.  Scheme ids must be unique —
    one fleet per scheme per process.

    ``port=0`` binds an ephemeral port (tests, loopback benchmarks);
    :attr:`url` reports the bound address either way.  :meth:`start` runs
    the accept loop in a daemon thread and returns; :meth:`serve_forever`
    blocks the caller (the CLI's ``serve --http`` mode).  Closing the
    server stops the accept loop but deliberately leaves every gateway
    open — the owner decides when to release the shard fleets.
    """

    def __init__(
        self,
        gateway=None,
        group: PairingGroup | PreBackend | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        gateways: Sequence | None = None,
        event_log: EventLog | None = None,
        tls=None,
        auth=None,
        trace_sample: float = 1.0,
    ):
        """``tls`` is a server-side :class:`ssl.SSLContext` (see
        :func:`repro.service.auth.tls.server_context`); ``auth`` is a
        :class:`~repro.service.auth.signing.RequestVerifier` — with one
        installed every POST must carry a valid ``X-Repro-Auth``
        signature, without one the wire stays anonymous.
        ``trace_sample`` is the server-side head-sampling fraction for
        incoming trace headers (1.0 records every traced request)."""
        if not 0.0 <= trace_sample <= 1.0:
            raise ValueError("trace_sample must be in [0, 1]")
        self.hosts, self.scheme_ids = build_host_map(gateway, group, gateways)
        # Single-scheme attribute surface, kept for existing callers.
        self.gateway = self.hosts[self.scheme_ids[0]][0]
        self.backend = self.hosts[self.scheme_ids[0]][1]
        self.group = self.backend.group
        # The server-level event stream: HTTP access lines, handler
        # crashes and connection errors.  Injectable so tests (and the
        # CLI's --event-log) choose the sink; shared with the hosted
        # gateways by the CLI so one JSONL stream tells the whole story.
        self.event_log = event_log if event_log is not None else EventLog()
        # One dedup window per server (scheme id is part of the key), so
        # retried revoke/resize replays are answered from the record.
        self.dedup = IdempotencyWindow()
        self._httpd = _EventedThreadingHTTPServer((host, port), _GatewayRequestHandler)
        self._httpd.daemon_threads = True
        self._httpd.wire_hosts = self.hosts
        self._httpd.wire_scheme_ids = list(self.scheme_ids)
        self._httpd.wire_single = self.scheme_ids[0] if len(self.scheme_ids) == 1 else None
        self._httpd.wire_event_log = self.event_log
        self._httpd.wire_dedup = self.dedup
        self._httpd.wire_auth = auth
        self._httpd.wire_trace_sample = float(trace_sample)
        # Deterministic seed: sampling decisions are reproducible across
        # runs, and tests can predict exact sampled counts.  The lock
        # serializes handler threads' draws so the deterministic sequence
        # (and the generator state itself) survives concurrency.
        self._httpd.wire_trace_rng = random.Random(0x5EED)
        self._httpd.wire_trace_rng_lock = threading.Lock()
        self.auth = auth
        self._url_scheme = "http"
        if tls is not None:
            # Wrapping the *listening* socket makes every accepted
            # connection TLS; the handshake completes during accept().
            self._httpd.socket = tls.wrap_socket(self._httpd.socket, server_side=True)
            self._url_scheme = "https"
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return "%s://%s:%d" % (self._url_scheme, self.host, self.port)

    def start(self) -> "GatewayHttpServer":
        """Run the accept loop in a daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="gateway-http", daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`close` (or KeyboardInterrupt)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop accepting, join the serving thread, release the socket."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "GatewayHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
