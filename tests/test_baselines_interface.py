"""Tests for the adapter interface and the multi-keypair strawman."""

import pytest

from repro.baselines.interface import PROPERTY_NAMES, all_adapters
from repro.baselines.multi_keypair import MultiKeypairDelegation
from repro.ibe.kgc import KgcRegistry


class TestAdapters:
    def test_every_adapter_full_lifecycle(self, group, rng):
        for adapter in all_adapters(group):
            adapter.setup(rng)
            message = adapter.sample_message(rng)
            ciphertext = adapter.encrypt(message, rng)
            assert adapter.decrypt_original(ciphertext) == message, adapter.name
            rk = adapter.rekey(rng)
            transformed = adapter.reencrypt(ciphertext, rk)
            assert adapter.decrypt_reencrypted(transformed) == message, adapter.name

    def test_property_matrices_complete(self, group):
        for adapter in all_adapters(group):
            assert set(adapter.properties) == set(PROPERTY_NAMES), adapter.name
            assert all(isinstance(v, bool) for v in adapter.properties.values())

    def test_paper_scheme_is_first_and_unique_in_type_granularity(self, group):
        adapters = all_adapters(group)
        assert "this paper" in adapters[0].name
        granular = [a.name for a in adapters if a.properties["type_granular"]]
        assert granular == [adapters[0].name]

    def test_bbs_flagged_bidirectional_and_interactive(self, group):
        bbs = next(a for a in all_adapters(group) if "BBS" in a.name)
        assert not bbs.properties["unidirectional"]
        assert not bbs.properties["non_interactive"]
        assert not bbs.properties["collusion_safe"]

    def test_identity_based_flags(self, group):
        by_name = {a.name: a for a in all_adapters(group)}
        assert by_name["Green-Ateniese IBP1"].properties["identity_based"]
        assert not by_name["AFGH (TISSEC'06)"].properties["identity_based"]

    def test_ciphertext_components_positive(self, group, rng):
        for adapter in all_adapters(group):
            adapter.setup(rng)
            ciphertext = adapter.encrypt(adapter.sample_message(rng), rng)
            assert adapter.ciphertext_components(ciphertext) >= 2


class TestMultiKeypair:
    @pytest.fixture()
    def setting(self, group, rng):
        registry = KgcRegistry(group, rng)
        kgc1, kgc2 = registry.create("KGC1"), registry.create("KGC2")
        strawman = MultiKeypairDelegation(group=group, kgc=kgc1, base_identity="alice")
        return strawman, kgc1, kgc2

    def test_keys_grow_with_types(self, setting, group, rng):
        strawman, _, _ = setting
        assert strawman.key_count() == 0
        for i in range(5):
            strawman.encrypt(group.random_gt(rng), "type-%d" % i, rng)
        assert strawman.key_count() == 5
        assert strawman.key_storage_bytes() == 5 * group.g1_element_size()

    def test_reusing_a_type_does_not_add_keys(self, setting, group, rng):
        strawman, _, _ = setting
        strawman.encrypt(group.random_gt(rng), "t", rng)
        strawman.encrypt(group.random_gt(rng), "t", rng)
        assert strawman.key_count() == 1

    def test_kgc_sees_one_extract_per_type(self, setting, group, rng):
        strawman, kgc1, _ = setting
        for label in ("a", "b", "c"):
            strawman.encrypt(group.random_gt(rng), label, rng)
        assert kgc1.issued_identities() == ["alice#a", "alice#b", "alice#c"]

    def test_round_trip(self, setting, group, rng):
        strawman, _, _ = setting
        message = group.random_gt(rng)
        ciphertext = strawman.encrypt(message, "t", rng)
        assert strawman.decrypt(ciphertext, "t") == message

    def test_delegation_round_trip(self, setting, group, rng):
        strawman, _, kgc2 = setting
        bob = kgc2.extract("bob")
        message = group.random_gt(rng)
        ciphertext = strawman.encrypt(message, "t", rng)
        rk = strawman.delegate("t", "bob", kgc2.params, rng)
        transformed = strawman.reencrypt(ciphertext, rk)
        assert strawman.decrypt_reencrypted(transformed, bob) == message

    def test_per_type_isolation_via_key_separation(self, setting, group, rng):
        """The strawman does achieve isolation — at linear key cost."""
        strawman, _, kgc2 = setting
        bob = kgc2.extract("bob")
        message = group.random_gt(rng)
        ciphertext_other = strawman.encrypt(message, "t2", rng)
        rk_t1 = strawman.delegate("t1", "bob", kgc2.params, rng)
        with pytest.raises(ValueError):
            strawman.reencrypt(ciphertext_other, rk_t1)

    def test_type_identity_format(self, setting):
        strawman, _, _ = setting
        assert strawman.type_identity("labs") == "alice#labs"
