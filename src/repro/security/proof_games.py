"""Executable rendering of the proof structure of Theorem 1.

The paper proves IND-ID-DR-CPA security through a sequence of games
(Shoup's game-hopping).  The decisive hop is **Game2**: the challenger
replaces the real mask ``e(pk_id*, pk)^(r * H2(sk||t*))`` in the challenge
ciphertext with a *uniform* GT element ``T``, so that

    c2* = m_b * T

is a one-time pad over GT and carries **zero information** about ``b`` —
any adversary's success probability in Game2 is exactly 1/2.  The proof
then argues Game1 -> Game2 is undetectable unless the adversary solves
BDH/CDH (the event E1 of querying ``H2`` on ``g^(alpha*beta) || t``).

This module makes the two end-points of that argument executable:

* :class:`RealChallenger` — the Game0/Game1 challenge (real mask);
* :class:`IdealChallenger` — the Game2 challenge (uniform mask);
* :func:`distinguishing_advantage` — run any distinguisher against both
  and report its empirical edge.

Tests verify (a) an information-theoretically optimal distinguisher that
*knows the delegator's key* wins always against :class:`RealChallenger`
and exactly half the time against :class:`IdealChallenger`, and (b) the
statistical behaviour of honest adversaries is identical against both —
which is precisely what Theorem 1 reduces to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ciphertexts import TypedCiphertext
from repro.core.scheme import TypeAndIdentityPre
from repro.ibe.kgc import KgcRegistry
from repro.ibe.keys import IbePrivateKey
from repro.math.drbg import HmacDrbg, RandomSource
from repro.math.fields import Fp2Element
from repro.pairing.group import PairingGroup

__all__ = ["RealChallenger", "IdealChallenger", "distinguishing_advantage"]

_ID_STAR = "alice"
_TYPE_STAR = "t-star"


@dataclass(frozen=True)
class _Challenge:
    """What the adversary sees plus (for the harness) the hidden bit."""

    ciphertext: TypedCiphertext
    bit: int


class RealChallenger:
    """Game0/Game1 challenge generation: the genuine Encrypt1 mask."""

    name = "Game0 (real mask)"

    def __init__(self, group: PairingGroup, rng: RandomSource):
        self._group = group
        self._rng = rng
        registry = KgcRegistry(group, rng)
        self._kgc1 = registry.create("KGC1")
        self._scheme = TypeAndIdentityPre(group)
        self._key = self._kgc1.extract(_ID_STAR)

    @property
    def scheme(self) -> TypeAndIdentityPre:
        return self._scheme

    def delegator_key_for_analysis(self) -> IbePrivateKey:
        """Test-only: the key an out-of-model distinguisher would hold."""
        return self._key

    def challenge(self, m0: Fp2Element, m1: Fp2Element) -> _Challenge:
        bit = self._rng.randbelow(2)
        ciphertext = self._scheme.encrypt(
            self._kgc1.params, self._key, m1 if bit else m0, _TYPE_STAR, self._rng
        )
        return _Challenge(ciphertext=ciphertext, bit=bit)


class IdealChallenger:
    """Game2 challenge generation: ``c2* = m_b * T`` for uniform ``T``.

    Everything else (domains, identities, c1 = g^r, the type label) is
    produced exactly as in the real game, so only the mask differs — the
    hop the proof's difference lemma prices.
    """

    name = "Game2 (uniform mask)"

    def __init__(self, group: PairingGroup, rng: RandomSource):
        self._group = group
        self._rng = rng
        registry = KgcRegistry(group, rng)
        self._kgc1 = registry.create("KGC1")
        self._scheme = TypeAndIdentityPre(group)
        self._key = self._kgc1.extract(_ID_STAR)

    @property
    def scheme(self) -> TypeAndIdentityPre:
        return self._scheme

    def delegator_key_for_analysis(self) -> IbePrivateKey:
        return self._key

    def challenge(self, m0: Fp2Element, m1: Fp2Element) -> _Challenge:
        bit = self._rng.randbelow(2)
        message = m1 if bit else m0
        r = self._group.random_scalar(self._rng)
        c1 = self._group.g1_mul(self._group.generator, r)
        mask = self._group.random_gt(self._rng)  # T: the one-time pad
        ciphertext = TypedCiphertext(
            domain=self._key.domain,
            identity=self._key.identity,
            c1=c1,
            c2=self._group.gt_mul(message, mask),
            type_label=_TYPE_STAR,
        )
        return _Challenge(ciphertext=ciphertext, bit=bit)


def distinguishing_advantage(
    challenger_factory,
    distinguisher,
    group: PairingGroup,
    trials: int,
    seed: str,
) -> float:
    """Empirical ``|win rate - 1/2|`` of a distinguisher against a challenger.

    ``distinguisher(challenge_ct, m0, m1, challenger, rng) -> guessed bit``.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    root = HmacDrbg(seed)
    wins = 0
    for index in range(trials):
        rng = root.fork("trial-%d" % index)
        challenger = challenger_factory(group, rng)
        m0, m1 = group.random_gt(rng), group.random_gt(rng)
        challenge = challenger.challenge(m0, m1)
        guess = distinguisher(challenge.ciphertext, m0, m1, challenger, rng)
        wins += guess == challenge.bit
    return abs(wins / trials - 0.5)
