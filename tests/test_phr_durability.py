"""Tests for PhrSystem with durable (file-backed) category stores."""

import pytest

from repro.math.drbg import HmacDrbg
from repro.phr.generator import PhrGenerator
from repro.phr.workflow import PhrSystem


class TestDurablePhrSystem:
    def test_records_persist_across_system_instances(self, group, tmp_path):
        first = PhrSystem(group=group, rng=HmacDrbg("durable"), store_root=str(tmp_path))
        first.register_patient("alice")
        entry = PhrGenerator(HmacDrbg("gen"), "alice").entry_for("lab-results")
        first.store_entry("alice", entry)

        # A new system instance over the same directory sees the blob...
        second = PhrSystem(group=group, rng=HmacDrbg("durable-2"), store_root=str(tmp_path))
        stored = second.proxy_for("lab-results").store.get("alice", entry.entry_id)
        assert stored.category == "lab-results"

        # ...and alice (re-extracting the *same* key from her KGC in the
        # first system) can still decrypt it.
        assert first.patient("alice").decrypt_entry(stored.blob) == entry

    def test_grants_and_requests_on_durable_store(self, group, tmp_path):
        system = PhrSystem(group=group, rng=HmacDrbg("durable-3"), store_root=str(tmp_path))
        system.register_patient("alice")
        system.register_requester("dr", role="doctor", domain="hospital")
        entry = PhrGenerator(HmacDrbg("g"), "alice").entry_for("medication")
        system.store_entry("alice", entry)
        system.grant("alice", "dr", "medication")
        assert system.request_category("dr", "alice", "medication") == [entry]
        # The blob really lives on disk.
        blobs = list((tmp_path / "medication" / "blobs").rglob("*.bin"))
        assert len(blobs) == 1

    def test_category_directories_isolated(self, group, tmp_path):
        system = PhrSystem(group=group, rng=HmacDrbg("durable-4"), store_root=str(tmp_path))
        system.register_patient("alice")
        generator = PhrGenerator(HmacDrbg("g"), "alice")
        system.store_entry("alice", generator.entry_for("vitals"))
        system.store_entry("alice", generator.entry_for("allergies"))
        assert (tmp_path / "vitals" / "index.json").exists()
        assert (tmp_path / "allergies" / "index.json").exists()
        assert system.proxy_for("vitals").store.record_count() == 1

    def test_in_memory_default_unchanged(self, group):
        system = PhrSystem(group=group, rng=HmacDrbg("mem"))
        assert system.proxy_for("vitals").store.record_count() == 0
