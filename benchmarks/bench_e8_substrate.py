"""E8 — substrate and extension ablations (beyond the paper's text).

Prices the engineering choices DESIGN.md calls out, so the headline
numbers in E1/E2 are explainable:

* **scalar multiplication**: schoolbook double-and-add vs wNAF vs the
  fixed-base window table used for the generator;
* **multi-pairing**: two independent pairings vs one shared final
  exponentiation (the BB1 decryption path);
* **threshold extraction**: single-KGC Extract vs t-of-n combination
  (the escrow mitigation the paper's threat model points to);
* **epoch-scoped grants**: the per-epoch ``Pextract`` cost that buys
  deletion-free expiry.
"""

from __future__ import annotations

import pytest

from repro.bench.report import print_table
from repro.bench.timing import measure
from repro.core.epochs import EpochSchedule, TemporalPre
from repro.core.scheme import TypeAndIdentityPre
from repro.ec.scalarmult import FixedBaseTable, wnaf_mul
from repro.ibe.kgc import KgcRegistry
from repro.ibe.threshold import ThresholdKgc
from repro.math.drbg import HmacDrbg
from repro.pairing.group import PairingGroup
from repro.pairing.tate import multi_tate_pairing, tate_pairing

GROUP_NAME = "SS256"


def test_e8_scalar_mult_ablation(benchmark):
    group = PairingGroup.shared(GROUP_NAME)
    rng = HmacDrbg("e8-mul")
    scalars = [group.random_scalar(rng) for _ in range(8)]
    base = group.params.random_point(rng)
    table = FixedBaseTable(group.generator, group.order.bit_length())

    schoolbook = measure("schoolbook", lambda: [base * s for s in scalars], repeats=3)
    wnaf = measure("wnaf", lambda: [wnaf_mul(base, s) for s in scalars], repeats=3)
    fixed = measure("fixed-base", lambda: [table.mul(s) for s in scalars], repeats=3)
    print_table(
        "E8: scalar multiplication on %s (8 scalars, median ms)" % GROUP_NAME,
        ["method", "ms", "note"],
        [
            ["schoolbook double-and-add", "%.1f" % schoolbook.median_ms, "reference"],
            ["wNAF (w=4)", "%.1f" % wnaf.median_ms, "arbitrary points"],
            ["fixed-base window", "%.1f" % fixed.median_ms,
             "generator/public keys (table: %d pts)" % table.table_size()],
        ],
    )
    benchmark.group = "E8 scalar mult"
    benchmark.pedantic(lambda: table.mul(scalars[0]), rounds=5, iterations=1)


def test_e8_multi_pairing_ablation(benchmark):
    group = PairingGroup.shared(GROUP_NAME)
    rng = HmacDrbg("e8-pair")
    a, b = group.params.random_point(rng), group.params.random_point(rng)
    c, d = group.params.random_point(rng), group.params.random_point(rng)

    separate = measure(
        "separate",
        lambda: tate_pairing(group.params, a, b) * tate_pairing(group.params, c, d),
        repeats=3,
    )
    shared = measure(
        "shared",
        lambda: multi_tate_pairing(group.params, [(a, b), (c, d)]),
        repeats=3,
    )
    print_table(
        "E8: product of two pairings on %s (median ms)" % GROUP_NAME,
        ["method", "ms"],
        [
            ["two pairings, two final exps", "%.1f" % separate.median_ms],
            ["multi-pairing, one final exp", "%.1f" % shared.median_ms],
        ],
    )
    benchmark.group = "E8 pairings"
    benchmark.pedantic(
        lambda: multi_tate_pairing(group.params, [(a, b), (c, d)]), rounds=3, iterations=1
    )


@pytest.mark.parametrize("threshold,servers", [(1, 1), (2, 3), (3, 5)])
def test_e8_threshold_extraction(benchmark, threshold, servers):
    group = PairingGroup.shared("TOY")
    kgc = ThresholdKgc(group, "D", threshold, servers, HmacDrbg("e8-thr"))
    counter = [0]

    def extract():
        counter[0] += 1
        kgc.extract("user-%d" % counter[0])

    benchmark.group = "E8 threshold extract"
    benchmark.name = "%d-of-%d" % (threshold, servers)
    benchmark.pedantic(extract, rounds=5, iterations=1)


def test_e8_epoch_grant_cost(benchmark):
    """The price of deletion-free expiry: one Pextract per epoch."""
    group = PairingGroup.shared("TOY")
    rng = HmacDrbg("e8-epoch")
    registry = KgcRegistry(group, rng)
    kgc1, kgc2 = registry.create("KGC1"), registry.create("KGC2")
    alice = kgc1.extract("alice")
    temporal = TemporalPre(TypeAndIdentityPre(group), EpochSchedule(86400))

    day = [0]

    def regrant():
        day[0] += 1
        temporal.grant(alice, "bob", "labs", day[0] * 86400, kgc2.params, rng)

    benchmark.group = "E8 epoch grants"
    benchmark.pedantic(regrant, rounds=5, iterations=1)
