#!/usr/bin/env python
"""Generate a self-signed localhost certificate for gateway TLS testing.

Writes ``dev-cert.pem`` (certificate) and ``dev-key.pem`` (private key)
into the output directory.  The certificate carries
``subjectAltName = DNS:localhost, IP:127.0.0.1`` so a client pinning it
as its CA (``--tls-ca dev-cert.pem``) passes hostname verification
against either spelling of the loopback.

Usage::

    python tools/gen_dev_cert.py [--out DIR] [--days N]
    repro-pre serve --http 8443 --tls-cert DIR/dev-cert.pem \
        --tls-key DIR/dev-key.pem

Two implementations, picked at runtime: the ``cryptography`` package
when importable, else the ``openssl`` binary via subprocess.  CI images
without ``cryptography`` take the second path; neither is an extra
install on the supported environments.  Dev-only: a real deployment
terminates TLS with certificates from its own PKI.
"""

from __future__ import annotations

import argparse
import datetime
import subprocess
import sys
from pathlib import Path

SAN = "DNS:localhost,IP:127.0.0.1"
SUBJECT = "/CN=localhost"


def _generate_with_cryptography(cert_path: Path, key_path: Path, days: int) -> None:
    from cryptography import x509
    from cryptography.hazmat.primitives import hashes, serialization
    from cryptography.hazmat.primitives.asymmetric import ec
    from cryptography.x509.oid import NameOID
    import ipaddress

    key = ec.generate_private_key(ec.SECP256R1())
    name = x509.Name([x509.NameAttribute(NameOID.COMMON_NAME, "localhost")])
    now = datetime.datetime.now(datetime.timezone.utc)
    certificate = (
        x509.CertificateBuilder()
        .subject_name(name)
        .issuer_name(name)
        .public_key(key.public_key())
        .serial_number(x509.random_serial_number())
        .not_valid_before(now - datetime.timedelta(minutes=5))
        .not_valid_after(now + datetime.timedelta(days=days))
        .add_extension(
            x509.SubjectAlternativeName(
                [
                    x509.DNSName("localhost"),
                    x509.IPAddress(ipaddress.IPv4Address("127.0.0.1")),
                ]
            ),
            critical=False,
        )
        .add_extension(
            x509.BasicConstraints(ca=True, path_length=None), critical=True
        )
        .sign(key, hashes.SHA256())
    )
    key_path.write_bytes(
        key.private_bytes(
            serialization.Encoding.PEM,
            serialization.PrivateFormat.PKCS8,
            serialization.NoEncryption(),
        )
    )
    cert_path.write_bytes(certificate.public_bytes(serialization.Encoding.PEM))


def _generate_with_openssl(cert_path: Path, key_path: Path, days: int) -> None:
    subprocess.run(
        [
            "openssl",
            "req",
            "-x509",
            "-newkey",
            "ec",
            "-pkeyopt",
            "ec_paramgen_curve:prime256v1",
            "-keyout",
            str(key_path),
            "-out",
            str(cert_path),
            "-days",
            str(days),
            "-nodes",
            "-subj",
            SUBJECT,
            "-addext",
            "subjectAltName=%s" % SAN,
        ],
        check=True,
        capture_output=True,
    )


def generate(out_dir: Path, days: int = 30) -> tuple[Path, Path]:
    """Write dev-cert.pem/dev-key.pem into ``out_dir``; returns the paths."""
    out_dir.mkdir(parents=True, exist_ok=True)
    cert_path = out_dir / "dev-cert.pem"
    key_path = out_dir / "dev-key.pem"
    try:
        import cryptography  # noqa: F401

        _generate_with_cryptography(cert_path, key_path, days)
    except ImportError:
        _generate_with_openssl(cert_path, key_path, days)
    return cert_path, key_path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=".", help="output directory (default .)")
    parser.add_argument("--days", type=int, default=30, help="validity in days")
    args = parser.parse_args(argv)
    cert_path, key_path = generate(Path(args.out), days=args.days)
    print("wrote %s and %s (SAN %s)" % (cert_path, key_path, SAN))
    return 0


if __name__ == "__main__":
    sys.exit(main())
