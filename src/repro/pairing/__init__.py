"""Pairing layer: Miller loop, reduced Tate pairing, and the group facade."""

from repro.pairing.group import PairingGroup
from repro.pairing.miller import MillerPrecomp
from repro.pairing.tate import (
    miller_loop,
    miller_loop_affine,
    multi_tate_pairing,
    tate_pairing,
    tate_pairing_affine,
    tate_pairing_batch,
)

__all__ = [
    "PairingGroup",
    "MillerPrecomp",
    "tate_pairing",
    "tate_pairing_affine",
    "tate_pairing_batch",
    "multi_tate_pairing",
    "miller_loop",
    "miller_loop_affine",
]
