"""Property tests for wNAF and fixed-base scalar multiplication."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ec.params import get_params
from repro.ec.scalarmult import FixedBaseTable, wnaf_digits, wnaf_mul
from repro.pairing.tate import multi_tate_pairing

PARAMS = get_params("TOY")
G = PARAMS.generator
Q = PARAMS.q

scalars = st.integers(min_value=0, max_value=Q - 1)


class TestWnafDigits:
    @given(st.integers(min_value=0, max_value=2**96), st.integers(min_value=2, max_value=8))
    def test_digits_reconstruct_scalar(self, scalar, width):
        digits = wnaf_digits(scalar, width)
        assert sum(d << i for i, d in enumerate(digits)) == scalar

    @given(st.integers(min_value=1, max_value=2**96), st.integers(min_value=2, max_value=8))
    def test_nonzero_digits_odd_and_bounded(self, scalar, width):
        half = 1 << (width - 1)
        for digit in wnaf_digits(scalar, width):
            if digit != 0:
                assert digit % 2 != 0
                assert -half < digit < half

    @given(st.integers(min_value=1, max_value=2**96))
    def test_nonzero_digits_separated(self, scalar):
        width = 4
        digits = wnaf_digits(scalar, width)
        last_nonzero = None
        for index, digit in enumerate(digits):
            if digit != 0:
                if last_nonzero is not None:
                    assert index - last_nonzero >= width - 1
                last_nonzero = index

    def test_zero(self):
        assert wnaf_digits(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            wnaf_digits(-1)

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            wnaf_digits(5, width=1)


class TestWnafMul:
    @given(scalars)
    def test_matches_schoolbook(self, scalar):
        assert wnaf_mul(G, scalar) == G * scalar

    @given(scalars, st.integers(min_value=2, max_value=6))
    def test_matches_for_all_widths(self, scalar, width):
        assert wnaf_mul(G, scalar, width) == G * scalar

    @given(st.integers(min_value=-(Q - 1), max_value=-1))
    def test_negative_scalars(self, scalar):
        assert wnaf_mul(G, scalar) == G * scalar

    def test_identity_cases(self):
        assert wnaf_mul(G, 0).is_infinity()
        assert wnaf_mul(PARAMS.curve.infinity(), 12345).is_infinity()

    @given(scalars)
    def test_random_base_point(self, scalar):
        base = G * 7919
        assert wnaf_mul(base, scalar) == base * scalar


class TestFixedBaseTable:
    @pytest.fixture(scope="class")
    def table(self):
        return FixedBaseTable(G, Q.bit_length())

    @given(scalars)
    def test_matches_schoolbook(self, scalar):
        table = FixedBaseTable(G, Q.bit_length(), width=3)
        assert table.mul(scalar) == G * scalar

    def test_boundary_scalars(self, table):
        assert table.mul(0).is_infinity()
        assert table.mul(1) == G
        assert table.mul(Q - 1) == G * (Q - 1)

    def test_out_of_range_rejected(self, table):
        with pytest.raises(ValueError):
            table.mul(1 << (Q.bit_length() + 1))
        with pytest.raises(ValueError):
            table.mul(-1)

    def test_infinity_base_rejected(self):
        with pytest.raises(ValueError):
            FixedBaseTable(PARAMS.curve.infinity(), 16)

    def test_table_size_accounting(self):
        table = FixedBaseTable(G, 16, width=4)
        assert table.table_size() == 4 * 16  # ceil(16/4) rows of 2^4 points

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            FixedBaseTable(G, 0)
        with pytest.raises(ValueError):
            FixedBaseTable(G, 16, width=0)


class TestMultiPairing:
    def test_matches_product_of_pairings(self):
        from repro.pairing.tate import tate_pairing

        pairs = [(G * 3, G * 5), (G * 7, G * 11), (G * 13, G * 2)]
        product = PARAMS.ext_field.one()
        for p, q in pairs:
            product = product * tate_pairing(PARAMS, p, q)
        assert multi_tate_pairing(PARAMS, pairs) == product

    def test_ratio_form(self):
        """e(A, B) / e(C, D) as multi_pairing([(A,B), (-C,D)])."""
        from repro.pairing.tate import tate_pairing

        a, b, c, d = G * 2, G * 3, G * 5, G * 7
        expected = tate_pairing(PARAMS, a, b) * tate_pairing(PARAMS, c, d).inverse()
        assert multi_tate_pairing(PARAMS, [(a, b), (-c, d)]) == expected

    def test_empty_and_identity_inputs(self):
        assert multi_tate_pairing(PARAMS, []).is_one()
        infinity = PARAMS.curve.infinity()
        assert multi_tate_pairing(PARAMS, [(infinity, G), (G, infinity)]).is_one()

    def test_single_pair_equals_pairing(self):
        from repro.pairing.tate import tate_pairing

        assert multi_tate_pairing(PARAMS, [(G * 9, G * 4)]) == tate_pairing(
            PARAMS, G * 9, G * 4
        )

    def test_operation_counting(self):
        from repro.bench.counters import count_operations

        with count_operations() as counter:
            multi_tate_pairing(PARAMS, [(G, G), (G * 2, G * 3)])
        assert counter.get("pairing") == 1
        assert counter.get("pairing_extra") == 1

    def test_wrong_curve_rejected(self):
        other = get_params("SS256")
        with pytest.raises(ValueError):
            multi_tate_pairing(PARAMS, [(other.generator, other.generator)])
