"""Consistent-hash routing of delegations onto proxy shards.

The gateway partitions proxy state by **route key** — the (delegator
domain, delegator, type) triple.  Both a :class:`~repro.core.ciphertexts.ProxyKey`
and a re-encryption request carry the triple, so a key installed through
the router is always found by the requests it serves, whichever shard the
ring puts it on.  Classic consistent hashing with virtual nodes keeps the
assignment stable: growing the fleet from N to N+1 shards moves roughly a
1/(N+1) fraction of route keys, instead of reshuffling almost everything
the way ``hash(key) % N`` would.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

__all__ = ["ShardRouter", "route_key_of"]

RouteKey = tuple[str, str, str]


def route_key_of(delegator_domain: str, delegator: str, type_label: str) -> RouteKey:
    """The partitioning triple; one helper so callers cannot disagree on order."""
    return (delegator_domain, delegator, type_label)


def _ring_point(material: bytes) -> int:
    """A 64-bit position on the ring (SHA-256 is overkill but everywhere)."""
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


class ShardRouter:
    """Maps route keys onto a fixed set of shard names via a hash ring."""

    def __init__(self, shard_names: Sequence[str], replicas: int = 64):
        if not shard_names:
            raise ValueError("need at least one shard")
        if len(set(shard_names)) != len(shard_names):
            raise ValueError("shard names must be unique")
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._shards = list(shard_names)
        self._ring: list[tuple[int, str]] = []
        for shard in self._shards:
            for replica in range(replicas):
                point = _ring_point(b"shard|%s|%d" % (shard.encode("utf-8"), replica))
                self._ring.append((point, shard))
        self._ring.sort()
        self._points = [point for point, _ in self._ring]

    @property
    def shards(self) -> list[str]:
        return list(self._shards)

    def shard_for(self, delegator_domain: str, delegator: str, type_label: str) -> str:
        """The shard owning this (delegator domain, delegator, type) triple."""
        material = "|".join((delegator_domain, delegator, type_label)).encode("utf-8")
        point = _ring_point(b"key|" + material)
        position = bisect.bisect_right(self._points, point)
        if position == len(self._ring):
            position = 0  # wrap around the ring
        return self._ring[position][1]

    def assignment_counts(self, keys: Iterable[RouteKey]) -> dict[str, int]:
        """How many of ``keys`` each shard owns (for balance reporting)."""
        counts = {shard: 0 for shard in self._shards}
        for domain, delegator, type_label in keys:
            counts[self.shard_for(domain, delegator, type_label)] += 1
        return counts

    def ownership_diff(
        self, other: "ShardRouter", keys: Iterable[RouteKey]
    ) -> dict[RouteKey, tuple[str, str]]:
        """Route keys whose owner changes under ``other``, with (old, new).

        This is the migration plan of a fleet resize: exactly these keys
        (and no others) must move for every delegation installed under
        ``self``'s assignment to stay servable under ``other``'s.
        """
        diff: dict[RouteKey, tuple[str, str]] = {}
        for domain, delegator, type_label in keys:
            old = self.shard_for(domain, delegator, type_label)
            new = other.shard_for(domain, delegator, type_label)
            if old != new:
                diff[(domain, delegator, type_label)] = (old, new)
        return diff

    def moved_fraction(self, other: "ShardRouter", keys: Iterable[RouteKey]) -> float:
        """Fraction of ``keys`` that map to different shards under ``other``.

        The consistent-hashing selling point, measurable: growing the fleet
        by one shard should move about 1/(N+1) of the keys, not all of them.
        """
        keys = list(keys)
        if not keys:
            return 0.0
        moved = sum(
            1
            for domain, delegator, type_label in keys
            if self.shard_for(domain, delegator, type_label)
            != other.shard_for(domain, delegator, type_label)
        )
        return moved / len(keys)
