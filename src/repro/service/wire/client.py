"""RemoteGateway: the gateway's typed API, spoken over HTTP/JSON.

A :class:`RemoteGateway` is a drop-in stand-in for
:class:`~repro.service.gateway.ReEncryptionGateway` wherever code only
*calls* the gateway — the driver, the benchmarks and the examples run
unchanged whether the object in their hands is the in-process fleet or
this client pointed at a remote one.  Every method encodes its request
with :mod:`repro.service.wire.codec`, POSTs it, and decodes the response
back into the same dataclasses; a non-2xx reply carries a wire ``error``
body whose stable code selects the taxonomy class to raise, so callers
catch :class:`~repro.service.gateway.RateLimitedError` (and friends)
identically in both deployments.

Transport: a bounded pool of persistent HTTP/1.1 keep-alive connections
(``pool_size``, default 1 — the single-connection client of old).  A
sequential caller reuses one connection for its whole stream; concurrent
threads check out distinct connections instead of serializing on one
socket, and the pool never holds more than ``pool_size`` live
connections (checkout blocks when all are in flight).  Each connection
is re-established transparently when the server drops it — an idle
timeout, a restart.  A request that dies mid-flight is retried once on
a fresh connection: grants are idempotent installs, transformations and
fetches are deterministic reads, and revoke/resize — whose naive replay
against mutated state would mis-report the outcome — carry a
client-generated ``request_id`` the server's idempotency window dedups,
returning the recorded first outcome instead of re-executing.
:attr:`connections_opened` counts
dials and :attr:`peak_connections` the high-water mark of simultaneous
checkouts, so benchmarks can *assert* reuse and boundedness rather than
assume them.

Scheme negotiation: before the first request the client fetches
``GET /v1/schemes`` and *pins* its scheme — when the server hosts this
client's backend (and pairing group) all traffic moves to the
scheme-id-prefixed routes (``/v1/{scheme}/reencrypt``, ...); a server
without the endpoint is a legacy single-scheme process, checked via
``GET /v1/scheme`` and spoken to on the unprefixed routes.  A server
running only other schemes raises :class:`SchemeMismatchError` before
any element envelope crosses the wire.

Security: an ``https://`` url performs real TLS with certificate
verification — ``tls_ca`` pins a private CA (the dev self-signed cert)
instead of the system trust store.  ``tenant``/``secret`` attach an
HMAC-SHA256 request signature (``X-Repro-Auth``) to every POST; each
transport attempt is signed afresh with its own nonce, so the server's
replay window never mistakes a legitimate retry for an attack while the
idempotency ids keep the retry semantics intact.
"""

from __future__ import annotations

import http.client
import json
import random
import secrets
import socket
import threading
import urllib.parse
from dataclasses import replace
from typing import Sequence

from repro.core.api import PreBackend, resolve_backend
from repro.pairing.group import PairingGroup
from repro.service.auth.signing import AUTH_HEADER, RequestSigner
from repro.service.auth.tls import client_context
from repro.service.gateway import (
    FetchRequest,
    FetchResponse,
    GatewayError,
    GrantRequest,
    GrantResponse,
    InvalidRequestError,
    ReEncryptRequest,
    ReEncryptResponse,
    ResizeReport,
    RevokeRequest,
    RevokeResponse,
)
from repro.service.metrics import MetricsSnapshot
from repro.service.telemetry import (
    TRACE_HEADER,
    Span,
    TraceContext,
    Tracer,
    span_from_json,
)
from repro.service.wire.codec import (
    ERROR_TYPES,
    GrantBatchRequest,
    GrantBatchResponse,
    KeyExportRequest,
    KeyExportResponse,
    ReEncryptBatchRequest,
    ReEncryptBatchResponse,
    ResizeRequest,
    from_wire,
    to_wire,
)

__all__ = ["RemoteGateway", "WireTransportError", "SchemeMismatchError"]


class WireTransportError(GatewayError):
    """The server could not be reached or spoke something unintelligible.

    Distinct from the server-side taxonomy: those codes mean the gateway
    *decided* something; this one means no decision arrived at all.
    """

    code = "wire-transport"


class SchemeMismatchError(GatewayError):
    """Negotiation failed: the server does not host this client's scheme."""

    code = "scheme-mismatch"


# A fleet's routing tier raises these codes *server-side* (a shard
# process it cannot reach, a mis-negotiated shard); registering them in
# the codec's taxonomy lets end clients re-raise the typed class instead
# of the GatewayError catch-all.  Both ends always import this module,
# so registration here avoids a codec -> client import cycle.
ERROR_TYPES.setdefault(WireTransportError.code, WireTransportError)
ERROR_TYPES.setdefault(SchemeMismatchError.code, SchemeMismatchError)


_RETRYABLE = (ConnectionError, http.client.HTTPException, TimeoutError, OSError)


def _new_request_id() -> str:
    """A client-generated idempotency id for revoke/resize retries."""
    return secrets.token_hex(16)


class RemoteGateway:
    """A typed HTTP client for one :class:`GatewayHttpServer`.

    ``url`` is the server base (e.g. ``http://127.0.0.1:8080``);
    ``context`` is the scheme backend the client speaks — a bare
    :class:`~repro.pairing.group.PairingGroup` selects the paper's
    ``tipre/v1`` backend, the historical spelling.  The server must host
    that scheme; the first request verifies (and pins) it via
    ``GET /v1/schemes``.

    The client is thread-safe.  With the default ``pool_size=1``
    concurrent callers serialize on the single pooled connection; raise
    ``pool_size`` toward the expected number of concurrent threads so
    each can hold a connection of its own.

    ``trace_requests`` accepts a sampling fraction as well as the
    historical booleans: ``0.1`` traces roughly one request in ten
    (head sampling — the decision is made before the request leaves, so
    an unsampled request carries no trace header at all), ``True`` is
    ``1.0`` and ``False`` is ``0.0``.  Metrics are unaffected: the
    server counts every request whether or not it carried a trace.

    ``tenant``/``secret`` (both or neither) sign every POST with the
    ``repro-auth/v1`` HMAC scheme; ``tls_ca`` pins a CA bundle for
    ``https://`` urls in place of the system trust store.
    """

    def __init__(
        self,
        url: str,
        context: PairingGroup | PreBackend,
        timeout: float = 30.0,
        negotiate: bool = True,
        pool_size: int = 1,
        trace_requests: bool | float = True,
        tenant: str | None = None,
        secret: str | None = None,
        tls_ca: str | None = None,
    ):
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if (tenant is None) != (secret is None):
            raise ValueError("tenant and secret must be given together")
        self.url = url.rstrip("/")
        self.backend = resolve_backend(context)
        self.group = self.backend.group
        self.timeout = timeout
        self.pool_size = pool_size
        self.tenant = tenant
        self._signer = RequestSigner(tenant, secret) if tenant is not None else None
        # Client-side tracing: each typed operation generates a fresh
        # TraceContext, sends it as the X-Repro-Trace header, and records
        # a local wire-round-trip span.  last_trace holds the most recent
        # context so a caller can fetch the server-side trace by id.
        fraction = float(trace_requests)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("trace_requests must be a bool or a fraction in [0, 1]")
        self.trace_requests = trace_requests
        self._trace_fraction = fraction
        # Deterministically seeded so tests can predict sampled counts.
        # The lock serializes draws: concurrent unlocked calls would
        # corrupt the Mersenne-Twister state and break the exact-count
        # guarantee (and, rarely, the generator itself).
        self._trace_rng = random.Random(0xC11E27)
        self._trace_rng_lock = threading.Lock()
        self.tracer: Tracer | None = Tracer() if fraction > 0.0 else None
        self.last_trace: TraceContext | None = None
        self.last_trace_echo: str | None = None
        self.connections_opened = 0
        self.connections_closed = 0
        self.peak_connections = 0
        self._in_use = 0
        self._idle: list[http.client.HTTPConnection] = []
        self._pool_lock = threading.Lock()
        self._slots = threading.BoundedSemaphore(pool_size)
        self._negotiate = negotiate
        self._negotiated = False
        self._negotiation_lock = threading.Lock()
        # Route prefix: legacy unprefixed until negotiation pins the
        # scheme-id-prefixed family on a multi-scheme-capable server.
        self._prefix = "/v1"
        parts = urllib.parse.urlsplit(self.url)
        if parts.scheme not in ("http", "https") or not parts.netloc:
            raise ValueError("gateway url must be http(s)://host[:port], got %r" % url)
        self._conn_class = (
            http.client.HTTPSConnection if parts.scheme == "https" else http.client.HTTPConnection
        )
        # Built even when tls_ca is None so https:// verifies against the
        # system trust store rather than silently skipping verification.
        self._tls_context = client_context(tls_ca) if parts.scheme == "https" else None
        self._netloc = parts.netloc

    # ---------------------------------------------------- connection pool

    def _dial(self) -> http.client.HTTPConnection:
        if self._tls_context is not None:
            conn = self._conn_class(
                self._netloc, timeout=self.timeout, context=self._tls_context
            )
        else:
            conn = self._conn_class(self._netloc, timeout=self.timeout)
        conn.connect()
        # A reused connection interleaves small request/response
        # writes; without TCP_NODELAY, Nagle + delayed ACK add ~40ms
        # to every round trip and erase the keep-alive win.
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._pool_lock:
            self.connections_opened += 1
        return conn

    def _discard(self, conn: http.client.HTTPConnection) -> None:
        try:
            conn.close()
        except OSError:
            pass
        with self._pool_lock:
            self.connections_closed += 1

    def _checkout(self, fresh: bool = False) -> http.client.HTTPConnection:
        """Borrow a connection; blocks while all ``pool_size`` are in flight.

        ``fresh`` bypasses the idle stack and dials anew (retiring one
        idle connection so the pool bound holds) — the retry and
        non-replayable paths use it because a stale idle socket is the
        common drop, and a new dial cannot be one.
        """
        self._slots.acquire()
        try:
            conn = None
            with self._pool_lock:
                if self._idle:
                    conn = self._idle.pop()
            if fresh and conn is not None:
                self._discard(conn)
                conn = None
            if conn is None:
                conn = self._dial()
            with self._pool_lock:
                self._in_use += 1
                if self._in_use > self.peak_connections:
                    self.peak_connections = self._in_use
            return conn
        except BaseException:
            self._slots.release()
            raise

    def _checkin(self, conn: http.client.HTTPConnection, discard: bool = False) -> None:
        with self._pool_lock:
            self._in_use -= 1
            if not discard:
                self._idle.append(conn)
        if discard:
            self._discard(conn)
        self._slots.release()

    def _raw_request(
        self,
        method: str,
        path: str,
        data: bytes | None,
        replayable: bool = True,
        trace: TraceContext | None = None,
    ) -> tuple[int, bytes]:
        """One HTTP exchange on a pooled connection, status + body.

        A transport failure discards the connection and — for
        ``replayable`` requests only — retries exactly once on a freshly
        dialed one: the reconnect-on-drop path a long-lived client needs
        when the server restarts or reaps idle connections.  Grants
        (idempotent installs), transformations and fetches
        (deterministic reads) and the GET endpoints replay as-is; revoke
        and resize replay under the client-generated ``request_id`` in
        their body, which the server's idempotency window dedups so a
        drop after the server acted returns the recorded first outcome
        rather than re-executing against mutated state.  Callers that
        genuinely must not replay pass ``replayable=False`` and get a
        fail-fast :class:`WireTransportError` instead.
        """
        headers = {"Content-Type": "application/json"}
        if trace is not None:
            headers[TRACE_HEADER] = trace.to_header()
        last_error: Exception | None = None
        for attempt in (0, 1) if replayable else (0,):
            if self._signer is not None:
                # Each attempt is its own signed request — a fresh nonce
                # keeps the server's replay window from rejecting the
                # legitimate retry of a request whose response was lost.
                headers[AUTH_HEADER] = self._signer.header(method, path, data or b"")
            try:
                conn = self._checkout(fresh=(not replayable) or attempt > 0)
            except _RETRYABLE as error:
                # The dial itself failed; the checkout already released
                # its pool slot.
                last_error = error
                continue
            try:
                conn.request(method, path, body=data, headers=headers)
                response = conn.getresponse()
                body = response.read()
            except _RETRYABLE as error:
                self._checkin(conn, discard=True)
                last_error = error
                continue
            except BaseException:
                # Anything else (KeyboardInterrupt, MemoryError, ...) must
                # still return the slot, or the pool leaks it and a later
                # checkout blocks forever.
                self._checkin(conn, discard=True)
                raise
            # The server asked to close (error paths do); honor it so the
            # next checkout dials fresh instead of failing.
            self._checkin(conn, discard=response.will_close)
            # The server echoes the trace header; keep the latest echo so
            # callers (and the loopback CI leg) can assert the id made the
            # full client -> server -> response round trip.
            self.last_trace_echo = response.getheader(TRACE_HEADER)
            return response.status, body
        raise WireTransportError(
            "cannot reach %s%s: %s" % (self.url, path, last_error)
        ) from last_error

    # ----------------------------------------------------------- negotiation

    def _parse_json(self, body: bytes, path: str) -> dict:
        try:
            document = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise WireTransportError("undecodable %s body" % path) from error
        if not isinstance(document, dict):
            raise WireTransportError("%s body must be a JSON object" % path)
        return document

    def _get_json(self, path: str) -> dict:
        status, body = self._raw_request("GET", path, None)
        if status != 200:
            raise WireTransportError("HTTP %d from %s" % (status, path))
        return self._parse_json(body, path)

    def _ensure_negotiated(self) -> None:
        if not self._negotiate or self._negotiated:
            return
        with self._negotiation_lock:
            if not self._negotiated:
                self._negotiate_scheme()

    def _negotiate_scheme(self) -> None:
        """Pin this client's scheme against what the server hosts."""
        status, body = self._raw_request("GET", "/v1/schemes", None)
        if status == 200:
            document = self._parse_json(body, "/v1/schemes")
            entries = document.get("schemes")
            if not isinstance(entries, list):
                raise WireTransportError("/v1/schemes body lacks a schemes list")
            hosted = [
                (entry.get("scheme"), entry.get("group"))
                for entry in entries
                if isinstance(entry, dict)
            ]
            for scheme_id, group_name in hosted:
                if scheme_id == self.backend.scheme_id and group_name == self.group.params.name:
                    self._prefix = "/v1/%s" % scheme_id
                    self._negotiated = True
                    return
            raise SchemeMismatchError(
                "server %s hosts %s; this client speaks %s on %s"
                % (
                    self.url,
                    ", ".join("%s on %s" % pair for pair in hosted) or "no schemes",
                    self.backend.scheme_id,
                    self.group.params.name,
                )
            )
        # No /v1/schemes: a legacy single-scheme server; verify via the
        # unprefixed document and keep speaking the unprefixed routes.
        info = self._get_json("/v1/scheme")
        remote_scheme = info.get("scheme")
        remote_group = info.get("group")
        if remote_scheme is None or remote_group is None:
            raise WireTransportError(
                "scheme negotiation failed: /v1/scheme body lacks scheme/group"
            )
        if remote_scheme != self.backend.scheme_id or remote_group != self.group.params.name:
            raise SchemeMismatchError(
                "server %s runs %s on group %s; this client speaks %s on %s"
                % (
                    self.url,
                    remote_scheme,
                    remote_group,
                    self.backend.scheme_id,
                    self.group.params.name,
                )
            )
        self._negotiated = True

    # ------------------------------------------------------------- plumbing

    def _sample_trace(self) -> bool:
        """Head-sampling decision for one client-originated request."""
        if self._trace_fraction >= 1.0:
            return True
        if self._trace_fraction <= 0.0:
            return False
        with self._trace_rng_lock:
            return self._trace_rng.random() < self._trace_fraction

    def _round_trip(
        self,
        method: str,
        op: str,
        message: object | None,
        replayable: bool = True,
        trace: TraceContext | None = None,
    ):
        self._ensure_negotiated()
        path = "%s/%s" % (self._prefix, op)
        data = (
            to_wire(self.backend, message).encode("utf-8") if message is not None else None
        )
        if trace is not None:
            # Caller-supplied context (a routing tier propagating its own
            # trace): send it verbatim so the remote spans parent under
            # the caller's span instead of a fresh local root.
            status, body = self._raw_request(
                method, path, data, replayable=replayable, trace=trace
            )
            text = body.decode("utf-8", errors="replace")
            return self._decode_round_trip(status, text, path)
        trace = TraceContext.generate() if self._sample_trace() else None
        if trace is not None:
            self.last_trace = trace
            with self.tracer.span(trace, "wire-round-trip", {"op": op}) as span:
                # The header carries the round-trip span's own context, so
                # the server-side spans nest under it in the merged trace.
                status, body = self._raw_request(
                    method, path, data, replayable=replayable, trace=span.context
                )
                span.set("status", status)
        else:
            status, body = self._raw_request(method, path, data, replayable=replayable)
        text = body.decode("utf-8", errors="replace")
        return self._decode_round_trip(status, text, path)

    def _decode_round_trip(self, status: int, text: str, path: str):
        if status >= 400:
            # The body should be a wire error; reconstruct and raise the
            # taxonomy class the in-process gateway would have raised.
            try:
                decoded = from_wire(self.backend, text)
            except GatewayError:
                raise WireTransportError(
                    "HTTP %d from %s with undecodable body" % (status, path)
                ) from None
            if isinstance(decoded, GatewayError):
                raise decoded from None
            raise WireTransportError(
                "HTTP %d from %s carried a non-error message" % (status, path)
            )
        try:
            return from_wire(self.backend, text)
        except InvalidRequestError as decode_error:
            # A 2xx body that is not wire JSON (an interposed proxy, a
            # version-skewed server) is a transport fault, not the gateway
            # judging *our* request invalid.
            raise WireTransportError(
                "undecodable 2xx body from %s: %s" % (path, decode_error)
            ) from decode_error

    def _call(
        self,
        method: str,
        op: str,
        message: object | None,
        expect: type,
        replayable: bool = True,
        trace: TraceContext | None = None,
    ):
        decoded = self._round_trip(
            method, op, message, replayable=replayable, trace=trace
        )
        if not isinstance(decoded, expect):
            raise WireTransportError(
                "%s returned %s, expected %s"
                % (op, type(decoded).__name__, expect.__name__)
            )
        return decoded

    # ------------------------------------------------------------ operations

    def scheme_info(self) -> dict:
        """This client's pinned scheme document (id, group, capabilities)."""
        self._ensure_negotiated()
        return self._get_json("%s/scheme" % self._prefix)

    def schemes_info(self) -> list[dict]:
        """Every scheme document the server hosts.

        A legacy single-scheme server (no ``/v1/schemes``) reports its
        one scheme, so callers can always treat the result as the hosted
        list.
        """
        status, body = self._raw_request("GET", "/v1/schemes", None)
        if status == 200:
            document = self._parse_json(body, "/v1/schemes")
            entries = document.get("schemes")
            if not isinstance(entries, list):
                raise WireTransportError("/v1/schemes body lacks a schemes list")
            return entries
        return [self._get_json("/v1/scheme")]

    def grant(
        self, request: GrantRequest, trace: TraceContext | None = None
    ) -> GrantResponse:
        return self._call("POST", "grant", request, GrantResponse, trace=trace)

    def grant_batch(
        self,
        requests: Sequence[GrantRequest],
        trace: TraceContext | None = None,
    ) -> list[GrantResponse]:
        """Install many proxy keys in one wire round-trip.

        The fleet's resize migration ships each chunk of re-homed keys
        this way instead of paying one HTTP request per key.
        """
        message = GrantBatchRequest(requests=tuple(requests))
        response = self._call(
            "POST", "grant", message, GrantBatchResponse, trace=trace
        )
        return list(response.responses)

    def revoke(
        self, request: RevokeRequest, trace: TraceContext | None = None
    ) -> RevokeResponse:
        # Replayed under a client-generated request id: the server's
        # idempotency window recognises the retry of a request whose
        # response died on the wire and returns the recorded outcome, so
        # a replay never reports removed=False for a revocation that
        # happened.
        if request.request_id is None:
            request = replace(request, request_id=_new_request_id())
        return self._call(
            "POST", "revoke", request, RevokeResponse, replayable=True, trace=trace
        )

    def reencrypt(
        self, request: ReEncryptRequest, trace: TraceContext | None = None
    ) -> ReEncryptResponse:
        return self._call("POST", "reencrypt", request, ReEncryptResponse, trace=trace)

    def reencrypt_batch(
        self,
        requests: Sequence[ReEncryptRequest],
        trace: TraceContext | None = None,
    ) -> list[ReEncryptResponse]:
        """One POST for the whole batch; order matches submission order."""
        message = ReEncryptBatchRequest(requests=tuple(requests))
        response = self._call(
            "POST", "reencrypt", message, ReEncryptBatchResponse, trace=trace
        )
        return list(response.responses)

    def fetch(
        self, request: FetchRequest, trace: TraceContext | None = None
    ) -> FetchResponse:
        return self._call("POST", "fetch", request, FetchResponse, trace=trace)

    def resize(
        self,
        shard_count: int,
        tenant: str = "admin",
        trace: TraceContext | None = None,
    ) -> ResizeReport:
        # Replayed under a request id, like revoke: the server dedups the
        # retry so a dropped response cannot trigger a second (spurious
        # zero-move) migration.
        message = ResizeRequest(
            tenant=tenant, shard_count=shard_count, request_id=_new_request_id()
        )
        return self._call(
            "POST", "resize", message, ResizeReport, replayable=True, trace=trace
        )

    def list_keys(
        self, tenant: str = "admin", trace: TraceContext | None = None
    ) -> list:
        """Every proxy key the remote gateway holds (all shards).

        The fleet's routing tier uses this during resize migration to
        enumerate a shard process's keys over the wire.
        """
        message = KeyExportRequest(tenant=tenant)
        response = self._call(
            "POST", "export", message, KeyExportResponse, trace=trace
        )
        return list(response.keys)

    # --------------------------------------------------------- observability

    def snapshot(self) -> MetricsSnapshot:
        return self._call("GET", "metrics", None, MetricsSnapshot)

    def metrics_text(self) -> str:
        """The server's Prometheus exposition (all hosted schemes)."""
        status, body = self._raw_request("GET", "/v1/metrics?format=prometheus", None)
        if status != 200:
            raise WireTransportError("HTTP %d from /v1/metrics?format=prometheus" % status)
        return body.decode("utf-8")

    def events_tail(self, n: int | None = None) -> list[dict]:
        """The newest ``n`` structured server events, oldest first.

        Scheme-neutral endpoint; ``n=None`` retrieves everything the
        server's bounded event ring still holds.
        """
        path = "/v1/events" if n is None else "/v1/events?tail=%d" % n
        status, body = self._raw_request("GET", path, None)
        if status != 200:
            raise WireTransportError("HTTP %d from %s" % (status, path))
        document = self._parse_json(body, path)
        events = document.get("events")
        if not isinstance(events, list):
            raise WireTransportError("%s body lacks an events list" % path)
        return events

    def fetch_trace(self, trace_id: str) -> list[Span]:
        """Retrieve one server-side trace by id (scheme-neutral endpoint).

        Raises :class:`~repro.service.gateway.EntryMissingError` when the
        server's bounded ring no longer (or never) held the id.
        """
        path = "/v1/trace/%s" % trace_id
        status, body = self._raw_request("GET", path, None)
        text = body.decode("utf-8", errors="replace")
        if status >= 400:
            try:
                decoded = from_wire(self.backend, text)
            except GatewayError:
                raise WireTransportError(
                    "HTTP %d from %s with undecodable body" % (status, path)
                ) from None
            if isinstance(decoded, GatewayError):
                raise decoded from None
            raise WireTransportError(
                "HTTP %d from %s carried a non-error message" % (status, path)
            )
        document = self._parse_json(body, path)
        spans = document.get("spans")
        if not isinstance(spans, list):
            raise WireTransportError("%s body lacks a spans list" % path)
        try:
            return [span_from_json(span) for span in spans]
        except ValueError as error:
            raise WireTransportError("malformed span in %s: %s" % (path, error)) from error

    def close(self) -> None:
        """Release every idle pooled connection (the pool refills on use)."""
        with self._pool_lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            self._discard(conn)

    def __enter__(self) -> "RemoteGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
