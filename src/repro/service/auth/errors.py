"""The auth slice of the gateway error taxonomy.

Every failure mode of the wire's authentication layer is a
:class:`~repro.service.gateway.GatewayError` subclass with a stable
``code`` string, exactly like the rest of the taxonomy: the codec
serializes them by code, the HTTP server maps them onto 401/403, and a
client that pins behaviour to a code never sees a different one for the
same failure.  Authentication failures (who are you?) descend from
:class:`AuthenticationError`; authorization failures (you may not do
that) are :class:`ForbiddenError` — the split mirrors HTTP 401 vs 403.
"""

from __future__ import annotations

from repro.service.gateway import GatewayError

__all__ = [
    "AuthenticationError",
    "AuthRequiredError",
    "UnknownTenantError",
    "BadSignatureError",
    "StaleTimestampError",
    "ReplayedNonceError",
    "ForbiddenError",
]


class AuthenticationError(GatewayError):
    """Base of every authentication failure (HTTP 401)."""

    code = "auth-failed"


class AuthRequiredError(AuthenticationError):
    """The server requires signed requests and none (or garbage) arrived."""

    code = "auth-required"


class UnknownTenantError(AuthenticationError):
    """The signature names a tenant the credential store does not hold."""

    code = "auth-unknown-tenant"


class BadSignatureError(AuthenticationError):
    """The HMAC over the canonical request does not verify."""

    code = "auth-bad-signature"


class StaleTimestampError(AuthenticationError):
    """The signed timestamp is outside the allowed clock-skew window."""

    code = "auth-stale-timestamp"


class ReplayedNonceError(AuthenticationError):
    """The (tenant, nonce) pair was already accepted inside the window."""

    code = "auth-replay"


class ForbiddenError(GatewayError):
    """The authenticated tenant's roles do not allow this operation (403)."""

    code = "auth-forbidden"
