"""End-to-end tests for the PHR disclosure system (paper Section 5)."""

import pytest

from repro.math.drbg import HmacDrbg
from repro.phr.actors import AccessDeniedError
from repro.phr.generator import PhrGenerator
from repro.phr.records import PhrEntry
from repro.phr.workflow import PhrSystem


@pytest.fixture()
def system(group):
    return PhrSystem(group=group, rng=HmacDrbg("phr-system"))


@pytest.fixture()
def populated(system):
    """Alice with a small history, one doctor, one emergency service."""
    system.register_patient("alice")
    system.register_requester("dr-bob", role="doctor", domain="hospital")
    system.register_requester("ems", role="emergency", domain="ems-kgc")
    generator = PhrGenerator(HmacDrbg("gen"), "alice")
    entries = generator.history(entries_per_category=2)
    for entry in entries:
        system.store_entry("alice", entry)
    return system, entries


class TestRegistration:
    def test_duplicate_patient_rejected(self, system):
        system.register_patient("alice")
        with pytest.raises(ValueError):
            system.register_patient("alice")

    def test_duplicate_requester_rejected(self, system):
        system.register_requester("bob", role="doctor", domain="hospital")
        with pytest.raises(ValueError):
            system.register_requester("bob", role="doctor", domain="hospital")

    def test_requesters_cannot_join_patient_domain(self, system):
        with pytest.raises(ValueError):
            system.register_requester("eve", role="doctor", domain="patients-kgc")

    def test_requesters_share_domains(self, system):
        r1 = system.register_requester("d1", role="doctor", domain="hospital")
        r2 = system.register_requester("d2", role="doctor", domain="hospital")
        assert r1.params.public_key == r2.params.public_key

    def test_one_key_pair_per_patient(self, system):
        """The paper's headline: one key pair regardless of category count."""
        alice = system.register_patient("alice")
        assert alice.private_key.identity == "alice"
        assert len(system.categories()) > 1  # many categories, one key


class TestUploadAndSelfAccess:
    def test_entries_land_at_category_proxies(self, populated):
        system, entries = populated
        labs = system.proxy_for("lab-results").store
        assert labs.record_count() == 2
        assert all(r.category == "lab-results" for r in labs.entries_for("alice"))

    def test_patient_reads_own_entry(self, populated):
        system, entries = populated
        alice = system.patient("alice")
        record = system.proxy_for(entries[0].category).store.get("alice", entries[0].entry_id)
        assert alice.decrypt_entry(record.blob) == entries[0]

    def test_store_holds_only_ciphertext(self, populated):
        system, entries = populated
        record = system.proxy_for(entries[0].category).store.get("alice", entries[0].entry_id)
        assert entries[0].to_bytes() not in record.blob

    def test_unknown_category_rejected(self, system):
        system.register_patient("alice")
        entry = PhrEntry("e", "x-rays", "dr", "2007-01-01", {})
        with pytest.raises(KeyError):
            system.store_entry("alice", entry)


class TestGrantAndRequest:
    def test_granted_category_readable(self, populated):
        system, entries = populated
        system.grant("alice", "dr-bob", "lab-results")
        results = system.request_category("dr-bob", "alice", "lab-results")
        expected = [e for e in entries if e.category == "lab-results"]
        assert sorted(results, key=lambda e: e.entry_id) == sorted(
            expected, key=lambda e: e.entry_id
        )

    def test_ungranted_category_denied(self, populated):
        system, _ = populated
        system.grant("alice", "dr-bob", "lab-results")
        with pytest.raises(AccessDeniedError):
            system.request_category("dr-bob", "alice", "illness-history")

    def test_grants_are_per_requester(self, populated):
        system, _ = populated
        system.grant("alice", "dr-bob", "lab-results")
        with pytest.raises(AccessDeniedError):
            system.request_category("ems", "alice", "lab-results")

    def test_single_entry_request(self, populated):
        system, entries = populated
        target = next(e for e in entries if e.category == "medication")
        system.grant("alice", "dr-bob", "medication")
        entry = system.request_entry("dr-bob", "alice", "medication", target.entry_id)
        assert entry == target

    def test_policy_tracks_grants(self, populated):
        system, _ = populated
        system.grant("alice", "dr-bob", "lab-results")
        system.grant("alice", "dr-bob", "medication")
        policy = system.patient("alice").policy
        assert policy.categories_for("dr-bob", "hospital") == ["lab-results", "medication"]


class TestRevocation:
    def test_revoke_blocks_future_requests(self, populated):
        system, _ = populated
        system.grant("alice", "dr-bob", "lab-results")
        system.request_category("dr-bob", "alice", "lab-results")
        assert system.revoke("alice", "dr-bob", "lab-results")
        with pytest.raises(AccessDeniedError):
            system.request_category("dr-bob", "alice", "lab-results")

    def test_revoke_nonexistent_grant(self, populated):
        system, _ = populated
        assert not system.revoke("alice", "dr-bob", "vitals")

    def test_revoke_is_category_scoped(self, populated):
        system, _ = populated
        system.grant("alice", "dr-bob", "lab-results")
        system.grant("alice", "dr-bob", "medication")
        system.revoke("alice", "dr-bob", "lab-results")
        assert system.request_category("dr-bob", "alice", "medication")


class TestEmergency:
    def test_emergency_access(self, populated):
        system, entries = populated
        system.grant("alice", "ems", "emergency-profile")
        profile = system.emergency_access("ems", "alice")
        assert len(profile) == 2
        assert all(e.category == "emergency-profile" for e in profile)

    def test_emergency_without_grant_denied(self, populated):
        system, _ = populated
        with pytest.raises(AccessDeniedError):
            system.emergency_access("ems", "alice")

    def test_emergency_grant_does_not_expose_secrets(self, populated):
        """The travel scenario: EMS sees t3 (emergency), never t1 (illness)."""
        system, _ = populated
        system.grant("alice", "ems", "emergency-profile")
        system.emergency_access("ems", "alice")
        with pytest.raises(AccessDeniedError):
            system.request_category("ems", "alice", "illness-history")


class TestAuditTrail:
    def test_all_actions_audited(self, populated):
        system, entries = populated
        system.grant("alice", "dr-bob", "lab-results")
        system.request_category("dr-bob", "alice", "lab-results")
        system.revoke("alice", "dr-bob", "lab-results")
        try:
            system.request_category("dr-bob", "alice", "lab-results")
        except AccessDeniedError:
            pass
        assert len(system.audit.events(action="upload")) == len(entries)
        assert len(system.audit.events(action="grant")) == 1
        assert len(system.audit.events(action="request-served")) == 2
        assert len(system.audit.events(action="revoke")) == 1
        assert len(system.audit.events(action="request-denied")) == 1
        assert system.audit.verify_chain()


class TestMultiPatient:
    def test_isolation_between_patients(self, system):
        system.register_patient("alice")
        system.register_patient("carol")
        system.register_requester("dr-bob", role="doctor", domain="hospital")
        generator_a = PhrGenerator(HmacDrbg("a"), "alice")
        generator_c = PhrGenerator(HmacDrbg("c"), "carol")
        system.store_entry("alice", generator_a.entry_for("lab-results"))
        system.store_entry("carol", generator_c.entry_for("lab-results"))
        system.grant("alice", "dr-bob", "lab-results")
        assert len(system.request_category("dr-bob", "alice", "lab-results")) == 1
        # Carol never granted anything: her records stay closed.
        with pytest.raises(AccessDeniedError):
            system.request_category("dr-bob", "carol", "lab-results")

    def test_patients_cannot_read_each_other(self, system):
        alice = system.register_patient("alice")
        carol = system.register_patient("carol")
        entry = PhrGenerator(HmacDrbg("a"), "alice").entry_for("vitals")
        system.store_entry("alice", entry)
        record = system.proxy_for("vitals").store.get("alice", entry.entry_id)
        assert alice.decrypt_entry(record.blob) == entry
        with pytest.raises(Exception):
            carol.decrypt_entry(record.blob)
