"""Elliptic-curve substrate: curves, points, and type-A pairing parameters."""

from repro.ec.curve import EllipticCurve, Point
from repro.ec.params import available_parameter_sets, generate_parameters, get_params
from repro.ec.supersingular import SupersingularCurve

__all__ = [
    "EllipticCurve",
    "Point",
    "SupersingularCurve",
    "get_params",
    "generate_parameters",
    "available_parameter_sets",
]
