"""Shared fixtures: the TOY pairing group, seeded RNGs, KGC setups.

All unit tests run on the TOY parameter set (88-bit p) so the suite stays
fast; a handful of integration tests exercise SS256.  Hypothesis gets a
conservative profile because each example may perform pairings.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.core.scheme import TypeAndIdentityPre
from repro.ibe.kgc import KgcRegistry
from repro.math.drbg import HmacDrbg
from repro.pairing.group import PairingGroup

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def group() -> PairingGroup:
    """The TOY pairing group (session-scoped: parameter parsing is cached)."""
    return PairingGroup("TOY")


@pytest.fixture()
def rng() -> HmacDrbg:
    """A fresh deterministic RNG per test."""
    return HmacDrbg("test-fixture-rng")


@pytest.fixture()
def two_kgcs(group, rng):
    """The paper's setting: KGC1 (delegator) and KGC2 (delegatee)."""
    registry = KgcRegistry(group, rng)
    return registry.create("KGC1"), registry.create("KGC2")


@pytest.fixture()
def pre_setting(group, rng, two_kgcs):
    """Scheme + alice (delegator at KGC1) + bob (delegatee at KGC2)."""
    kgc1, kgc2 = two_kgcs
    scheme = TypeAndIdentityPre(group)
    alice = kgc1.extract("alice")
    bob = kgc2.extract("bob")
    return scheme, kgc1, kgc2, alice, bob
