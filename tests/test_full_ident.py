"""Tests for the CCA-secure FullIdent variant (Fujisaki--Okamoto)."""

import dataclasses

import pytest

from repro.ibe.full_ident import DecryptionError, FullIdentCiphertext, FullIdentIbe


@pytest.fixture()
def ibe(group):
    return FullIdentIbe(group, "KGC-CCA")


@pytest.fixture()
def setup(ibe, rng):
    return ibe.setup(rng)


class TestRoundTrip:
    def test_basic(self, ibe, setup, rng):
        params, master = setup
        key = ibe.extract(master, "alice")
        ciphertext = ibe.encrypt(params, b"confidential", "alice", rng)
        assert ibe.decrypt(ciphertext, key) == b"confidential"

    def test_empty_message(self, ibe, setup, rng):
        params, master = setup
        key = ibe.extract(master, "alice")
        assert ibe.decrypt(ibe.encrypt(params, b"", "alice", rng), key) == b""

    def test_long_message(self, ibe, setup, rng):
        params, master = setup
        key = ibe.extract(master, "alice")
        message = bytes(range(256)) * 8
        assert ibe.decrypt(ibe.encrypt(params, message, "alice", rng), key) == message

    def test_randomised_yet_verifiable(self, ibe, setup, rng):
        params, master = setup
        key = ibe.extract(master, "alice")
        c1 = ibe.encrypt(params, b"m", "alice", rng)
        c2 = ibe.encrypt(params, b"m", "alice", rng)
        assert c1.c1 != c2.c1  # fresh sigma => fresh FO randomness
        assert ibe.decrypt(c1, key) == ibe.decrypt(c2, key) == b"m"

    def test_keys_shared_with_basic_variant(self, group, rng):
        """FullIdent reuses BasicIdent Setup/Extract unchanged."""
        from repro.ibe.boneh_franklin import BonehFranklinIbe

        full = FullIdentIbe(group, "D")
        basic = BonehFranklinIbe(group, "D")
        params, master = full.setup(rng)
        assert full.extract(master, "x") == basic.extract(master, "x")


class TestCcaRejection:
    @pytest.fixture()
    def delivered(self, ibe, setup, rng):
        params, master = setup
        key = ibe.extract(master, "alice")
        ciphertext = ibe.encrypt(params, b"integrity matters", "alice", rng)
        return ibe, ciphertext, key

    def test_mauled_c1_rejected(self, delivered, group):
        ibe, ciphertext, key = delivered
        mauled = dataclasses.replace(ciphertext, c1=group.g1_mul(ciphertext.c1, 2))
        with pytest.raises(DecryptionError):
            ibe.decrypt(mauled, key)

    def test_mauled_c2_rejected(self, delivered):
        ibe, ciphertext, key = delivered
        flipped = bytes([ciphertext.c2[0] ^ 1]) + ciphertext.c2[1:]
        with pytest.raises(DecryptionError):
            ibe.decrypt(dataclasses.replace(ciphertext, c2=flipped), key)

    def test_mauled_c3_rejected(self, delivered):
        ibe, ciphertext, key = delivered
        flipped = bytes([ciphertext.c3[0] ^ 1]) + ciphertext.c3[1:]
        with pytest.raises(DecryptionError):
            ibe.decrypt(dataclasses.replace(ciphertext, c3=flipped), key)

    def test_truncated_c3_rejected(self, delivered):
        ibe, ciphertext, key = delivered
        with pytest.raises(DecryptionError):
            ibe.decrypt(dataclasses.replace(ciphertext, c3=ciphertext.c3[:-1]), key)

    def test_short_c2_rejected(self, delivered):
        ibe, ciphertext, key = delivered
        with pytest.raises(DecryptionError):
            ibe.decrypt(dataclasses.replace(ciphertext, c2=b"short"), key)

    def test_wrong_identity_rejected(self, ibe, setup, rng):
        params, master = setup
        bob_key = ibe.extract(master, "bob")
        ciphertext = ibe.encrypt(params, b"for alice", "alice", rng)
        with pytest.raises(DecryptionError):
            ibe.decrypt(ciphertext, bob_key)

    def test_identity_swap_rejected(self, ibe, setup, rng):
        """Relabelling the recipient fails the FO check (pad mismatch)."""
        params, master = setup
        bob_key = ibe.extract(master, "bob")
        ciphertext = ibe.encrypt(params, b"for alice", "alice", rng)
        relabelled = dataclasses.replace(ciphertext, identity="bob")
        with pytest.raises(DecryptionError):
            ibe.decrypt(relabelled, bob_key)

    def test_contrast_cpa_variant_accepts_mauling(self, group, rng):
        """BasicIdent (CPA) is malleable — exactly what FullIdent fixes."""
        from repro.ibe.boneh_franklin import BonehFranklinIbe

        basic = BonehFranklinIbe(group, "D")
        params, master = basic.setup(rng)
        key = basic.extract(master, "alice")
        message = group.random_gt(rng)
        ciphertext = basic.encrypt(params, message, "alice", rng)
        # Maul: multiply c2 by a known factor; decryption shifts predictably.
        factor = group.random_gt(rng)
        import dataclasses as dc

        mauled = dc.replace(ciphertext, c2=group.gt_mul(ciphertext.c2, factor))
        assert basic.decrypt(mauled, key) == group.gt_mul(message, factor)


class TestDomainGuards:
    def test_wrong_domain_params(self, group, rng, setup):
        params, _ = setup
        other = FullIdentIbe(group, "OTHER")
        with pytest.raises(ValueError):
            other.encrypt(params, b"m", "alice", rng)

    def test_wrong_domain_ciphertext(self, group, rng, ibe, setup):
        params, master = setup
        other = FullIdentIbe(group, "OTHER")
        other_params, other_master = other.setup(rng)
        ciphertext = other.encrypt(other_params, b"m", "alice", rng)
        with pytest.raises(ValueError):
            ibe.decrypt(ciphertext, ibe.extract(master, "alice"))
