"""E13 — concurrent clients: pooled connections, multi-scheme hosting.

PR 5 gives :class:`~repro.service.wire.client.RemoteGateway` a bounded
keep-alive connection pool and lets one server process host several
scheme fleets.  Two measured claims:

1. **Pooled beats single-connection under concurrent load.**  Eight
   client threads drive the same request stream through one shared
   client, pool of 1 (the PR-4 behaviour: every thread serializes on a
   single socket) vs pool of 8.  The fleet models remote shards the way
   E10 does — each transformation charges a service round trip — so the
   single connection's head-of-line blocking is visible as wall clock:
   with one socket only one request is ever in flight, so shard
   latencies sum; with a pool they overlap across server handler
   threads.  The gain is asserted, and responses must stay bit-identical
   to the sequential reference (no cross-talk).

2. **One process, several scheme fleets.**  A real ``repro-pre serve
   --http --scheme tipre/v1 --scheme afgh/v1`` subprocess hosts two
   fleets; pooled clients drive both concurrently over the
   scheme-prefixed routes with full decrypt-and-compare verification.
   This is the CLI-to-wire acceptance path, measured per scheme.

TOY parameters: like E9-E12 this measures workload structure and
transport, not key size.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import repro
from repro.bench.report import print_table
from repro.core.proxy import ProxyService
from repro.serialization.containers import serialize_reencrypted
from repro.service.driver import (
    DELEGATEE_DOMAIN,
    build_scheme_setting,
    build_setting,
    drive_scheme_requests,
    resolve_remote_group,
)
from repro.service.gateway import GrantRequest, ReEncryptionGateway, ReEncryptRequest
from repro.service.wire import GatewayHttpServer, RemoteGateway

THREADS = 8
SHARDS = 16  # spreads the 8 per-thread route keys so shard locks rarely collide
REMOTE_RTT_S = 0.005  # modelled service latency of one remote shard call (as E10)


@dataclass
class RemoteShardStub(ProxyService):
    """A proxy shard that charges a service round-trip per transformation."""

    latency_s: float = 0.0

    def reencrypt_with_key(self, ciphertext, key):
        if self.latency_s:
            time.sleep(self.latency_s)
        return super().reencrypt_with_key(ciphertext, key)


def _setting():
    """8 (patient, type) route keys x 6 ciphertexts x 2 delegatees."""
    return build_setting(
        group_name="TOY",
        shard_count=2,
        n_patients=4,
        n_types=2,
        n_delegatees=2,
        ciphertexts_per_pair=6,
        seed="e13-pooled",
    )


def _installed_keys(gateway):
    keys = []
    for name in gateway.shard_names:
        keys.extend(gateway.shard_named(name).table)
    return keys


def _thread_partitions(setting):
    """One distinct request list per thread, each on its own route key.

    Distinct ciphertexts keep the result cache cold (every request pays
    the modelled shard latency), and the per-thread route keys map to
    different shards, so pooled concurrency is limited by the transport —
    the thing under test — not by shard-lock collisions.
    """
    partitions = []
    for patient in setting.patients:
        for type_label in setting.types:
            requests = []
            for ciphertext, _message in setting.pool[(patient, type_label)]:
                for delegatee in setting.delegatees:
                    requests.append(
                        ReEncryptRequest(
                            tenant=patient,
                            ciphertext=ciphertext,
                            delegatee_domain=DELEGATEE_DOMAIN,
                            delegatee=delegatee,
                        )
                    )
            partitions.append(requests)
    assert len(partitions) == THREADS
    return partitions


def _latency_gateway(scheme, keys):
    def factory(name, table):
        from repro.core.proxy import ProxyKeyTable

        return RemoteShardStub(
            scheme,
            name=name,
            table=table if table is not None else ProxyKeyTable(),
            latency_s=REMOTE_RTT_S,
        )

    gateway = ReEncryptionGateway(scheme, shard_count=SHARDS, shard_factory=factory)
    for key in keys:
        gateway.grant(GrantRequest(tenant="bench", proxy_key=key))
    return gateway


def _drive_pool(url, group, partitions, expected, pool_size):
    """8 barrier-started threads through one shared client; wall clock."""
    client = RemoteGateway(url, group, pool_size=pool_size)
    mismatches = []
    errors = []
    lock = threading.Lock()
    start_line = threading.Barrier(THREADS + 1)
    finish_line = threading.Barrier(THREADS + 1)

    def worker(thread_id, requests):
        try:
            start_line.wait(timeout=60)
            for index, request in enumerate(requests):
                response = client.reencrypt(request)
                blob = serialize_reencrypted(group, response.ciphertext)
                if blob != expected[thread_id][index]:
                    with lock:
                        mismatches.append((thread_id, index))
            finish_line.wait(timeout=120)
        except BaseException as error:  # noqa: BLE001 - reported to the bench
            with lock:
                errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(i, requests), daemon=True)
        for i, requests in enumerate(partitions)
    ]
    for thread in threads:
        thread.start()
    start_line.wait(timeout=60)
    start = time.perf_counter()
    finish_line.wait(timeout=120)
    elapsed_s = time.perf_counter() - start
    for thread in threads:
        thread.join(timeout=60)
    client.close()
    assert not errors, errors
    assert not mismatches, "cross-talk between pooled responses: %r" % mismatches
    assert client.peak_connections <= pool_size
    return elapsed_s, client.connections_opened, client.peak_connections


def test_e13_pooled_client_beats_single_connection_under_concurrency():
    setting = _setting()
    keys = _installed_keys(setting.gateway)
    group = setting.group
    partitions = _thread_partitions(setting)
    # The sequential in-process reference: what every schedule must return.
    expected = [
        [
            serialize_reencrypted(group, setting.gateway.reencrypt(request).ciphertext)
            for request in requests
        ]
        for requests in partitions
    ]
    n = sum(len(requests) for requests in partitions)

    rows = []
    timings = {}
    for pool_size in (1, THREADS):
        # A fresh fleet per configuration: cold caches, so every request
        # pays the modelled shard round trip in both runs.
        gateway = _latency_gateway(setting.scheme, keys)
        with GatewayHttpServer(gateway) as server:
            elapsed_s, opened, peak = _drive_pool(
                server.url, group, partitions, expected, pool_size
            )
        gateway.close()
        timings[pool_size] = elapsed_s
        rows.append(
            [
                "pool=%d" % pool_size,
                "%.1f" % (elapsed_s * 1000),
                "%.0f" % (n / elapsed_s),
                str(opened),
                str(peak),
            ]
        )
    setting.gateway.close()

    single_s, pooled_s = timings[1], timings[THREADS]
    rows[1].append("%.2fx" % (single_s / pooled_s))
    rows[0].append("1.00x")
    print_table(
        "E13: %d threads x shared client, %d requests, %.0fms modelled shard RTT"
        % (THREADS, n, REMOTE_RTT_S * 1000),
        ["client", "total ms", "req/s", "dials", "peak conns", "gain"],
        rows,
    )

    # The acceptance anchor: a pool must beat head-of-line blocking on a
    # single socket once shard service time dominates.
    assert pooled_s < single_s, (
        "pooled client (%.1fms) did not beat the single connection (%.1fms)"
        % (pooled_s * 1000, single_s * 1000)
    )


# ------------------------------------------------- multi-scheme subprocess


def _spawn_server(scheme_ids):
    """A real ``repro-pre serve --http`` process; returns (proc, url)."""
    src = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--group",
        "TOY",
        "--shards",
        "2",
        "--http",
        "0",
    ]
    for scheme_id in scheme_ids:
        command += ["--scheme", scheme_id]
    proc = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env
    )
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.terminate()
        raise AssertionError("server did not come up: %r" % line)
    return proc, line.split()[3]


def _drive_scheme_concurrently(setting, url, pool_size, n_requests):
    """Grant a fleet over the wire, then drive it from one pooled client."""
    client = RemoteGateway(url, setting.backend, pool_size=pool_size)
    for name in setting.gateway.shard_names:
        for key in list(setting.gateway.shard_named(name).table):
            client.grant(GrantRequest(tenant="bench", proxy_key=key))
    start = time.perf_counter()
    verified = drive_scheme_requests(
        setting,
        n_requests,
        seed="e13-" + setting.scheme_id,
        verify_every=4,
        gateway=client,
    )
    elapsed_s = time.perf_counter() - start
    client.close()
    return verified, elapsed_s


def test_e13_one_process_hosts_two_scheme_fleets():
    """A single CLI server process serves tipre and afgh side by side,
    driven concurrently, with end-to-end decrypt verification."""
    scheme_ids = ["tipre/v1", "afgh/v1"]
    settings = {}
    proc, url = _spawn_server(scheme_ids)
    try:
        # A multi-scheme server hosts each fleet on its own derived pairing
        # group (the single-group hosting fix); probe for the right one.
        settings = {
            scheme_id: build_scheme_setting(
                scheme_id=scheme_id,
                group_name="TOY",
                shard_count=2,
                n_patients=2,
                n_delegatees=2,
                n_types=2,
                ciphertexts_per_pair=2,
                seed="e13-multihost-" + scheme_id,
                group=resolve_remote_group(url, scheme_id, "TOY"),
            )
            for scheme_id in scheme_ids
        }
        probe = RemoteGateway(url, settings["tipre/v1"].backend)
        hosted = [doc["scheme"] for doc in probe.schemes_info()]
        probe.close()
        assert hosted == scheme_ids, "server does not host both fleets"

        results = {}
        failures = []

        def drive(scheme_id):
            try:
                results[scheme_id] = _drive_scheme_concurrently(
                    settings[scheme_id], url, pool_size=4, n_requests=48
                )
            except BaseException as error:  # noqa: BLE001 - reported below
                failures.append((scheme_id, error))

        threads = [
            threading.Thread(target=drive, args=(scheme_id,), daemon=True)
            for scheme_id in scheme_ids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not failures, failures

        rows = []
        for scheme_id in scheme_ids:
            verified, elapsed_s = results[scheme_id]
            assert verified > 0, "no plaintext verified for %s" % scheme_id
            rows.append(
                [scheme_id, "48", str(verified), "%.0f" % (48 / elapsed_s)]
            )
        print_table(
            "E13: one serve --http process, two scheme fleets driven concurrently",
            ["scheme", "requests", "verified", "req/s"],
            rows,
        )
    finally:
        proc.terminate()
        proc.wait(timeout=30)
        for setting in settings.values():
            setting.gateway.close()
