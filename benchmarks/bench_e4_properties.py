"""E4 — the PRE property matrix, executed rather than asserted.

Reproduces the property discussion of Section 4.3 (and the comparison
table tradition of Ateniese et al.): for every implemented scheme, the
relevant attack or capability is *run* and its outcome reported.

Expected output: the paper's scheme shows uni-directional /
non-interactive / collusion-safe / type-granular; BBS demonstrably fails
bidirectionality and collusion; Dodis--Ivan fails collusion.
"""

from __future__ import annotations

from repro.baselines.interface import PROPERTY_NAMES, all_adapters
from repro.bench.properties import declared_property_matrix, property_table_rows
from repro.bench.report import print_table
from repro.math.drbg import HmacDrbg
from repro.pairing.group import PairingGroup
from repro.security.properties import (
    bbs_collusion_recovers_secret,
    bbs_is_bidirectional,
    dodis_ivan_collusion_recovers_secret,
    tipre_collusion_recovers_only_type_key,
    tipre_delegation_is_unidirectional,
    tipre_is_non_interactive,
    tipre_type_isolation_holds,
)

DEMONSTRATIONS = (
    ("BBS is bidirectional (attack succeeds)", bbs_is_bidirectional),
    ("BBS collusion recovers delegator secret", bbs_collusion_recovers_secret),
    ("Dodis-Ivan collusion recovers secret", dodis_ivan_collusion_recovers_secret),
    ("paper: collusion yields only the type key", tipre_collusion_recovers_only_type_key),
    ("paper: type isolation holds", tipre_type_isolation_holds),
    ("paper: delegation is non-interactive", tipre_is_non_interactive),
    ("paper: delegation is uni-directional", tipre_delegation_is_unidirectional),
)


def test_e4_property_matrix_report(benchmark):
    group = PairingGroup.shared("TOY")
    # The table is *generated* from the scheme registry's declared
    # capabilities — the same objects the production gateway serves — so
    # registering a backend adds its row everywhere at once.
    rows = property_table_rows()
    print_table(
        "E4: declared property matrix (generated from the scheme registry)",
        ["scheme", "name"] + list(PROPERTY_NAMES),
        rows,
    )
    # The bench adapters must tell the identical story: both views read
    # the registry, and a divergence would mean a stale adapter list.
    matrix = declared_property_matrix()
    adapter_view = {
        adapter.backend_class.scheme_id: adapter.properties
        for adapter in all_adapters(group)
    }
    assert adapter_view == matrix, "bench adapters disagree with the registry"

    rng = HmacDrbg("e4")
    rows = []
    for label, demonstration in DEMONSTRATIONS:
        outcome = demonstration(group, rng.fork(label))
        rows.append([label, "confirmed" if outcome else "FAILED"])
        assert outcome, label
    print_table("E4: executable demonstrations", ["demonstration", "outcome"], rows)

    benchmark.pedantic(
        lambda: tipre_type_isolation_holds(group, HmacDrbg("e4-bench")),
        rounds=3,
        iterations=1,
    )


def test_e4_isolation_demonstration_latency(benchmark):
    """Cost of one full isolation demonstration (setup + attack + check)."""
    group = PairingGroup.shared("TOY")
    counter = [0]

    def run():
        counter[0] += 1
        assert tipre_collusion_recovers_only_type_key(group, HmacDrbg("e4-%d" % counter[0]))

    benchmark.group = "E4 demonstrations"
    benchmark.pedantic(run, rounds=3, iterations=1)
