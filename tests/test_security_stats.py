"""Tests for the binomial statistics used by the E6 experiment."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.security.stats import (
    AdvantageEstimate,
    binomial_confidence_interval,
    estimate_from_wins,
)


class TestConfidenceInterval:
    def test_contains_true_rate_for_fair_coin_sample(self):
        low, high = binomial_confidence_interval(25, 50)
        assert low < 0.5 < high

    def test_extremes(self):
        low, high = binomial_confidence_interval(0, 20)
        assert low == 0.0 and high < 0.2
        low, high = binomial_confidence_interval(20, 20)
        assert low > 0.8 and high == 1.0

    def test_narrows_with_more_trials(self):
        narrow = binomial_confidence_interval(500, 1000)
        wide = binomial_confidence_interval(5, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_widens_with_confidence(self):
        ninety = binomial_confidence_interval(25, 50, 0.90)
        ninety_nine = binomial_confidence_interval(25, 50, 0.99)
        assert (ninety_nine[1] - ninety_nine[0]) > (ninety[1] - ninety[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_confidence_interval(1, 0)
        with pytest.raises(ValueError):
            binomial_confidence_interval(5, 4)
        with pytest.raises(ValueError):
            binomial_confidence_interval(-1, 4)
        with pytest.raises(ValueError):
            binomial_confidence_interval(1, 4, confidence=1.0)

    @given(st.integers(min_value=1, max_value=300), st.integers(min_value=0, max_value=300))
    def test_interval_ordered_and_bounded(self, trials, successes_raw):
        successes = min(successes_raw, trials)
        low, high = binomial_confidence_interval(successes, trials)
        assert 0.0 <= low <= successes / trials <= high <= 1.0

    def test_known_value(self):
        # Clopper-Pearson for 0/10 at 95%: upper bound is 1-(0.025)^(1/10).
        _, high = binomial_confidence_interval(0, 10)
        assert high == pytest.approx(1 - 0.025 ** (1 / 10), abs=1e-9)


class TestAdvantageEstimate:
    def test_fair_sample_consistent_with_zero(self):
        estimate = estimate_from_wins("random-guess", 26, 50)
        assert estimate.consistent_with_zero_advantage()
        assert estimate.advantage == pytest.approx(0.02)

    def test_broken_scheme_detected(self):
        estimate = estimate_from_wins("key-stealer", 50, 50)
        assert not estimate.consistent_with_zero_advantage()
        assert estimate.advantage == pytest.approx(0.5)
        assert estimate.advantage_upper_bound == pytest.approx(0.5)

    def test_upper_bound_dominates_point_estimate(self):
        estimate = estimate_from_wins("x", 30, 50)
        assert estimate.advantage_upper_bound >= estimate.advantage

    def test_str_rendering(self):
        text = str(estimate_from_wins("mixer", 24, 50))
        assert "mixer" in text and "24/50" in text and "CI" in text

    def test_small_sample_is_inconclusive_not_alarming(self):
        """6/10 wins must not be flagged as a break."""
        assert estimate_from_wins("noisy", 6, 10).consistent_with_zero_advantage()
