"""Tests for the type-A supersingular group structure."""

import pytest

from repro.ec.params import available_parameter_sets, generate_parameters, get_params
from repro.ec.supersingular import SupersingularCurve
from repro.math.drbg import HmacDrbg

PARAMS = get_params("TOY")


class TestParameterSets:
    def test_all_pinned_sets_are_consistent(self):
        for name in available_parameter_sets():
            params = get_params(name)
            assert params.p % 4 == 3
            assert params.p + 1 == params.h * params.q
            assert params.curve.contains(params.generator)
            assert (params.generator * params.q).is_infinity()
            assert not params.generator.is_infinity()

    def test_expected_sets_available(self):
        assert set(available_parameter_sets()) >= {"TOY", "SS256", "SS512", "SS1024"}

    def test_get_params_cached_and_case_insensitive(self):
        assert get_params("toy") is get_params("TOY")

    def test_unknown_set(self):
        with pytest.raises(KeyError):
            get_params("SS-NONSENSE")

    def test_module_attribute_access(self):
        from repro.ec import params as params_module

        assert params_module.TOY is get_params("TOY")
        with pytest.raises(AttributeError):
            params_module.NOPE

    def test_validation_rejects_bad_cofactor(self):
        with pytest.raises(ValueError):
            SupersingularCurve(
                name="bad",
                p=PARAMS.p,
                q=PARAMS.q,
                h=PARAMS.h + 1,
                generator_x=PARAMS.generator_x,
                generator_y=PARAMS.generator_y,
            )

    def test_validation_rejects_wrong_mod4(self):
        with pytest.raises(ValueError):
            SupersingularCurve(name="bad", p=13, q=7, h=2, generator_x=0, generator_y=0)

    def test_generate_parameters_tiny(self):
        fresh = generate_parameters(16, 40, HmacDrbg("gen-test"), name="tiny")
        assert fresh.p % 4 == 3
        assert fresh.p + 1 == fresh.h * fresh.q
        assert fresh.p.bit_length() == 40
        assert fresh.q.bit_length() == 16
        assert (fresh.generator * fresh.q).is_infinity()

    def test_generate_parameters_bad_sizes(self):
        with pytest.raises(ValueError):
            generate_parameters(30, 32)


class TestSubgroup:
    def test_random_point_in_subgroup(self):
        rng = HmacDrbg("sub")
        point = PARAMS.random_point(rng)
        assert PARAMS.is_in_subgroup(point)

    def test_random_scalar_range(self):
        rng = HmacDrbg("sub")
        for _ in range(20):
            s = PARAMS.random_scalar(rng)
            assert 1 <= s < PARAMS.q

    def test_out_of_subgroup_detected(self):
        # A cofactor-order point: multiply a random curve point by q.
        rng = HmacDrbg("cofactor")
        while True:
            x = PARAMS.base_field.random(rng)
            candidate = PARAMS.curve.lift_x(x)
            if candidate is not None and not (candidate * PARAMS.q).is_infinity():
                stray = candidate * PARAMS.q  # order divides h, not q
                assert not PARAMS.is_in_subgroup(stray)
                return


class TestHashToGroup:
    def test_deterministic(self):
        assert PARAMS.hash_to_group(b"alice") == PARAMS.hash_to_group(b"alice")

    def test_str_and_bytes_agree(self):
        assert PARAMS.hash_to_group("alice") == PARAMS.hash_to_group(b"alice")

    def test_different_inputs_differ(self):
        assert PARAMS.hash_to_group(b"alice") != PARAMS.hash_to_group(b"bob")

    def test_output_in_subgroup(self):
        for name in (b"a", b"b", b"c", b"longer-identity@example.com"):
            point = PARAMS.hash_to_group(name)
            assert PARAMS.is_in_subgroup(point)
            assert not point.is_infinity()

    def test_empty_input_ok(self):
        assert PARAMS.is_in_subgroup(PARAMS.hash_to_group(b""))


class TestDistortion:
    def test_distort_moves_off_base_field(self):
        point = PARAMS.generator
        distorted = PARAMS.distort(point)
        assert distorted.curve == PARAMS.ext_curve
        assert PARAMS.ext_curve.contains(distorted)
        # The y-coordinate is purely imaginary; x is real.
        assert distorted.y.a == 0 and distorted.y.b != 0

    def test_distort_infinity(self):
        assert PARAMS.distort(PARAMS.curve.infinity()).is_infinity()

    def test_distort_is_homomorphism(self):
        p1 = PARAMS.generator
        p2 = PARAMS.generator * 7
        assert PARAMS.distort(p1 + p2) == PARAMS.distort(p1) + PARAMS.distort(p2)

    def test_lift_to_ext(self):
        lifted = PARAMS.lift_to_ext(PARAMS.generator)
        assert PARAMS.ext_curve.contains(lifted)
        assert lifted.x.b == 0 and lifted.y.b == 0
        assert PARAMS.lift_to_ext(PARAMS.curve.infinity()).is_infinity()

    def test_distorted_point_independent_of_lift(self):
        # phi(P) must not be a base-field multiple of P (linear independence).
        lifted = PARAMS.lift_to_ext(PARAMS.generator)
        distorted = PARAMS.distort(PARAMS.generator)
        assert lifted != distorted


class TestGt:
    def test_gt_exponent_integral(self):
        assert (PARAMS.p * PARAMS.p - 1) % PARAMS.q == 0
        assert PARAMS.gt_exponent() == (PARAMS.p * PARAMS.p - 1) // PARAMS.q

    def test_random_gt_has_order_q(self):
        rng = HmacDrbg("gt")
        element = PARAMS.random_gt(rng)
        assert PARAMS.is_in_gt(element)
        assert not element.is_one()

    def test_identity_in_gt(self):
        assert PARAMS.is_in_gt(PARAMS.gt_identity())

    def test_zero_not_in_gt(self):
        assert not PARAMS.is_in_gt(PARAMS.ext_field.zero())

    def test_security_bits(self):
        assert 0 < get_params("TOY").security_bits() <= 16
        assert get_params("SS512").security_bits() == 80
        assert get_params("SS1024").security_bits() == 112
