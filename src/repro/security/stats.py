"""Statistics for the empirical security experiments (E6).

A raw win rate from N game trials is noisy; reviewers rightly ask for
error bars.  This module provides exact (Clopper--Pearson) binomial
confidence intervals and a summary object the E6 bench and tests use to
decide whether an adversary's measured advantage is consistent with zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats as _scipy_stats

__all__ = ["binomial_confidence_interval", "AdvantageEstimate", "estimate_from_wins"]


def binomial_confidence_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Exact Clopper--Pearson interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    alpha = 1 - confidence
    lower = (
        0.0
        if successes == 0
        else float(_scipy_stats.beta.ppf(alpha / 2, successes, trials - successes + 1))
    )
    upper = (
        1.0
        if successes == trials
        else float(_scipy_stats.beta.ppf(1 - alpha / 2, successes + 1, trials - successes))
    )
    return lower, upper


@dataclass(frozen=True)
class AdvantageEstimate:
    """A win rate with its exact confidence interval, read as an advantage."""

    strategy: str
    wins: int
    trials: int
    confidence: float
    rate_low: float
    rate_high: float

    @property
    def rate(self) -> float:
        return self.wins / self.trials

    @property
    def advantage(self) -> float:
        """Point estimate ``|rate - 1/2|``."""
        return abs(self.rate - 0.5)

    @property
    def advantage_upper_bound(self) -> float:
        """The largest ``|p - 1/2|`` consistent with the interval."""
        return max(abs(self.rate_low - 0.5), abs(self.rate_high - 0.5))

    def consistent_with_zero_advantage(self) -> bool:
        """True when the interval contains the fair-coin rate 1/2."""
        return self.rate_low <= 0.5 <= self.rate_high

    def __str__(self) -> str:
        return "%s: %d/%d wins, advantage %.3f (%.0f%% CI rate [%.3f, %.3f])" % (
            self.strategy,
            self.wins,
            self.trials,
            self.advantage,
            100 * self.confidence,
            self.rate_low,
            self.rate_high,
        )


def estimate_from_wins(
    strategy: str, wins: int, trials: int, confidence: float = 0.95
) -> AdvantageEstimate:
    """Build an :class:`AdvantageEstimate` from raw win counts."""
    low, high = binomial_confidence_interval(wins, trials, confidence)
    return AdvantageEstimate(
        strategy=strategy,
        wins=wins,
        trials=trials,
        confidence=confidence,
        rate_low=low,
        rate_high=high,
    )
