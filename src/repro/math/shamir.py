"""Shamir secret sharing over Z_q.

Substrate for the threshold KGC (:mod:`repro.ibe.threshold`): the paper's
threat model notes that IBE key escrow "can be avoided by applying some
standard techniques (such as secret sharing) to the underlying scheme" —
this is that standard technique.

A secret ``s`` is split into ``n`` shares of which any ``t`` reconstruct
it via Lagrange interpolation at zero; fewer than ``t`` shares are
information-theoretically independent of ``s``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.math.drbg import RandomSource, system_random
from repro.math.ntheory import modinv

__all__ = ["Share", "split_secret", "reconstruct_secret", "lagrange_coefficient_at_zero"]


@dataclass(frozen=True)
class Share:
    """One evaluation point ``(x, f(x))`` of the sharing polynomial."""

    index: int  # x-coordinate, 1-based (0 would leak the secret)
    value: int


def split_secret(
    secret: int,
    threshold: int,
    share_count: int,
    modulus: int,
    rng: RandomSource | None = None,
) -> list[Share]:
    """Split ``secret`` into ``share_count`` shares, any ``threshold`` recover.

    The modulus must be prime (it is always the group order ``q`` here).
    """
    if threshold < 1 or share_count < threshold:
        raise ValueError("need 1 <= threshold <= share_count")
    if share_count >= modulus:
        raise ValueError("too many shares for the field size")
    rng = rng or system_random()
    coefficients = [secret % modulus] + [
        rng.randbelow(modulus) for _ in range(threshold - 1)
    ]
    shares = []
    for x in range(1, share_count + 1):
        # Horner evaluation of the degree-(t-1) polynomial at x.
        value = 0
        for coefficient in reversed(coefficients):
            value = (value * x + coefficient) % modulus
        shares.append(Share(index=x, value=value))
    return shares


def lagrange_coefficient_at_zero(indices: list[int], target: int, modulus: int) -> int:
    """The Lagrange basis coefficient ``l_target(0)`` for the given index set."""
    if target not in indices:
        raise ValueError("target index must be part of the interpolation set")
    numerator, denominator = 1, 1
    for index in indices:
        if index == target:
            continue
        numerator = numerator * (-index) % modulus
        denominator = denominator * (target - index) % modulus
    return numerator * modinv(denominator, modulus) % modulus


def reconstruct_secret(shares: list[Share], modulus: int) -> int:
    """Interpolate at zero; needs at least ``threshold`` *distinct* shares."""
    indices = [share.index for share in shares]
    if len(set(indices)) != len(indices):
        raise ValueError("duplicate share indices")
    if not shares:
        raise ValueError("no shares given")
    secret = 0
    for share in shares:
        coefficient = lagrange_coefficient_at_zero(indices, share.index, modulus)
        secret = (secret + coefficient * share.value) % modulus
    return secret
