"""Primality testing and prime generation.

Miller--Rabin with a deterministic witness set for small inputs and random
witnesses (from a caller-supplied RNG) for large ones.  Prime generation is
only used by the offline parameter-generation tool in :mod:`repro.ec.params`;
the library itself ships pinned parameter sets.
"""

from __future__ import annotations

from repro.math.drbg import RandomSource, system_random

__all__ = [
    "is_probable_prime",
    "random_prime",
    "next_prime",
    "SMALL_PRIMES",
]

# Primes below 1000: used for cheap trial division before Miller--Rabin.
_SMALL_PRIME_BOUND = 1000


def _sieve(bound: int) -> list[int]:
    flags = bytearray([1]) * bound
    flags[0:2] = b"\x00\x00"
    for i in range(2, int(bound**0.5) + 1):
        if flags[i]:
            flags[i * i :: i] = b"\x00" * len(flags[i * i :: i])
    return [i for i in range(bound) if flags[i]]


SMALL_PRIMES: list[int] = _sieve(_SMALL_PRIME_BOUND)

# Deterministic witness set proving primality for all n < 3.3 * 10^24
# (Sorenson & Webster).
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
_DETERMINISTIC_BOUND = 3317044064679887385961981


def _miller_rabin_round(n: int, d: int, s: int, a: int) -> bool:
    """Return True when witness ``a`` says ``n`` is (probably) prime."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(s - 1):
        x = x * x % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 40, rng: RandomSource | None = None) -> bool:
    """Miller--Rabin primality test.

    Deterministic (and exact) for ``n`` below ~3.3e24; otherwise ``rounds``
    random witnesses give error probability at most ``4**-rounds``.
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    if n < _DETERMINISTIC_BOUND:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n - 1]
    else:
        rng = rng or system_random()
        witnesses = [rng.randint(2, n - 2) for _ in range(rounds)]
    return all(_miller_rabin_round(n, d, s, a) for a in witnesses)


def random_prime(bits: int, rng: RandomSource | None = None) -> int:
    """Return a random prime with exactly ``bits`` bits (top bit set)."""
    if bits < 2:
        raise ValueError("a prime needs at least 2 bits")
    rng = rng or system_random()
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate
