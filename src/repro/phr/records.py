"""The Personal Health Record data model.

Following the paper's Section 5 (and its citation of Tang et al., JAMIA
2006): a PHR aggregates provider-sourced medical data (surgery, illness
history, lab results, vaccinations, allergies, drug reactions) and
patient-collected data (weight, food statistics).  Each entry belongs to
exactly one **category**, and categories are what the patient maps to the
scheme's *types* — the unit of disclosure.

The default taxonomy models the paper's examples: ``illness-history`` is
the patient's "top secret", ``food-statistics`` is low-sensitivity, and
``emergency-profile`` is the data disclosed "in case of emergency" (the
paper's type ``t3``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["PhrCategory", "PhrEntry", "DEFAULT_TAXONOMY", "Sensitivity"]


class Sensitivity:
    """Named sensitivity levels (ascending)."""

    LOW = 0
    MEDIUM = 1
    HIGH = 2
    TOP_SECRET = 3

    NAMES = {0: "low", 1: "medium", 2: "high", 3: "top-secret"}


@dataclass(frozen=True)
class PhrCategory:
    """One disclosure category (= one scheme type).

    Attributes:
        label: the type label used on the wire (stable identifier).
        description: human-readable meaning.
        sensitivity: one of the :class:`Sensitivity` levels.
    """

    label: str
    description: str
    sensitivity: int

    def __post_init__(self):
        if self.sensitivity not in Sensitivity.NAMES:
            raise ValueError("unknown sensitivity level %r" % self.sensitivity)
        if not self.label or any(c.isspace() for c in self.label):
            raise ValueError("category labels must be non-empty and whitespace-free")


DEFAULT_TAXONOMY: tuple[PhrCategory, ...] = (
    PhrCategory("illness-history", "diagnoses, surgeries, family history", Sensitivity.TOP_SECRET),
    PhrCategory("medication", "prescriptions and drug reactions", Sensitivity.HIGH),
    PhrCategory("lab-results", "laboratory test results", Sensitivity.HIGH),
    PhrCategory("vaccinations", "immunisation records", Sensitivity.MEDIUM),
    PhrCategory("allergies", "known allergies", Sensitivity.MEDIUM),
    PhrCategory("vitals", "self-measured weight, blood pressure, pulse", Sensitivity.LOW),
    PhrCategory("food-statistics", "self-collected diet statistics", Sensitivity.LOW),
    PhrCategory("emergency-profile", "blood group, implants, critical conditions", Sensitivity.MEDIUM),
)


@dataclass(frozen=True)
class PhrEntry:
    """One record in a patient's PHR.

    ``content`` is an arbitrary JSON-serialisable mapping; entries are
    value objects and serialise canonically via :meth:`to_bytes` (the form
    that gets encrypted).
    """

    entry_id: str
    category: str
    author: str
    created_at: str  # ISO-8601; kept as text to stay timezone-agnostic
    content: dict = field(hash=False)

    def to_bytes(self) -> bytes:
        """Canonical byte form (sorted-key JSON) — the encryption plaintext."""
        return json.dumps(
            {
                "entry_id": self.entry_id,
                "category": self.category,
                "author": self.author,
                "created_at": self.created_at,
                "content": self.content,
            },
            sort_keys=True,
        ).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PhrEntry":
        """Parse the canonical byte form back into an entry."""
        decoded = json.loads(data.decode("utf-8"))
        return cls(
            entry_id=decoded["entry_id"],
            category=decoded["category"],
            author=decoded["author"],
            created_at=decoded["created_at"],
            content=decoded["content"],
        )
