"""Tests for :mod:`repro.service.telemetry` and its end-to-end threading.

Unit coverage for the three primitives (trace contexts + tracer ring,
fixed-bucket histograms, bounded event log), then integration:

* the gateway records named per-stage spans when a request carries a
  :class:`TraceContext`, and failed stages carry the taxonomy code;
* a request through :class:`RemoteGateway` against a live
  :class:`GatewayHttpServer` yields a retrievable server-side trace whose
  id matches the ``X-Repro-Trace`` header the client generated;
* the wire server's previously-silenced ``log_message`` lines and
  handler crashes now land in the structured event log;
* the 50k sample-list truncation bias is gone — a regression test that
  fails on the old first-50k-wins implementation.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.service.driver import DELEGATEE_DOMAIN, build_setting
from repro.service.gateway import (
    DelegationNotFoundError,
    EntryMissingError,
    FetchRequest,
    GatewayError,
    GrantRequest,
    ReEncryptRequest,
    ReEncryptionGateway,
    StoreUnavailableError,
)
from repro.service.metrics import GatewayMetrics
from repro.service.telemetry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    EventLog,
    Histogram,
    Span,
    TraceContext,
    Tracer,
    jsonl_sink,
    span_from_json,
    span_to_json,
)
from repro.service.wire import GatewayHttpServer, RemoteGateway


# ------------------------------------------------------------ trace contexts


class TestTraceContext:
    def test_generate_shape(self):
        context = TraceContext.generate()
        assert len(context.trace_id) == 32
        assert len(context.span_id) == 16
        assert set(context.trace_id) <= set("0123456789abcdef")
        assert set(context.span_id) <= set("0123456789abcdef")

    def test_generate_is_random(self):
        a, b = TraceContext.generate(), TraceContext.generate()
        assert a.trace_id != b.trace_id

    def test_child_keeps_trace_changes_span(self):
        parent = TraceContext.generate()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id

    def test_header_round_trip(self):
        context = TraceContext.generate()
        parsed = TraceContext.from_header(context.to_header())
        assert parsed == context

    @pytest.mark.parametrize(
        "value",
        [
            None,
            "",
            "not-a-trace",
            "deadbeef",  # no separator into two parts of the right length
            "g" * 32 + "-" + "a" * 16,  # non-hex trace id
            "a" * 32 + "-" + "z" * 16,  # non-hex span id
            "a" * 31 + "-" + "b" * 16,  # short trace id
            "a" * 32 + "-" + "b" * 15,  # short span id
            "a" * 32 + "-" + "b" * 16 + "-extra",
            12345,
        ],
    )
    def test_malformed_headers_parse_to_none(self, value):
        assert TraceContext.from_header(value) is None

    def test_header_parse_strips_whitespace(self):
        context = TraceContext.generate()
        assert TraceContext.from_header("  %s \n" % context.to_header()) == context


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestTracer:
    def test_span_records_name_parent_and_duration(self):
        clock = _FakeClock()
        tracer = Tracer(clock=clock)
        root = TraceContext.generate()
        with tracer.span(root, "work", {"op": "test"}) as handle:
            clock.now += 0.005
            handle.set("shard", "shard-01")
        (span,) = tracer.trace(root.trace_id)
        assert span.name == "work"
        assert span.parent_id == root.span_id
        assert span.span_id == handle.context.span_id
        assert span.status == "ok"
        assert span.duration_ms == pytest.approx(5.0)
        assert span.attribute_dict() == {"op": "test", "shard": "shard-01"}

    def test_none_context_is_a_noop(self):
        tracer = Tracer()
        with tracer.span(None, "work") as handle:
            assert handle is None
        assert tracer.spans_recorded == 0

    def test_nested_spans_parent_through_handle_context(self):
        tracer = Tracer()
        root = TraceContext.generate()
        with tracer.span(root, "outer") as outer:
            with tracer.span(outer.context, "inner"):
                pass
        inner, outer_span = tracer.trace(root.trace_id)
        assert inner.name == "inner"
        assert inner.parent_id == outer_span.span_id

    def test_escaping_exception_sets_status_from_code(self):
        tracer = Tracer()
        root = TraceContext.generate()
        with pytest.raises(DelegationNotFoundError):
            with tracer.span(root, "shard-crypto"):
                raise DelegationNotFoundError("no key")
        (span,) = tracer.trace(root.trace_id)
        assert span.status == DelegationNotFoundError.code == "no-delegation"

    def test_exception_without_code_uses_class_name(self):
        tracer = Tracer()
        root = TraceContext.generate()
        with pytest.raises(RuntimeError):
            with tracer.span(root, "work"):
                raise RuntimeError("boom")
        (span,) = tracer.trace(root.trace_id)
        assert span.status == "RuntimeError"

    def test_explicit_status_wins_over_exception(self):
        tracer = Tracer()
        root = TraceContext.generate()
        with pytest.raises(RuntimeError):
            with tracer.span(root, "work") as handle:
                handle.status = "custom"
                raise RuntimeError("boom")
        (span,) = tracer.trace(root.trace_id)
        assert span.status == "custom"

    def test_ring_evicts_oldest_trace(self):
        tracer = Tracer(max_traces=2)
        contexts = [TraceContext.generate() for _ in range(3)]
        for context in contexts:
            with tracer.span(context, "work"):
                pass
        assert len(tracer) == 2
        assert tracer.trace(contexts[0].trace_id) == []
        assert tracer.trace_ids() == [contexts[1].trace_id, contexts[2].trace_id]
        assert tracer.traces_evicted == 1

    def test_span_cap_drops_later_spans_not_memory(self):
        tracer = Tracer(max_spans_per_trace=3)
        root = TraceContext.generate()
        for _ in range(5):
            with tracer.span(root, "work"):
                pass
        assert len(tracer.trace(root.trace_id)) == 3
        assert tracer.spans_dropped == 2
        assert tracer.spans_recorded == 3

    def test_bounds_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(max_traces=0)
        with pytest.raises(ValueError):
            Tracer(max_spans_per_trace=0)


class TestSpanJson:
    def test_round_trip(self):
        span = Span(
            trace_id="a" * 32,
            span_id="b" * 16,
            parent_id="c" * 16,
            name="shard-crypto",
            start_ms=12.5,
            duration_ms=3.25,
            status="no-delegation",
            attributes=(("op", "reencrypt"), ("shard", "shard-01")),
        )
        assert span_from_json(span_to_json(span)) == span

    def test_root_span_keeps_null_parent(self):
        span = Span(
            trace_id="a" * 32, span_id="b" * 16, parent_id=None,
            name="wire-round-trip", start_ms=0.0, duration_ms=1.0,
        )
        assert span_from_json(span_to_json(span)).parent_id is None

    @pytest.mark.parametrize(
        "document",
        [
            "not a dict",
            {},
            {"trace": "t", "span": "s"},  # missing name/timings
            {"trace": "t", "span": "s", "name": "n", "start_ms": "x",
             "duration_ms": 1.0},
            {"trace": "t", "span": "s", "name": "n", "start_ms": 0.0,
             "duration_ms": 1.0, "attributes": ["not", "a", "dict"]},
            {"trace": "t", "span": "s", "name": "n", "start_ms": 0.0,
             "duration_ms": 1.0, "parent": 7},
        ],
    )
    def test_malformed_documents_raise_value_error(self, document):
        with pytest.raises(ValueError):
            span_from_json(document)


# --------------------------------------------------------------- histograms


class TestHistogram:
    def test_exact_count_sum_max(self):
        histogram = Histogram()
        for value in (0.04, 0.7, 30.0, 30.0, 20000.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot.count == 5
        assert snapshot.sum == pytest.approx(0.04 + 0.7 + 30.0 + 30.0 + 20000.0)
        assert snapshot.max_value == 20000.0

    def test_bucket_assignment_including_inf(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        # <=1.0: {0.5, 1.0}; <=10.0: {5.0, 10.0}; +Inf: {11.0}
        assert snapshot.counts == (2, 2, 1)
        assert len(snapshot.counts) == len(snapshot.bounds) + 1

    def test_percentile_interpolates_within_bucket(self):
        histogram = Histogram(bounds=(10.0, 20.0))
        for _ in range(4):
            histogram.observe(15.0)
        snapshot = histogram.snapshot()
        # All four observations sit in the (10, 20] bucket: the p50 rank
        # (2 of 4) interpolates to 10 + 10 * 2/4 = 15.
        assert snapshot.percentile(0.50) == pytest.approx(15.0)

    def test_percentile_clamped_to_observed_max(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(0.25)
        snapshot = histogram.snapshot()
        assert snapshot.percentile(0.99) <= snapshot.max_value

    def test_inf_bucket_percentile_uses_max_not_infinity(self):
        histogram = Histogram(bounds=(1.0,))
        for _ in range(10):
            histogram.observe(50.0)  # all land in +Inf
        snapshot = histogram.snapshot()
        assert snapshot.percentile(0.99) == 50.0

    def test_empty_percentile_and_mean_are_zero(self):
        snapshot = Histogram().snapshot()
        assert snapshot.count == 0
        assert snapshot.percentile(0.99) == 0.0
        assert snapshot.mean == 0.0

    def test_mean_is_exact(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.snapshot().mean == pytest.approx(2.0)

    def test_default_bounds_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(DEFAULT_LATENCY_BUCKETS_MS)

    @pytest.mark.parametrize("bounds", [(), (2.0, 1.0)])
    def test_invalid_bounds_rejected(self, bounds):
        with pytest.raises(ValueError):
            Histogram(bounds=bounds)


class TestTruncationRegression:
    def test_every_observation_past_50k_still_counts(self):
        """The old sample lists kept the first 50_000 observations and
        silently dropped the rest, so a long run's percentiles and max froze
        on startup traffic.  Histograms must count every observation."""
        metrics = GatewayMetrics()
        for _ in range(50_000):
            metrics.observe("reencrypt", 1.0)
        # The 50_001st observation is 100x slower than everything before
        # it; the old code dropped it, freezing max_ms at 1.0.
        metrics.observe("reencrypt", 100.0)
        snapshot = metrics.snapshot()
        summary = snapshot.latency["reencrypt"]
        assert summary.count == 50_001
        assert summary.max_ms == 100.0
        assert snapshot.histograms["reencrypt"].count == 50_001


# ------------------------------------------------------------- event log


class TestEventLog:
    def test_emit_stamps_ts_kind_seq(self):
        log = EventLog(clock=lambda: 1234.5)
        event = log.emit("audit", tenant="alice", outcome="ok")
        assert event["ts"] == 1234.5
        assert event["kind"] == "audit"
        assert event["seq"] == 0
        assert event["tenant"] == "alice"
        assert log.emit("audit")["seq"] == 1

    def test_none_fields_are_dropped(self):
        log = EventLog()
        event = log.emit("audit", shard=None, outcome="ok")
        assert "shard" not in event
        assert event["outcome"] == "ok"

    def test_ring_is_bounded(self):
        log = EventLog(max_events=3)
        for i in range(5):
            log.emit("tick", i=i)
        events = log.tail()
        assert len(log) == len(events) == 3
        assert [event["i"] for event in events] == [2, 3, 4]
        assert log.emitted == 5

    def test_tail_n_returns_newest(self):
        log = EventLog()
        for i in range(4):
            log.emit("tick", i=i)
        assert [event["i"] for event in log.tail(2)] == [2, 3]

    def test_sink_receives_every_event(self):
        seen = []
        log = EventLog(sink=seen.append)
        log.emit("audit", outcome="ok")
        assert len(seen) == 1 and seen[0]["kind"] == "audit"

    def test_sink_failure_is_counted_never_raised(self):
        def broken(_event):
            raise IOError("disk full")

        log = EventLog(sink=broken)
        log.emit("audit")  # must not raise
        log.emit("audit")
        assert log.sink_errors == 2
        assert len(log) == 2  # the ring still kept both

    def test_max_events_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(max_events=0)

    def test_jsonl_sink_writes_one_parseable_line_per_event(self):
        stream = io.StringIO()
        log = EventLog(sink=jsonl_sink(stream))
        log.emit("audit", tenant="alice")
        log.emit("server-error", error="boom")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["kind"] == "audit"
        assert parsed[1]["error"] == "boom"

    def test_jsonl_sink_stringifies_unserializable_values(self):
        stream = io.StringIO()
        sink = jsonl_sink(stream)
        sink({"kind": "odd", "value": object()})
        assert json.loads(stream.getvalue())["kind"] == "odd"


# ----------------------------------------------------- gateway integration


@pytest.fixture()
def traced_gateway(pre_setting, rng):
    scheme, _kgc1, kgc2, alice, _bob = pre_setting
    gateway = ReEncryptionGateway(scheme, shard_count=2)
    proxy_key = scheme.pextract(alice, "bob", "labs", kgc2.params, rng)
    gateway.grant(GrantRequest(tenant="alice", proxy_key=proxy_key))
    yield scheme, gateway, alice
    gateway.close()


class TestGatewayTracing:
    def test_reencrypt_records_named_stage_spans(
        self, traced_gateway, pre_setting, group, rng
    ):
        scheme, gateway, alice = traced_gateway
        _scheme, kgc1, *_rest = pre_setting
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, alice, message, "labs", rng)
        trace = TraceContext.generate()
        gateway.reencrypt(
            ReEncryptRequest(
                tenant="alice", ciphertext=ciphertext,
                delegatee_domain=DELEGATEE_DOMAIN, delegatee="bob",
            ),
            trace=trace,
        )
        spans = gateway.tracer.trace(trace.trace_id)
        names = {span.name for span in spans}
        assert {"admission", "cache-lookup", "route", "shard-crypto"} <= names
        assert all(span.trace_id == trace.trace_id for span in spans)
        assert all(span.status == "ok" for span in spans)

    def test_failed_stage_carries_taxonomy_code(
        self, traced_gateway, pre_setting, group, rng
    ):
        scheme, gateway, alice = traced_gateway
        _scheme, kgc1, *_rest = pre_setting
        message = group.random_gt(rng)
        # "notes" was never granted, so the shard lookup fails inside the
        # shard-crypto span.
        ciphertext = scheme.encrypt(kgc1.params, alice, message, "notes", rng)
        trace = TraceContext.generate()
        with pytest.raises(DelegationNotFoundError):
            gateway.reencrypt(
                ReEncryptRequest(
                    tenant="alice", ciphertext=ciphertext,
                    delegatee_domain=DELEGATEE_DOMAIN, delegatee="bob",
                ),
                trace=trace,
            )
        by_name = {span.name: span for span in gateway.tracer.trace(trace.trace_id)}
        assert by_name["shard-crypto"].status == "no-delegation"
        assert by_name["admission"].status == "ok"

    def test_audit_events_carry_the_trace_id(
        self, traced_gateway, pre_setting, group, rng
    ):
        scheme, gateway, alice = traced_gateway
        _scheme, kgc1, *_rest = pre_setting
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, alice, message, "labs", rng)
        trace = TraceContext.generate()
        gateway.reencrypt(
            ReEncryptRequest(
                tenant="alice", ciphertext=ciphertext,
                delegatee_domain=DELEGATEE_DOMAIN, delegatee="bob",
            ),
            trace=trace,
        )
        audits = [e for e in gateway.event_log.tail() if e["kind"] == "audit"]
        assert audits, "the audit writer must feed the event log"
        assert audits[-1]["trace"] == trace.trace_id
        assert audits[-1]["outcome"] == "ok"

    def test_untraced_calls_record_nothing(
        self, traced_gateway, pre_setting, group, rng
    ):
        scheme, gateway, alice = traced_gateway
        _scheme, kgc1, *_rest = pre_setting
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, alice, message, "labs", rng)
        before = gateway.tracer.spans_recorded
        gateway.reencrypt(
            ReEncryptRequest(
                tenant="alice", ciphertext=ciphertext,
                delegatee_domain=DELEGATEE_DOMAIN, delegatee="bob",
            )
        )
        assert gateway.tracer.spans_recorded == before

    def test_telemetry_off_disables_tracer_and_event_log(self, pre_setting):
        scheme, *_rest = pre_setting
        gateway = ReEncryptionGateway(scheme, shard_count=2, telemetry=False)
        try:
            assert gateway.tracer is None
            assert gateway.event_log is None
            # A trace passed anyway is a harmless no-op (the fetch still
            # fails on the missing store, not on telemetry).
            with pytest.raises(StoreUnavailableError):
                gateway.fetch(
                    FetchRequest(tenant="t", patient="p"),
                    trace=TraceContext.generate(),
                )
        finally:
            gateway.close()


# -------------------------------------------------------- wire integration


@pytest.fixture()
def telemetry_loopback():
    setting = build_setting(
        group_name="TOY",
        shard_count=2,
        n_patients=2,
        n_delegatees=2,
        n_types=2,
        ciphertexts_per_pair=1,
        seed="telemetry-loopback",
    )
    with GatewayHttpServer(setting.gateway, setting.group) as server:
        client = RemoteGateway(server.url, setting.group)
        yield setting, server, client
        client.close()
    setting.gateway.close()


def _one_request(setting):
    (patient, _type_label), entries = sorted(setting.pool.items())[0]
    ciphertext, _message = entries[0]
    return ReEncryptRequest(
        tenant=patient,
        ciphertext=ciphertext,
        delegatee_domain=DELEGATEE_DOMAIN,
        delegatee=setting.delegatees[0],
    )


class TestWireTelemetry:
    def test_trace_id_round_trips_through_the_header(self, telemetry_loopback):
        setting, _server, client = telemetry_loopback
        client.reencrypt(_one_request(setting))
        assert client.last_trace is not None
        echo = TraceContext.from_header(client.last_trace_echo)
        # The echoed header is the wire-round-trip span's child context:
        # same trace id as the root the client generated.
        assert echo is not None
        assert echo.trace_id == client.last_trace.trace_id

    def test_server_trace_holds_at_least_four_named_stage_spans(
        self, telemetry_loopback
    ):
        setting, server, client = telemetry_loopback
        client.reencrypt(_one_request(setting))
        trace_id = client.last_trace.trace_id
        spans = server.gateway.tracer.trace(trace_id)
        names = {span.name for span in spans}
        assert len(spans) >= 4
        assert {"http:reencrypt", "admission", "route", "shard-crypto"} <= names
        assert all(span.trace_id == trace_id for span in spans)

    def test_fetch_trace_returns_the_server_spans(self, telemetry_loopback):
        setting, _server, client = telemetry_loopback
        client.reencrypt(_one_request(setting))
        trace_id = client.last_trace.trace_id
        spans = client.fetch_trace(trace_id)
        assert len(spans) >= 4
        assert all(isinstance(span, Span) for span in spans)
        assert {span.name for span in spans} >= {"http:reencrypt", "shard-crypto"}

    def test_server_spans_nest_under_the_client_round_trip_span(
        self, telemetry_loopback
    ):
        setting, server, client = telemetry_loopback
        client.reencrypt(_one_request(setting))
        trace_id = client.last_trace.trace_id
        (client_span,) = [
            span for span in client.tracer.trace(trace_id)
            if span.name == "wire-round-trip"
        ]
        server_spans = server.gateway.tracer.trace(trace_id)
        roots = [span for span in server_spans if span.name == "http:reencrypt"]
        assert roots and roots[0].parent_id == client_span.span_id

    def test_unknown_trace_is_entry_not_found(self, telemetry_loopback):
        _setting, _server, client = telemetry_loopback
        with pytest.raises(EntryMissingError):
            client.fetch_trace("f" * 32)

    def test_trace_requests_off_sends_no_header(self, telemetry_loopback):
        setting, server, _client = telemetry_loopback
        quiet = RemoteGateway(server.url, setting.group, trace_requests=False)
        try:
            quiet.reencrypt(_one_request(setting))
            assert quiet.tracer is None
            assert quiet.last_trace is None
            assert quiet.last_trace_echo is None
        finally:
            quiet.close()

    def test_http_log_lines_become_events(self, telemetry_loopback):
        setting, server, client = telemetry_loopback
        client.reencrypt(_one_request(setting))
        kinds = {event["kind"] for event in server.event_log.tail()}
        assert "http-log" in kinds

    def test_metrics_text_serves_prometheus(self, telemetry_loopback):
        setting, _server, client = telemetry_loopback
        client.reencrypt(_one_request(setting))
        text = client.metrics_text()
        assert "# TYPE repro_gateway_served_total counter" in text
        assert "repro_gateway_latency_ms_bucket" in text


class _ExplodingGateway:
    """A gateway whose every op crashes with a non-taxonomy error."""

    def reencrypt(self, request):
        raise RuntimeError("shard fleet on fire")

    def snapshot(self):
        raise RuntimeError("metrics on fire")


class TestServerErrorEvents:
    def test_forced_500_emits_a_server_error_event(self, pre_setting, group):
        scheme, kgc1, _kgc2, alice, _bob = pre_setting
        from repro.math.drbg import HmacDrbg

        rng = HmacDrbg("exploding-gateway")
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, alice, message, "labs", rng)
        with GatewayHttpServer(_ExplodingGateway(), group) as server:
            client = RemoteGateway(server.url, group, negotiate=False)
            # The crash surfaces to the caller as the neutral base-class
            # wire error (HTTP 500), never the raw RuntimeError text alone.
            with pytest.raises(GatewayError, match="internal error"):
                client.reencrypt(
                    ReEncryptRequest(
                        tenant="t", ciphertext=ciphertext,
                        delegatee_domain=DELEGATEE_DOMAIN, delegatee="bob",
                    )
                )
            client.close()
            errors = [
                event for event in server.event_log.tail()
                if event["kind"] == "server-error"
            ]
        assert errors, "a handler crash must land in the event log"
        event = errors[-1]
        assert event["error_type"] == "RuntimeError"
        assert "shard fleet on fire" in event["error"]
        assert "traceback" in event
