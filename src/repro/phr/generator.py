"""Synthetic PHR data for tests, examples and the E5 workload benchmark.

Real patient traces are obviously unavailable (and would be unusable in a
public reproduction); per DESIGN.md's substitution table we generate
realistic-looking entries per category.  The generator is deterministic
given a seeded RNG, so experiments are reproducible.
"""

from __future__ import annotations

from repro.math.drbg import RandomSource
from repro.phr.records import DEFAULT_TAXONOMY, PhrEntry

__all__ = ["PhrGenerator", "WorkloadMix"]

_DIAGNOSES = (
    "hypertension", "type-2-diabetes", "asthma", "migraine", "hypothyroidism",
    "atrial-fibrillation", "osteoarthritis", "depression", "GERD", "anemia",
)
_MEDICATIONS = (
    "lisinopril 10mg", "metformin 500mg", "salbutamol inhaler", "levothyroxine 50ug",
    "atorvastatin 20mg", "omeprazole 20mg", "sertraline 50mg", "warfarin 3mg",
)
_LAB_TESTS = (
    "HbA1c", "fasting-glucose", "LDL-cholesterol", "TSH", "creatinine",
    "hemoglobin", "ALT", "CRP",
)
_VACCINES = ("influenza", "tetanus", "hepatitis-B", "MMR", "COVID-19", "pneumococcal")
_ALLERGENS = ("penicillin", "peanuts", "latex", "shellfish", "pollen", "sulfa-drugs")
_FOODS = ("oatmeal", "chicken-salad", "pasta", "salmon", "rice-bowl", "yogurt", "apple")
_BLOOD_GROUPS = ("A+", "A-", "B+", "B-", "AB+", "AB-", "O+", "O-")
_PROVIDERS = ("dr-jansen", "dr-smit", "st-mary-hospital", "city-lab", "self")


class PhrGenerator:
    """Deterministic synthetic PHR entries, one generator method per category."""

    def __init__(self, rng: RandomSource, patient: str):
        self._rng = rng
        self._patient = patient
        self._counter = 0

    def _next_id(self, category: str) -> str:
        self._counter += 1
        return "%s-%s-%04d" % (self._patient, category, self._counter)

    def _date(self) -> str:
        year = 2000 + self._rng.randbelow(9)
        month = 1 + self._rng.randbelow(12)
        day = 1 + self._rng.randbelow(28)
        return "%04d-%02d-%02d" % (year, month, day)

    def _entry(self, category: str, content: dict, author: str | None = None) -> PhrEntry:
        return PhrEntry(
            entry_id=self._next_id(category),
            category=category,
            author=author or self._rng.choice(_PROVIDERS),
            created_at=self._date(),
            content=content,
        )

    # ------------------------------------------------------- per category

    def illness_history(self) -> PhrEntry:
        return self._entry(
            "illness-history",
            {
                "diagnosis": self._rng.choice(_DIAGNOSES),
                "severity": self._rng.choice(["mild", "moderate", "severe"]),
                "notes": "diagnosed during routine examination",
            },
        )

    def medication(self) -> PhrEntry:
        return self._entry(
            "medication",
            {
                "drug": self._rng.choice(_MEDICATIONS),
                "frequency": self._rng.choice(["1x daily", "2x daily", "as needed"]),
                "adverse_reaction": self._rng.choice(["none", "nausea", "dizziness"]),
            },
        )

    def lab_result(self) -> PhrEntry:
        return self._entry(
            "lab-results",
            {
                "test": self._rng.choice(_LAB_TESTS),
                "value": round(1 + self._rng.randbelow(2000) / 100.0, 2),
                "unit": "mmol/L",
                "flag": self._rng.choice(["normal", "high", "low"]),
            },
        )

    def vaccination(self) -> PhrEntry:
        return self._entry(
            "vaccinations",
            {"vaccine": self._rng.choice(_VACCINES), "dose": 1 + self._rng.randbelow(3)},
        )

    def allergy(self) -> PhrEntry:
        return self._entry(
            "allergies",
            {
                "allergen": self._rng.choice(_ALLERGENS),
                "reaction": self._rng.choice(["rash", "anaphylaxis", "swelling"]),
            },
        )

    def vitals(self) -> PhrEntry:
        return self._entry(
            "vitals",
            {
                "weight_kg": 50 + self._rng.randbelow(60),
                "systolic": 100 + self._rng.randbelow(60),
                "diastolic": 60 + self._rng.randbelow(40),
                "pulse": 55 + self._rng.randbelow(50),
            },
            author="self",
        )

    def food_statistics(self) -> PhrEntry:
        return self._entry(
            "food-statistics",
            {
                "meal": self._rng.choice(_FOODS),
                "calories": 150 + self._rng.randbelow(700),
            },
            author="self",
        )

    def emergency_profile(self) -> PhrEntry:
        return self._entry(
            "emergency-profile",
            {
                "blood_group": self._rng.choice(_BLOOD_GROUPS),
                "organ_donor": bool(self._rng.randbelow(2)),
                "critical_conditions": [self._rng.choice(_DIAGNOSES)],
                "emergency_contact": "next-of-kin",
            },
        )

    _BY_CATEGORY = {
        "illness-history": illness_history,
        "medication": medication,
        "lab-results": lab_result,
        "vaccinations": vaccination,
        "allergies": allergy,
        "vitals": vitals,
        "food-statistics": food_statistics,
        "emergency-profile": emergency_profile,
    }

    def entry_for(self, category: str) -> PhrEntry:
        """Generate one entry of the named category."""
        method = self._BY_CATEGORY.get(category)
        if method is None:
            raise KeyError("no generator for category %r" % category)
        return method(self)

    def history(self, entries_per_category: int = 3) -> list[PhrEntry]:
        """A full synthetic history across the default taxonomy."""
        entries = []
        for category in DEFAULT_TAXONOMY:
            for _ in range(entries_per_category):
                entries.append(self.entry_for(category.label))
        return entries


class WorkloadMix:
    """A request mix for the E5 workload bench: weighted category draws."""

    def __init__(self, weights: dict[str, int]):
        if not weights:
            raise ValueError("workload mix needs at least one category")
        if any(w <= 0 for w in weights.values()):
            raise ValueError("weights must be positive")
        self._population = [c for c, w in sorted(weights.items()) for _ in range(w)]

    def draw(self, rng: RandomSource) -> str:
        """Sample one category according to the weights."""
        return rng.choice(self._population)

    @classmethod
    def clinical_default(cls) -> "WorkloadMix":
        """A plausible mix: doctors mostly read labs/medication, few emergencies."""
        return cls(
            {
                "lab-results": 35,
                "medication": 25,
                "illness-history": 15,
                "vitals": 10,
                "vaccinations": 7,
                "allergies": 5,
                "emergency-profile": 2,
                "food-statistics": 1,
            }
        )
