"""Field-axiom and behaviour tests for F_p and F_{p^2} (hypothesis-heavy)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.math.drbg import HmacDrbg
from repro.math.fields import Fp2Element, FpElement, PrimeField, QuadraticExtField

P = 2**89 - 1  # prime, = 3 (mod 4)
F = PrimeField(P)
F2 = QuadraticExtField(F)

fp_elements = st.integers(min_value=0, max_value=P - 1).map(F)
fp2_elements = st.tuples(
    st.integers(min_value=0, max_value=P - 1), st.integers(min_value=0, max_value=P - 1)
).map(lambda ab: F2(ab[0], ab[1]))


class TestPrimeFieldConstruction:
    def test_rejects_tiny_characteristic(self):
        with pytest.raises(ValueError):
            PrimeField(1)

    def test_call_reduces(self):
        assert F(P + 5) == F(5)
        assert F(-1) == F(P - 1)

    def test_zero_one(self):
        assert F.zero().is_zero()
        assert F.one() == 1

    def test_random_in_range(self):
        rng = HmacDrbg("f")
        assert 0 <= int(F.random(rng)) < P
        assert int(F.random_nonzero(rng)) != 0

    def test_equality_and_hash(self):
        assert PrimeField(7) == PrimeField(7)
        assert PrimeField(7) != PrimeField(11)
        assert hash(PrimeField(7)) == hash(PrimeField(7))


class TestFpAxioms:
    @given(fp_elements, fp_elements, fp_elements)
    def test_ring_axioms(self, a, b, c):
        assert (a + b) + c == a + (b + c)
        assert a + b == b + a
        assert (a * b) * c == a * (b * c)
        assert a * b == b * a
        assert a * (b + c) == a * b + a * c

    @given(fp_elements)
    def test_identities(self, a):
        assert a + F.zero() == a
        assert a * F.one() == a
        assert a - a == F.zero()
        assert -(-a) == a

    @given(fp_elements)
    def test_multiplicative_inverse(self, a):
        if a.is_zero():
            with pytest.raises(ZeroDivisionError):
                a.inverse()
        else:
            assert a * a.inverse() == F.one()
            assert (F.one() / a) == a.inverse()

    @given(fp_elements)
    def test_square_and_sqrt(self, a):
        square = a.square()
        assert square == a * a
        assert square.is_square()
        root = square.sqrt()
        assert root * root == square

    @given(fp_elements, st.integers(min_value=-20, max_value=40))
    def test_pow_matches_repeated_multiplication(self, a, e):
        if a.is_zero() and e < 0:
            return
        expected = F.one()
        base = a if e >= 0 else a.inverse()
        for _ in range(abs(e)):
            expected = expected * base
        assert a**e == expected

    def test_int_coercion(self):
        assert F(3) + 4 == F(7)
        assert 4 + F(3) == F(7)
        assert 10 - F(3) == F(7)
        assert F(3) * 5 == F(15)
        assert 30 / F(2) == F(15)

    def test_cross_field_rejected(self):
        other = PrimeField(1000003)
        with pytest.raises(ValueError):
            F(1) + other(1)

    def test_immutability(self):
        a = F(1)
        with pytest.raises(AttributeError):
            a.value = 2

    def test_repr_and_int(self):
        assert int(F(5)) == 5
        assert "5" in repr(F(5))


class TestFp2Construction:
    def test_requires_3_mod_4(self):
        with pytest.raises(ValueError):
            QuadraticExtField(PrimeField(13))  # 13 = 1 (mod 4)

    def test_i_squares_to_minus_one(self):
        assert F2.i() * F2.i() == F2(-1 % P)

    def test_from_base(self):
        assert F2.from_base(F(5)) == F2(5)
        with pytest.raises(ValueError):
            F2.from_base(PrimeField(1000003)(1))

    def test_zero_one(self):
        assert F2.zero().is_zero()
        assert F2.one().is_one()


class TestFp2Axioms:
    @given(fp2_elements, fp2_elements, fp2_elements)
    def test_ring_axioms(self, a, b, c):
        assert (a + b) + c == a + (b + c)
        assert a * b == b * a
        assert (a * b) * c == a * (b * c)
        assert a * (b + c) == a * b + a * c

    @given(fp2_elements)
    def test_inverse(self, a):
        if a.is_zero():
            with pytest.raises(ZeroDivisionError):
                a.inverse()
        else:
            assert a * a.inverse() == F2.one()

    @given(fp2_elements)
    def test_square_consistency(self, a):
        assert a.square() == a * a

    @given(fp2_elements)
    def test_conjugate_is_frobenius(self, a):
        # For p = 3 (mod 4), x -> x^p is exactly conjugation.
        assert a.conjugate() == a**P

    @given(fp2_elements)
    def test_norm_multiplicative(self, a):
        assert a.norm() == (a * a.conjugate()).a
        assert (a * a).norm() == a.norm() * a.norm() % P

    @given(fp2_elements, st.integers(min_value=0, max_value=100))
    def test_pow_small_exponents(self, a, e):
        expected = F2.one()
        for _ in range(e):
            expected = expected * a
        assert a**e == expected

    @given(fp2_elements)
    def test_negative_pow(self, a):
        if not a.is_zero():
            assert a**-3 == (a**3).inverse()

    def test_mixed_coercion(self):
        assert F2(2, 3) + 1 == F2(3, 3)
        assert F2(2, 3) * F(2) == F2(4, 6)
        assert 1 - F2(2, 0) == F2(-1 % P, 0)
        assert 1 / F2(2, 0) == F2(2, 0).inverse()

    def test_cross_field_rejected(self):
        other = QuadraticExtField(PrimeField(1000003))
        with pytest.raises(ValueError):
            F2(1) * other(1)

    def test_immutability(self):
        a = F2(1, 2)
        with pytest.raises(AttributeError):
            a.a = 3

    def test_equality_with_int(self):
        assert F2(5, 0) == 5
        assert F2(5, 1) != 5
