"""The patient's disclosure policy.

The policy is the patient's *intent*: which requester may see which
categories.  In the paper's design the policy is enforced
cryptographically — a proxy key exists exactly for the granted
(requester, category) pairs — so :class:`DisclosurePolicy` is both a
record of intent and the driver for ``Pextract`` calls in
:mod:`repro.phr.workflow`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.phr.records import PhrCategory

__all__ = ["DisclosurePolicy", "Grant"]


@dataclass(frozen=True)
class Grant:
    """One policy row: a requester may read one category."""

    requester: str
    requester_domain: str
    category: str


@dataclass
class DisclosurePolicy:
    """The set of grants a patient has decided on.

    The policy object is pure bookkeeping — revoking here must be paired
    with removing the proxy key (the workflow layer does both).
    """

    patient: str
    _grants: set[Grant] = field(default_factory=set)

    def grant(self, requester: str, requester_domain: str, category: str) -> Grant:
        entry = Grant(requester=requester, requester_domain=requester_domain, category=category)
        self._grants.add(entry)
        return entry

    def revoke(self, requester: str, requester_domain: str, category: str) -> bool:
        entry = Grant(requester=requester, requester_domain=requester_domain, category=category)
        if entry in self._grants:
            self._grants.remove(entry)
            return True
        return False

    def allows(self, requester: str, requester_domain: str, category: str) -> bool:
        return (
            Grant(requester=requester, requester_domain=requester_domain, category=category)
            in self._grants
        )

    def categories_for(self, requester: str, requester_domain: str) -> list[str]:
        return sorted(
            g.category
            for g in self._grants
            if g.requester == requester and g.requester_domain == requester_domain
        )

    def requesters_for(self, category: str) -> list[str]:
        return sorted({g.requester for g in self._grants if g.category == category})

    def all_grants(self) -> list[Grant]:
        return sorted(
            self._grants, key=lambda g: (g.category, g.requester_domain, g.requester)
        )

    def grant_count(self) -> int:
        return len(self._grants)

    @staticmethod
    def max_sensitivity_granted(grants: list[Grant], taxonomy: dict[str, PhrCategory]) -> int:
        """Highest sensitivity level among granted categories (audit helper)."""
        levels = [taxonomy[g.category].sensitivity for g in grants if g.category in taxonomy]
        return max(levels, default=-1)
