"""Multi-threaded stress tests for the gateway and shard pool.

The contracts under test: per-shard mutual exclusion (no two tasks
inside the same shard at once), no lost updates under grant/re-encrypt/
revoke races, deadlock-freedom (every join completes), exact metrics
accounting (``requests_total == served + rejected + rate_limited``), and
bit-identical batched output with and without workers.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.proxy import ProxyService
from repro.core.scheme import TypeAndIdentityPre
from repro.ibe.kgc import KgcRegistry
from repro.math.drbg import HmacDrbg
from repro.service.driver import run_demo
from repro.service.gateway import (
    DelegationNotFoundError,
    GrantRequest,
    ReEncryptionGateway,
    ReEncryptRequest,
    RevokeRequest,
)
from repro.service.pool import ShardPool

N_THREADS = 4
TYPES = ("labs", "meds", "notes")
ROUNDS = 3
JOIN_TIMEOUT_S = 60.0


@pytest.fixture(scope="module")
def universe(group):
    """One delegator per thread, each with one delegation per type."""
    rng = HmacDrbg("concurrency-universe")
    registry = KgcRegistry(group, rng)
    kgc1 = registry.create("KGC1")
    kgc2 = registry.create("KGC2")
    scheme = TypeAndIdentityPre(group)
    delegations = {}  # thread index -> list of (proxy_key, ciphertext, message)
    for i in range(N_THREADS):
        patient = "patient-%d" % i
        patient_key = kgc1.extract(patient)
        entries = []
        for type_label in TYPES:
            message = group.random_gt(rng)
            entries.append(
                (
                    scheme.pextract(patient_key, "bob", type_label, kgc2.params, rng),
                    scheme.encrypt(kgc1.params, patient_key, message, type_label, rng),
                    message,
                )
            )
        delegations[i] = entries
    return scheme, delegations, kgc2.extract("bob")


def _request(ciphertext):
    return ReEncryptRequest(
        tenant=ciphertext.identity,
        ciphertext=ciphertext,
        delegatee_domain="KGC2",
        delegatee="bob",
    )


def _revoke(key):
    return RevokeRequest(
        tenant=key.delegator,
        delegator_domain=key.delegator_domain,
        delegator=key.delegator,
        delegatee_domain=key.delegatee_domain,
        delegatee=key.delegatee,
        type_label=key.type_label,
    )


class TestGatewayRaces:
    def test_grant_reencrypt_revoke_races_lose_nothing(self, universe):
        """Threads churn disjoint delegations; counters stay exact."""
        scheme, delegations, _ = universe
        gateway = ReEncryptionGateway(scheme, shard_count=4, workers=3)
        served = [0] * N_THREADS
        rejected = [0] * N_THREADS
        failures = []

        def worker(thread_index: int) -> None:
            try:
                entries = delegations[thread_index]
                for _ in range(ROUNDS):
                    for key, ciphertext, _message in entries:
                        gateway.grant(GrantRequest(tenant=key.delegator, proxy_key=key))
                        served[thread_index] += 1
                        gateway.reencrypt(_request(ciphertext))
                        served[thread_index] += 1
                        gateway.revoke(_revoke(key))
                        served[thread_index] += 1
                        with pytest.raises(DelegationNotFoundError):
                            gateway.reencrypt(_request(ciphertext))
                        rejected[thread_index] += 1
                # Leave every delegation granted for the final census.
                for key, _, _ in entries:
                    gateway.grant(GrantRequest(tenant=key.delegator, proxy_key=key))
                    served[thread_index] += 1
            except Exception as error:  # noqa: BLE001 - surfaced via failures
                failures.append((thread_index, error))

        threads = [
            threading.Thread(target=worker, args=(i,), name="stress-%d" % i)
            for i in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=JOIN_TIMEOUT_S)
        assert not any(thread.is_alive() for thread in threads), "deadlock: join timed out"
        assert failures == []

        # No lost updates: every thread's final grants are installed.
        assert gateway.key_count() == N_THREADS * len(TYPES)

        # Metrics-counter consistency, exactly.
        snapshot = gateway.snapshot()
        assert snapshot.served == sum(served)
        assert snapshot.rejected == sum(rejected)
        assert snapshot.rate_limited == 0
        assert snapshot.requests_total == snapshot.served + snapshot.rejected

        # The audit log saw every request once, in one total order.
        sequences = [event.sequence for event in gateway.audit]
        assert len(sequences) == snapshot.requests_total
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)
        gateway.close()

    def test_concurrent_batch_is_bit_identical_to_sequential(self, universe):
        scheme, delegations, bob = universe
        sequential = ReEncryptionGateway(scheme, shard_count=4, workers=0)
        concurrent = ReEncryptionGateway(scheme, shard_count=4, workers=3)
        requests = []
        messages = []
        for entries in delegations.values():
            for key, ciphertext, message in entries:
                for gateway in (sequential, concurrent):
                    gateway.grant(GrantRequest(tenant=key.delegator, proxy_key=key))
                requests.append(_request(ciphertext))
                messages.append(message)
        # Duplicate a request so the cache-hit flags are exercised too.
        requests.append(requests[0])
        messages.append(messages[0])

        sequential_out = sequential.reencrypt_batch(requests)
        concurrent_out = concurrent.reencrypt_batch(requests)
        assert [r.ciphertext for r in concurrent_out] == [
            r.ciphertext for r in sequential_out
        ]
        assert [r.cache_hit for r in concurrent_out] == [
            r.cache_hit for r in sequential_out
        ]
        assert [r.shard for r in concurrent_out] == [r.shard for r in sequential_out]
        for response, message in zip(concurrent_out, messages):
            assert scheme.decrypt_reencrypted(response.ciphertext, bob) == message
        sequential.close()
        concurrent.close()

    def test_revoke_racing_reencrypt_cannot_repopulate_caches(self, universe):
        """Regression: a result computed before a revoke must not outlive it.

        The re-encryptor is frozen mid-transformation (inside the shard
        lock) while a revoke arrives.  Because cache writes and the
        revoke's invalidation both happen under the shard lock, the
        revoke's invalidation is ordered after the racing put — the next
        request must miss the cache and fail typed, not serve the stale
        transformation forever.
        """
        scheme, delegations, _ = universe
        entered = threading.Event()
        release = threading.Event()

        class BlockingShard(ProxyService):
            def reencrypt_with_key(self, ciphertext, key):
                entered.set()
                assert release.wait(timeout=30.0)
                return super().reencrypt_with_key(ciphertext, key)

        gateway = ReEncryptionGateway(
            scheme,
            shard_count=1,
            shard_factory=lambda name, table: BlockingShard(scheme, name=name),
        )
        key, ciphertext, _message = delegations[0][0]
        gateway.grant(GrantRequest(tenant=key.delegator, proxy_key=key))

        outcome = {}
        reencryptor = threading.Thread(
            target=lambda: outcome.update(resp=gateway.reencrypt(_request(ciphertext)))
        )
        reencryptor.start()
        assert entered.wait(timeout=30.0)
        revoker = threading.Thread(
            target=lambda: outcome.update(revoke=gateway.revoke(_revoke(key)))
        )
        revoker.start()
        time.sleep(0.05)  # the revoke is now queued on the shard lock
        release.set()
        reencryptor.join(timeout=JOIN_TIMEOUT_S)
        revoker.join(timeout=JOIN_TIMEOUT_S)
        assert not reencryptor.is_alive() and not revoker.is_alive()
        assert outcome["revoke"].removed

        with pytest.raises(DelegationNotFoundError):
            gateway.reencrypt(_request(ciphertext))
        gateway.close()

    def test_concurrent_resize_during_traffic_loses_nothing(self, universe):
        """A resize racing live re-encrypts never drops a delegation."""
        scheme, delegations, _ = universe
        gateway = ReEncryptionGateway(scheme, shard_count=2, workers=2)
        for entries in delegations.values():
            for key, _, _ in entries:
                gateway.grant(GrantRequest(tenant=key.delegator, proxy_key=key))
        stop = threading.Event()
        failures = []

        def traffic() -> None:
            entries = delegations[0]
            try:
                while not stop.is_set():
                    for _, ciphertext, _ in entries:
                        gateway.reencrypt(_request(ciphertext))
                    # The batch path races the resize too: its existence
                    # guard must not misread a mid-migration key as gone.
                    gateway.reencrypt_batch(
                        [_request(ciphertext) for _, ciphertext, _ in entries]
                    )
            except Exception as error:  # noqa: BLE001 - surfaced via failures
                failures.append(error)

        thread = threading.Thread(target=traffic, name="traffic")
        thread.start()
        try:
            for count in (5, 3, 4):
                gateway.resize(count)
        finally:
            stop.set()
            thread.join(timeout=JOIN_TIMEOUT_S)
        assert not thread.is_alive()
        assert failures == []
        assert gateway.key_count() == N_THREADS * len(TYPES)
        assert gateway.snapshot().resizes == 3
        gateway.close()


class TestShardPool:
    def test_same_shard_tasks_never_overlap(self):
        pool = ShardPool(["a", "b"], workers=4)
        active = {"a": 0, "b": 0}
        peak = {"a": 0, "b": 0}
        guard = threading.Lock()

        def task(shard: str):
            def run() -> None:
                with guard:
                    active[shard] += 1
                    peak[shard] = max(peak[shard], active[shard])
                time.sleep(0.01)
                with guard:
                    active[shard] -= 1

            return run

        pool.run_many([("a", task("a")) for _ in range(6)] + [("b", task("b")) for _ in range(6)])
        assert peak["a"] == 1
        assert peak["b"] == 1
        pool.shutdown()

    def test_different_shards_do_overlap(self):
        pool = ShardPool(["a", "b"], workers=2)
        started = threading.Barrier(2, timeout=10.0)

        def task():
            def run() -> None:
                started.wait()  # both tasks inside their shard at once

            return run

        pool.run_many([("a", task()), ("b", task())])
        pool.shutdown()

    @pytest.mark.parametrize("workers", [0, 2])
    def test_run_many_runs_all_tasks_and_reraises_first_error(self, workers):
        """Both modes run every task before raising — same side effects."""
        pool = ShardPool(["a", "b"], workers=workers)
        ran = []

        def ok(tag):
            def run():
                ran.append(tag)

            return run

        def boom(kind):
            def run():
                ran.append("boom")
                raise kind("boom")

            return run

        with pytest.raises(ValueError):
            pool.run_many(
                [("a", ok(1)), ("b", boom(ValueError)), ("a", boom(KeyError)), ("b", ok(2))]
            )
        assert sorted(str(tag) for tag in ran) == ["1", "2", "boom", "boom"]
        pool.shutdown()

    def test_sequential_pool_needs_no_threads(self):
        pool = ShardPool(["a"], workers=0)
        assert pool.run("a", lambda: 7) == 7
        assert pool.run_many([("a", lambda: 1), (None, lambda: 2)]) == [1, 2]
        pool.shutdown()


class TestDriverConcurrency:
    def test_driver_verifies_with_workers_and_state_dir(self, tmp_path):
        report = run_demo(
            shard_count=3,
            n_requests=24,
            batch_size=6,
            workers=2,
            state_dir=str(tmp_path / "state"),
        )
        assert report.verified > 0
        assert report.workers == 2
        # A second run against the same state dir reloads every grant.
        again = run_demo(
            shard_count=3,
            n_requests=12,
            batch_size=4,
            workers=2,
            state_dir=str(tmp_path / "state"),
        )
        assert again.verified > 0
