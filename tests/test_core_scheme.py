"""Tests for the paper's type-and-identity-based PRE scheme (Section 4.1)."""

import pytest

from repro.core.ciphertexts import ProxyKey, ReEncryptedCiphertext, TypedCiphertext
from repro.core.scheme import DelegationError, TypeAndIdentityPre, TypeMismatchError
from repro.ibe.keys import IbeParams


class TestEncryptDecrypt:
    def test_round_trip(self, pre_setting, group, rng):
        scheme, kgc1, _, alice, _ = pre_setting
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, alice, message, "illness-history", rng)
        assert scheme.decrypt(ciphertext, alice) == message

    def test_round_trip_many_types(self, pre_setting, group, rng):
        scheme, kgc1, _, alice, _ = pre_setting
        message = group.random_gt(rng)
        for type_label in ("t1", "t2", "a-much-longer-type-label", ""):
            ciphertext = scheme.encrypt(kgc1.params, alice, message, type_label, rng)
            assert ciphertext.type_label == type_label
            assert scheme.decrypt(ciphertext, alice) == message

    def test_ciphertext_structure(self, pre_setting, group, rng):
        scheme, kgc1, _, alice, _ = pre_setting
        ciphertext = scheme.encrypt(kgc1.params, alice, group.random_gt(rng), "t", rng)
        assert group.params.is_in_subgroup(ciphertext.c1)
        assert ciphertext.domain == "KGC1" and ciphertext.identity == "alice"
        assert ciphertext.header() == ("KGC1", "alice", "t")

    def test_encryption_randomised(self, pre_setting, group, rng):
        scheme, kgc1, _, alice, _ = pre_setting
        message = group.random_gt(rng)
        c1 = scheme.encrypt(kgc1.params, alice, message, "t", rng)
        c2 = scheme.encrypt(kgc1.params, alice, message, "t", rng)
        assert c1.c1 != c2.c1 and c1.c2 != c2.c2

    def test_type_changes_ciphertext_mask(self, pre_setting, group, rng):
        """Decrypting with the wrong declared type yields garbage."""
        scheme, kgc1, _, alice, _ = pre_setting
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, alice, message, "t1", rng)
        forged = TypedCiphertext(
            domain=ciphertext.domain,
            identity=ciphertext.identity,
            c1=ciphertext.c1,
            c2=ciphertext.c2,
            type_label="t2",
        )
        assert scheme.decrypt(forged, alice) != message

    def test_params_key_domain_mismatch(self, pre_setting, group, rng):
        scheme, kgc1, kgc2, alice, _ = pre_setting
        with pytest.raises(DelegationError):
            scheme.encrypt(kgc2.params, alice, group.random_gt(rng), "t", rng)

    def test_decrypt_with_wrong_identity_key(self, pre_setting, group, rng):
        scheme, kgc1, _, alice, _ = pre_setting
        eve = kgc1.extract("eve")
        ciphertext = scheme.encrypt(kgc1.params, alice, group.random_gt(rng), "t", rng)
        with pytest.raises(DelegationError):
            scheme.decrypt(ciphertext, eve)

    def test_type_exponent_deterministic_and_distinct(self, pre_setting):
        scheme, _, _, alice, _ = pre_setting
        e1 = scheme.type_exponent(alice, "t1")
        assert e1 == scheme.type_exponent(alice, "t1")
        assert e1 != scheme.type_exponent(alice, "t2")

    def test_type_exponent_key_bound(self, pre_setting, two_kgcs):
        """H2(sk||t) depends on the private key, not only the type."""
        scheme, kgc1, _, alice, _ = pre_setting
        eve = kgc1.extract("eve")
        assert scheme.type_exponent(alice, "t") != scheme.type_exponent(eve, "t")


class TestDelegation:
    def test_full_delegation_round_trip(self, pre_setting, group, rng):
        scheme, kgc1, kgc2, alice, bob = pre_setting
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, alice, message, "t", rng)
        proxy_key = scheme.pextract(alice, "bob", "t", kgc2.params, rng)
        transformed = scheme.preenc(ciphertext, proxy_key)
        assert scheme.decrypt_reencrypted(transformed, bob) == message

    def test_proxy_key_metadata(self, pre_setting, rng):
        scheme, _, kgc2, alice, _ = pre_setting
        proxy_key = scheme.pextract(alice, "bob", "t", kgc2.params, rng)
        assert proxy_key.delegator == "alice"
        assert proxy_key.delegatee == "bob"
        assert proxy_key.type_label == "t"
        assert proxy_key.delegator_domain == "KGC1"
        assert proxy_key.delegatee_domain == "KGC2"

    def test_proxy_keys_randomised(self, pre_setting, rng):
        """Two keys for the same triple use independent blinds."""
        scheme, _, kgc2, alice, _ = pre_setting
        k1 = scheme.pextract(alice, "bob", "t", kgc2.params, rng)
        k2 = scheme.pextract(alice, "bob", "t", kgc2.params, rng)
        assert k1.rk_point != k2.rk_point

    def test_both_key_generations_decrypt(self, pre_setting, group, rng):
        scheme, kgc1, kgc2, alice, bob = pre_setting
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, alice, message, "t", rng)
        for _ in range(2):
            proxy_key = scheme.pextract(alice, "bob", "t", kgc2.params, rng)
            transformed = scheme.preenc(ciphertext, proxy_key)
            assert scheme.decrypt_reencrypted(transformed, bob) == message

    def test_type_mismatch_raises(self, pre_setting, group, rng):
        scheme, kgc1, kgc2, alice, _ = pre_setting
        ciphertext = scheme.encrypt(kgc1.params, alice, group.random_gt(rng), "t1", rng)
        proxy_key = scheme.pextract(alice, "bob", "t2", kgc2.params, rng)
        with pytest.raises(TypeMismatchError):
            scheme.preenc(ciphertext, proxy_key)

    def test_wrong_delegator_raises(self, pre_setting, group, rng):
        scheme, kgc1, kgc2, alice, _ = pre_setting
        eve = kgc1.extract("eve")
        ciphertext = scheme.encrypt(kgc1.params, eve, group.random_gt(rng), "t", rng)
        proxy_key = scheme.pextract(alice, "bob", "t", kgc2.params, rng)
        with pytest.raises(DelegationError):
            scheme.preenc(ciphertext, proxy_key)

    def test_unchecked_type_mix_garbles(self, pre_setting, group, rng):
        """The crypto, not the metadata check, provides isolation."""
        scheme, kgc1, kgc2, alice, bob = pre_setting
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, alice, message, "t1", rng)
        proxy_key = scheme.pextract(alice, "bob", "t2", kgc2.params, rng)
        mixed = scheme.preenc(ciphertext, proxy_key, unchecked=True)
        assert scheme.decrypt_reencrypted(mixed, bob) != message

    def test_wrong_delegatee_key_fails(self, pre_setting, group, rng):
        scheme, kgc1, kgc2, alice, bob = pre_setting
        carol = kgc2.extract("carol")
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, alice, message, "t", rng)
        proxy_key = scheme.pextract(alice, "bob", "t", kgc2.params, rng)
        transformed = scheme.preenc(ciphertext, proxy_key)
        with pytest.raises(DelegationError):
            scheme.decrypt_reencrypted(transformed, carol)

    def test_same_domain_delegation_works(self, pre_setting, group, rng):
        """Delegator and delegatee may share a KGC (KGC1 == KGC2 case)."""
        scheme, kgc1, _, alice, _ = pre_setting
        dave = kgc1.extract("dave")
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, alice, message, "t", rng)
        proxy_key = scheme.pextract(alice, "dave", "t", kgc1.params, rng)
        transformed = scheme.preenc(ciphertext, proxy_key)
        assert scheme.decrypt_reencrypted(transformed, dave) == message

    def test_delegatee_cannot_decrypt_original(self, pre_setting, group, rng):
        """Without re-encryption, bob learns nothing from alice's ciphertext."""
        scheme, kgc1, kgc2, alice, bob = pre_setting
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, alice, message, "t", rng)
        exponent = scheme.type_exponent(bob, "t")
        mask = group.gt_exp(group.pair(bob.point, ciphertext.c1), exponent)
        assert group.gt_div(ciphertext.c2, mask) != message

    def test_reencrypted_metadata(self, pre_setting, group, rng):
        scheme, kgc1, kgc2, alice, _ = pre_setting
        ciphertext = scheme.encrypt(kgc1.params, alice, group.random_gt(rng), "t", rng)
        proxy_key = scheme.pextract(alice, "bob", "t", kgc2.params, rng)
        transformed = scheme.preenc(ciphertext, proxy_key)
        assert transformed.delegator == "alice"
        assert transformed.delegatee == "bob"
        assert transformed.type_label == "t"
        assert transformed.c1 == ciphertext.c1  # c1 passes through unchanged


class TestSizes:
    def test_size_accounting(self, pre_setting, group):
        scheme = pre_setting[0]
        g1, gt = group.g1_element_size(), group.gt_element_size()
        assert scheme.ciphertext_size() == g1 + gt
        assert scheme.reencrypted_size() == 2 * (g1 + gt)
        assert scheme.proxy_key_size() == 2 * g1 + gt

    def test_reencryption_grows_ciphertext(self, pre_setting):
        scheme = pre_setting[0]
        assert scheme.reencrypted_size() > scheme.ciphertext_size()
