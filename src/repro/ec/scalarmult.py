"""Optimised scalar multiplication: wNAF and fixed-base windowing.

The affine double-and-add in :meth:`repro.ec.curve.Point.mul_schoolbook`
is the reference implementation; this module provides two classic
speedups used by the :class:`~repro.pairing.group.PairingGroup` facade:

* **wNAF (width-w non-adjacent form)** for arbitrary points: fewer adds
  because the signed digit encoding has ~1/(w+1) density and negation is
  free on elliptic curves.
* **Fixed-base windowing** for repeatedly-used bases (the group generator
  and KGC public keys): a one-time table of size ``2^w * ceil(bits/w)``
  turns every subsequent multiplication into pure additions.

Both run on the inversion-free Jacobian kernels from
:mod:`repro.ec.jacobian` for prime-field curves: the odd-multiple /
window tables are normalised with one Montgomery batch inversion, the
main loop performs no inversions at all, and a single ``modinv``
normalises the result.  :func:`wnaf_mul_affine` keeps the affine wNAF
ladder as a conformance reference (and is the fallback for extension
fields).  All paths are verified bit-identical by property tests; the
E1-extension benchmark (``bench_e8_substrate.py``) prices the gain.
"""

from __future__ import annotations

from repro.ec import jacobian as _jac
from repro.ec.curve import Point
from repro.math.fields import PrimeField

__all__ = ["wnaf_mul", "wnaf_mul_affine", "FixedBaseTable", "wnaf_digits"]

_DEFAULT_WIDTH = 4


def wnaf_digits(scalar: int, width: int = _DEFAULT_WIDTH) -> list[int]:
    """The width-``w`` non-adjacent form of a non-negative scalar.

    Digits are returned least-significant first; every non-zero digit is
    odd with absolute value below ``2^(w-1)``, and any two non-zero digits
    are separated by at least ``w - 1`` zeros.
    """
    if scalar < 0:
        raise ValueError("wNAF is defined here for non-negative scalars")
    if width < 2:
        raise ValueError("window width must be at least 2")
    digits: list[int] = []
    modulus = 1 << width
    half = 1 << (width - 1)
    while scalar > 0:
        if scalar & 1:
            digit = scalar % modulus
            if digit >= half:
                digit -= modulus
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


def wnaf_mul_affine(point: Point, scalar: int, width: int = _DEFAULT_WIDTH) -> Point:
    """Affine-coordinate wNAF: the conformance reference for :func:`wnaf_mul`."""
    if scalar < 0:
        return wnaf_mul_affine(-point, -scalar, width)
    if scalar == 0 or point.is_infinity():
        return point.curve.infinity()
    # Precompute the odd multiples P, 3P, ..., (2^(w-1) - 1)P: 2^(w-2) points.
    double_point = point.double()
    odd_multiples = [point]
    for _ in range(max(1, 1 << (width - 2)) - 1):
        odd_multiples.append(odd_multiples[-1] + double_point)
    digits = wnaf_digits(scalar, width)
    result = point.curve.infinity()
    for digit in reversed(digits):
        result = result.double()
        if digit > 0:
            result = result + odd_multiples[(digit - 1) // 2]
        elif digit < 0:
            result = result - odd_multiples[(-digit - 1) // 2]
    return result


def wnaf_mul(point: Point, scalar: int, width: int = _DEFAULT_WIDTH) -> Point:
    """Scalar multiplication via wNAF; agrees with ``point * scalar``.

    Prime-field curves run in Jacobian coordinates: the odd-multiple
    table is normalised with one batch inversion, the digit loop is
    inversion-free, and one final ``modinv`` produces the affine result.
    """
    if scalar < 0:
        return wnaf_mul(-point, -scalar, width)
    if scalar == 0 or point.is_infinity():
        return point.curve.infinity()
    field = point.curve.field
    if not isinstance(field, PrimeField):
        return wnaf_mul_affine(point, scalar, width)
    if width < 2:
        raise ValueError("window width must be at least 2")
    p = field.p
    a = point.curve.a.value
    x0, y0 = point.x.value, point.y.value
    # Odd multiples P, 3P, ... in Jacobian form, one shared normalisation.
    count = max(1, 1 << (width - 2))
    chain = [(x0, y0, 1)]
    if count > 1:
        double_pt = _jac.jac_double((x0, y0, 1), a, p)
        current = chain[0]
        for _ in range(count - 1):
            current = _jac.jac_add(current, double_pt, a, p)
            chain.append(current)
    odd_multiples = _jac.batch_normalize(chain, p)
    acc = _jac.JAC_INFINITY
    for digit in reversed(wnaf_digits(scalar, width)):
        acc = _jac.jac_double(acc, a, p)
        if digit:
            entry = odd_multiples[(abs(digit) - 1) // 2]
            if entry is not None:
                ey = entry[1] if digit > 0 else (-entry[1]) % p
                acc = _jac.jac_add_mixed(acc, entry[0], ey, a, p)
    affine = _jac.jac_normalize(acc, p)
    if affine is None:
        return point.curve.infinity()
    return Point(point.curve, field(affine[0]), field(affine[1]))


class FixedBaseTable:
    """Precomputed windowed table for one fixed base point.

    With window width ``w`` and a maximum scalar of ``bits`` bits the table
    stores ``ceil(bits / w)`` rows of ``2^w`` points.  Construction runs in
    Jacobian coordinates and normalises the whole table with a single batch
    inversion; a multiplication is then one mixed addition per row (no
    doublings) plus one final normalisation — a single ``modinv`` per
    multiply instead of one per row.
    """

    def __init__(self, base: Point, bits: int, width: int = _DEFAULT_WIDTH):
        if base.is_infinity():
            raise ValueError("fixed-base table needs a non-identity base")
        if bits < 1 or width < 1:
            raise ValueError("bits and width must be positive")
        self.base = base
        self.width = width
        self.bits = bits
        self._prime = isinstance(base.curve.field, PrimeField)
        rows = (bits + width - 1) // width
        if self._prime:
            p = base.curve.field.p
            a = base.curve.a.value
            row_base = (base.x.value, base.y.value, 1)
            chain: list = []
            for _ in range(rows):
                current = _jac.JAC_INFINITY
                for _ in range((1 << width) - 1):
                    current = _jac.jac_add(current, row_base, a, p)
                    chain.append(current)
                # Advance the row base by 2^width doublings.
                for _ in range(width):
                    row_base = _jac.jac_double(row_base, a, p)
            normalized = _jac.batch_normalize(chain, p)
            per_row = (1 << width) - 1
            self._rows = [
                [None] + normalized[i * per_row : (i + 1) * per_row]
                for i in range(rows)
            ]
        else:
            self._rows = []
            row_base = base
            for _ in range(rows):
                row = [base.curve.infinity()]
                for _ in range((1 << width) - 1):
                    row.append(row[-1] + row_base)
                self._rows.append(row)
                for _ in range(width):
                    row_base = row_base.double()

    def mul(self, scalar: int) -> Point:
        """Multiply the fixed base by ``scalar`` (reduced into range)."""
        if scalar < 0:
            raise ValueError("scalar must be non-negative (reduce mod q first)")
        if scalar.bit_length() > self.bits:
            raise ValueError("scalar exceeds the table's %d-bit capacity" % self.bits)
        mask = (1 << self.width) - 1
        curve = self.base.curve
        if not self._prime:
            result = curve.infinity()
            for row in self._rows:
                result = result + row[scalar & mask]
                scalar >>= self.width
            return result
        field = curve.field
        p = field.p
        a = curve.a.value
        acc = _jac.JAC_INFINITY
        for row in self._rows:
            entry = row[scalar & mask]
            if entry is not None:
                acc = _jac.jac_add_mixed(acc, entry[0], entry[1], a, p)
            scalar >>= self.width
        affine = _jac.jac_normalize(acc, p)
        if affine is None:
            return curve.infinity()
        return Point(curve, field(affine[0]), field(affine[1]))

    def table_size(self) -> int:
        """Number of precomputed entries held (identity slots included)."""
        return sum(len(row) for row in self._rows)
