"""E4 property-table generation, straight from the scheme registry.

The E4 comparison table (the Ateniese et al. property taxonomy the paper
cites) used to be assembled by hand wherever it was printed — the bench
adapters, the README, the CLI each carried their own copy of who is
unidirectional, non-interactive, collusion-safe, identity-based and
type-granular.  Since every backend now *declares* its
:class:`~repro.core.api.SchemeCapabilities`, the registry is the single
source of truth; this module renders the table from it, so registering
a backend updates every consumer and a drifted hand-written copy is a
test failure, not a silent lie.
"""

from __future__ import annotations

from repro.core.api import (
    CAPABILITY_NAMES,
    PROPERTY_NAMES,
    SchemeRegistry,
    load_builtin_backends,
)

__all__ = [
    "declared_property_matrix",
    "declared_capability_matrix",
    "property_table_rows",
]


def declared_property_matrix(
    registry: SchemeRegistry | None = None,
) -> dict[str, dict[str, bool]]:
    """Scheme id -> the five E4 property flags, from declared capabilities."""
    registry = load_builtin_backends() if registry is None else registry
    return {
        scheme_id: registry.backend_class(scheme_id).capabilities.properties()
        for scheme_id in registry.ids()
    }


def declared_capability_matrix(
    registry: SchemeRegistry | None = None,
) -> dict[str, dict[str, bool]]:
    """Scheme id -> every capability flag (E4 properties + operational)."""
    registry = load_builtin_backends() if registry is None else registry
    return {
        scheme_id: registry.backend_class(scheme_id).capabilities.as_dict()
        for scheme_id in registry.ids()
    }


def property_table_rows(
    registry: SchemeRegistry | None = None, flags: tuple[str, ...] = PROPERTY_NAMES
) -> list[list[str]]:
    """The E4 table as printable rows: scheme id, display name, yes/no flags.

    Pass ``flags=CAPABILITY_NAMES`` to include the operational
    ``deterministic_reencrypt`` column the service layer keys on.
    """
    unknown = [name for name in flags if name not in CAPABILITY_NAMES]
    if unknown:
        raise ValueError("unknown capability flags: %s" % ", ".join(unknown))
    registry = load_builtin_backends() if registry is None else registry
    rows = []
    for scheme_id in registry.ids():
        backend_class = registry.backend_class(scheme_id)
        declared = backend_class.capabilities.as_dict()
        rows.append(
            [scheme_id, backend_class.display_name]
            + ["yes" if declared[name] else "no" for name in flags]
        )
    return rows
