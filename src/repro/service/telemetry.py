"""End-to-end telemetry: traces, histogram metrics, structured events.

Three primitives every serving deployment of the gateway needs once a
request can cross process boundaries:

* **Trace contexts** — :class:`TraceContext` is a (trace id, span id)
  pair generated at the edge (:class:`~repro.service.wire.client.RemoteGateway`),
  carried as the ``X-Repro-Trace`` header through the wire, and threaded
  into :class:`~repro.service.gateway.ReEncryptionGateway` so every
  request stage (admission, route, cache lookup, shard crypto op,
  serialization) records a :class:`Span` into a bounded per-gateway
  :class:`Tracer` ring.  ``GET /v1/trace/{id}`` retrieves a trace and
  ``repro-pre trace`` renders it as a waterfall.

* **Histogram metrics** — :class:`Histogram` is a fixed-bucket latency
  accumulator with exact count/sum/max.  Unlike the sample lists it
  replaces, it never drops an observation, so long-run percentiles track
  live traffic instead of freezing on startup samples, and the bounded
  memory holds no matter how long the gateway runs.
  :func:`render_prometheus` exposes everything (per scheme, per
  operation, per tenant outcome) in Prometheus text exposition format
  for ``GET /v1/metrics?format=prometheus``.

* **Structured events** — :class:`EventLog` is a bounded ring of JSON
  objects with an injectable sink (:func:`jsonl_sink` appends one JSON
  line per event to any stream).  The gateway's audit writer and the
  wire server's previously-discarded ``log_message``/error paths both
  feed it, so nothing a production operator needs vanishes into a
  silenced stderr.

Everything here is dependency-free within the service layer (no imports
from :mod:`repro.service.metrics` or the wire package), thread-safe, and
clock-injectable so tests assert on exact numbers.
"""

from __future__ import annotations

import json
import random
import secrets
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Callable, NamedTuple

__all__ = [
    "TRACE_HEADER",
    "TraceContext",
    "Span",
    "SpanHandle",
    "Tracer",
    "Histogram",
    "HistogramSnapshot",
    "merge_histogram_snapshots",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "EventLog",
    "jsonl_sink",
    "render_prometheus",
    "span_to_json",
    "span_from_json",
]

# The wire header carrying "<trace id>-<span id>" (32 + 16 lowercase hex
# chars); the response echoes it so a client can always correlate.
TRACE_HEADER = "X-Repro-Trace"

_TRACE_ID_CHARS = 32  # 16 random bytes
_SPAN_ID_CHARS = 16  # 8 random bytes
_HEX = set("0123456789abcdef")

# Trace and span ids only need uniqueness, not unpredictability (they
# are correlation handles, not capabilities): a PRNG seeded once from
# the CSPRNG keeps id generation syscall-free — secrets.token_hex reads
# urandom per call, which is measurable at per-request rates.
# getrandbits on a shared Random is a single C call, atomic under the
# GIL.
_id_rng = random.Random(secrets.randbits(64))


def _new_trace_id() -> str:
    return "%032x" % _id_rng.getrandbits(128)


def _new_span_id() -> str:
    return "%016x" % _id_rng.getrandbits(64)


# ------------------------------------------------------------------- tracing


class TraceContext(NamedTuple):
    """One request's position in a trace: the trace id plus current span.

    The context is propagation state, not a recorded span — spans are
    what a :class:`Tracer` stores.  ``span_id`` names the *enclosing*
    span, so spans opened under this context record it as their parent.
    A NamedTuple rather than a dataclass: one is built per span on the
    request hot path, and tuple construction is what keeps that cheap.
    """

    trace_id: str
    span_id: str

    @staticmethod
    def generate() -> "TraceContext":
        """A fresh root context (random ids; no parent span recorded)."""
        return TraceContext(trace_id=_new_trace_id(), span_id=_new_span_id())

    def child(self) -> "TraceContext":
        """Same trace, fresh span id — the context a sub-span runs under."""
        return TraceContext(trace_id=self.trace_id, span_id=_new_span_id())

    def to_header(self) -> str:
        return "%s-%s" % (self.trace_id, self.span_id)

    @staticmethod
    def from_header(value: str | None) -> "TraceContext | None":
        """Parse a header value; anything malformed is ``None``, never an error.

        A gateway must keep serving clients with broken tracing middleware,
        so header parsing is deliberately infallible.
        """
        if not value or not isinstance(value, str):
            return None
        parts = value.strip().split("-")
        if len(parts) != 2:
            return None
        trace_id, span_id = parts
        if len(trace_id) != _TRACE_ID_CHARS or len(span_id) != _SPAN_ID_CHARS:
            return None
        if not (set(trace_id) <= _HEX and set(span_id) <= _HEX):
            return None
        return TraceContext(trace_id=trace_id, span_id=span_id)


class Span(NamedTuple):
    """One recorded stage of one request.

    ``attributes`` is a sorted tuple of (key, value) string pairs so the
    record stays hashable and wire round trips compare equal.  A
    NamedTuple for the same hot-path reason as :class:`TraceContext`.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start_ms: float
    duration_ms: float
    status: str = "ok"  # "ok" or a stable error code
    attributes: tuple[tuple[str, str], ...] = ()

    def attribute_dict(self) -> dict[str, str]:
        return dict(self.attributes)


class SpanHandle:
    """The mutable in-flight view :meth:`Tracer.span` yields.

    ``context`` is the child trace context the span runs under — pass it
    to nested stages so their spans parent correctly.  :meth:`set` adds
    attributes; assigning :attr:`status` overrides the default ("ok", or
    the ``code`` of an exception that escapes the block).
    """

    __slots__ = ("context", "status", "_attributes")

    def __init__(self, context: TraceContext):
        self.context = context
        self.status: str | None = None
        self._attributes: dict[str, str] = {}

    def set(self, key: str, value: Any) -> None:
        self._attributes[str(key)] = str(value)


class Tracer:
    """A bounded ring of traces: at most ``max_traces``, oldest evicted.

    Spans are grouped by trace id; one trace holds at most
    ``max_spans_per_trace`` spans (later spans of a runaway trace are
    dropped, never the process's memory).  Thread-safe.
    """

    def __init__(
        self,
        max_traces: int = 256,
        max_spans_per_trace: int = 256,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_traces < 1 or max_spans_per_trace < 1:
            raise ValueError("trace ring bounds must be positive")
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self._clock = clock
        self._lock = threading.Lock()
        self._traces: OrderedDict[str, list[Span]] = OrderedDict()
        self.spans_recorded = 0
        self.spans_dropped = 0
        self.traces_evicted = 0

    def record(self, span: Span) -> None:
        with self._lock:
            spans = self._traces.get(span.trace_id)
            if spans is None:
                while len(self._traces) >= self.max_traces:
                    self._traces.popitem(last=False)
                    self.traces_evicted += 1
                spans = self._traces[span.trace_id] = []
            if len(spans) >= self.max_spans_per_trace:
                self.spans_dropped += 1
                return
            spans.append(span)
            self.spans_recorded += 1

    def span(
        self,
        context: TraceContext | None,
        name: str,
        attributes: dict[str, Any] | None = None,
    ) -> "_SpanScope":
        """Record one named span around a block; no-op when ``context`` is None.

        An exception escaping the block marks the span's status with the
        exception's stable ``code`` (or its class name) and re-raises —
        failed stages show up in the trace exactly where they failed.
        A plain slotted context manager rather than ``@contextmanager``:
        the generator machinery is measurable per-request overhead.
        """
        return _SpanScope(self, context, name, attributes)

    def _finish(
        self, context: TraceContext, name: str, handle: SpanHandle, start: float
    ) -> None:
        """Seal one span into the ring (called by :class:`_SpanScope`)."""
        self.record(
            Span(
                trace_id=context.trace_id,
                span_id=handle.context.span_id,
                parent_id=context.span_id,
                name=name,
                start_ms=start * 1000.0,
                duration_ms=(self._clock() - start) * 1000.0,
                status=handle.status or "ok",
                attributes=tuple(sorted(handle._attributes.items())),
            )
        )

    def trace(self, trace_id: str) -> list[Span]:
        """Every recorded span of one trace (copy, recording order)."""
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class _SpanScope:
    """The context manager :meth:`Tracer.span` returns; single-use."""

    __slots__ = ("_tracer", "_context", "_name", "_attributes", "_handle", "_start")

    def __init__(self, tracer, context, name, attributes):
        self._tracer = tracer
        self._context = context
        self._name = name
        self._attributes = attributes
        self._handle = None

    def __enter__(self) -> SpanHandle | None:
        context = self._context
        if context is None:
            return None
        # context.child() inlined: this runs several times per request.
        handle = self._handle = SpanHandle(
            TraceContext(context.trace_id, _new_span_id())
        )
        if self._attributes:
            for key, value in self._attributes.items():
                handle.set(key, value)
        self._start = self._tracer._clock()
        return handle

    def __exit__(self, exc_type, exc, _tb) -> bool:
        handle = self._handle
        if handle is not None:
            if exc is not None and handle.status is None:
                handle.status = getattr(exc, "code", exc_type.__name__)
            self._tracer._finish(self._context, self._name, handle, self._start)
        return False  # never swallow the block's exception


def span_to_json(span: Span) -> dict:
    return {
        "trace": span.trace_id,
        "span": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "start_ms": span.start_ms,
        "duration_ms": span.duration_ms,
        "status": span.status,
        "attributes": span.attribute_dict(),
    }


def span_from_json(document: dict) -> Span:
    """Rebuild a :class:`Span`; raises ``ValueError`` on a malformed document."""
    if not isinstance(document, dict):
        raise ValueError("span document must be a JSON object")
    try:
        attributes = document.get("attributes") or {}
        if not isinstance(attributes, dict):
            raise ValueError("span attributes must be a JSON object")
        parent = document.get("parent")
        if parent is not None and not isinstance(parent, str):
            raise ValueError("span parent must be a string or null")
        return Span(
            trace_id=str(document["trace"]),
            span_id=str(document["span"]),
            parent_id=parent,
            name=str(document["name"]),
            start_ms=float(document["start_ms"]),
            duration_ms=float(document["duration_ms"]),
            status=str(document.get("status", "ok")),
            attributes=tuple(
                sorted((str(k), str(v)) for k, v in attributes.items())
            ),
        )
    except (KeyError, TypeError) as error:
        raise ValueError("malformed span document: %s" % error) from error


# ---------------------------------------------------------------- histograms

# Exponential-ish bounds spanning a cache hit (~50us) through a slow wire
# batch (~10s); everything slower lands in the implicit +Inf bucket.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


@dataclass(frozen=True)
class HistogramSnapshot:
    """A frozen histogram: cumulative math lives here, mutation in Histogram.

    ``counts`` has one entry per bound plus the final +Inf bucket.
    ``count``/``sum``/``max_value`` are exact — only percentiles are
    bucket-resolution estimates.
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    count: int
    sum: float
    max_value: float

    def percentile(self, q: float) -> float:
        """Estimate the q-quantile (0 < q <= 1) by bucket interpolation.

        The rank is nearest-rank over the exact count; within the chosen
        bucket the estimate interpolates linearly between its bounds.
        The top (+Inf) bucket and the overall estimate are clamped to the
        exact observed max, so the estimate never invents a latency
        larger than anything that happened.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, int(q * self.count + 0.999999))
        cumulative = 0
        lower = 0.0
        for i, bucket_count in enumerate(self.counts):
            upper = self.bounds[i] if i < len(self.bounds) else self.max_value
            if bucket_count:
                cumulative += bucket_count
                if cumulative >= rank:
                    # Position of the rank inside this bucket.
                    into = rank - (cumulative - bucket_count)
                    estimate = lower + (upper - lower) * into / bucket_count
                    return min(estimate, self.max_value)
            lower = self.bounds[i] if i < len(self.bounds) else lower
        return self.max_value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Histogram:
    """Fixed-bucket latency accumulator; every observation always counts.

    Replaces the first-50k-wins sample lists: memory is bounded by the
    bucket count, not the traffic volume, so a year-long run's p99 still
    reflects the last request.  Thread-safe.
    """

    __slots__ = ("bounds", "_counts", "_count", "_sum", "_max", "_lock")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted non-empty sequence")
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # + the +Inf bucket
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # Linear scan beats bisect for ~18 buckets when most latencies
        # land in the first few; both are trivially cheap next to a pairing.
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(
                bounds=self.bounds,
                counts=tuple(self._counts),
                count=self._count,
                sum=self._sum,
                max_value=self._max,
            )


def merge_histogram_snapshots(
    snapshots: "list[HistogramSnapshot]",
) -> HistogramSnapshot:
    """Sum histograms observed independently (one per shard process).

    All inputs must share the same bucket bounds — counts add
    bucket-wise, count/sum add, max takes the max, so the merged
    snapshot is exactly what one histogram would have recorded had every
    process observed into it.  Raises ``ValueError`` on mismatched
    bounds (callers decide whether to skip or fail).
    """
    if not snapshots:
        raise ValueError("nothing to merge")
    first = snapshots[0]
    counts = [0] * (len(first.bounds) + 1)
    total = 0
    total_sum = 0.0
    max_value = 0.0
    for snapshot in snapshots:
        if snapshot.bounds != first.bounds:
            raise ValueError("histogram bounds differ; cannot merge")
        for i, bucket_count in enumerate(snapshot.counts):
            counts[i] += bucket_count
        total += snapshot.count
        total_sum += snapshot.sum
        max_value = max(max_value, snapshot.max_value)
    return HistogramSnapshot(
        bounds=first.bounds,
        counts=tuple(counts),
        count=total,
        sum=total_sum,
        max_value=max_value,
    )


# ------------------------------------------------------------------- events


class EventLog:
    """A bounded ring of structured events with an injectable sink.

    :meth:`emit` builds one JSON-compatible dict per event (``ts`` plus
    whatever the caller passes), keeps the newest ``max_events`` in
    memory, and forwards each to ``sink`` when one is installed — a
    callable taking the event dict, e.g. :func:`jsonl_sink`.  A sink
    failure is counted, never raised: telemetry must not take down
    serving.  Thread-safe.
    """

    def __init__(
        self,
        sink: Callable[[dict], None] | None = None,
        max_events: int = 4096,
        clock: Callable[[], float] = time.time,
    ):
        if max_events < 1:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self.sink = sink
        self._clock = clock
        self._lock = threading.Lock()
        # A maxlen deque IS the bounded ring: append evicts the oldest
        # event in C, with no key bookkeeping on the emit hot path.
        self._events: deque[dict] = deque(maxlen=max_events)
        self._sequence = 0
        self.emitted = 0
        self.sink_errors = 0

    def emit(self, kind: str, **fields: Any) -> dict:
        """Record one event; returns the event dict that was stored."""
        event = {"ts": self._clock(), "kind": kind}
        for key, value in fields.items():
            if value is not None:
                event[key] = value
        with self._lock:
            event["seq"] = self._sequence
            self._events.append(event)
            self._sequence += 1
            self.emitted += 1
            sink = self.sink
        if sink is not None:
            try:
                sink(event)
            except Exception:  # noqa: BLE001 - telemetry never kills serving
                with self._lock:
                    self.sink_errors += 1
        return event

    def tail(self, n: int | None = None) -> list[dict]:
        """The newest ``n`` events (all retained when ``n`` is None), oldest first."""
        with self._lock:
            events = list(self._events)
        return events if n is None else events[-n:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


def jsonl_sink(stream) -> Callable[[dict], None]:
    """A sink writing one compact JSON line per event to ``stream``.

    The write is flushed per event so a crash loses at most the event in
    flight — the property an audit trail needs from its transport.
    """

    lock = threading.Lock()

    def write(event: dict) -> None:
        line = json.dumps(event, sort_keys=True, default=str)
        with lock:
            stream.write(line + "\n")
            stream.flush()

    return write


# -------------------------------------------------------- prometheus render


def escape_label_value(value: str) -> str:
    """Escape a Prometheus label value (backslash, quote, newline)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt_value(value: float) -> str:
    if isinstance(value, bool):  # guard: bool is an int subclass
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == float("inf"):
        return "+Inf"
    return "%.10g" % value


def _labels(pairs: list[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (name, escape_label_value(value)) for name, value in pairs
    )


class _Family:
    """One exposition family: HELP/TYPE header plus its samples."""

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.samples: list[str] = []

    def add(self, labels: list[tuple[str, str]], value, suffix: str = "") -> None:
        self.samples.append(
            "%s%s%s %s" % (self.name, suffix, _labels(labels), _fmt_value(value))
        )

    def render(self) -> list[str]:
        if not self.samples:
            return []
        return [
            "# HELP %s %s" % (self.name, self.help_text),
            "# TYPE %s %s" % (self.name, self.kind),
        ] + self.samples


def render_prometheus(snapshots: dict[str, Any], wire: Any | None = None) -> str:
    """Render gateway metrics snapshots as Prometheus text exposition.

    ``snapshots`` maps a scheme id to that fleet's
    :class:`~repro.service.metrics.MetricsSnapshot` (duck-typed: this
    module never imports the metrics module).  Each family is emitted
    once with every fleet's samples under a ``scheme`` label, which is
    what lets one scrape of a multi-scheme server stay a valid document.

    ``wire`` is an optional
    :class:`~repro.service.metrics.WireStatsSnapshot` (again duck-typed)
    carrying the serving transport's connection/stream gauges — scheme-
    neutral, since connections are shared by every hosted fleet.
    """
    families = [
        _Family("repro_gateway_requests_total", "counter",
                "Requests admitted or refused since process start."),
        _Family("repro_gateway_served_total", "counter",
                "Requests served successfully."),
        _Family("repro_gateway_rejected_total", "counter",
                "Requests rejected by policy (not rate limiting)."),
        _Family("repro_gateway_rate_limited_total", "counter",
                "Requests refused by the per-tenant token bucket."),
        _Family("repro_gateway_resizes_total", "counter",
                "Fleet resize operations."),
        _Family("repro_gateway_keys_migrated_total", "counter",
                "Proxy keys moved by resize migrations."),
        _Family("repro_gateway_uptime_seconds", "gauge",
                "Seconds since the metrics accumulator started."),
        _Family("repro_gateway_shard_requests_total", "counter",
                "Served requests per shard."),
        _Family("repro_gateway_outcomes_total", "counter",
                "Request outcomes per operation and stable outcome code."),
        _Family("repro_gateway_tenant_outcomes_total", "counter",
                "Request outcomes per tenant (bounded cardinality)."),
        _Family("repro_gateway_cache_hits_total", "counter", "Cache hits."),
        _Family("repro_gateway_cache_misses_total", "counter", "Cache misses."),
        _Family("repro_gateway_cache_evictions_total", "counter", "Cache evictions."),
        _Family("repro_gateway_cache_invalidations_total", "counter",
                "Cache invalidations."),
        _Family("repro_gateway_cache_size", "gauge", "Current cache entries."),
        _Family("repro_gateway_cache_capacity", "gauge", "Cache capacity."),
        _Family("repro_gateway_auth_failures_total", "counter",
                "Authentication/authorization rejections by taxonomy code."),
    ]
    (requests, served, rejected, rate_limited, resizes, migrated, uptime,
     shard_requests, outcomes, tenant_outcomes, cache_hits, cache_misses,
     cache_evictions, cache_invalidations, cache_size, cache_capacity,
     auth_failures) = families
    latency = _Family(
        "repro_gateway_latency_ms", "histogram",
        "Request latency in milliseconds per operation.",
    )
    tenant_queue = _Family(
        "repro_gateway_tenant_queue_ms", "histogram",
        "Shard-lock queue time in milliseconds per tenant (fairness).",
    )

    for scheme_id in sorted(snapshots):
        snapshot = snapshots[scheme_id]
        base = [("scheme", scheme_id)]
        requests.add(base, snapshot.requests_total)
        served.add(base, snapshot.served)
        rejected.add(base, snapshot.rejected)
        rate_limited.add(base, snapshot.rate_limited)
        resizes.add(base, snapshot.resizes)
        migrated.add(base, snapshot.keys_migrated)
        uptime.add(base, snapshot.elapsed_s)
        for shard in sorted(snapshot.shard_requests):
            shard_requests.add(
                base + [("shard", shard)], snapshot.shard_requests[shard]
            )
        for (op, outcome) in sorted(getattr(snapshot, "outcomes", {}) or {}):
            outcomes.add(
                base + [("op", op), ("outcome", outcome)],
                snapshot.outcomes[(op, outcome)],
            )
        for (tenant, outcome) in sorted(getattr(snapshot, "tenant_outcomes", {}) or {}):
            tenant_outcomes.add(
                base + [("tenant", tenant), ("outcome", outcome)],
                snapshot.tenant_outcomes[(tenant, outcome)],
            )
        for name in sorted(snapshot.caches):
            stats = snapshot.caches[name]
            labels = base + [("cache", name)]
            cache_hits.add(labels, stats.hits)
            cache_misses.add(labels, stats.misses)
            cache_evictions.add(labels, stats.evictions)
            cache_invalidations.add(labels, stats.invalidations)
            cache_size.add(labels, stats.size)
            cache_capacity.add(labels, stats.capacity)
        for op in sorted(getattr(snapshot, "histograms", {}) or {}):
            hist = snapshot.histograms[op]
            op_labels = base + [("op", op)]
            cumulative = 0
            for i, bucket_count in enumerate(hist.counts):
                cumulative += bucket_count
                bound = hist.bounds[i] if i < len(hist.bounds) else float("inf")
                latency.add(
                    op_labels + [("le", _fmt_value(bound))], cumulative, "_bucket"
                )
            latency.add(op_labels, hist.sum, "_sum")
            latency.add(op_labels, hist.count, "_count")
        for code in sorted(getattr(snapshot, "auth_failures", {}) or {}):
            auth_failures.add(
                base + [("code", code)], snapshot.auth_failures[code]
            )
        for tenant in sorted(getattr(snapshot, "tenant_queue_ms", {}) or {}):
            hist = snapshot.tenant_queue_ms[tenant]
            tenant_labels = base + [("tenant", tenant)]
            cumulative = 0
            for i, bucket_count in enumerate(hist.counts):
                cumulative += bucket_count
                bound = hist.bounds[i] if i < len(hist.bounds) else float("inf")
                tenant_queue.add(
                    tenant_labels + [("le", _fmt_value(bound))], cumulative, "_bucket"
                )
            tenant_queue.add(tenant_labels, hist.sum, "_sum")
            tenant_queue.add(tenant_labels, hist.count, "_count")

    wire_families: list[_Family] = []
    if wire is not None:
        pairs = [
            ("repro_wire_connections_open", "gauge",
             "Wire connections currently accepted and not yet closed.",
             wire.connections_open),
            ("repro_wire_connections_total", "counter",
             "Wire connections accepted since process start.",
             wire.connections_total),
            ("repro_wire_streams_in_flight", "gauge",
             "Requests currently executing across all wire connections.",
             wire.streams_in_flight),
            ("repro_wire_streams_total", "counter",
             "Requests started on the wire since process start.",
             wire.streams_total),
            ("repro_wire_streams_peak", "gauge",
             "Highest concurrent in-flight request count observed.",
             wire.streams_peak),
        ]
        for name, kind, help_text, value in pairs:
            family = _Family(name, kind, help_text)
            family.add([], value)
            wire_families.append(family)

    lines: list[str] = []
    for family in families + [latency, tenant_queue] + wire_families:
        lines.extend(family.render())
    return "\n".join(lines) + "\n"
