"""The re-encryption gateway: sharding, caching, batching, rate limits.

The paper's proxy serves *many* patients and delegatees.  This walkthrough
stands a gateway over four proxy shards, installs grants through it,
serves single and batched re-encryption requests, trips the per-tenant
rate limiter, and prints the metrics snapshot a production operator would
watch.

Run:  python examples/gateway_service.py
"""

from repro import HmacDrbg, KgcRegistry, PairingGroup, TypeAndIdentityPre
from repro.bench.report import print_table
from repro.service import (
    DelegationNotFoundError,
    GrantRequest,
    RateLimitedError,
    ReEncryptionGateway,
    ReEncryptRequest,
    RevokeRequest,
)

rng = HmacDrbg("gateway-example")

# 1. The usual two-domain setting, plus a gateway over four proxy shards.
group = PairingGroup("SS256")
registry = KgcRegistry(group, rng)
kgc1 = registry.create("KGC1")
kgc2 = registry.create("KGC2")
scheme = TypeAndIdentityPre(group)
gateway = ReEncryptionGateway(scheme, shard_count=4, rate_per_s=50.0, burst=5.0)

alice = kgc1.extract("alice")
bob = kgc2.extract("bob")

# 2. Grants go through the gateway; consistent hashing picks the shard.
for type_label in ("labs", "medication"):
    response = gateway.grant(
        GrantRequest(
            tenant="alice",
            proxy_key=scheme.pextract(alice, "bob", type_label, kgc2.params, rng),
        )
    )
    print("grant %-10s -> %s" % (type_label, response.shard))

# 3. A batch of lab reports for bob: one key lookup serves all three.
reports = [group.random_gt(rng) for _ in range(3)]
requests = [
    ReEncryptRequest(
        tenant="clinic",
        ciphertext=scheme.encrypt(kgc1.params, alice, report, "labs", rng),
        delegatee_domain="KGC2",
        delegatee="bob",
    )
    for report in reports
]
for response, report in zip(gateway.reencrypt_batch(requests), reports):
    assert scheme.decrypt_reencrypted(response.ciphertext, bob) == report
print("batched re-encryption: 3 plaintexts recovered by bob: OK")

# 4. Replaying a request is a cache hit — the shard does no pairing work.
replay = gateway.reencrypt(requests[0])
print("replayed request served from cache:", replay.cache_hit)

# 5. Revocation invalidates the caches too; the request now fails, typed.
gateway.revoke(
    RevokeRequest(
        tenant="alice",
        delegator_domain="KGC1",
        delegator="alice",
        delegatee_domain="KGC2",
        delegatee="bob",
        type_label="labs",
    )
)
try:
    gateway.reencrypt(requests[0])
except DelegationNotFoundError as refusal:
    print("after revoke, gateway refuses with code %r" % refusal.code)

# 6. A greedy tenant hits the token bucket.
greedy = ReEncryptRequest(
    tenant="greedy",
    ciphertext=requests[0].ciphertext,
    delegatee_domain="KGC2",
    delegatee="bob",
)
limited = 0
for _ in range(8):
    try:
        gateway.reencrypt(greedy)
    except DelegationNotFoundError:
        pass  # labs was revoked; admission still consumed a token
    except RateLimitedError:
        limited += 1
print("rate limiter rejected %d of 8 burst requests" % limited)

# 7. The operator's view.
print_table("gateway metrics", ["metric", "value"], gateway.snapshot().rows())
