"""Property-style tests for the durable proxy-key table.

The contract under test: any sequence of installs and revokes, replayed
from the append log, reconstructs exactly the in-memory table — and a
torn or corrupt tail (the damage a crash mid-append can cause) loses at
most the torn record, never the history before it.
"""

from __future__ import annotations

import itertools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.proxy import ProxyKeyTable
from repro.core.scheme import TypeAndIdentityPre
from repro.ibe.kgc import KgcRegistry
from repro.math.drbg import HmacDrbg
from repro.service.persistence import DurableProxyKeyTable, LogFormatError

N_KEYS = 8
_case_ids = itertools.count()


@pytest.fixture(scope="module")
def key_pool(group):
    """Eight distinct proxy keys (2 delegators x 2 delegatees x 2 types)."""
    rng = HmacDrbg("persistence-keys")
    registry = KgcRegistry(group, rng)
    kgc1 = registry.create("KGC1")
    kgc2 = registry.create("KGC2")
    scheme = TypeAndIdentityPre(group)
    keys = []
    for delegator in ("alice", "carol"):
        delegator_key = kgc1.extract(delegator)
        for delegatee in ("bob", "dave"):
            for type_label in ("labs", "meds"):
                keys.append(
                    scheme.pextract(delegator_key, delegatee, type_label, kgc2.params, rng)
                )
    assert len(keys) == N_KEYS
    return keys


def _state_of(table) -> dict:
    return {ProxyKeyTable.index_of(key): key for key in table}


def _fresh_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("durable-%d" % next(_case_ids))


class TestRoundTrip:
    @settings(max_examples=25)
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=N_KEYS - 1)),
            max_size=40,
        )
    )
    def test_random_op_sequence_reloads_identically(
        self, ops, key_pool, group, tmp_path_factory
    ):
        """Apply installs/revokes, reload, and compare against a model dict."""
        path = _fresh_dir(tmp_path_factory) / "shard.log"
        table = DurableProxyKeyTable(path, group)
        model: dict = {}
        for is_install, key_index in ops:
            key = key_pool[key_index]
            index = ProxyKeyTable.index_of(key)
            if is_install:
                table.install(key)
                model[index] = key
            else:
                assert table.revoke(index) == (index in model)
                model.pop(index, None)
        table.close()

        reloaded = DurableProxyKeyTable(path, group)
        assert _state_of(reloaded) == model
        assert reloaded.recovered_bytes == 0
        reloaded.close()

    def test_reload_after_compaction_is_identical(self, key_pool, group, tmp_path_factory):
        path = _fresh_dir(tmp_path_factory) / "shard.log"
        table = DurableProxyKeyTable(path, group)
        for _ in range(10):
            for key in key_pool:
                table.install(key)
            table.revoke(ProxyKeyTable.index_of(key_pool[0]))
        before = _state_of(table)
        assert table.log_records > len(table)
        table.compact()
        assert table.log_records == len(table)
        table.close()

        reloaded = DurableProxyKeyTable(path, group)
        assert _state_of(reloaded) == before
        reloaded.close()

    def test_auto_compaction_bounds_the_log(self, key_pool, group, tmp_path_factory):
        """Install/revoke churn cannot grow the log without bound."""
        path = _fresh_dir(tmp_path_factory) / "shard.log"
        table = DurableProxyKeyTable(path, group, auto_compact_ratio=2.0, auto_compact_min=8)
        key = key_pool[0]
        for _ in range(100):
            table.install(key)
            table.revoke(ProxyKeyTable.index_of(key))
        # 200 mutations, but compaction kept the log near the live size.
        assert table.log_records <= 8
        table.close()


class TestTailRecovery:
    def _installed(self, path, group, keys):
        table = DurableProxyKeyTable(path, group)
        for key in keys:
            table.install(key)
        table.close()

    def test_torn_final_record_is_dropped(self, key_pool, group, tmp_path_factory):
        path = _fresh_dir(tmp_path_factory) / "shard.log"
        self._installed(path, group, key_pool[:3])
        with open(path, "rb+") as handle:
            handle.truncate(path.stat().st_size - 10)  # tear the last append

        table = DurableProxyKeyTable(path, group)
        assert table.recovered_bytes > 0
        assert set(_state_of(table)) == {
            ProxyKeyTable.index_of(key) for key in key_pool[:2]
        }
        # The table keeps working after recovery, and the repair sticks.
        table.install(key_pool[3])
        table.close()
        reloaded = DurableProxyKeyTable(path, group)
        assert reloaded.recovered_bytes == 0
        assert len(reloaded) == 3
        reloaded.close()

    def test_garbage_tail_is_dropped(self, key_pool, group, tmp_path_factory):
        path = _fresh_dir(tmp_path_factory) / "shard.log"
        self._installed(path, group, key_pool[:4])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("this is not a log record\n")

        table = DurableProxyKeyTable(path, group)
        assert table.recovered_bytes > 0
        assert len(table) == 4  # every real record survived
        table.close()

    def test_bad_crc_tail_is_dropped(self, key_pool, group, tmp_path_factory):
        path = _fresh_dir(tmp_path_factory) / "shard.log"
        self._installed(path, group, key_pool[:2])
        with open(path, "a", encoding="utf-8") as handle:
            record = {"op": "revoke", "index": list(ProxyKeyTable.index_of(key_pool[0])), "crc": 1}
            handle.write(json.dumps(record) + "\n")

        table = DurableProxyKeyTable(path, group)
        # The forged revoke did not apply: its CRC does not match.
        assert len(table) == 2
        assert table.recovered_bytes > 0
        table.close()


class TestHeader:
    def test_wrong_group_refused(self, key_pool, group, tmp_path_factory):
        path = _fresh_dir(tmp_path_factory) / "shard.log"
        table = DurableProxyKeyTable(path, group)
        table.install(key_pool[0])
        table.close()
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["group"] = "SS256"
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(LogFormatError):
            DurableProxyKeyTable(path, group)

    def test_unversioned_file_refused(self, group, tmp_path_factory):
        path = _fresh_dir(tmp_path_factory) / "shard.log"
        path.write_text('{"something": "else"}\n')
        with pytest.raises(LogFormatError):
            DurableProxyKeyTable(path, group)

    def test_empty_file_opens_as_a_fresh_log(self, key_pool, group, tmp_path_factory):
        """A crash at creation time must not brick the shard."""
        path = _fresh_dir(tmp_path_factory) / "shard.log"
        path.write_bytes(b"")
        table = DurableProxyKeyTable(path, group)
        assert len(table) == 0
        table.install(key_pool[0])
        table.close()
        reloaded = DurableProxyKeyTable(path, group)
        assert len(reloaded) == 1
        reloaded.close()

    def test_torn_header_recovers_as_a_fresh_log(self, key_pool, group, tmp_path_factory):
        path = _fresh_dir(tmp_path_factory) / "shard.log"
        path.write_bytes(b'{"format": "repro-proxy-k')  # no newline: torn write
        table = DurableProxyKeyTable(path, group)
        assert table.recovered_bytes > 0
        assert len(table) == 0
        table.install(key_pool[0])
        table.close()
        reloaded = DurableProxyKeyTable(path, group)
        assert len(reloaded) == 1
        reloaded.close()


class TestLogDiscipline:
    def test_noop_revoke_writes_nothing(self, key_pool, group, tmp_path_factory):
        path = _fresh_dir(tmp_path_factory) / "shard.log"
        table = DurableProxyKeyTable(path, group)
        table.install(key_pool[0])
        records = table.log_records
        assert not table.revoke(ProxyKeyTable.index_of(key_pool[1]))
        assert table.log_records == records
        table.close()

    def test_delete_removes_the_file(self, key_pool, group, tmp_path_factory):
        path = _fresh_dir(tmp_path_factory) / "shard.log"
        table = DurableProxyKeyTable(path, group)
        table.install(key_pool[0])
        table.delete()
        assert not path.exists()
