"""Plain-text table rendering and JSON snapshots for the experiment harness.

Every bench prints its results as an aligned table (the "same rows the
paper would report"); EXPERIMENTS.md embeds the captured output.
:func:`record_bench_snapshot` additionally checks a ``BENCH_<name>.json``
document into the repo root so numeric results are diffable across PRs
(``tools/record_bench.py`` re-records them on demand).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["render_table", "print_table", "record_bench_snapshot"]

# Set (to anything non-empty) to overwrite existing BENCH_*.json files;
# tools/record_bench.py exports it around a pytest run.
RECORD_ENV = "REPRO_RECORD_BENCH"


def render_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Render an aligned monospace table with a title rule."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must match the header width")
    columns = [headers] + rows
    widths = [max(len(str(row[i])) for row in columns) for i in range(len(headers))]
    def fmt(row):
        return "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)).rstrip()
    rule = "-" * min(96, sum(widths) + 2 * (len(widths) - 1))
    lines = ["", "== %s ==" % title, fmt(headers), rule]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def print_table(title: str, headers: list[str], rows: list[list[str]]) -> None:
    """Print a table to stdout (captured by ``pytest -s`` / tee)."""
    print(render_table(title, headers, rows))


def record_bench_snapshot(name: str, document: dict, root: str | None = None) -> Path | None:
    """Write ``BENCH_<name>.json`` at the repo root; returns the path or None.

    The snapshot is written when the file does not exist yet (first
    recording) or when :data:`RECORD_ENV` is set (deliberate re-record);
    otherwise an existing snapshot is left untouched so ordinary bench
    runs never churn checked-in numbers.  The document is serialized
    deterministically (sorted keys, trailing newline) to keep diffs clean.
    """
    if root is None:
        # src/repro/bench/report.py -> repo root is four levels up.
        root = Path(__file__).resolve().parents[3]
    path = Path(root) / ("BENCH_%s.json" % name.upper())
    if path.exists() and not os.environ.get(RECORD_ENV):
        return None
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
