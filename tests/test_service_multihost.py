"""Multi-scheme hosting: one HTTP process, several isolated scheme fleets.

PR 4 made the gateway scheme-agnostic but left one fleet per process;
this suite proves the multi-fleet server end to end:

* ``GET /v1/schemes`` enumerates every hosted fleet's scheme document;
* scheme-id-prefixed routes (``/v1/{scheme}/reencrypt``, ...) dispatch
  to the right fleet, with shards, caches, metrics and durable state
  fully isolated per scheme;
* the legacy unprefixed routes keep working verbatim on a single-scheme
  server (backward compatibility, asserted against raw HTTP), while a
  multi-scheme server rejects them as ambiguous;
* :class:`RemoteGateway` negotiation pins the prefixed route family and
  refuses servers that do not host the client's scheme.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core.api import create_backend
from repro.service.driver import build_scheme_setting, drive_scheme_requests
from repro.service.gateway import (
    GrantRequest,
    ReEncryptionGateway,
    ReEncryptRequest,
)
from repro.service.persistence import scheme_state_subdir
from repro.service.wire import GatewayHttpServer, RemoteGateway, SchemeMismatchError, to_wire

HOSTED = ("tipre/v1", "afgh/v1")


def _raw(url: str, path: str, data: bytes | None = None):
    request = urllib.request.Request(
        url + path,
        data=data,
        headers={"Content-Type": "application/json"} if data is not None else {},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _small_setting(scheme_id: str, **kwargs):
    defaults = dict(
        scheme_id=scheme_id,
        group_name="TOY",
        shard_count=2,
        n_patients=2,
        n_delegatees=2,
        n_types=2,
        ciphertexts_per_pair=1,
        seed="multihost-" + scheme_id,
    )
    defaults.update(kwargs)
    return build_scheme_setting(**defaults)


def _grant_all(setting, client) -> int:
    granted = 0
    for name in setting.gateway.shard_names:
        for key in list(setting.gateway.shard_named(name).table):
            client.grant(GrantRequest(tenant="t", proxy_key=key))
            granted += 1
    return granted


@pytest.fixture()
def two_fleet_server(group):
    """A live server hosting a bare fleet per scheme in ``HOSTED``."""
    gateways = [
        ReEncryptionGateway(create_backend(scheme_id, group), shard_count=2)
        for scheme_id in HOSTED
    ]
    with GatewayHttpServer(gateways=gateways) as server:
        yield server, dict(zip(HOSTED, gateways))
    for gateway in gateways:
        gateway.close()


class TestSchemesEndpoint:
    def test_enumerates_every_hosted_fleet(self, two_fleet_server):
        server, _gateways = two_fleet_server
        status, body = _raw(server.url, "/v1/schemes")
        assert status == 200
        documents = json.loads(body)["schemes"]
        assert [doc["scheme"] for doc in documents] == list(HOSTED)
        for doc in documents:
            assert doc["group"] == "TOY"
            assert "deterministic_reencrypt" in doc["capabilities"]

    def test_client_schemes_info_sees_the_hosted_list(self, two_fleet_server, group):
        server, _gateways = two_fleet_server
        client = RemoteGateway(server.url, create_backend("afgh/v1", group))
        assert [doc["scheme"] for doc in client.schemes_info()] == list(HOSTED)

    def test_single_scheme_server_also_serves_schemes(self, group):
        gateway = ReEncryptionGateway(create_backend("bbs/v1", group), shard_count=1)
        try:
            with GatewayHttpServer(gateway) as server:
                status, body = _raw(server.url, "/v1/schemes")
                assert status == 200
                assert [d["scheme"] for d in json.loads(body)["schemes"]] == ["bbs/v1"]
        finally:
            gateway.close()


class TestPrefixedRouting:
    def test_both_fleets_serve_end_to_end_with_isolation(self, two_fleet_server):
        """The acceptance anchor: one process, two fleets, full lifecycle
        per scheme — and every grant lands only on its own fleet."""
        server, gateways = two_fleet_server
        granted = {}
        for scheme_id in HOSTED:
            setting = _small_setting(scheme_id)
            try:
                client = RemoteGateway(server.url, setting.backend)
                granted[scheme_id] = _grant_all(setting, client)
                verified = drive_scheme_requests(
                    setting,
                    8,
                    seed="multihost-" + scheme_id,
                    batch_size=2,
                    verify_every=1,
                    gateway=client,
                )
                assert verified == 8
            finally:
                setting.gateway.close()
        # Isolation: each fleet holds exactly its own scheme's keys, and
        # each fleet's metrics counted only its own traffic.
        for scheme_id in HOSTED:
            assert gateways[scheme_id].key_count() == granted[scheme_id]
            assert gateways[scheme_id].snapshot().served > 0

    def test_prefixed_scheme_and_metrics_documents(self, two_fleet_server):
        server, _gateways = two_fleet_server
        for scheme_id in HOSTED:
            status, body = _raw(server.url, "/v1/%s/scheme" % scheme_id)
            assert status == 200
            assert json.loads(body)["scheme"] == scheme_id
            status, body = _raw(server.url, "/v1/%s/metrics" % scheme_id)
            assert status == 200
            assert json.loads(body)["type"] == "metrics-snapshot"

    def test_unknown_scheme_prefix_is_404(self, two_fleet_server):
        server, _gateways = two_fleet_server
        status, body = _raw(server.url, "/v1/bogus/v9/reencrypt", b"{}")
        assert status == 404
        assert json.loads(body)["body"]["code"] == "invalid-request"

    def test_cross_scheme_envelope_rejected_on_prefixed_route(
        self, two_fleet_server, group, rng
    ):
        """An afgh grant POSTed to the tipre fleet dies in the codec."""
        server, _gateways = two_fleet_server
        afgh = create_backend("afgh/v1", group)
        afgh.setup(rng)
        afgh.create_party("D", "a", rng)
        afgh.create_party("D", "b", rng)
        key = afgh.rekey("D", "a", "D", "b", "t", rng)
        payload = to_wire(afgh, GrantRequest(tenant="t", proxy_key=key)).encode()
        status, body = _raw(server.url, "/v1/tipre/v1/grant", payload)
        assert status == 400
        assert json.loads(body)["body"]["code"] == "invalid-request"


class TestLegacyCompatibility:
    def test_single_scheme_server_keeps_unprefixed_routes(self):
        """The PR-3-era HTTP surface, byte for byte: a one-scheme server
        answers /v1/grant, /v1/reencrypt, /v1/scheme and /v1/metrics with
        no scheme prefix anywhere."""
        setting = _small_setting("tipre/v1")
        try:
            with GatewayHttpServer(setting.gateway) as server:
                status, body = _raw(server.url, "/v1/scheme")
                assert status == 200
                assert json.loads(body)["scheme"] == "tipre/v1"
                (patient, _type), entries = sorted(setting.pool.items())[0]
                ciphertext, message = entries[0]
                request = ReEncryptRequest(
                    tenant=patient,
                    ciphertext=ciphertext,
                    delegatee_domain=setting.delegatee_domain,
                    delegatee=setting.delegatees[0],
                )
                payload = to_wire(setting.backend, request).encode()
                status, body = _raw(server.url, "/v1/reencrypt", payload)
                assert status == 200
                assert json.loads(body)["type"] == "reencrypt-response"
                status, body = _raw(server.url, "/v1/metrics")
                assert status == 200
        finally:
            setting.gateway.close()

    def test_prefixed_routes_also_work_on_a_single_scheme_server(self):
        setting = _small_setting("tipre/v1")
        try:
            with GatewayHttpServer(setting.gateway) as server:
                status, body = _raw(server.url, "/v1/tipre/v1/scheme")
                assert status == 200
                assert json.loads(body)["scheme"] == "tipre/v1"
        finally:
            setting.gateway.close()

    def test_unprefixed_op_on_multischeme_server_is_ambiguous(self, two_fleet_server):
        server, _gateways = two_fleet_server
        for path, data in (("/v1/reencrypt", b"{}"), ("/v1/metrics", None), ("/v1/scheme", None)):
            status, body = _raw(server.url, path, data)
            assert status == 400, path
            envelope = json.loads(body)
            assert envelope["body"]["code"] == "invalid-request"
            for scheme_id in HOSTED:
                assert scheme_id in envelope["body"]["message"]


class TestNegotiation:
    def test_client_pins_the_prefixed_route_family(self, two_fleet_server, group):
        server, gateways = two_fleet_server
        client = RemoteGateway(server.url, create_backend("afgh/v1", group))
        info = client.scheme_info()
        assert info["scheme"] == "afgh/v1"
        assert client._prefix == "/v1/afgh/v1"
        # The pinned client's metrics are the afgh fleet's, not tipre's.
        assert client.snapshot().requests_total == gateways["afgh/v1"].snapshot().requests_total

    def test_unhosted_scheme_is_a_mismatch_naming_the_hosted(self, two_fleet_server, group):
        server, _gateways = two_fleet_server
        client = RemoteGateway(server.url, create_backend("bbs/v1", group))
        with pytest.raises(SchemeMismatchError) as excinfo:
            client.snapshot()
        for scheme_id in HOSTED:
            assert scheme_id in str(excinfo.value)


class TestServerConstruction:
    def test_duplicate_scheme_fleets_rejected(self, group):
        first = ReEncryptionGateway(create_backend("tipre/v1", group), shard_count=1)
        second = ReEncryptionGateway(create_backend("tipre/v1", group), shard_count=1)
        try:
            with pytest.raises(ValueError, match="already hosted"):
                GatewayHttpServer(gateways=[first, second])
        finally:
            first.close()
            second.close()

    def test_gateway_and_gateways_are_exclusive(self, group):
        gateway = ReEncryptionGateway(create_backend("tipre/v1", group), shard_count=1)
        try:
            with pytest.raises(ValueError, match="not both"):
                GatewayHttpServer(gateway, gateways=[gateway])
            with pytest.raises(ValueError):
                GatewayHttpServer(gateways=[])
            with pytest.raises(ValueError):
                GatewayHttpServer()
        finally:
            gateway.close()


class TestPerSchemeGroups:
    """Regression: multi-scheme hosting must not share one pairing group.

    ``serve --http --scheme A --scheme B`` used to build every fleet on
    the same ``PairingGroup.shared(base)``, silently collapsing the
    schemes' algebra onto one modulus.  Each hosted scheme now gets a
    deterministically derived group of its own.
    """

    def test_derived_groups_have_distinct_moduli(self):
        from repro.pairing.group import PairingGroup

        base = PairingGroup.shared("TOY")
        tipre = PairingGroup.for_scheme("TOY", "tipre/v1")
        afgh = PairingGroup.for_scheme("TOY", "afgh/v1")
        moduli = {base.params.p, tipre.params.p, afgh.params.p}
        assert len(moduli) == 3, "per-scheme groups must not share a modulus"
        orders = {base.params.q, tipre.params.q, afgh.params.q}
        assert len(orders) == 3
        # Same security level as the base, and stable across calls.
        assert tipre.params.q.bit_length() == base.params.q.bit_length()
        assert PairingGroup.for_scheme("TOY", "tipre/v1") is tipre
        assert tipre.params.name == "TOY:tipre/v1"

    def test_schemes_endpoint_reports_the_derived_groups(self):
        from repro.pairing.group import PairingGroup
        from repro.service.driver import resolve_remote_group

        gateways = [
            ReEncryptionGateway(
                create_backend(scheme_id, PairingGroup.for_scheme("TOY", scheme_id)),
                shard_count=1,
            )
            for scheme_id in HOSTED
        ]
        try:
            with GatewayHttpServer(gateways=gateways) as server:
                status, body = _raw(server.url, "/v1/schemes")
                assert status == 200
                by_scheme = {
                    doc["scheme"]: doc["group"]
                    for doc in json.loads(body)["schemes"]
                }
                assert by_scheme == {
                    scheme_id: "TOY:" + scheme_id for scheme_id in HOSTED
                }
                # Clients discover the right group and negotiate cleanly.
                for scheme_id in HOSTED:
                    resolved = resolve_remote_group(server.url, scheme_id, "TOY")
                    assert resolved is PairingGroup.for_scheme("TOY", scheme_id)
                    client = RemoteGateway(
                        server.url, create_backend(scheme_id, resolved)
                    )
                    assert client.scheme_info()["scheme"] == scheme_id
                    client.close()
                # A client on the shared base group is refused up front.
                mismatched = RemoteGateway(
                    server.url,
                    create_backend("tipre/v1", PairingGroup.shared("TOY")),
                )
                with pytest.raises(SchemeMismatchError, match="on TOY"):
                    mismatched.snapshot()
        finally:
            for gateway in gateways:
                gateway.close()


class TestPerSchemeDurableState:
    def test_scheme_state_subdir_is_filesystem_safe(self, tmp_path):
        path = scheme_state_subdir(tmp_path, "green-ateniese/v1")
        assert path == tmp_path / "green-ateniese-v1"

    def test_fleets_persist_and_restart_in_isolated_subdirs(self, tmp_path, group):
        """Grants over the wire land in per-scheme durable logs; fresh
        fleets on the same subdirs recover exactly their own keys."""
        settings = {scheme_id: _small_setting(scheme_id) for scheme_id in HOSTED}
        gateways = [
            ReEncryptionGateway(
                create_backend(scheme_id, group),
                shard_count=2,
                state_dir=scheme_state_subdir(tmp_path, scheme_id),
            )
            for scheme_id in HOSTED
        ]
        granted = {}
        try:
            with GatewayHttpServer(gateways=gateways) as server:
                for scheme_id in HOSTED:
                    client = RemoteGateway(server.url, settings[scheme_id].backend)
                    granted[scheme_id] = _grant_all(settings[scheme_id], client)
        finally:
            for gateway in gateways:
                gateway.close()
        assert sorted(p.name for p in tmp_path.iterdir()) == sorted(
            scheme_id.replace("/", "-") for scheme_id in HOSTED
        )

        # Restart: each scheme's fresh fleet sees exactly its own keys and
        # still serves a working transformation.
        try:
            for scheme_id in HOSTED:
                setting = settings[scheme_id]
                reborn = ReEncryptionGateway(
                    create_backend(scheme_id, group),
                    shard_count=2,
                    state_dir=scheme_state_subdir(tmp_path, scheme_id),
                )
                try:
                    assert reborn.key_count() == granted[scheme_id]
                    (patient, _type), entries = sorted(setting.pool.items())[0]
                    ciphertext, message = entries[0]
                    response = reborn.reencrypt(
                        ReEncryptRequest(
                            tenant=patient,
                            ciphertext=ciphertext,
                            delegatee_domain=setting.delegatee_domain,
                            delegatee=setting.delegatees[0],
                        )
                    )
                    recovered = setting.backend.decrypt_reencrypted(
                        response.ciphertext, setting.delegatee_domain, setting.delegatees[0]
                    )
                    assert recovered == message
                finally:
                    reborn.close()
        finally:
            for setting in settings.values():
                setting.gateway.close()
