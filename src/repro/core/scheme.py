"""The paper's contribution: a type-and-identity-based proxy re-encryption.

Section 4.1, implemented verbatim over the multiplicative Boneh--Franklin
variant.  The delegator (identity ``id_i``, domain KGC1) categorises his
messages with free-form type labels; the delegatee (identity ``id_j``) may
live under a different KGC (KGC2) that shares only the pairing group.

Algorithm map (paper -> here):

===================  =====================================================
``Encrypt1``         :meth:`TypeAndIdentityPre.encrypt`
``Decrypt1``         :meth:`TypeAndIdentityPre.decrypt`
``Pextract``         :meth:`TypeAndIdentityPre.pextract`
``Preenc``           :meth:`TypeAndIdentityPre.preenc`
(delegatee decrypt)  :meth:`TypeAndIdentityPre.decrypt_reencrypted`
===================  =====================================================

``Setup1/Extract1/Setup2/Extract2`` are the Boneh--Franklin algorithms of
:class:`~repro.ibe.boneh_franklin.BonehFranklinIbe`; use
:class:`~repro.ibe.kgc.KgcRegistry` to stand up the two domains.

Key design facts the implementation preserves:

* Only the delegator can produce type-``t`` ciphertexts under his own
  identity, because the per-type exponent ``H2(sk_id || t)`` requires his
  private key.  :meth:`encrypt` therefore takes the *private key*, not the
  identity.
* A proxy key transforms exactly the ciphertexts whose type it names —
  applying it to a different type yields garbage (and :meth:`preenc`
  refuses up front unless ``unchecked=True``, which the security tests use
  to demonstrate the isolation property rather than rely on it).
* The blinding element ``X`` is fresh per proxy key and reaches the
  delegatee only under ``Encrypt2``, so the proxy learns nothing.
"""

from __future__ import annotations

from repro.core.ciphertexts import ProxyKey, ReEncryptedCiphertext, TypedCiphertext
from repro.ibe.boneh_franklin import BonehFranklinIbe
from repro.ibe.keys import IbeParams, IbePrivateKey
from repro.math.drbg import RandomSource, system_random
from repro.math.fields import Fp2Element
from repro.pairing.group import PairingGroup

__all__ = ["TypeAndIdentityPre", "TypeMismatchError", "DelegationError"]


class TypeMismatchError(ValueError):
    """Raised when a proxy key is applied to a ciphertext of another type."""


class DelegationError(ValueError):
    """Raised when re-encryption metadata is inconsistent (wrong party/domain)."""


class TypeAndIdentityPre:
    """The type-and-identity-based PRE scheme over a symmetric pairing group."""

    def __init__(self, group: PairingGroup):
        self.group = group

    # ----------------------------------------------------------- H2 and H1

    def type_exponent(self, private_key: IbePrivateKey, type_label: str) -> int:
        """The per-type secret exponent ``H2(sk_id || t)`` of the paper."""
        material = (
            b"tipre-type-exp|"
            + self.group.serialize_g1(private_key.point)
            + b"|"
            + type_label.encode("utf-8")
        )
        return self.group.hash_to_scalar(material)

    def _blind_point(self, blind: Fp2Element):
        """``H1(X)``: hash the GT blinding element onto G1."""
        return self.group.hash_to_g1(b"tipre-blind|" + self.group.serialize_gt(blind))

    # ------------------------------------------------------------- Encrypt1

    def encrypt(
        self,
        delegator_params: IbeParams,
        delegator_key: IbePrivateKey,
        message: Fp2Element,
        type_label: str,
        rng: RandomSource | None = None,
    ) -> TypedCiphertext:
        """``Encrypt1(m, t, id)``: only the delegator himself can run this.

        Produces ``(g^r, m * e(pk_id, pk)^(r * H2(sk_id||t)), t)``.
        """
        if delegator_params.domain != delegator_key.domain:
            raise DelegationError("params and key come from different KGC domains")
        rng = rng or system_random()
        ibe = BonehFranklinIbe(self.group, delegator_key.domain)
        pk_id = ibe.public_key_of(delegator_key.identity)
        r = self.group.random_scalar(rng)
        exponent = r * self.type_exponent(delegator_key, type_label) % self.group.order
        c1 = self.group.g1_mul(self.group.generator, r)
        mask = self.group.gt_exp(
            self.group.pair(pk_id, delegator_params.public_key), exponent
        )
        return TypedCiphertext(
            domain=delegator_key.domain,
            identity=delegator_key.identity,
            c1=c1,
            c2=self.group.gt_mul(message, mask),
            type_label=type_label,
        )

    # ------------------------------------------------------------- Decrypt1

    def decrypt(self, ciphertext: TypedCiphertext, delegator_key: IbePrivateKey) -> Fp2Element:
        """``Decrypt1``: ``m = c2 / e(sk_id, c1)^H2(sk_id||c3)``."""
        if ciphertext.domain != delegator_key.domain or ciphertext.identity != delegator_key.identity:
            raise DelegationError("ciphertext was not produced for this key")
        exponent = self.type_exponent(delegator_key, ciphertext.type_label)
        mask = self.group.gt_exp(
            self.group.pair(delegator_key.point, ciphertext.c1), exponent
        )
        return self.group.gt_div(ciphertext.c2, mask)

    # ------------------------------------------------------------- Pextract

    def pextract(
        self,
        delegator_key: IbePrivateKey,
        delegatee_identity: str,
        type_label: str,
        delegatee_params: IbeParams,
        rng: RandomSource | None = None,
    ) -> ProxyKey:
        """``Pextract(id_i, id_j, t, sk_i)``: delegator-generated proxy key.

        Non-interactive: neither the delegatee nor KGC2 participates; the
        delegator only needs KGC2's *public* parameters.
        """
        rng = rng or system_random()
        blind = self.group.random_gt(rng)
        exponent = self.type_exponent(delegator_key, type_label)
        rk_point = self.group.g1_add(
            self.group.g1_mul(delegator_key.point, -exponent % self.group.order),
            self._blind_point(blind),
        )
        delegatee_ibe = BonehFranklinIbe(self.group, delegatee_params.domain)
        encrypted_blind = delegatee_ibe.encrypt(delegatee_params, blind, delegatee_identity, rng)
        return ProxyKey(
            delegator_domain=delegator_key.domain,
            delegator=delegator_key.identity,
            delegatee_domain=delegatee_params.domain,
            delegatee=delegatee_identity,
            type_label=type_label,
            rk_point=rk_point,
            encrypted_blind=encrypted_blind,
        )

    # --------------------------------------------------------------- Preenc

    def preenc(
        self,
        ciphertext: TypedCiphertext,
        proxy_key: ProxyKey,
        unchecked: bool = False,
    ) -> ReEncryptedCiphertext:
        """``Preenc``: transform a type-``t`` ciphertext for the delegatee.

        ``c_j2 = c_i2 * e(c_i1, rk)`` cancels the delegator's mask and
        replaces it with the blinding mask ``e(g^r, H1(X))``.

        With ``unchecked=True`` the metadata guard is skipped so that the
        security experiments can demonstrate (rather than assume) that a
        mismatched transformation yields garbage.
        """
        if not unchecked and not proxy_key.matches(ciphertext):
            if proxy_key.type_label != ciphertext.type_label:
                raise TypeMismatchError(
                    "proxy key is for type %r, ciphertext has type %r"
                    % (proxy_key.type_label, ciphertext.type_label)
                )
            raise DelegationError("proxy key does not match the ciphertext's delegator")
        c2 = self.group.gt_mul(ciphertext.c2, self.group.pair(ciphertext.c1, proxy_key.rk_point))
        return ReEncryptedCiphertext(
            delegator_domain=proxy_key.delegator_domain,
            delegator=proxy_key.delegator,
            delegatee_domain=proxy_key.delegatee_domain,
            delegatee=proxy_key.delegatee,
            type_label=ciphertext.type_label,
            c1=ciphertext.c1,
            c2=c2,
            encrypted_blind=proxy_key.encrypted_blind,
        )

    def preenc_batch(
        self,
        ciphertexts: list[TypedCiphertext],
        proxy_key: ProxyKey,
        unchecked: bool = False,
    ) -> list[ReEncryptedCiphertext]:
        """``Preenc`` over many ciphertexts sharing ONE proxy key.

        Every ciphertext in a delegation group pairs against the same
        ``rk`` point, so the Miller-loop precomputation for ``rk`` is paid
        once and the final exponentiations share a batch inversion
        (:meth:`PairingGroup.pair_batch`).  Results are bit-identical to
        calling :meth:`preenc` per item — the pairing is symmetric, so
        ``e(c1, rk) == e(rk, c1)`` exactly.
        """
        if not unchecked:
            for ciphertext in ciphertexts:
                if proxy_key.matches(ciphertext):
                    continue
                if proxy_key.type_label != ciphertext.type_label:
                    raise TypeMismatchError(
                        "proxy key is for type %r, ciphertext has type %r"
                        % (proxy_key.type_label, ciphertext.type_label)
                    )
                raise DelegationError("proxy key does not match the ciphertext's delegator")
        masks = self.group.pair_batch(proxy_key.rk_point, [c.c1 for c in ciphertexts])
        return [
            ReEncryptedCiphertext(
                delegator_domain=proxy_key.delegator_domain,
                delegator=proxy_key.delegator,
                delegatee_domain=proxy_key.delegatee_domain,
                delegatee=proxy_key.delegatee,
                type_label=ciphertext.type_label,
                c1=ciphertext.c1,
                c2=self.group.gt_mul(ciphertext.c2, mask),
                encrypted_blind=proxy_key.encrypted_blind,
            )
            for ciphertext, mask in zip(ciphertexts, masks)
        ]

    # ------------------------------------------------- delegatee decryption

    def decrypt_reencrypted(
        self, ciphertext: ReEncryptedCiphertext, delegatee_key: IbePrivateKey
    ) -> Fp2Element:
        """Recover ``m = c_j2 / e(c_j1, H1(Decrypt2(c_j3, sk_j)))``."""
        if (
            ciphertext.delegatee_domain != delegatee_key.domain
            or ciphertext.delegatee != delegatee_key.identity
        ):
            raise DelegationError("re-encrypted ciphertext was not produced for this key")
        delegatee_ibe = BonehFranklinIbe(self.group, delegatee_key.domain)
        blind = delegatee_ibe.decrypt(ciphertext.encrypted_blind, delegatee_key)
        mask = self.group.pair(ciphertext.c1, self._blind_point(blind))
        return self.group.gt_div(ciphertext.c2, mask)

    # --------------------------------------------------------------- sizing

    def ciphertext_size(self) -> int:
        """Serialized size in bytes of a :class:`TypedCiphertext` (payload only)."""
        return self.group.g1_element_size() + self.group.gt_element_size()

    def reencrypted_size(self) -> int:
        """Serialized size in bytes of a :class:`ReEncryptedCiphertext`."""
        # c1, c2 plus the embedded IBE ciphertext (c1', c2') for the blind.
        return (
            self.group.g1_element_size()
            + self.group.gt_element_size()
            + self.group.g1_element_size()
            + self.group.gt_element_size()
        )

    def proxy_key_size(self) -> int:
        """Serialized size in bytes of a :class:`ProxyKey`."""
        return (
            self.group.g1_element_size()
            + self.group.g1_element_size()
            + self.group.gt_element_size()
        )
