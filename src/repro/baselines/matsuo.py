"""A Matsuo-style IBE-to-IBE proxy re-encryption over BB1.

Matsuo (Pairing 2007) gave a proxy re-encryption system for IBE where both
delegator and delegatee are registered at the **same KGC** and the scheme
is built on Boneh--Boyen (BB1) rather than Boneh--Franklin.

**Reconstruction note** (recorded per DESIGN.md's substitution rule): the
original paper's exact re-encryption key algebra is not reproduced here;
we implement a faithful-in-spirit construction with the same interface,
substrate (BB1), trust model (same KGC, non-interactive, unidirectional)
and asymptotics: the delegator blinds his BB1 key with ``H(X)`` and ships
``X`` to the delegatee under BB1, mirroring the Green--Ateniese trick.

    rk_{1->2} = ( d0 * H(X),  d1,  BB1.Encrypt(X, id2) )
    ReEnc(A, B, C):  A' = A * e(C, d1) / e(B, d0 * H(X))  =  m / e(B, H(X))
    delegatee:       m  = A' * e(B, H(Decrypt(rk3, d_id2)))

Like Green--Ateniese — and unlike the paper's scheme — the proxy key
covers *all* of the delegator's ciphertexts (no type granularity).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.bb1 import Bb1Ciphertext, Bb1Ibe, Bb1Params, Bb1PrivateKey
from repro.ec.curve import Point
from repro.math.drbg import RandomSource, system_random
from repro.math.fields import Fp2Element
from repro.pairing.group import PairingGroup

__all__ = ["MatsuoStylePre", "MatsuoProxyKey", "MatsuoReEncrypted"]


@dataclass(frozen=True)
class MatsuoProxyKey:
    """``(d0 * H(X), d1, BB1.Encrypt(X, id2))``."""

    delegator: str
    delegatee: str
    rk0: Point
    rk1: Point
    encrypted_blind: Bb1Ciphertext


@dataclass(frozen=True)
class MatsuoReEncrypted:
    """``(A', B, encrypted_blind)``."""

    delegatee: str
    a: Fp2Element
    b: Point
    encrypted_blind: Bb1Ciphertext


class MatsuoStylePre:
    """Same-KGC IBE-to-IBE proxy re-encryption on the BB1 substrate."""

    def __init__(self, group: PairingGroup, ibe: Bb1Ibe | None = None):
        self.group = group
        self.ibe = ibe or Bb1Ibe(group)

    def _blind_point(self, blind: Fp2Element) -> Point:
        return self.group.hash_to_g1(b"matsuo-blind|" + self.group.serialize_gt(blind))

    def encrypt(
        self,
        params: Bb1Params,
        message: Fp2Element,
        identity: str,
        rng: RandomSource | None = None,
    ) -> Bb1Ciphertext:
        return self.ibe.encrypt(params, message, identity, rng)

    def decrypt(self, ciphertext: Bb1Ciphertext, key: Bb1PrivateKey) -> Fp2Element:
        return self.ibe.decrypt(ciphertext, key)

    def rkgen(
        self,
        params: Bb1Params,
        delegator_key: Bb1PrivateKey,
        delegatee_identity: str,
        rng: RandomSource | None = None,
    ) -> MatsuoProxyKey:
        """Delegator-side re-encryption key generation (same KGC)."""
        rng = rng or system_random()
        blind = self.group.random_gt(rng)
        rk0 = self.group.g1_add(delegator_key.d0, self._blind_point(blind))
        encrypted_blind = self.ibe.encrypt(params, blind, delegatee_identity, rng)
        return MatsuoProxyKey(
            delegator=delegator_key.identity,
            delegatee=delegatee_identity,
            rk0=rk0,
            rk1=delegator_key.d1,
            encrypted_blind=encrypted_blind,
        )

    def reencrypt(self, ciphertext: Bb1Ciphertext, key: MatsuoProxyKey) -> MatsuoReEncrypted:
        """``A' = A * e(C, d1) / e(B, d0 * H(X)) = m / e(B, H(X))``."""
        if ciphertext.identity != key.delegator:
            raise ValueError("proxy key does not match the ciphertext's delegator")
        numerator = self.group.gt_mul(ciphertext.a, self.group.pair(ciphertext.c, key.rk1))
        a_prime = self.group.gt_div(numerator, self.group.pair(ciphertext.b, key.rk0))
        return MatsuoReEncrypted(
            delegatee=key.delegatee, a=a_prime, b=ciphertext.b, encrypted_blind=key.encrypted_blind
        )

    def decrypt_reencrypted(
        self, ciphertext: MatsuoReEncrypted, delegatee_key: Bb1PrivateKey
    ) -> Fp2Element:
        if ciphertext.delegatee != delegatee_key.identity:
            raise ValueError("re-encrypted ciphertext was not produced for this key")
        blind = self.ibe.decrypt(ciphertext.encrypted_blind, delegatee_key)
        return self.group.gt_mul(
            ciphertext.a, self.group.pair(ciphertext.b, self._blind_point(blind))
        )
