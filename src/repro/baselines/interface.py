"""A uniform adapter interface over every PRE scheme for the E2/E4 benches.

Each adapter wires one scheme to the same five-step lifecycle —

    setup -> encrypt -> rekey -> reencrypt -> decrypt (both sides)

— and declares the scheme's property matrix (experiment E4, following the
property taxonomy of Ateniese et al. that the paper cites).  Benchmarks
iterate ``all_adapters(group)`` so adding a scheme automatically adds a
row to every comparison table.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.baselines.afgh import AfghScheme
from repro.baselines.bbs import BbsProxyScheme
from repro.baselines.bb1 import Bb1Ibe
from repro.baselines.dodis_ivan import DodisIvanScheme
from repro.baselines.green_ateniese import GreenAtenieseIbp1
from repro.baselines.matsuo import MatsuoStylePre
from repro.core.scheme import TypeAndIdentityPre
from repro.ibe.kgc import KgcRegistry
from repro.math.drbg import RandomSource
from repro.pairing.group import PairingGroup

__all__ = ["PreAdapter", "all_adapters", "PROPERTY_NAMES"]

PROPERTY_NAMES = (
    "unidirectional",
    "non_interactive",
    "collusion_safe",
    "identity_based",
    "type_granular",
)


class PreAdapter(ABC):
    """One scheme, normalised to a shared lifecycle for benchmarking."""

    name: str = "abstract"
    properties: dict[str, bool] = {}

    def __init__(self, group: PairingGroup):
        self.group = group

    @abstractmethod
    def setup(self, rng: RandomSource) -> None:
        """Generate all global parameters and party keys."""

    @abstractmethod
    def sample_message(self, rng: RandomSource) -> Any:
        """A uniform plaintext from this scheme's message space."""

    @abstractmethod
    def encrypt(self, message: Any, rng: RandomSource) -> Any:
        """Encrypt for the delegator."""

    @abstractmethod
    def rekey(self, rng: RandomSource) -> Any:
        """Produce the delegator->delegatee re-encryption key."""

    @abstractmethod
    def reencrypt(self, ciphertext: Any, rk: Any) -> Any:
        """Proxy transformation."""

    @abstractmethod
    def decrypt_original(self, ciphertext: Any) -> Any:
        """Delegator-side decryption."""

    @abstractmethod
    def decrypt_reencrypted(self, ciphertext: Any) -> Any:
        """Delegatee-side decryption."""

    def ciphertext_components(self, ciphertext: Any) -> int:
        """Number of group-element components (for the size table)."""
        return 2


class TipreAdapter(PreAdapter):
    """The paper's scheme (fixed type label for the shared lifecycle)."""

    name = "type-and-identity (this paper)"
    properties = {
        "unidirectional": True,
        "non_interactive": True,
        "collusion_safe": True,
        "identity_based": True,
        "type_granular": True,
    }

    TYPE = "benchmark-type"

    def setup(self, rng: RandomSource) -> None:
        self.scheme = TypeAndIdentityPre(self.group)
        registry = KgcRegistry(self.group, rng)
        self.kgc1 = registry.create("KGC1")
        self.kgc2 = registry.create("KGC2")
        self.delegator_key = self.kgc1.extract("delegator")
        self.delegatee_key = self.kgc2.extract("delegatee")

    def sample_message(self, rng: RandomSource):
        return self.group.random_gt(rng)

    def encrypt(self, message, rng: RandomSource):
        return self.scheme.encrypt(self.kgc1.params, self.delegator_key, message, self.TYPE, rng)

    def rekey(self, rng: RandomSource):
        return self.scheme.pextract(
            self.delegator_key, "delegatee", self.TYPE, self.kgc2.params, rng
        )

    def reencrypt(self, ciphertext, rk):
        return self.scheme.preenc(ciphertext, rk)

    def decrypt_original(self, ciphertext):
        return self.scheme.decrypt(ciphertext, self.delegator_key)

    def decrypt_reencrypted(self, ciphertext):
        return self.scheme.decrypt_reencrypted(ciphertext, self.delegatee_key)

    def ciphertext_components(self, ciphertext) -> int:
        return 2  # c1 in G1, c2 in GT (c3 is a label, not a group element)


class GreenAtenieseAdapter(PreAdapter):
    """Green--Ateniese IBP1 (closest prior work)."""

    name = "Green-Ateniese IBP1"
    properties = {
        "unidirectional": True,
        "non_interactive": True,
        "collusion_safe": True,
        "identity_based": True,
        "type_granular": False,
    }

    def setup(self, rng: RandomSource) -> None:
        self.scheme = GreenAtenieseIbp1(self.group)
        registry = KgcRegistry(self.group, rng)
        self.kgc1 = registry.create("KGC1")
        self.kgc2 = registry.create("KGC2")
        self.delegator_key = self.kgc1.extract("delegator")
        self.delegatee_key = self.kgc2.extract("delegatee")

    def sample_message(self, rng: RandomSource):
        return self.group.random_gt(rng)

    def encrypt(self, message, rng: RandomSource):
        return self.scheme.encrypt(self.kgc1.params, message, "delegator", rng)

    def rekey(self, rng: RandomSource):
        return self.scheme.rkgen(self.delegator_key, "delegatee", self.kgc2.params, rng)

    def reencrypt(self, ciphertext, rk):
        return self.scheme.reencrypt(ciphertext, rk)

    def decrypt_original(self, ciphertext):
        return self.scheme.decrypt(ciphertext, self.delegator_key)

    def decrypt_reencrypted(self, ciphertext):
        return self.scheme.decrypt_reencrypted(ciphertext, self.delegatee_key)


class AfghAdapter(PreAdapter):
    """Ateniese--Fu--Green--Hohenberger (second-level encryption path)."""

    name = "AFGH (TISSEC'06)"
    properties = {
        "unidirectional": True,
        "non_interactive": True,
        "collusion_safe": True,
        "identity_based": False,
        "type_granular": False,
    }

    def setup(self, rng: RandomSource) -> None:
        self.scheme = AfghScheme(self.group)
        self.delegator = self.scheme.keygen(rng)
        self.delegatee = self.scheme.keygen(rng)

    def sample_message(self, rng: RandomSource):
        return self.group.random_gt(rng)

    def encrypt(self, message, rng: RandomSource):
        return self.scheme.encrypt_second("delegator", self.delegator.public, message, rng)

    def rekey(self, rng: RandomSource):
        return self.scheme.rekey(self.delegator.secret, self.delegatee.public)

    def reencrypt(self, ciphertext, rk):
        return self.scheme.reencrypt(ciphertext, rk, "delegatee")

    def decrypt_original(self, ciphertext):
        return self.scheme.decrypt_second(ciphertext, self.delegator.secret)

    def decrypt_reencrypted(self, ciphertext):
        return self.scheme.decrypt_first(ciphertext, self.delegatee.secret)


class BbsAdapter(PreAdapter):
    """Blaze--Bleumer--Strauss atomic proxy (bidirectional ElGamal)."""

    name = "BBS (EUROCRYPT'98)"
    properties = {
        "unidirectional": False,
        "non_interactive": False,
        "collusion_safe": False,
        "identity_based": False,
        "type_granular": False,
    }

    def setup(self, rng: RandomSource) -> None:
        self.scheme = BbsProxyScheme(self.group)
        self.delegator = self.scheme.keygen(rng)
        self.delegatee = self.scheme.keygen(rng)

    def sample_message(self, rng: RandomSource):
        return self.group.random_g1(rng)

    def encrypt(self, message, rng: RandomSource):
        return self.scheme.encrypt("delegator", self.delegator.public, message, rng)

    def rekey(self, rng: RandomSource):
        return self.scheme.rekey(self.delegator.secret, self.delegatee.secret)

    def reencrypt(self, ciphertext, rk):
        return self.scheme.reencrypt(ciphertext, rk, "delegatee")

    def decrypt_original(self, ciphertext):
        return self.scheme.decrypt(ciphertext, self.delegator.secret)

    def decrypt_reencrypted(self, ciphertext):
        return self.scheme.decrypt(ciphertext, self.delegatee.secret)


class DodisIvanAdapter(PreAdapter):
    """Dodis--Ivan secret splitting (proxy partially decrypts)."""

    name = "Dodis-Ivan (NDSS'03)"
    properties = {
        "unidirectional": True,
        "non_interactive": True,
        "collusion_safe": False,
        "identity_based": False,
        "type_granular": False,
    }

    def setup(self, rng: RandomSource) -> None:
        self.scheme = DodisIvanScheme(self.group)
        self.delegator = self.scheme.keygen(rng)

    def sample_message(self, rng: RandomSource):
        return self.group.random_g1(rng)

    def encrypt(self, message, rng: RandomSource):
        return self.scheme.encrypt(self.delegator.public, message, rng)

    def rekey(self, rng: RandomSource):
        self.shares = self.scheme.split(self.delegator.secret, rng)
        return self.shares

    def reencrypt(self, ciphertext, rk):
        return self.scheme.proxy_transform(ciphertext, rk.proxy_share)

    def decrypt_original(self, ciphertext):
        return self.scheme.decrypt(ciphertext, self.delegator.secret)

    def decrypt_reencrypted(self, ciphertext):
        return self.scheme.delegatee_decrypt(ciphertext, self.shares.delegatee_share)


class MatsuoAdapter(PreAdapter):
    """Matsuo-style BB1 IBE-to-IBE PRE (same-KGC reconstruction)."""

    name = "Matsuo-style (BB1)"
    properties = {
        "unidirectional": True,
        "non_interactive": True,
        "collusion_safe": True,
        "identity_based": True,
        "type_granular": False,
    }

    def setup(self, rng: RandomSource) -> None:
        ibe = Bb1Ibe(self.group)
        self.scheme = MatsuoStylePre(self.group, ibe)
        self.params, master = ibe.setup(rng)
        self.delegator_key = ibe.extract(self.params, master, "delegator", rng)
        self.delegatee_key = ibe.extract(self.params, master, "delegatee", rng)

    def sample_message(self, rng: RandomSource):
        return self.group.random_gt(rng)

    def encrypt(self, message, rng: RandomSource):
        return self.scheme.encrypt(self.params, message, "delegator", rng)

    def rekey(self, rng: RandomSource):
        return self.scheme.rkgen(self.params, self.delegator_key, "delegatee", rng)

    def reencrypt(self, ciphertext, rk):
        return self.scheme.reencrypt(ciphertext, rk)

    def decrypt_original(self, ciphertext):
        return self.scheme.decrypt(ciphertext, self.delegator_key)

    def decrypt_reencrypted(self, ciphertext):
        return self.scheme.decrypt_reencrypted(ciphertext, self.delegatee_key)

    def ciphertext_components(self, ciphertext) -> int:
        return 3


def all_adapters(group: PairingGroup) -> list[PreAdapter]:
    """Every scheme adapter, the paper's scheme first."""
    return [
        TipreAdapter(group),
        GreenAtenieseAdapter(group),
        AfghAdapter(group),
        BbsAdapter(group),
        DodisIvanAdapter(group),
        MatsuoAdapter(group),
    ]
