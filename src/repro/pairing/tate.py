"""The reduced Tate pairing on type-A supersingular curves.

For ``P, Q`` in the order-``q`` subgroup G1 of ``E(F_p): y^2 = x^3 + x``,
the symmetric pairing is

    e(P, Q) = f_{q,P}(phi(Q)) ^ ((p^2 - 1) / q)

where ``phi(x, y) = (-x, i*y)`` is the distortion map and ``f_{q,P}`` is the
Miller function.  Two classic optimisations apply on this curve:

* **Denominator elimination** — vertical-line values lie in F_p, and every
  element of F_p^* is annihilated by the final exponentiation because
  ``(p^2 - 1)/q = (p - 1) * ((p + 1)/q)``; the Miller loop therefore keeps
  only the tangent/secant line numerators.
* **Frobenius-assisted final exponentiation** — ``f^(p-1)`` is computed as
  ``conj(f) / f`` (one conjugation + one inversion) before the remaining
  ``(p+1)/q`` power.

The Miller loop walks base-field points (all slopes are in F_p) and only the
line *values* live in F_{p^2}, which keeps the loop fast in pure Python.
"""

from __future__ import annotations

from repro.bench.counters import record_operation
from repro.ec.curve import Point
from repro.ec.supersingular import SupersingularCurve
from repro.math.fields import Fp2Element
from repro.math.ntheory import modinv

__all__ = ["tate_pairing", "miller_loop", "multi_tate_pairing"]


def _line_value(params: SupersingularCurve, t: Point, s: Point, xq: int, yq: int) -> Fp2Element | None:
    """Evaluate the line through ``t`` and ``s`` at the distorted point.

    ``(xq, yq)`` are the base-field coordinates of Q; the evaluation point is
    ``phi(Q) = (-xq, i*yq)``.  Returns ``None`` when the line is vertical
    (its value lies in F_p and is killed by the final exponentiation).
    """
    p = params.p
    xt, yt = int(t.x), int(t.y)
    if t == s:
        if yt == 0:
            return None  # vertical tangent at a 2-torsion point
        slope = (3 * xt * xt + 1) * modinv(2 * yt, p) % p
    else:
        xs, ys = int(s.x), int(s.y)
        if xt == xs:
            return None  # vertical secant (s == -t)
        slope = (ys - yt) * modinv((xs - xt) % p, p) % p
    # l(phi(Q)) = y_phi - yt - slope * (x_phi - xt) with x_phi = -xq in F_p
    # and y_phi = yq * i, so the value is (-yt - slope*(-xq - xt)) + yq*i.
    real = (-yt - slope * ((-xq - xt) % p)) % p
    return Fp2Element(params.ext_field, real, yq)


def miller_loop(params: SupersingularCurve, point: Point, xq: int, yq: int) -> Fp2Element:
    """Compute the Miller function value ``f_{q,P}(phi(Q))`` (no final exp)."""
    ext = params.ext_field
    f = ext.one()
    t = point
    bits = bin(params.q)[3:]  # skip the leading 1: standard left-to-right loop
    for bit in bits:
        line = _line_value(params, t, t, xq, yq)
        f = f.square() if line is None else f.square() * line
        t = t.double()
        if bit == "1":
            line = _line_value(params, t, point, xq, yq)
            if line is not None:
                f = f * line
            t = t + point
    if not t.is_infinity():
        raise ArithmeticError("Miller loop did not terminate at infinity; P not of order q")
    return f


def tate_pairing(params: SupersingularCurve, p_point: Point, q_point: Point) -> Fp2Element:
    """The symmetric reduced Tate pairing ``e(P, Q)`` with values in GT.

    Both inputs must lie in the order-``q`` subgroup of ``E(F_p)``.  Returns
    the GT identity when either input is the point at infinity.
    """
    record_operation("pairing")
    if p_point.is_infinity() or q_point.is_infinity():
        return params.gt_identity()
    if p_point.curve != params.curve or q_point.curve != params.curve:
        raise ValueError("pairing inputs must be base-curve points")
    f = miller_loop(params, p_point, int(q_point.x), int(q_point.y))
    return _final_exponentiation(params, f)


def _final_exponentiation(params: SupersingularCurve, f: Fp2Element) -> Fp2Element:
    """``f^((p^2-1)/q)``: Frobenius for the (p-1) part, then the cofactor."""
    f = f.conjugate() * f.inverse()
    return f ** ((params.p + 1) // params.q)


def multi_tate_pairing(
    params: SupersingularCurve, pairs: list[tuple[Point, Point]]
) -> Fp2Element:
    """The product of pairings ``prod_i e(P_i, Q_i)`` with one final exponentiation.

    Classic optimisation for verification equations of the form
    ``e(A, B) * e(C, D) = ...``: the Miller values are multiplied *before*
    the (expensive) final exponentiation, which is then paid once instead
    of once per pair.  Identity inputs contribute a factor 1.  Recorded as
    a single ``pairing`` plus one ``pairing_extra`` per additional pair so
    the E1/E8 cost accounting stays honest.
    """
    live = [
        (p, q)
        for p, q in pairs
        if not p.is_infinity() and not q.is_infinity()
    ]
    if not live:
        return params.gt_identity()
    record_operation("pairing")
    if len(live) > 1:
        record_operation("pairing_extra", len(live) - 1)
    product = params.ext_field.one()
    for p_point, q_point in live:
        if p_point.curve != params.curve or q_point.curve != params.curve:
            raise ValueError("pairing inputs must be base-curve points")
        product = product * miller_loop(params, p_point, int(q_point.x), int(q_point.y))
    return _final_exponentiation(params, product)
