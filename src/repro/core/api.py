"""The scheme-agnostic backend API: one lifecycle, many PRE schemes.

The paper positions its construction inside a family of proxy
re-encryption schemes (AFGH, BBS, Green--Ateniese, Matsuo-style, ...).
Everything above :mod:`repro.core` — the gateway, the shard pool, the
durable key table, the wire protocol, the CLI — used to be hard-wired to
:class:`~repro.core.scheme.TypeAndIdentityPre`.  This module promotes the
uniform five-step lifecycle the benchmarks already used,

    setup -> encrypt -> rekey -> reencrypt -> decrypt (both sides)

into a first-class backend protocol the *service stack* is built
against, so one production gateway serves any registered scheme:

* :class:`PreBackend` — the abstract lifecycle plus serialization hooks
  for the three envelope kinds a gateway moves around (ciphertext,
  proxy key, re-encrypted ciphertext);
* :class:`SchemeCapabilities` — the property flag set of the Ateniese
  et al. taxonomy (experiment E4) extended with the *operational* flag
  ``deterministic_reencrypt`` that gates result-cache admission;
* :class:`WrappedCiphertext` / :class:`WrappedProxyKey` /
  :class:`WrappedReEncrypted` — routing envelopes for schemes whose
  native containers carry no (domain, identity, type) metadata.  They
  duck-type the attribute surface of the paper's native containers, so
  the router, key table, batcher and caches work on either unchanged;
* :class:`SchemeRegistry` — stable scheme ids (``tipre/v1``,
  ``afgh/v1``, ``green-ateniese/v1``, ...) to backend classes, with the
  built-in schemes loaded on first use.

Scheme ids are *wire- and disk-stable*: the HTTP codec tags every
element envelope with one and rejects mismatches as ``invalid-request``,
and the durable append log refuses to open under a different scheme.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Iterator

from repro.serialization.encoding import EncodingError, Reader, Writer

__all__ = [
    "TIPRE_SCHEME_ID",
    "CAPABILITY_NAMES",
    "PROPERTY_NAMES",
    "SchemeCapabilities",
    "WrappedCiphertext",
    "WrappedProxyKey",
    "WrappedReEncrypted",
    "PreBackend",
    "SchemeRegistry",
    "UnknownSchemeError",
    "DuplicateSchemeError",
    "REGISTRY",
    "register_backend",
    "load_builtin_backends",
    "available_schemes",
    "create_backend",
    "resolve_backend",
]

TIPRE_SCHEME_ID = "tipre/v1"

# The five benchmark property flags (experiment E4 order) ...
PROPERTY_NAMES = (
    "unidirectional",
    "non_interactive",
    "collusion_safe",
    "identity_based",
    "type_granular",
)
# ... plus the operational flags the service layer keys decisions on.
CAPABILITY_NAMES = PROPERTY_NAMES + ("deterministic_reencrypt",)

# Canonical-encoding kind bytes for the generic wrapped envelopes; the
# native tipre containers keep their own kinds in repro.serialization.
KIND_WRAPPED_CIPHERTEXT = 32
KIND_WRAPPED_PROXY_KEY = 33
KIND_WRAPPED_REENCRYPTED = 34


@dataclass(frozen=True)
class SchemeCapabilities:
    """What a scheme guarantees — the E4 taxonomy plus operational flags.

    ``deterministic_reencrypt`` is the service layer's cache-soundness
    contract: True means the transformation is a pure function of
    (ciphertext, installed key), so a cached result is an exact replay.
    A scheme with randomized re-encryption must set it False, and the
    gateway will never admit its results to the KEM-result cache.
    """

    unidirectional: bool
    non_interactive: bool
    collusion_safe: bool
    identity_based: bool
    type_granular: bool
    deterministic_reencrypt: bool

    def as_dict(self) -> dict[str, bool]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def properties(self) -> dict[str, bool]:
        """Just the five E4 property flags (the benchmark tables)."""
        return {name: getattr(self, name) for name in PROPERTY_NAMES}

    @classmethod
    def from_dict(cls, flags: dict[str, bool]) -> "SchemeCapabilities":
        missing = [name for name in CAPABILITY_NAMES if name not in flags]
        if missing:
            raise ValueError("missing capability flags: %s" % ", ".join(missing))
        return cls(**{name: bool(flags[name]) for name in CAPABILITY_NAMES})


# ------------------------------------------------------- routing envelopes


@dataclass(frozen=True)
class WrappedCiphertext:
    """A scheme-native ciphertext plus the routing header the gateway needs.

    Mirrors the attribute surface of
    :class:`~repro.core.ciphertexts.TypedCiphertext` (``domain``,
    ``identity``, ``type_label``), so the router and batcher treat both
    identically.  ``payload`` is the scheme's own (hashable) container.
    """

    scheme_id: str
    domain: str
    identity: str
    type_label: str
    payload: Any

    def header(self) -> tuple[str, str, str]:
        return (self.domain, self.identity, self.type_label)


@dataclass(frozen=True)
class WrappedProxyKey:
    """A scheme-native re-encryption key plus its delegation metadata."""

    scheme_id: str
    delegator_domain: str
    delegator: str
    delegatee_domain: str
    delegatee: str
    type_label: str
    payload: Any

    def matches(self, ciphertext: WrappedCiphertext) -> bool:
        """True when this key is allowed to transform ``ciphertext``."""
        return (
            self.scheme_id == ciphertext.scheme_id
            and self.delegator_domain == ciphertext.domain
            and self.delegator == ciphertext.identity
            and self.type_label == ciphertext.type_label
        )


@dataclass(frozen=True)
class WrappedReEncrypted:
    """A scheme-native re-encrypted ciphertext plus delegation metadata."""

    scheme_id: str
    delegator_domain: str
    delegator: str
    delegatee_domain: str
    delegatee: str
    type_label: str
    payload: Any


# ----------------------------------------------------------------- backend


class PreBackend(ABC):
    """One PRE scheme behind the uniform lifecycle the service stack speaks.

    Parties are addressed as (domain, identity) string pairs — for
    identity-based schemes the domain names a KGC, for key-pair schemes
    it is just a namespace.  The backend holds whatever party state the
    scheme needs (key pairs, KGC registries, secret shares); a *serving*
    process never calls the party-side methods, only :meth:`reencrypt`
    and the serialization hooks, which must work with nothing but the
    pairing group.

    Subclasses implement the lifecycle plus the ``_encode_payload`` /
    ``_decode_payload`` pair; the generic wrapped-envelope serialization
    (scheme id + routing metadata + payload bytes) is provided here.
    The native tipre backend overrides the ``serialize_*`` methods
    wholesale to keep its canonical container bytes.
    """

    scheme_id: ClassVar[str] = "abstract"
    display_name: ClassVar[str] = "abstract"
    capabilities: ClassVar[SchemeCapabilities]
    # True for schemes (Matsuo-style) where delegator and delegatee must
    # be registered under the same authority; drivers collapse the two
    # demo domains into one when set.
    single_authority: ClassVar[bool] = False

    def __init__(self, group):
        self.group = group

    # ------------------------------------------------------------ lifecycle

    @abstractmethod
    def setup(self, rng) -> None:
        """(Re-)initialize global parameters and forget all parties."""

    @abstractmethod
    def create_party(self, domain: str, identity: str, rng) -> None:
        """Ensure (domain, identity) has keys; idempotent."""

    @abstractmethod
    def sample_message(self, rng) -> Any:
        """A uniform plaintext from this scheme's message space."""

    @abstractmethod
    def encrypt(self, domain: str, identity: str, message: Any, type_label: str, rng):
        """Encrypt for (domain, identity) under ``type_label``.

        Schemes without type granularity still carry the label in the
        envelope — the gateway's delegation table is label-scoped either
        way; the capability flag records that the *cryptography* does
        not enforce it.
        """

    @abstractmethod
    def rekey(
        self,
        delegator_domain: str,
        delegator: str,
        delegatee_domain: str,
        delegatee: str,
        type_label: str,
        rng,
    ):
        """Produce the delegator->delegatee proxy key envelope."""

    @abstractmethod
    def reencrypt(self, ciphertext, proxy_key):
        """The proxy transformation; must work with party-free state."""

    def reencrypt_batch(self, ciphertexts, proxy_key):
        """Transform many ciphertexts under ONE proxy key.

        The default is the per-item loop; pairing-based backends override
        it to share the Miller-loop precomputation for the fixed
        re-encryption-key point and batch the final-exponentiation
        inversions.  Results must be item-for-item identical to calling
        :meth:`reencrypt` in order.
        """
        return [self.reencrypt(ciphertext, proxy_key) for ciphertext in ciphertexts]

    @abstractmethod
    def decrypt_original(self, ciphertext, domain: str, identity: str) -> Any:
        """Delegator-side decryption."""

    @abstractmethod
    def decrypt_reencrypted(self, ciphertext, domain: str, identity: str) -> Any:
        """Delegatee-side decryption."""

    def ciphertext_components(self, ciphertext) -> int:
        """Group-element components of one ciphertext (size tables)."""
        return 2

    # -------------------------------------------------------- serialization

    def _encode_payload(self, kind: str, payload: Any) -> bytes:
        """Scheme-native payload -> canonical bytes; ``kind`` is one of
        ``"ciphertext"``, ``"proxy-key"``, ``"reencrypted"``."""
        raise NotImplementedError("%s does not encode %s payloads" % (self.scheme_id, kind))

    def _decode_payload(self, kind: str, blob: bytes) -> Any:
        raise NotImplementedError("%s does not decode %s payloads" % (self.scheme_id, kind))

    def _check_scheme(self, found: str) -> None:
        if found != self.scheme_id:
            raise EncodingError(
                "envelope is for scheme %r, not %r" % (found, self.scheme_id)
            )

    def serialize_ciphertext(self, ciphertext: WrappedCiphertext) -> bytes:
        writer = Writer(KIND_WRAPPED_CIPHERTEXT)
        writer.write_str(ciphertext.scheme_id)
        writer.write_str(ciphertext.domain).write_str(ciphertext.identity)
        writer.write_str(ciphertext.type_label)
        writer.write_bytes(self._encode_payload("ciphertext", ciphertext.payload))
        return writer.getvalue()

    def deserialize_ciphertext(self, blob: bytes) -> WrappedCiphertext:
        reader = Reader(blob, KIND_WRAPPED_CIPHERTEXT)
        scheme_id = reader.read_str()
        self._check_scheme(scheme_id)
        domain = reader.read_str()
        identity = reader.read_str()
        type_label = reader.read_str()
        payload = self._decode_payload("ciphertext", reader.read_bytes())
        reader.finish()
        return WrappedCiphertext(
            scheme_id=scheme_id,
            domain=domain,
            identity=identity,
            type_label=type_label,
            payload=payload,
        )

    def serialize_proxy_key(self, key: WrappedProxyKey) -> bytes:
        writer = Writer(KIND_WRAPPED_PROXY_KEY)
        writer.write_str(key.scheme_id)
        writer.write_str(key.delegator_domain).write_str(key.delegator)
        writer.write_str(key.delegatee_domain).write_str(key.delegatee)
        writer.write_str(key.type_label)
        writer.write_bytes(self._encode_payload("proxy-key", key.payload))
        return writer.getvalue()

    def deserialize_proxy_key(self, blob: bytes) -> WrappedProxyKey:
        reader = Reader(blob, KIND_WRAPPED_PROXY_KEY)
        scheme_id = reader.read_str()
        self._check_scheme(scheme_id)
        parts = [reader.read_str() for _ in range(5)]
        payload = self._decode_payload("proxy-key", reader.read_bytes())
        reader.finish()
        return WrappedProxyKey(scheme_id, *parts, payload=payload)

    def serialize_reencrypted(self, ciphertext: WrappedReEncrypted) -> bytes:
        writer = Writer(KIND_WRAPPED_REENCRYPTED)
        writer.write_str(ciphertext.scheme_id)
        writer.write_str(ciphertext.delegator_domain).write_str(ciphertext.delegator)
        writer.write_str(ciphertext.delegatee_domain).write_str(ciphertext.delegatee)
        writer.write_str(ciphertext.type_label)
        writer.write_bytes(self._encode_payload("reencrypted", ciphertext.payload))
        return writer.getvalue()

    def deserialize_reencrypted(self, blob: bytes) -> WrappedReEncrypted:
        reader = Reader(blob, KIND_WRAPPED_REENCRYPTED)
        scheme_id = reader.read_str()
        self._check_scheme(scheme_id)
        parts = [reader.read_str() for _ in range(5)]
        payload = self._decode_payload("reencrypted", reader.read_bytes())
        reader.finish()
        return WrappedReEncrypted(scheme_id, *parts, payload=payload)


# ---------------------------------------------------------------- registry


class UnknownSchemeError(KeyError):
    """No backend is registered under the requested scheme id."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep the prose
        return self.args[0] if self.args else ""


class DuplicateSchemeError(ValueError):
    """A second backend tried to claim an already-registered scheme id."""


class SchemeRegistry:
    """Stable scheme ids to :class:`PreBackend` classes.

    Ids are versioned slugs (``tipre/v1``) so that an incompatible
    envelope change registers as a *new* id instead of silently
    corrupting wire peers and durable logs written under the old one.
    """

    def __init__(self) -> None:
        self._backends: dict[str, type[PreBackend]] = {}

    def register(
        self, backend_class: type[PreBackend], replace: bool = False
    ) -> type[PreBackend]:
        scheme_id = backend_class.scheme_id
        existing = self._backends.get(scheme_id)
        if existing is not None and existing is not backend_class and not replace:
            raise DuplicateSchemeError(
                "scheme id %r is already registered to %s"
                % (scheme_id, existing.__name__)
            )
        self._backends[scheme_id] = backend_class
        return backend_class

    def backend_class(self, scheme_id: str) -> type[PreBackend]:
        try:
            return self._backends[scheme_id]
        except KeyError:
            raise UnknownSchemeError(
                "unknown scheme id %r (registered: %s)"
                % (scheme_id, ", ".join(sorted(self._backends)) or "none")
            ) from None

    def create(self, scheme_id: str, group) -> PreBackend:
        return self.backend_class(scheme_id)(group)

    def ids(self) -> list[str]:
        """Registered ids, the paper's scheme first, then alphabetical."""
        rest = sorted(scheme_id for scheme_id in self._backends if scheme_id != TIPRE_SCHEME_ID)
        head = [TIPRE_SCHEME_ID] if TIPRE_SCHEME_ID in self._backends else []
        return head + rest

    def __contains__(self, scheme_id: str) -> bool:
        return scheme_id in self._backends

    def __iter__(self) -> Iterator[str]:
        return iter(self.ids())


REGISTRY = SchemeRegistry()


def register_backend(backend_class: type[PreBackend]) -> type[PreBackend]:
    """Class decorator: add a backend to the process-wide registry."""
    return REGISTRY.register(backend_class)


_BUILTINS_LOADED = False


def load_builtin_backends() -> SchemeRegistry:
    """Import the built-in backend modules (idempotent); returns REGISTRY."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        import repro.baselines.backends  # noqa: F401  (registers on import)
        import repro.core.tipre_backend  # noqa: F401

        _BUILTINS_LOADED = True
    return REGISTRY


def available_schemes() -> list[str]:
    """Every registered scheme id, built-ins included."""
    return load_builtin_backends().ids()


def create_backend(scheme_id: str, group) -> PreBackend:
    """Instantiate the backend registered under ``scheme_id``."""
    return load_builtin_backends().create(scheme_id, group)


def resolve_backend(obj) -> PreBackend:
    """Coerce legacy scheme-or-group arguments into a :class:`PreBackend`.

    Accepts a backend (returned as-is), a raw
    :class:`~repro.core.scheme.TypeAndIdentityPre` (wrapped in the tipre
    backend sharing that instance) or a bare
    :class:`~repro.pairing.group.PairingGroup` (a fresh tipre backend) —
    the three spellings the service stack historically took.
    """
    if isinstance(obj, PreBackend):
        return obj
    from repro.core.scheme import TypeAndIdentityPre
    from repro.core.tipre_backend import TipreBackend
    from repro.pairing.group import PairingGroup

    if isinstance(obj, TypeAndIdentityPre):
        return TipreBackend.over(obj)
    if isinstance(obj, PairingGroup):
        return TipreBackend(obj)
    raise TypeError(
        "expected a PreBackend, TypeAndIdentityPre or PairingGroup, got %r"
        % type(obj).__name__
    )
