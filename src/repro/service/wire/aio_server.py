"""The asyncio gateway server: one event loop, thousands of connections.

:class:`AsyncGatewayServer` is the escape from thread-per-connection.
A single event loop accepts every socket; gateway calls are dispatched
to a bounded :class:`~concurrent.futures.ThreadPoolExecutor` (the shard
locks still serialize exactly as they do under the threaded server, and
CPU-bound pairing work never blocks the accept loop for long).  The
listening port speaks *two* protocols, sniffed from the first octet of
each connection:

* **mux framing** (first octet ``0x00``): length-prefixed JSON frames
  (see ``codec.encode_frame``); after a ``hello`` handshake every
  client frame is a ``request`` carrying an integer id, and responses
  stream back tagged with the same id in completion order — many
  in-flight requests multiplexed over ONE socket, HTTP/2-style.
  :class:`~repro.service.wire.aio_client.MuxRemoteGateway` is the
  matching client.

* **HTTP/1.1** (first octet an ASCII method byte — no HTTP verb starts
  with NUL): a minimal keep-alive HTTP server, so the existing pooled
  :class:`~repro.service.wire.client.RemoteGateway` (and bare ``curl``)
  can talk to an async server unchanged.

Both transports feed the same :class:`WireRequestExecutor`, a
transport-independent port of the threaded handler's semantics: same
routes, same auth gates, same idempotency window, same taxonomy bodies.
The payload encoders live in ``codec`` (``sort_keys`` everywhere), so a
response produced here is byte-identical to the threaded stack's — the
conformance suite (``tests/test_wire_aio.py``) asserts exactly that.

The threaded :class:`~repro.service.wire.server.GatewayHttpServer`
deliberately stays as an independent implementation: it is the
conformance reference this server is checked against.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import random
import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Sequence
from urllib.parse import parse_qs, urlsplit

from repro.core.api import PreBackend
from repro.pairing.group import PairingGroup
from repro.service.auth.errors import ForbiddenError
from repro.service.auth.signing import AUTH_HEADER
from repro.service.gateway import (
    EntryMissingError,
    FetchRequest,
    GatewayError,
    GrantRequest,
    InvalidRequestError,
    ReEncryptRequest,
    RevokeRequest,
)
from repro.service.metrics import WireServerStats
from repro.service.telemetry import (
    TRACE_HEADER,
    EventLog,
    TraceContext,
    render_prometheus,
    span_to_json,
)
from repro.service.wire.codec import (
    FRAME_HEADER_LEN,
    MUX_PROTOCOL,
    FrameProtocolError,
    GrantBatchRequest,
    GrantBatchResponse,
    KeyExportRequest,
    KeyExportResponse,
    ReEncryptBatchRequest,
    ReEncryptBatchResponse,
    ResizeRequest,
    decode_frame_payload,
    encode_frame,
    frame_length,
    from_wire,
    mux_hello,
    mux_response,
    neutral_error_to_wire,
    scheme_document,
    to_wire,
)
from repro.service.wire.server import (
    PROMETHEUS_CONTENT_TYPE,
    STATUS_BY_CODE,
    IdempotencyWindow,
    build_host_map,
)

__all__ = ["AsyncGatewayServer", "WireRequestExecutor", "WireResponse"]

_SERVER_ID = "repro-gateway-aio/1.0"
_MAX_BODY_BYTES = 64 * 1024 * 1024

_POST_OPS = frozenset({"grant", "revoke", "reencrypt", "fetch", "resize", "export"})
_GET_OPS = frozenset({"metrics", "scheme"})
_IDEMPOTENT_OPS = frozenset({"revoke", "resize"})

_AUTH_HEADER_LOWER = AUTH_HEADER.lower()
_TRACE_HEADER_LOWER = TRACE_HEADER.lower()


@dataclass
class WireResponse:
    """One finished request, transport-agnostic: status + body + echo."""

    status: int
    body: bytes
    content_type: str = "application/json"
    trace_echo: str | None = None
    close: bool = False


class _UnknownEndpoint(Exception):
    def __init__(self, path: str):
        super().__init__(path)
        self.path = path


class WireRequestExecutor:
    """The transport-independent request engine behind the async server.

    ``handle`` takes one parsed request (method, target, body, lowercase
    headers, client address string) and returns a :class:`WireResponse`.
    It is synchronous and thread-safe — the server runs it on its
    bounded worker pool — and mirrors the threaded handler's semantics
    route for route so the two stacks answer byte-identically.
    """

    def __init__(
        self,
        hosts: dict,
        scheme_ids: list,
        event_log: EventLog,
        dedup: IdempotencyWindow,
        auth=None,
        trace_sample: float = 1.0,
        wire_stats: WireServerStats | None = None,
    ):
        self.hosts = hosts
        self.scheme_ids = list(scheme_ids)
        self.single = scheme_ids[0] if len(scheme_ids) == 1 else None
        self.event_log = event_log
        self.dedup = dedup
        self.auth = auth
        self.trace_sample = float(trace_sample)
        self.wire_stats = wire_stats
        # Same deterministic seed as the threaded server, guarded the
        # same way: sampled counts stay exact and cross-stack identical.
        self._trace_rng = random.Random(0x5EED)
        self._trace_rng_lock = threading.Lock()

    # ------------------------------------------------------------- helpers

    @staticmethod
    def _json(status: int, payload: str, trace: str | None = None,
              close: bool = False) -> WireResponse:
        return WireResponse(
            status, payload.encode("utf-8"), "application/json", trace, close
        )

    def _error(
        self,
        error: GatewayError,
        backend: PreBackend | None = None,
        trace: str | None = None,
        close: bool = False,
    ) -> WireResponse:
        payload = (
            to_wire(backend, error) if backend is not None else neutral_error_to_wire(error)
        )
        return self._json(STATUS_BY_CODE.get(error.code, 500), payload, trace, close)

    def _unknown_endpoint(self, path: str, trace: str | None) -> WireResponse:
        return self._json(
            404,
            neutral_error_to_wire(InvalidRequestError("unknown endpoint %r" % path)),
            trace,
        )

    def _resolve(self, path: str):
        if not path.startswith("/v1/"):
            raise _UnknownEndpoint(path)
        rest = path[len("/v1/"):]
        if "/" in rest:
            scheme_id, op = rest.rsplit("/", 1)
            pair = self.hosts.get(scheme_id)
            if pair is None:
                raise _UnknownEndpoint(path)
            return op, pair[0], pair[1]
        if self.single is None:
            raise InvalidRequestError(
                "this server hosts several schemes (%s); use /v1/<scheme>/%s"
                % (", ".join(self.scheme_ids), rest)
            )
        gateway, backend = self.hosts[self.single]
        return rest, gateway, backend

    # ------------------------------------------------------------ entrance

    def handle(
        self,
        method: str,
        target: str,
        body: bytes,
        headers: dict[str, str],
        client: str,
    ) -> WireResponse:
        """One request in, one :class:`WireResponse` out; never raises."""
        try:
            # The echo is re-serialized from the strict parse, never the
            # raw client value (same CR/LF sanitization as the threaded
            # server's fixed path).
            parsed_trace = TraceContext.from_header(headers.get(_TRACE_HEADER_LOWER))
            echo = parsed_trace.to_header() if parsed_trace is not None else None
            if method == "GET":
                result = self._handle_get(target, headers, echo, client)
            elif method == "POST":
                result = self._handle_post(
                    target, body, headers, parsed_trace, echo, client
                )
            else:
                result = self._json(
                    501,
                    neutral_error_to_wire(
                        InvalidRequestError("unsupported method %r" % method)
                    ),
                    echo,
                    close=True,
                )
        except Exception as error:  # noqa: BLE001 - transport boundary
            self.event_log.emit(
                "server-error",
                op=method,
                error=str(error),
                error_type=type(error).__name__,
                traceback=traceback.format_exc(limit=8),
            )
            result = self._json(
                500,
                neutral_error_to_wire(GatewayError("internal error: %s" % error)),
                close=True,
            )
        # Access-line parity with the threaded server's log_message hook:
        # every request (either transport) lands in the structured event
        # log instead of a stderr nobody reads.
        self.event_log.emit(
            "http-log",
            client=client,
            message='"%s %s" %d %d' % (method, target, result.status, len(result.body)),
        )
        return result

    # ----------------------------------------------------------------- GET

    def _authorize_observability(
        self, op: str, target: str, headers: dict, client: str
    ) -> GatewayError | None:
        """The rejection to send (or None) for a GET observability route."""
        if self.auth is None:
            return None
        try:
            # The client signs the path it requests, query string included.
            self.auth.verify("GET", target, b"", headers.get(_AUTH_HEADER_LOWER))
        except GatewayError as error:
            self.event_log.emit(
                "auth-failure",
                op=op,
                code=error.code,
                client=client,
                detail=str(error),
            )
            return error
        return None

    def _prometheus(self, hosts: dict) -> WireResponse:
        snapshots = {
            scheme_id: fleet.snapshot() for scheme_id, (fleet, _backend) in hosts.items()
        }
        wire = self.wire_stats.snapshot() if self.wire_stats is not None else None
        return WireResponse(
            200,
            render_prometheus(snapshots, wire=wire).encode("utf-8"),
            PROMETHEUS_CONTENT_TYPE,
        )

    def _handle_get(
        self, target: str, headers: dict, echo: str | None, client: str
    ) -> WireResponse:
        parts = urlsplit(target)
        base = parts.path
        query = parse_qs(parts.query)
        out_format = (query.get("format") or [""])[0]
        if base == "/v1/health":
            return self._json(200, json.dumps({"status": "ok"}), echo)
        if base == "/v1/schemes":
            return self._json(
                200,
                json.dumps(
                    {
                        "schemes": [
                            scheme_document(self.hosts[scheme_id][1])
                            for scheme_id in self.scheme_ids
                        ]
                    },
                    sort_keys=True,
                ),
                echo,
            )
        if base.startswith("/v1/trace/"):
            denied = self._authorize_observability("trace", target, headers, client)
            if denied is not None:
                return self._error(denied, trace=echo)
            return self._trace_response(base[len("/v1/trace/"):], echo)
        if base == "/v1/events":
            denied = self._authorize_observability("events", target, headers, client)
            if denied is not None:
                return self._error(denied, trace=echo)
            return self._events_response((query.get("tail") or [""])[0], echo)
        if base == "/v1/metrics" and out_format == "prometheus":
            denied = self._authorize_observability("metrics", target, headers, client)
            if denied is not None:
                return self._error(denied, trace=echo)
            return self._prometheus(self.hosts)
        try:
            op, gateway, backend = self._resolve(base)
            if op not in _GET_OPS:
                raise _UnknownEndpoint(base)
        except _UnknownEndpoint as error:
            return self._unknown_endpoint(error.path, echo)
        except InvalidRequestError as error:
            return self._error(error, trace=echo)
        if op == "metrics":
            denied = self._authorize_observability("metrics", target, headers, client)
            if denied is not None:
                return self._error(denied, trace=echo)
            if out_format == "prometheus":
                return self._prometheus({backend.scheme_id: (gateway, backend)})
            return self._json(200, to_wire(backend, gateway.snapshot()), echo)
        return self._json(
            200, json.dumps(scheme_document(backend), sort_keys=True), echo
        )

    def _trace_response(self, trace_id: str, echo: str | None) -> WireResponse:
        for scheme_id in self.scheme_ids:
            fleet, _backend = self.hosts[scheme_id]
            tracer = getattr(fleet, "tracer", None)
            if tracer is None:
                continue
            spans = tracer.trace(trace_id)
            if spans:
                return self._json(
                    200,
                    json.dumps(
                        {
                            "trace": trace_id,
                            "scheme": scheme_id,
                            "spans": [span_to_json(span) for span in spans],
                        },
                        sort_keys=True,
                    ),
                    echo,
                )
        return self._error(EntryMissingError("no trace %r" % trace_id), trace=echo)

    def _events_response(self, tail: str, echo: str | None) -> WireResponse:
        count: int | None = None
        if tail:
            try:
                count = int(tail)
            except ValueError:
                count = -1
            if count < 1:
                return self._error(
                    InvalidRequestError("tail must be a positive integer"), trace=echo
                )
        return self._json(
            200, json.dumps({"events": self.event_log.tail(count)}, sort_keys=True), echo
        )

    # ---------------------------------------------------------------- POST

    def _authenticate(self, op: str, base: str, raw: bytes, headers: dict):
        if self.auth is None:
            return None
        credential = self.auth.verify("POST", base, raw, headers.get(_AUTH_HEADER_LOWER))
        if not self.auth.store.allows(credential, op):
            raise ForbiddenError(
                "tenant %r (roles: %s) may not call %r"
                % (credential.tenant, ", ".join(credential.roles) or "-", op)
            )
        return credential.tenant

    def _auth_failure(
        self, op: str, gateway, backend, headers: dict, client: str,
        error: GatewayError, echo: str | None,
    ) -> WireResponse:
        header = headers.get(_AUTH_HEADER_LOWER) or ""
        tenant = None
        for part in header.split(";"):
            if part.startswith("tenant="):
                tenant = part[len("tenant="):] or None
                break
        metrics = getattr(gateway, "metrics", None)
        if metrics is not None and hasattr(metrics, "observe_auth_failure"):
            metrics.observe_auth_failure(error.code, op=op, tenant=tenant)
        self.event_log.emit(
            "auth-failure",
            scheme=backend.scheme_id,
            op=op,
            code=error.code,
            tenant=tenant,
            client=client,
            detail=str(error),
        )
        return self._error(error, backend, trace=echo)

    @staticmethod
    def _stamp_tenant(request, tenant: str):
        if isinstance(request, (GrantBatchRequest, ReEncryptBatchRequest)):
            return dataclasses.replace(
                request,
                requests=tuple(
                    dataclasses.replace(item, tenant=tenant)
                    for item in request.requests
                ),
            )
        return dataclasses.replace(request, tenant=tenant)

    def _handle_post(
        self,
        target: str,
        raw: bytes,
        headers: dict,
        trace: TraceContext | None,
        echo: str | None,
        client: str,
    ) -> WireResponse:
        if trace is not None and self.trace_sample < 1.0:
            with self._trace_rng_lock:
                sampled = self._trace_rng.random() < self.trace_sample
            if not sampled:
                trace = None
        base = urlsplit(target).path
        try:
            op, gateway, backend = self._resolve(base)
            if op not in _POST_OPS:
                raise _UnknownEndpoint(base)
        except _UnknownEndpoint as error:
            return self._unknown_endpoint(error.path, echo)
        except InvalidRequestError as error:
            return self._error(error, trace=echo)
        try:
            auth_tenant = self._authenticate(op, base, raw, headers)
        except GatewayError as error:
            return self._auth_failure(op, gateway, backend, headers, client, error, echo)
        try:
            payload = self._dispatch(op, gateway, backend, raw, trace, auth_tenant)
        except GatewayError as error:
            return self._error(error, backend, trace=echo)
        except Exception as error:  # noqa: BLE001 - wire boundary
            self.event_log.emit(
                "server-error",
                scheme=backend.scheme_id,
                op=op,
                error=str(error),
                error_type=type(error).__name__,
                trace=trace.trace_id if trace is not None else None,
                traceback=traceback.format_exc(limit=8),
            )
            return self._error(
                GatewayError("internal error: %s" % error), backend, trace=echo
            )
        return self._json(200, payload, echo)

    def _dispatch(
        self, op: str, gateway, backend: PreBackend, raw: bytes,
        trace: TraceContext | None, auth_tenant: str | None,
    ) -> str:
        tracer = getattr(gateway, "tracer", None)
        traced = tracer is not None and trace is not None
        root = tracer.span(trace, "http:%s" % op) if traced else nullcontext(None)
        with root as http_span:
            sub = http_span.context if http_span is not None else None
            with (
                tracer.span(sub, "decode", {"bytes": len(raw)})
                if traced
                else nullcontext()
            ):
                if op == "grant":
                    request = from_wire(
                        backend, raw, expect=(GrantRequest, GrantBatchRequest)
                    )
                elif op == "revoke":
                    request = from_wire(backend, raw, expect=RevokeRequest)
                elif op == "reencrypt":
                    request = from_wire(
                        backend, raw, expect=(ReEncryptRequest, ReEncryptBatchRequest)
                    )
                elif op == "fetch":
                    request = from_wire(backend, raw, expect=FetchRequest)
                elif op == "export":
                    request = from_wire(backend, raw, expect=KeyExportRequest)
                else:  # op == "resize"
                    request = from_wire(backend, raw, expect=ResizeRequest)
                if auth_tenant is not None:
                    request = self._stamp_tenant(request, auth_tenant)
            dedup_key = None
            dedup_token = None
            if op in _IDEMPOTENT_OPS:
                request_id = getattr(request, "request_id", None)
                if request_id:
                    dedup_key = (backend.scheme_id, op, request_id)
                    cached, dedup_token = self.dedup.claim(dedup_key)
                    if cached is not None:
                        if http_span is not None:
                            http_span.set("idempotent_replay", True)
                        return cached
            try:
                kwargs = {"trace": sub} if traced else {}
                if op == "grant":
                    if isinstance(request, GrantBatchRequest):
                        response = GrantBatchResponse(
                            responses=tuple(
                                gateway.grant(item, **kwargs)
                                for item in request.requests
                            )
                        )
                    else:
                        response = gateway.grant(request, **kwargs)
                elif op == "revoke":
                    response = gateway.revoke(request, **kwargs)
                elif op == "reencrypt":
                    if isinstance(request, ReEncryptBatchRequest):
                        response = ReEncryptBatchResponse(
                            responses=tuple(
                                gateway.reencrypt_batch(list(request.requests), **kwargs)
                            )
                        )
                    else:
                        response = gateway.reencrypt(request, **kwargs)
                elif op == "fetch":
                    response = gateway.fetch(request, **kwargs)
                elif op == "export":
                    response = KeyExportResponse(keys=tuple(gateway.list_keys()))
                else:  # op == "resize"
                    response = gateway.resize(
                        request.shard_count, tenant=request.tenant, **kwargs
                    )
                with (
                    tracer.span(sub, "encode") if traced else nullcontext()
                ):
                    payload = to_wire(backend, response)
            except BaseException:
                if dedup_token is not None:
                    self.dedup.complete(dedup_key, dedup_token, None)
                raise
            if dedup_token is not None:
                self.dedup.complete(dedup_key, dedup_token, payload)
        return payload


class AsyncGatewayServer:
    """Serve gateways over mux frames *and* HTTP/1.1 from one event loop.

    The constructor surface mirrors :class:`GatewayHttpServer` (gateway/
    group/gateways hosting, ``event_log``, ``tls``, ``auth``,
    ``trace_sample``), plus ``workers`` (the bounded executor that runs
    gateway calls — shard locks serialize there exactly as under the
    threaded server) and ``max_streams`` (per-connection in-flight cap,
    the mux backpressure bound).

    :attr:`url` is the mux address (``mux://host:port``, ``muxs://``
    under TLS); :attr:`http_url` is the same port spelled for HTTP
    clients — both protocols share the listener, sniffed per connection.
    ``tls`` is the same server-side ``ssl.SSLContext`` the threaded
    server takes; asyncio wraps each accepted connection with it.
    """

    def __init__(
        self,
        gateway=None,
        group: PairingGroup | PreBackend | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        gateways: Sequence | None = None,
        event_log: EventLog | None = None,
        tls=None,
        auth=None,
        trace_sample: float = 1.0,
        workers: int = 8,
        max_streams: int = 256,
    ):
        if not 0.0 <= trace_sample <= 1.0:
            raise ValueError("trace_sample must be in [0, 1]")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_streams < 1:
            raise ValueError("max_streams must be >= 1")
        self.hosts, self.scheme_ids = build_host_map(gateway, group, gateways)
        self.gateway = self.hosts[self.scheme_ids[0]][0]
        self.backend = self.hosts[self.scheme_ids[0]][1]
        self.group = self.backend.group
        self.event_log = event_log if event_log is not None else EventLog()
        self.dedup = IdempotencyWindow()
        self.auth = auth
        self.stats = WireServerStats()
        self.executor = WireRequestExecutor(
            self.hosts,
            self.scheme_ids,
            self.event_log,
            self.dedup,
            auth=auth,
            trace_sample=trace_sample,
            wire_stats=self.stats,
        )
        self.max_streams = max_streams
        self._tls = tls
        self._bind_host = host
        self._bind_port = port
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="gateway-aio"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._sockname: tuple | None = None

    # ------------------------------------------------------------ lifecycle

    @property
    def host(self) -> str:
        return self._sockname[0] if self._sockname else self._bind_host

    @property
    def port(self) -> int:
        return self._sockname[1] if self._sockname else self._bind_port

    @property
    def url(self) -> str:
        scheme = "muxs" if self._tls is not None else "mux"
        return "%s://%s:%d" % (scheme, self.host, self.port)

    @property
    def http_url(self) -> str:
        scheme = "https" if self._tls is not None else "http"
        return "%s://%s:%d" % (scheme, self.host, self.port)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._on_connection,
                self._bind_host,
                self._bind_port,
                ssl=self._tls,
                # Match the threaded server's listen depth so a burst of
                # HTTP clients dialling at once is queued, not reset.
                backlog=1024,
            )
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            raise
        self._sockname = server.sockets[0].getsockname()[:2]
        self._ready.set()
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException:  # noqa: BLE001 - surfaced via _startup_error
            if not self._ready.is_set():
                self._ready.set()

    def start(self) -> "AsyncGatewayServer":
        """Run the event loop in a daemon thread; returns once bound."""
        if self._thread is None:
            self._ready.clear()
            self._thread = threading.Thread(
                target=self._run, name="gateway-aio", daemon=True
            )
            self._thread.start()
            self._ready.wait(timeout=30.0)
            if self._startup_error is not None:
                error, self._startup_error = self._startup_error, None
                self._thread.join(timeout=5.0)
                self._thread = None
                raise error
        return self

    def serve_forever(self) -> None:
        """Block serving until :meth:`close` (or KeyboardInterrupt)."""
        self.start()
        # Join in slices so the main thread stays interruptible.
        while self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=0.5)

    def close(self) -> None:
        """Stop the loop, join its thread, shut the worker pool down."""
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(shutdown.set)
            except RuntimeError:
                pass  # loop already closed between the check and the call
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "AsyncGatewayServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------- connections

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connection_opened()
        try:
            try:
                # Four bytes decide the protocol: a mux frame's length
                # prefix leads with 0x00 (frames are capped below 2**24),
                # an HTTP request line leads with an ASCII method byte.
                first = await reader.readexactly(FRAME_HEADER_LEN)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            if first[0] == 0:
                await self._serve_mux(reader, writer, first)
            else:
                await self._serve_http(reader, writer, first)
        except asyncio.CancelledError:
            # Server shutdown cancels live connection handlers; finishing
            # normally here keeps the teardown quiet (the task is done
            # either way, and asyncio.run is about to close the loop).
            pass
        except (asyncio.IncompleteReadError, ConnectionError, TimeoutError, OSError):
            pass  # peer went away mid-exchange; nothing to answer
        except FrameProtocolError as error:
            self.event_log.emit(
                "connection-error",
                client=self._peer(writer),
                error=str(error),
                error_type="FrameProtocolError",
            )
        except Exception:  # noqa: BLE001 - connection boundary
            self.event_log.emit(
                "connection-error",
                client=self._peer(writer),
                traceback=traceback.format_exc(limit=8),
            )
        finally:
            self.stats.connection_closed()
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    @staticmethod
    def _peer(writer: asyncio.StreamWriter) -> str:
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if isinstance(peer, tuple) and peer else "-"

    # ------------------------------------------------------------------ mux

    async def _serve_mux(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        header: bytes,
    ) -> None:
        hello = decode_frame_payload(await reader.readexactly(frame_length(header)))
        if hello.get("mux") != MUX_PROTOCOL or hello.get("type") != "hello":
            raise FrameProtocolError(
                "connection opened with %r, expected a %s hello"
                % (hello.get("mux"), MUX_PROTOCOL)
            )
        writer.write(
            encode_frame(
                mux_hello(server=_SERVER_ID, schemes=list(self.scheme_ids))
            )
        )
        await writer.drain()
        peer = self._peer(writer)
        write_lock = asyncio.Lock()
        # Per-connection backpressure: past max_streams in-flight the
        # read loop stops pulling frames, so a flooding client queues in
        # its own socket buffer instead of ours.
        gate = asyncio.Semaphore(self.max_streams)
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    header = await reader.readexactly(FRAME_HEADER_LEN)
                except asyncio.IncompleteReadError:
                    break  # clean close between frames
                payload = await reader.readexactly(frame_length(header))
                document = decode_frame_payload(payload)
                if document.get("type") != "request" or not isinstance(
                    document.get("id"), int
                ):
                    raise FrameProtocolError("expected a request frame with an id")
                await gate.acquire()
                task = asyncio.create_task(
                    self._run_stream(document, writer, write_lock, gate, peer)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)

    async def _run_stream(
        self,
        document: dict,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        gate: asyncio.Semaphore,
        peer: str,
    ) -> None:
        self.stats.stream_started()
        try:
            request_id = document["id"]
            method = str(document.get("method") or "POST").upper()
            target = str(document.get("path") or "/")
            body_text = document.get("body")
            body = body_text.encode("utf-8") if isinstance(body_text, str) else b""
            raw_headers = document.get("headers") or {}
            headers = {
                str(name).lower(): str(value) for name, value in raw_headers.items()
            }
            result = await asyncio.get_running_loop().run_in_executor(
                self._pool, self.executor.handle, method, target, body, headers, peer
            )
            frame = encode_frame(
                mux_response(
                    request_id,
                    result.status,
                    result.body.decode("utf-8"),
                    result.content_type,
                    trace=result.trace_echo,
                )
            )
            async with write_lock:
                writer.write(frame)
                await writer.drain()
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            pass  # connection died under the response; reader loop ends too
        except Exception:  # noqa: BLE001 - stream boundary
            self.event_log.emit(
                "connection-error",
                client=peer,
                traceback=traceback.format_exc(limit=8),
            )
        finally:
            gate.release()
            self.stats.stream_finished()

    # ----------------------------------------------------------------- http

    async def _serve_http(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        prefix: bytes,
    ) -> None:
        peer = self._peer(writer)
        while True:
            if prefix is not None:
                line = prefix + await reader.readline()
                prefix = None
            else:
                line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                return
            parts = line.decode("latin-1").strip().split()
            if len(parts) < 2:
                await self._write_http(
                    writer,
                    WireResponse(
                        400,
                        neutral_error_to_wire(
                            InvalidRequestError("malformed request line")
                        ).encode("utf-8"),
                        close=True,
                    ),
                    close=True,
                )
                return
            method, target = parts[0].upper(), parts[1]
            headers: dict[str, str] = {}
            while True:
                hline = await reader.readline()
                if hline in (b"\r\n", b"\n", b""):
                    break
                name, sep, value = hline.decode("latin-1").partition(":")
                if sep:
                    headers[name.strip().lower()] = value.strip()
            reject: InvalidRequestError | None = None
            length = 0
            if headers.get("transfer-encoding"):
                reject = InvalidRequestError("Transfer-Encoding is not supported")
            else:
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    reject = InvalidRequestError("invalid Content-Length")
                else:
                    if length < 0 or length > _MAX_BODY_BYTES:
                        reject = InvalidRequestError(
                            "unacceptable Content-Length %d" % length
                        )
            if reject is not None:
                # The body was never drained; this connection is
                # desynchronized — answer and close, like the threaded
                # server's rejection path.
                await self._write_http(
                    writer,
                    WireResponse(
                        400, neutral_error_to_wire(reject).encode("utf-8"), close=True
                    ),
                    close=True,
                )
                return
            body = await reader.readexactly(length) if length else b""
            self.stats.stream_started()
            try:
                result = await asyncio.get_running_loop().run_in_executor(
                    self._pool, self.executor.handle, method, target, body, headers, peer
                )
            finally:
                self.stats.stream_finished()
            client_close = headers.get("connection", "").lower() == "close"
            closing = result.close or client_close
            await self._write_http(writer, result, close=closing)
            if closing:
                return

    async def _write_http(
        self, writer: asyncio.StreamWriter, result: WireResponse, close: bool
    ) -> None:
        head = [
            "HTTP/1.1 %d %s" % (result.status, _REASONS.get(result.status, "OK")),
            "Server: %s" % _SERVER_ID,
            "Content-Type: %s" % result.content_type,
            "Content-Length: %d" % len(result.body),
        ]
        if result.trace_echo:
            head.append("%s: %s" % (TRACE_HEADER, result.trace_echo))
        if close:
            head.append("Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + result.body)
        await writer.drain()


_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}
