"""RemoteGateway: the gateway's typed API, spoken over HTTP/JSON.

A :class:`RemoteGateway` is a drop-in stand-in for
:class:`~repro.service.gateway.ReEncryptionGateway` wherever code only
*calls* the gateway — the driver, the benchmarks and the examples run
unchanged whether the object in their hands is the in-process fleet or
this client pointed at a remote one.  Every method encodes its request
with :mod:`repro.service.wire.codec`, POSTs it, and decodes the response
back into the same dataclasses; a non-2xx reply carries a wire ``error``
body whose stable code selects the taxonomy class to raise, so callers
catch :class:`~repro.service.gateway.RateLimitedError` (and friends)
identically in both deployments.

Transport is deliberately boring: one ``urllib`` request per call over
stdlib sockets, no connection pooling, no TLS, no auth — those are named
follow-ups in the roadmap, not accidental omissions.
"""

from __future__ import annotations

import http.client
import urllib.error
import urllib.request
from typing import Sequence

from repro.pairing.group import PairingGroup
from repro.service.gateway import (
    FetchRequest,
    FetchResponse,
    GatewayError,
    GrantRequest,
    GrantResponse,
    InvalidRequestError,
    ReEncryptRequest,
    ReEncryptResponse,
    ResizeReport,
    RevokeRequest,
    RevokeResponse,
)
from repro.service.metrics import MetricsSnapshot
from repro.service.wire.codec import (
    ReEncryptBatchRequest,
    ReEncryptBatchResponse,
    ResizeRequest,
    from_wire,
    to_wire,
)

__all__ = ["RemoteGateway", "WireTransportError"]


class WireTransportError(GatewayError):
    """The server could not be reached or spoke something unintelligible.

    Distinct from the server-side taxonomy: those codes mean the gateway
    *decided* something; this one means no decision arrived at all.
    """

    code = "wire-transport"


class RemoteGateway:
    """A typed HTTP client for one :class:`GatewayHttpServer`.

    ``url`` is the server base (e.g. ``http://127.0.0.1:8080``); ``group``
    must be the pairing group the server's scheme runs on, since group
    elements cannot be decoded without it.
    """

    def __init__(self, url: str, group: PairingGroup, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.group = group
        self.timeout = timeout

    # -------------------------------------------------------------- plumbing

    def _round_trip(self, method: str, path: str, message: object | None):
        data = to_wire(self.group, message).encode("utf-8") if message is not None else None
        request = urllib.request.Request(
            self.url + path,
            data=data,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                text = response.read().decode("utf-8")
        except urllib.error.HTTPError as http_error:
            # The body should be a wire error; reconstruct and raise the
            # taxonomy class the in-process gateway would have raised.
            body = http_error.read().decode("utf-8", errors="replace")
            try:
                decoded = from_wire(self.group, body)
            except GatewayError:
                raise WireTransportError(
                    "HTTP %d from %s with undecodable body" % (http_error.code, path)
                ) from http_error
            if isinstance(decoded, GatewayError):
                raise decoded from None
            raise WireTransportError(
                "HTTP %d from %s carried a non-error message" % (http_error.code, path)
            ) from http_error
        except urllib.error.URLError as url_error:
            raise WireTransportError(
                "cannot reach %s%s: %s" % (self.url, path, url_error.reason)
            ) from url_error
        except (OSError, http.client.HTTPException) as io_error:
            # A reset/stalled/truncated read mid-body is a transport
            # failure too: callers rely on catching GatewayError working
            # identically in both deployments.
            raise WireTransportError(
                "transport failure on %s%s: %s" % (self.url, path, io_error)
            ) from io_error
        try:
            return from_wire(self.group, text)
        except InvalidRequestError as decode_error:
            # A 2xx body that is not wire JSON (an interposed proxy, a
            # version-skewed server) is a transport fault, not the gateway
            # judging *our* request invalid.
            raise WireTransportError(
                "undecodable 2xx body from %s: %s" % (path, decode_error)
            ) from decode_error

    def _call(self, method: str, path: str, message: object | None, expect: type):
        decoded = self._round_trip(method, path, message)
        if not isinstance(decoded, expect):
            raise WireTransportError(
                "%s returned %s, expected %s"
                % (path, type(decoded).__name__, expect.__name__)
            )
        return decoded

    # ------------------------------------------------------------ operations

    def grant(self, request: GrantRequest) -> GrantResponse:
        return self._call("POST", "/v1/grant", request, GrantResponse)

    def revoke(self, request: RevokeRequest) -> RevokeResponse:
        return self._call("POST", "/v1/revoke", request, RevokeResponse)

    def reencrypt(self, request: ReEncryptRequest) -> ReEncryptResponse:
        return self._call("POST", "/v1/reencrypt", request, ReEncryptResponse)

    def reencrypt_batch(
        self, requests: Sequence[ReEncryptRequest]
    ) -> list[ReEncryptResponse]:
        """One POST for the whole batch; order matches submission order."""
        message = ReEncryptBatchRequest(requests=tuple(requests))
        response = self._call("POST", "/v1/reencrypt", message, ReEncryptBatchResponse)
        return list(response.responses)

    def fetch(self, request: FetchRequest) -> FetchResponse:
        return self._call("POST", "/v1/fetch", request, FetchResponse)

    def resize(self, shard_count: int, tenant: str = "admin") -> ResizeReport:
        message = ResizeRequest(tenant=tenant, shard_count=shard_count)
        return self._call("POST", "/v1/resize", message, ResizeReport)

    # --------------------------------------------------------- observability

    def snapshot(self) -> MetricsSnapshot:
        return self._call("GET", "/v1/metrics", None, MetricsSnapshot)

    def close(self) -> None:
        """Nothing to release: transport is one connection per request."""
