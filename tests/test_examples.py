"""Smoke tests: every shipped example must run to completion.

Each example is executed in a subprocess exactly as the README instructs,
so documentation and code cannot drift apart.  Marked slow (SS256 ops).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, "%s failed:\n%s" % (script, result.stderr[-2000:])
    assert result.stdout.strip(), "%s printed nothing" % script
    assert "Traceback" not in result.stderr
