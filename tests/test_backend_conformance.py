"""Registry-driven conformance suite: every backend honors the API contract.

Six backends share one :class:`~repro.core.api.PreBackend` surface, and
the whole service stack (gateway, durable tables, wire codec, caches)
builds on what that surface promises.  This suite is parametrized over
``available_schemes()`` — registering a seventh backend automatically
subjects it to the same contract:

* the full lifecycle: ``setup`` / ``create_party`` / ``encrypt`` /
  ``rekey`` / ``reencrypt`` / ``decrypt`` on both sides, with the
  delegatee recovering exactly the sampled plaintext;
* serialization round trips are *byte-stable* — decode(encode(x))
  re-encodes to the identical bytes, the property durable logs and the
  wire both lean on;
* envelopes carry the scheme id, on disk blobs and wire messages alike,
  and every foreign scheme's decoder refuses them;
* the declared ``deterministic_reencrypt`` capability matches observed
  behavior (the same transformation run twice), because the gateway's
  result cache replays transformations on the strength of that flag.
"""

from __future__ import annotations

import json

import pytest

from repro.core.api import available_schemes, create_backend
from repro.math.drbg import HmacDrbg
from repro.pairing.group import PairingGroup
from repro.serialization.encoding import EncodingError
from repro.service.gateway import GrantRequest
from repro.service.wire import to_wire

SCHEME_IDS = available_schemes()

DELEGATOR_DOMAIN = "KGC1"
DELEGATEE_DOMAIN = "KGC2"
DELEGATOR = "alice"
DELEGATEE = "bob"
TYPE_LABEL = "conformance-type"


def test_registry_hosts_all_six_schemes():
    """The suite's coverage claim: six registered backends, paper first."""
    assert len(SCHEME_IDS) == 6
    assert SCHEME_IDS[0] == "tipre/v1"


class Lifecycle:
    """One backend with parties, a delegation and a fresh ciphertext."""

    def __init__(self, scheme_id: str):
        self.scheme_id = scheme_id
        self.group = PairingGroup.shared("TOY")
        self.rng = HmacDrbg("conformance-" + scheme_id)
        self.backend = create_backend(scheme_id, self.group)
        self.backend.setup(self.rng)
        self.delegatee_domain = (
            DELEGATOR_DOMAIN if self.backend.single_authority else DELEGATEE_DOMAIN
        )
        self.backend.create_party(DELEGATOR_DOMAIN, DELEGATOR, self.rng)
        self.backend.create_party(self.delegatee_domain, DELEGATEE, self.rng)
        self.message = self.backend.sample_message(self.rng)
        self.ciphertext = self.backend.encrypt(
            DELEGATOR_DOMAIN, DELEGATOR, self.message, TYPE_LABEL, self.rng
        )
        self.proxy_key = self.backend.rekey(
            DELEGATOR_DOMAIN,
            DELEGATOR,
            self.delegatee_domain,
            DELEGATEE,
            TYPE_LABEL,
            self.rng,
        )


@pytest.fixture()
def lifecycle(scheme_id) -> Lifecycle:
    return Lifecycle(scheme_id)


@pytest.mark.parametrize("scheme_id", SCHEME_IDS)
class TestLifecycleConformance:
    def test_full_lifecycle_round_trips_the_plaintext(self, lifecycle):
        backend = lifecycle.backend
        assert (
            backend.decrypt_original(lifecycle.ciphertext, DELEGATOR_DOMAIN, DELEGATOR)
            == lifecycle.message
        )
        transformed = backend.reencrypt(lifecycle.ciphertext, lifecycle.proxy_key)
        assert (
            backend.decrypt_reencrypted(
                transformed, lifecycle.delegatee_domain, DELEGATEE
            )
            == lifecycle.message
        )

    def test_create_party_is_idempotent(self, lifecycle):
        """Re-registering a party must not rotate keys out from under
        existing ciphertexts and delegations."""
        backend = lifecycle.backend
        backend.create_party(DELEGATOR_DOMAIN, DELEGATOR, lifecycle.rng)
        backend.create_party(lifecycle.delegatee_domain, DELEGATEE, lifecycle.rng)
        assert (
            backend.decrypt_original(lifecycle.ciphertext, DELEGATOR_DOMAIN, DELEGATOR)
            == lifecycle.message
        )
        transformed = backend.reencrypt(lifecycle.ciphertext, lifecycle.proxy_key)
        assert (
            backend.decrypt_reencrypted(
                transformed, lifecycle.delegatee_domain, DELEGATEE
            )
            == lifecycle.message
        )

    def test_routing_metadata_matches_the_request(self, lifecycle):
        """The envelope surface the router/key table/batcher depend on."""
        ciphertext, key = lifecycle.ciphertext, lifecycle.proxy_key
        assert (ciphertext.domain, ciphertext.identity, ciphertext.type_label) == (
            DELEGATOR_DOMAIN,
            DELEGATOR,
            TYPE_LABEL,
        )
        assert (key.delegator_domain, key.delegator) == (DELEGATOR_DOMAIN, DELEGATOR)
        assert (key.delegatee_domain, key.delegatee) == (
            lifecycle.delegatee_domain,
            DELEGATEE,
        )
        assert key.type_label == TYPE_LABEL

    def test_serialization_round_trips_are_byte_stable(self, lifecycle):
        backend = lifecycle.backend
        transformed = backend.reencrypt(lifecycle.ciphertext, lifecycle.proxy_key)
        for value, serialize, deserialize in (
            (
                lifecycle.ciphertext,
                backend.serialize_ciphertext,
                backend.deserialize_ciphertext,
            ),
            (
                lifecycle.proxy_key,
                backend.serialize_proxy_key,
                backend.deserialize_proxy_key,
            ),
            (
                transformed,
                backend.serialize_reencrypted,
                backend.deserialize_reencrypted,
            ),
        ):
            blob = serialize(value)
            decoded = deserialize(blob)
            assert decoded == value
            assert serialize(decoded) == blob, "re-encoding changed the bytes"

    def test_deserialized_delegation_still_serves(self, lifecycle):
        """What a durable log replays must transform like the original."""
        backend = lifecycle.backend
        key = backend.deserialize_proxy_key(
            backend.serialize_proxy_key(lifecycle.proxy_key)
        )
        ciphertext = backend.deserialize_ciphertext(
            backend.serialize_ciphertext(lifecycle.ciphertext)
        )
        transformed = backend.reencrypt(ciphertext, key)
        assert (
            backend.decrypt_reencrypted(
                transformed, lifecycle.delegatee_domain, DELEGATEE
            )
            == lifecycle.message
        )

    def test_wire_messages_are_scheme_tagged(self, lifecycle):
        message = json.loads(
            to_wire(
                lifecycle.backend,
                GrantRequest(tenant="t", proxy_key=lifecycle.proxy_key),
            )
        )
        assert message["scheme"] == lifecycle.scheme_id
        envelope = message["body"]["proxy_key"]
        assert envelope["format"] == lifecycle.scheme_id
        assert envelope["group"] == "TOY"

    def test_every_foreign_backend_refuses_the_blobs(self, lifecycle):
        """Scheme-id tagging with teeth: no other registered backend will
        decode this scheme's ciphertext or proxy-key bytes."""
        ciphertext_blob = lifecycle.backend.serialize_ciphertext(lifecycle.ciphertext)
        key_blob = lifecycle.backend.serialize_proxy_key(lifecycle.proxy_key)
        for other_id in SCHEME_IDS:
            if other_id == lifecycle.scheme_id:
                continue
            other = create_backend(other_id, lifecycle.group)
            with pytest.raises((EncodingError, ValueError)):
                other.deserialize_ciphertext(ciphertext_blob)
            with pytest.raises((EncodingError, ValueError)):
                other.deserialize_proxy_key(key_blob)

    def test_declared_determinism_matches_observed_behavior(self, lifecycle):
        """Run the same transformation twice; the capability flag that
        gates result-cache admission must describe what actually happens."""
        backend = lifecycle.backend
        first = backend.serialize_reencrypted(
            backend.reencrypt(lifecycle.ciphertext, lifecycle.proxy_key)
        )
        second = backend.serialize_reencrypted(
            backend.reencrypt(lifecycle.ciphertext, lifecycle.proxy_key)
        )
        if backend.capabilities.deterministic_reencrypt:
            assert first == second, (
                "%s declares deterministic_reencrypt but two runs diverged"
                % lifecycle.scheme_id
            )
        else:
            # A randomized transformation colliding on two runs is a
            # probability-zero event on any non-toy message space.
            assert first != second, (
                "%s declares randomized re-encryption but two runs matched"
                % lifecycle.scheme_id
            )

    def test_capabilities_document_round_trips(self, lifecycle):
        """The /v1/scheme(s) document carries the full capability set."""
        from repro.core.api import CAPABILITY_NAMES, SchemeCapabilities
        from repro.service.wire import scheme_document

        document = scheme_document(lifecycle.backend)
        assert document["scheme"] == lifecycle.scheme_id
        flags = document["capabilities"]
        assert sorted(flags) == sorted(CAPABILITY_NAMES)
        assert SchemeCapabilities.from_dict(flags) == lifecycle.backend.capabilities
