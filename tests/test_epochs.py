"""Tests for epoch-scoped (time-bounded) delegation."""

import pytest

from repro.core.epochs import EpochSchedule, ExpiredDelegationError, TemporalPre

DAY = 86400


@pytest.fixture()
def temporal(pre_setting):
    scheme = pre_setting[0]
    return TemporalPre(scheme, EpochSchedule(epoch_seconds=DAY))


class TestEpochSchedule:
    def test_epoch_boundaries(self):
        schedule = EpochSchedule(DAY)
        assert schedule.epoch_of(0) == 0
        assert schedule.epoch_of(DAY - 1) == 0
        assert schedule.epoch_of(DAY) == 1
        assert schedule.epoch_of(10 * DAY + 5) == 10

    def test_label_and_split(self):
        schedule = EpochSchedule(DAY)
        label = schedule.label("lab-results", 3 * DAY)
        assert label == "lab-results@epoch-3"
        assert EpochSchedule.split(label) == ("lab-results", 3)

    def test_category_with_separator_rejected(self):
        with pytest.raises(ValueError):
            EpochSchedule(DAY).label("bad@category", 0)

    def test_split_rejects_plain_labels(self):
        with pytest.raises(ValueError):
            EpochSchedule.split("no-epoch-here")
        with pytest.raises(ValueError):
            EpochSchedule.split("@epoch-1")

    def test_validation(self):
        with pytest.raises(ValueError):
            EpochSchedule(0)
        with pytest.raises(ValueError):
            EpochSchedule(DAY).epoch_of(-1)


class TestTemporalDelegation:
    def test_same_epoch_round_trip(self, temporal, pre_setting, group, rng):
        _, kgc1, kgc2, alice, bob = pre_setting
        now = 5 * DAY + 100
        message = group.random_gt(rng)
        ciphertext = temporal.encrypt(kgc1.params, alice, message, "labs", now, rng)
        proxy_key = temporal.grant(alice, "bob", "labs", now, kgc2.params, rng)
        transformed = temporal.reencrypt(ciphertext, proxy_key)
        assert temporal.decrypt_reencrypted(transformed, bob) == message

    def test_expired_key_refused(self, temporal, pre_setting, group, rng):
        _, kgc1, kgc2, alice, _ = pre_setting
        yesterday, today = 4 * DAY, 5 * DAY
        proxy_key = temporal.grant(alice, "bob", "labs", yesterday, kgc2.params, rng)
        ciphertext = temporal.encrypt(
            kgc1.params, alice, group.random_gt(rng), "labs", today, rng
        )
        with pytest.raises(ExpiredDelegationError):
            temporal.reencrypt(ciphertext, proxy_key)

    def test_expired_key_is_cryptographically_dead(
        self, temporal, pre_setting, group, rng
    ):
        """Even bypassing the check, yesterday's key garbles today's data."""
        scheme, kgc1, kgc2, alice, bob = pre_setting
        proxy_key = temporal.grant(alice, "bob", "labs", 4 * DAY, kgc2.params, rng)
        message = group.random_gt(rng)
        ciphertext = temporal.encrypt(kgc1.params, alice, message, "labs", 5 * DAY, rng)
        mixed = scheme.preenc(ciphertext, proxy_key, unchecked=True)
        assert scheme.decrypt_reencrypted(mixed, bob) != message

    def test_epoch_does_not_leak_across_categories(
        self, temporal, pre_setting, group, rng
    ):
        """Same epoch, different category: still isolated."""
        _, kgc1, kgc2, alice, bob = pre_setting
        now = 7 * DAY
        proxy_key = temporal.grant(alice, "bob", "food", now, kgc2.params, rng)
        ciphertext = temporal.encrypt(
            kgc1.params, alice, group.random_gt(rng), "illness", now, rng
        )
        # Different category, same epoch: the scheme's usual guard fires.
        from repro.core.scheme import TypeMismatchError

        with pytest.raises(TypeMismatchError):
            temporal.reencrypt(ciphertext, proxy_key)

    def test_delegator_reads_across_epochs(self, temporal, pre_setting, group, rng):
        _, kgc1, _, alice, _ = pre_setting
        message = group.random_gt(rng)
        for day in (0, 3, 10):
            ciphertext = temporal.encrypt(
                kgc1.params, alice, message, "labs", day * DAY, rng
            )
            assert temporal.decrypt(ciphertext, alice) == message

    def test_category_of(self, temporal, pre_setting, group, rng):
        _, kgc1, _, alice, _ = pre_setting
        ciphertext = temporal.encrypt(
            kgc1.params, alice, group.random_gt(rng), "labs", 2 * DAY, rng
        )
        assert temporal.category_of(ciphertext) == "labs"

    def test_fresh_grant_restores_access(self, temporal, pre_setting, group, rng):
        """The intended workflow: re-grant each epoch while trust lasts."""
        _, kgc1, kgc2, alice, bob = pre_setting
        message = group.random_gt(rng)
        for day in (1, 2):
            now = day * DAY
            ciphertext = temporal.encrypt(kgc1.params, alice, message, "labs", now, rng)
            proxy_key = temporal.grant(alice, "bob", "labs", now, kgc2.params, rng)
            transformed = temporal.reencrypt(ciphertext, proxy_key)
            assert temporal.decrypt_reencrypted(transformed, bob) == message
