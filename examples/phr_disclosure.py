"""The paper's Section-5 scenario: fine-grained PHR disclosure.

Alice categorises her personal health record, stores everything encrypted,
and grants each requester exactly the categories they need:

* her family doctor reads lab results and medication,
* her insurer reads only vaccinations,
* a US emergency team gets the emergency profile while she travels —
  and the grant is revoked when she returns.

Run:  python examples/phr_disclosure.py
"""

from repro import HmacDrbg, PairingGroup
from repro.phr import AccessDeniedError, PhrGenerator, PhrSystem

rng = HmacDrbg("phr-disclosure-example")
system = PhrSystem(group=PairingGroup("SS256"), rng=rng)

# --- enrolment -------------------------------------------------------------
system.register_patient("alice")
doctor = system.register_requester("dr-jansen", role="doctor", domain="clinic-kgc")
insurer = system.register_requester("acme-insurance", role="insurer", domain="insurer-kgc")
er_team = system.register_requester("us-er-team", role="emergency", domain="us-ems-kgc")

# --- alice uploads her (synthetic) history, one ciphertext per entry --------
generator = PhrGenerator(rng.fork("history"), "alice")
entries = generator.history(entries_per_category=2)
for entry in entries:
    system.store_entry("alice", entry)
print("uploaded %d encrypted entries across %d categories"
      % (len(entries), len(system.categories())))

# --- grants: the cryptographic policy ---------------------------------------
system.grant("alice", "dr-jansen", "lab-results")
system.grant("alice", "dr-jansen", "medication")
system.grant("alice", "acme-insurance", "vaccinations")
system.grant("alice", "us-er-team", "emergency-profile")  # before travelling

print("\nalice's disclosure policy:")
for grant in system.patient("alice").policy.all_grants():
    print("  %-16s -> %s" % (grant.requester, grant.category))

# --- requests ----------------------------------------------------------------
labs = system.request_category("dr-jansen", "alice", "lab-results")
print("\ndr-jansen reads %d lab results, e.g. %s = %s %s"
      % (len(labs), labs[0].content["test"], labs[0].content["value"], labs[0].content["unit"]))

vaccinations = system.request_category("acme-insurance", "alice", "vaccinations")
print("acme-insurance reads %d vaccination records" % len(vaccinations))

# The insurer probing for the top-secret category is refused by the crypto:
try:
    system.request_category("acme-insurance", "alice", "illness-history")
except AccessDeniedError:
    print("acme-insurance denied illness-history (no proxy key exists)")

# --- the emergency, far from home --------------------------------------------
profile = system.emergency_access("us-er-team", "alice")
print("\nUS emergency team reads the profile: blood group %s, donor=%s"
      % (profile[0].content["blood_group"], profile[0].content["organ_donor"]))

# --- back home: revoke the travel grant ---------------------------------------
system.revoke("alice", "us-er-team", "emergency-profile")
try:
    system.emergency_access("us-er-team", "alice")
except AccessDeniedError:
    print("after revocation the US team is locked out again")

# --- every action left a tamper-evident trace ---------------------------------
print("\naudit log: %d events, hash chain valid: %s"
      % (len(system.audit), system.audit.verify_chain()))
for event in system.audit.events(action="request-denied"):
    print("  denied: %s asked for %s/%s"
          % (event.actor, event.detail["patient"], event.detail["category"]))
