"""Fuzz and failure-injection tests: malformed inputs must fail *cleanly*.

A deployed proxy or PHR store feeds attacker-controlled bytes into the
deserializers and decryptors; none of that may crash with an unexpected
exception type, loop, or — worst — silently succeed.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hybrid.symmetric import AuthenticationError, open_sealed, seal
from repro.math.drbg import HmacDrbg
from repro.serialization.containers import (
    deserialize_hybrid,
    deserialize_proxy_key,
    deserialize_typed_ciphertext,
    from_json_envelope,
    serialize_typed_ciphertext,
)
from repro.serialization.encoding import MAGIC, EncodingError


class TestDeserializerFuzz:
    @given(st.binary(max_size=300))
    def test_random_bytes_never_crash_typed_ciphertext(self, group, data):
        try:
            deserialize_typed_ciphertext(group, data)
        except (EncodingError, ValueError):
            pass  # the only acceptable outcomes

    @given(st.binary(max_size=300))
    def test_random_bytes_never_crash_proxy_key(self, group, data):
        try:
            deserialize_proxy_key(group, data)
        except (EncodingError, ValueError):
            pass

    @given(st.binary(max_size=300))
    def test_random_bytes_never_crash_hybrid(self, group, data):
        try:
            deserialize_hybrid(group, data)
        except (EncodingError, ValueError):
            pass

    @given(st.binary(min_size=6, max_size=200))
    def test_valid_header_garbage_body(self, group, body):
        data = MAGIC + bytes([1, 1]) + body
        try:
            deserialize_typed_ciphertext(group, data)
        except (EncodingError, ValueError):
            pass

    @given(st.text(max_size=200))
    def test_random_text_never_crashes_envelope(self, group, text):
        try:
            from_json_envelope(group, text)
        except EncodingError:
            pass

    def test_truncation_sweep(self, pre_setting, group, rng):
        """Every strict prefix of a valid encoding is rejected."""
        scheme, kgc1, _, alice, _ = pre_setting
        ciphertext = scheme.encrypt(kgc1.params, alice, group.random_gt(rng), "t", rng)
        blob = serialize_typed_ciphertext(group, ciphertext)
        for cut in range(len(blob)):
            with pytest.raises((EncodingError, ValueError)):
                deserialize_typed_ciphertext(group, blob[:cut])

    def test_single_byte_corruption_sweep(self, pre_setting, group, rng):
        """Flipping any byte either fails to parse or changes the object."""
        scheme, kgc1, _, alice, _ = pre_setting
        original = scheme.encrypt(kgc1.params, alice, group.random_gt(rng), "t", rng)
        blob = bytearray(serialize_typed_ciphertext(group, original))
        for position in range(0, len(blob), 7):  # stride keeps the test fast
            mutated = bytearray(blob)
            mutated[position] ^= 0xFF
            try:
                parsed = deserialize_typed_ciphertext(group, bytes(mutated))
            except (EncodingError, ValueError):
                continue
            assert parsed != original, "corruption at byte %d went unnoticed" % position


class TestDemFuzz:
    KEY = bytes(32)

    @given(st.binary(max_size=200))
    def test_random_blobs_never_open(self, data):
        with pytest.raises(AuthenticationError):
            open_sealed(self.KEY, data)

    @given(st.binary(min_size=1, max_size=128), st.integers(min_value=0, max_value=10**6))
    def test_bitflip_anywhere_rejected(self, plaintext, position_seed):
        rng = HmacDrbg(plaintext)
        sealed = bytearray(seal(self.KEY, plaintext, rng=rng))
        position = position_seed % len(sealed)
        sealed[position] ^= 0x01
        with pytest.raises(AuthenticationError):
            open_sealed(self.KEY, bytes(sealed))


class TestSchemeInputFuzz:
    @given(st.text(max_size=64))
    def test_arbitrary_type_labels_round_trip(self, group, type_label):
        rng = HmacDrbg("fuzz-types|" + type_label)
        from repro.core.scheme import TypeAndIdentityPre
        from repro.ibe.kgc import KgcRegistry

        registry = KgcRegistry(group, rng)
        kgc = registry.create("K")
        alice = kgc.extract("alice")
        scheme = TypeAndIdentityPre(group)
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc.params, alice, message, type_label, rng)
        assert scheme.decrypt(ciphertext, alice) == message

    @given(st.text(min_size=1, max_size=64))
    def test_arbitrary_identities_work(self, group, identity):
        rng = HmacDrbg("fuzz-ids|" + identity)
        from repro.ibe.kgc import KgcRegistry

        registry = KgcRegistry(group, rng)
        kgc = registry.create("K")
        key = kgc.extract(identity)
        assert group.params.is_in_subgroup(key.point)

    @given(st.text(max_size=32), st.text(max_size=32))
    def test_distinct_types_always_isolated(self, group, type_a, type_b):
        if type_a == type_b:
            return
        rng = HmacDrbg("fuzz-iso|%s|%s" % (type_a, type_b))
        from repro.core.scheme import TypeAndIdentityPre
        from repro.ibe.kgc import KgcRegistry

        registry = KgcRegistry(group, rng)
        kgc1, kgc2 = registry.create("K1"), registry.create("K2")
        alice, bob = kgc1.extract("alice"), kgc2.extract("bob")
        scheme = TypeAndIdentityPre(group)
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, alice, message, type_a, rng)
        proxy_key = scheme.pextract(alice, "bob", type_b, kgc2.params, rng)
        mixed = scheme.preenc(ciphertext, proxy_key, unchecked=True)
        assert scheme.decrypt_reencrypted(mixed, bob) != message
