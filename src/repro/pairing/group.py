"""A charm-crypto-style facade over the pairing substrate.

:class:`PairingGroup` bundles a parameter set with the operations every
pairing-based scheme needs — random sampling, hashing into G1 / Z_q,
scalar multiplication, GT exponentiation and the pairing itself — and
records each expensive operation with :mod:`repro.bench.counters` so that
benchmarks can report exact operation counts per scheme algorithm.

All schemes in :mod:`repro.ibe`, :mod:`repro.core` and
:mod:`repro.baselines` are written against this facade, never against the
raw curve classes.
"""

from __future__ import annotations

import hashlib

from repro.bench.counters import record_operation
from repro.ec.curve import Point
from repro.ec.params import get_params
from repro.ec.scalarmult import FixedBaseTable, wnaf_mul
from repro.ec.supersingular import SupersingularCurve
from repro.math.drbg import RandomSource, system_random
from repro.math.fields import Fp2Element
from repro.math.ntheory import bytes_to_int
from repro.pairing.tate import multi_tate_pairing, tate_pairing

__all__ = ["PairingGroup"]


class PairingGroup:
    """A symmetric prime-order pairing group ``e: G1 x G1 -> GT``."""

    _shared: dict[str, "PairingGroup"] = {}

    def __init__(self, params: SupersingularCurve | str):
        if isinstance(params, str):
            params = get_params(params)
        self.params = params
        self.order = params.q
        self.generator = params.generator

    @classmethod
    def shared(cls, name: str) -> "PairingGroup":
        """A process-wide cached instance (reuses the lazy GT generator)."""
        key = name.upper()
        if key not in cls._shared:
            cls._shared[key] = cls(key)
        return cls._shared[key]

    @classmethod
    def for_scheme(cls, base_name: str, scheme_id: str) -> "PairingGroup":
        """A per-scheme group: the size of ``base_name``, a distinct modulus.

        A multi-scheme server must not run every hosted scheme on one
        pairing group — shared group parameters couple schemes that the
        paper treats as independent deployments, and a cross-scheme
        element would deserialize cleanly instead of failing.  The
        derived parameters are *deterministic* (an HMAC-DRBG seeded from
        the base name and scheme id drives the prime search), so every
        process — server or client — independently computes the same
        group, and they are cached process-wide like :meth:`shared`.

        Named ``"<BASE>:<scheme-id>"`` so wire negotiation (which
        compares group names) distinguishes them from the shared base.
        """
        from repro.ec.params import generate_parameters
        from repro.math.drbg import HmacDrbg

        key = "%s:%s" % (base_name.upper(), scheme_id)
        if key not in cls._shared:
            base = get_params(base_name)
            rng = HmacDrbg("per-scheme-group|%s|%s" % (base_name.upper(), scheme_id))
            params = generate_parameters(
                base.q.bit_length(), base.p.bit_length(), rng=rng, name=key
            )
            cls._shared[key] = cls(params)
        return cls._shared[key]

    # ------------------------------------------------------------- sampling

    def random_scalar(self, rng: RandomSource | None = None) -> int:
        """Uniform element of Z_q^*."""
        rng = rng or system_random()
        return rng.rand_nonzero_below(self.order)

    def random_g1(self, rng: RandomSource | None = None) -> Point:
        """Uniform non-identity element of G1."""
        rng = rng or system_random()
        return self.g1_mul(self.generator, self.random_scalar(rng))

    def random_gt(self, rng: RandomSource | None = None) -> Fp2Element:
        """Uniform non-identity element of GT."""
        rng = rng or system_random()
        return self.gt_exp(self.gt_generator(), self.random_scalar(rng))

    # -------------------------------------------------------------- hashing

    def hash_to_g1(self, data: bytes | str) -> Point:
        """The random oracle H1: {0,1}* -> G1."""
        record_operation("hash_to_g1")
        return self.params.hash_to_group(data)

    def hash_to_scalar(self, data: bytes | str) -> int:
        """A random oracle {0,1}* -> Z_q^* (used as H2 in the paper).

        The digest is expanded 16 bytes past the modulus size so the
        modular reduction bias is negligible.
        """
        if isinstance(data, str):
            data = data.encode("utf-8")
        need = (self.order.bit_length() + 7) // 8 + 16
        digest = b""
        block = 0
        while len(digest) < need:
            digest += hashlib.sha256(b"repro-h2z" + block.to_bytes(2, "big") + data).digest()
            block += 1
        value = bytes_to_int(digest[:need]) % (self.order - 1)
        return value + 1

    def hash_gt_to_bytes(self, element: Fp2Element, length: int = 32) -> bytes:
        """A random oracle GT -> {0,1}^(8*length) (the BF H2 for XOR mode)."""
        seed = b"repro-gt" + self.serialize_gt(element)
        out = b""
        block = 0
        while len(out) < length:
            out += hashlib.sha256(seed + block.to_bytes(2, "big")).digest()
            block += 1
        return out[:length]

    # ----------------------------------------------------- group operations

    def g1_mul(self, point: Point, scalar: int) -> Point:
        """Scalar multiplication in G1 (recorded).

        Uses a precomputed fixed-base table for the group generator and
        wNAF for arbitrary points; both agree with the schoolbook ladder
        (property-tested in ``tests/test_scalarmult.py``).
        """
        record_operation("g1_mul")
        scalar %= self.order
        if point == self.generator:
            return self._generator_table().mul(scalar)
        return wnaf_mul(point, scalar)

    def _generator_table(self) -> FixedBaseTable:
        if not hasattr(self, "_gen_table"):
            self._gen_table = FixedBaseTable(self.generator, self.order.bit_length())
        return self._gen_table

    def g1_add(self, left: Point, right: Point) -> Point:
        return left + right

    def g1_neg(self, point: Point) -> Point:
        return -point

    def g1_identity(self) -> Point:
        return self.params.curve.infinity()

    def gt_generator(self) -> Fp2Element:
        """A fixed generator of GT: e(g, g)."""
        if not hasattr(self, "_gt_generator"):
            self._gt_generator = self.pair(self.generator, self.generator)
        return self._gt_generator

    def gt_exp(self, element: Fp2Element, exponent: int) -> Fp2Element:
        """Exponentiation in GT (recorded)."""
        record_operation("gt_exp")
        return element ** (exponent % self.order)

    def gt_mul(self, left: Fp2Element, right: Fp2Element) -> Fp2Element:
        return left * right

    def gt_div(self, left: Fp2Element, right: Fp2Element) -> Fp2Element:
        return left * right.inverse()

    def gt_inverse(self, element: Fp2Element) -> Fp2Element:
        return element.inverse()

    def gt_identity(self) -> Fp2Element:
        return self.params.gt_identity()

    def pair(self, left: Point, right: Point) -> Fp2Element:
        """The symmetric pairing e: G1 x G1 -> GT (recorded inside)."""
        return tate_pairing(self.params, left, right)

    def multi_pair(self, pairs: list[tuple[Point, Point]]) -> Fp2Element:
        """``prod_i e(P_i, Q_i)`` sharing one final exponentiation."""
        return multi_tate_pairing(self.params, pairs)

    # -------------------------------------------------------- serialization

    def serialize_g1(self, point: Point) -> bytes:
        """Compressed encoding: x-coordinate plus a parity byte."""
        size = (self.params.p.bit_length() + 7) // 8
        if point.is_infinity():
            return b"\x02" + b"\x00" * size
        parity = int(point.y) & 1
        return bytes([parity]) + int(point.x).to_bytes(size, "big")

    def deserialize_g1(self, data: bytes) -> Point:
        size = (self.params.p.bit_length() + 7) // 8
        if len(data) != size + 1:
            raise ValueError("bad G1 encoding length")
        if data[0] == 2:
            return self.g1_identity()
        if data[0] not in (0, 1):
            raise ValueError("bad G1 encoding tag")
        point = self.params.curve.lift_x(bytes_to_int(data[1:]), y_parity=data[0])
        if point is None:
            raise ValueError("x-coordinate is not on the curve")
        return point

    def serialize_gt(self, element: Fp2Element) -> bytes:
        size = (self.params.p.bit_length() + 7) // 8
        return element.a.to_bytes(size, "big") + element.b.to_bytes(size, "big")

    def deserialize_gt(self, data: bytes) -> Fp2Element:
        size = (self.params.p.bit_length() + 7) // 8
        if len(data) != 2 * size:
            raise ValueError("bad GT encoding length")
        return Fp2Element(
            self.params.ext_field, bytes_to_int(data[:size]), bytes_to_int(data[size:])
        )

    def g1_element_size(self) -> int:
        """Size in bytes of a serialized G1 element."""
        return (self.params.p.bit_length() + 7) // 8 + 1

    def gt_element_size(self) -> int:
        """Size in bytes of a serialized GT element."""
        return 2 * ((self.params.p.bit_length() + 7) // 8)

    def scalar_size(self) -> int:
        """Size in bytes of a serialized Z_q scalar."""
        return (self.order.bit_length() + 7) // 8

    def __repr__(self) -> str:
        return "PairingGroup(%s)" % self.params.name
