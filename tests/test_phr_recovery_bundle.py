"""Tests for key recovery (social backup) and FHIR-bundle import/export."""

import pytest

from repro.math.drbg import HmacDrbg
from repro.phr.bundle import (
    RESOURCE_TYPE_BY_CATEGORY,
    BundleError,
    export_bundle,
    import_bundle,
)
from repro.phr.generator import PhrGenerator
from repro.phr.recovery import backup_private_key, recover_private_key

CUSTODIANS = ["family-doctor", "notary", "sister", "best-friend"]


class TestKeyRecovery:
    @pytest.fixture()
    def alice_key(self, two_kgcs):
        return two_kgcs[0].extract("alice")

    def test_round_trip(self, group, alice_key, rng):
        shares = backup_private_key(group, alice_key, CUSTODIANS, threshold=2, rng=rng)
        assert len(shares) == 4
        recovered = recover_private_key(group, shares[:2])
        assert recovered == alice_key

    def test_any_quorum_works(self, group, alice_key, rng):
        shares = backup_private_key(group, alice_key, CUSTODIANS, threshold=3, rng=rng)
        import itertools

        for subset in itertools.combinations(shares, 3):
            assert recover_private_key(group, list(subset)) == alice_key

    def test_below_threshold_fails(self, group, alice_key, rng):
        shares = backup_private_key(group, alice_key, CUSTODIANS, threshold=3, rng=rng)
        with pytest.raises(ValueError):
            recover_private_key(group, shares[:2])

    def test_recovered_key_decrypts(self, group, pre_setting, rng):
        """The restored key is functionally the original."""
        scheme, kgc1, _, alice, _ = pre_setting
        shares = backup_private_key(group, alice, CUSTODIANS, threshold=2, rng=rng)
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, alice, message, "t", rng)
        restored = recover_private_key(group, shares[1:3])
        assert scheme.decrypt(ciphertext, restored) == message

    def test_mixed_backups_rejected(self, group, two_kgcs, rng):
        kgc1, _ = two_kgcs
        shares_a = backup_private_key(group, kgc1.extract("a"), CUSTODIANS, 2, rng)
        shares_b = backup_private_key(group, kgc1.extract("b"), CUSTODIANS, 2, rng)
        with pytest.raises(ValueError):
            recover_private_key(group, [shares_a[0], shares_b[1]])

    def test_duplicate_custodians_rejected(self, group, alice_key, rng):
        with pytest.raises(ValueError):
            backup_private_key(group, alice_key, ["x", "x"], threshold=2, rng=rng)

    def test_empty_shares_rejected(self, group):
        with pytest.raises(ValueError):
            recover_private_key(group, [])

    def test_share_metadata(self, group, alice_key, rng):
        shares = backup_private_key(group, alice_key, CUSTODIANS, threshold=2, rng=rng)
        assert [s.custodian for s in shares] == CUSTODIANS
        assert all(s.identity == "alice" for s in shares)
        assert all(s.threshold == 2 for s in shares)


class TestBundles:
    @pytest.fixture()
    def entries(self):
        generator = PhrGenerator(HmacDrbg("bundle"), "alice")
        return generator.history(entries_per_category=1)

    def test_round_trip(self, entries):
        document = export_bundle("alice", entries)
        patient, imported = import_bundle(document)
        assert patient == "alice"
        assert sorted(imported, key=lambda e: e.entry_id) == sorted(
            entries, key=lambda e: e.entry_id
        )

    def test_every_category_mapped(self, entries):
        categories = {entry.category for entry in entries}
        assert categories <= set(RESOURCE_TYPE_BY_CATEGORY)

    def test_empty_bundle(self):
        patient, imported = import_bundle(export_bundle("alice", []))
        assert imported == [] and patient == ""

    def test_invalid_json(self):
        with pytest.raises(BundleError):
            import_bundle("{broken")

    def test_wrong_resource_type(self):
        with pytest.raises(BundleError):
            import_bundle('{"resourceType": "Patient"}')

    def test_total_mismatch(self, entries):
        import json

        bundle = json.loads(export_bundle("alice", entries[:2]))
        bundle["total"] = 99
        with pytest.raises(BundleError):
            import_bundle(json.dumps(bundle))

    def test_unknown_inner_resource(self):
        document = (
            '{"resourceType": "Bundle", "type": "collection", "total": 1,'
            ' "entry": [{"resource": {"resourceType": "Starship", "id": "x",'
            ' "subject": "a", "recorder": "r", "effectiveDateTime": "2007"}}]}'
        )
        with pytest.raises(BundleError):
            import_bundle(document)

    def test_multi_patient_rejected(self, entries):
        import json

        bundle = json.loads(export_bundle("alice", entries[:2]))
        bundle["entry"][0]["resource"]["subject"] = "mallory"
        with pytest.raises(BundleError):
            import_bundle(json.dumps(bundle))

    def test_bundle_to_encrypted_store(self, group, entries):
        """Hospital export -> bundle -> encrypted PHR, end to end."""
        from repro.phr.workflow import PhrSystem

        system = PhrSystem(group=group, rng=HmacDrbg("bundle-sys"))
        system.register_patient("alice")
        patient, imported = import_bundle(export_bundle("alice", entries))
        for entry in imported:
            system.store_entry(patient, entry)
        total = sum(
            system.proxy_for(c).store.record_count() for c in system.categories()
        )
        assert total == len(entries)
