"""Tests for Shamir sharing and the threshold (escrow-free) KGC."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.scheme import TypeAndIdentityPre
from repro.ibe.boneh_franklin import BonehFranklinIbe
from repro.ibe.kgc import KgcRegistry
from repro.ibe.threshold import ThresholdKgc
from repro.math.drbg import HmacDrbg
from repro.math.shamir import (
    Share,
    lagrange_coefficient_at_zero,
    reconstruct_secret,
    split_secret,
)

Q = 2**61 - 1  # prime field for the pure-Shamir tests


class TestShamir:
    def test_round_trip(self, rng):
        shares = split_secret(123456789, 3, 5, Q, rng)
        assert len(shares) == 5
        assert reconstruct_secret(shares[:3], Q) == 123456789
        assert reconstruct_secret(shares[2:], Q) == 123456789

    def test_any_subset_of_threshold_size(self, rng):
        secret = 42
        shares = split_secret(secret, 2, 4, Q, rng)
        import itertools

        for subset in itertools.combinations(shares, 2):
            assert reconstruct_secret(list(subset), Q) == secret

    def test_below_threshold_gives_wrong_secret(self, rng):
        """t-1 shares interpolate to something unrelated (w.h.p. not s)."""
        secret = 987654321
        shares = split_secret(secret, 3, 5, Q, rng)
        assert reconstruct_secret(shares[:2], Q) != secret

    def test_single_share_threshold_one(self, rng):
        shares = split_secret(7, 1, 3, Q, rng)
        assert all(share.value == 7 for share in shares)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            split_secret(1, 0, 3, Q, rng)
        with pytest.raises(ValueError):
            split_secret(1, 4, 3, Q, rng)
        with pytest.raises(ValueError):
            split_secret(1, 2, Q + 1, Q, rng)
        with pytest.raises(ValueError):
            reconstruct_secret([], Q)
        with pytest.raises(ValueError):
            reconstruct_secret([Share(1, 2), Share(1, 3)], Q)

    def test_lagrange_coefficient_requires_membership(self):
        with pytest.raises(ValueError):
            lagrange_coefficient_at_zero([1, 2], 3, Q)

    @given(
        st.integers(min_value=0, max_value=Q - 1),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=4),
    )
    def test_round_trip_property(self, secret, threshold, extra):
        share_count = threshold + extra
        rng = HmacDrbg("shamir-%d-%d-%d" % (secret % 1000, threshold, extra))
        shares = split_secret(secret, threshold, share_count, Q, rng)
        assert reconstruct_secret(shares[:threshold], Q) == secret

    def test_shares_of_same_secret_randomised(self):
        a = split_secret(5, 2, 3, Q, HmacDrbg("a"))
        b = split_secret(5, 2, 3, Q, HmacDrbg("b"))
        assert [s.value for s in a] != [s.value for s in b]


class TestThresholdKgc:
    @pytest.fixture()
    def kgc(self, group, rng):
        return ThresholdKgc(group, "DIST-KGC", threshold=3, server_count=5, rng=rng)

    def test_extract_matches_standard_bf_key(self, kgc, group):
        """The combined key verifies against the published public key."""
        key = kgc.extract("alice")
        ibe = BonehFranklinIbe(group, "DIST-KGC")
        pk_id = ibe.public_key_of("alice")
        # e(sk, g) == e(pk_id, pk): the defining equation of a BF key.
        assert group.pair(key.point, group.generator) == group.pair(
            pk_id, kgc.params.public_key
        )

    def test_any_t_subset_gives_identical_key(self, kgc):
        key_a = kgc.extract("alice", server_indices=[1, 2, 3])
        key_b = kgc.extract("alice", server_indices=[2, 4, 5])
        key_c = kgc.extract("alice", server_indices=[1, 3, 5])
        assert key_a == key_b == key_c

    def test_too_few_servers_rejected(self, kgc):
        with pytest.raises(ValueError):
            kgc.extract("alice", server_indices=[1, 2])

    def test_combine_validations(self, kgc):
        partials = [server.extract_partial("alice") for server in kgc.servers[:3]]
        with pytest.raises(ValueError):
            kgc.combine(partials[:2])  # below threshold
        mixed = partials[:2] + [kgc.servers[2].extract_partial("bob")]
        with pytest.raises(ValueError):
            kgc.combine(mixed)  # mixed identities
        with pytest.raises(ValueError):
            kgc.combine([partials[0]] * 3)  # duplicate servers

    def test_below_threshold_collusion_learns_nothing(self, kgc, group):
        """t-1 shares reconstruct a value whose public key mismatches."""
        from repro.math.shamir import reconstruct_secret as reconstruct

        shares = [server.reveal_share_for_test() for server in kgc.servers[:2]]
        guessed_alpha = reconstruct(shares, group.order)
        assert group.g1_mul(group.generator, guessed_alpha) != kgc.params.public_key

    def test_threshold_collusion_does_recover(self, kgc, group):
        """Exactly t shares reconstruct alpha — the threshold is tight."""
        from repro.math.shamir import reconstruct_secret as reconstruct

        shares = [server.reveal_share_for_test() for server in kgc.servers[:3]]
        alpha = reconstruct(shares, group.order)
        assert group.g1_mul(group.generator, alpha) == kgc.params.public_key

    def test_validation_of_parameters(self, group, rng):
        with pytest.raises(ValueError):
            ThresholdKgc(group, "D", threshold=0, server_count=3, rng=rng)
        with pytest.raises(ValueError):
            ThresholdKgc(group, "D", threshold=4, server_count=3, rng=rng)

    def test_threshold_keys_drive_the_paper_scheme(self, kgc, group, rng):
        """End-to-end: the PRE runs unchanged on threshold-extracted keys."""
        registry = KgcRegistry(group, rng)
        kgc2 = registry.create("KGC2")
        alice = kgc.extract("alice")  # threshold-extracted delegator key
        bob = kgc2.extract("bob")
        scheme = TypeAndIdentityPre(group)
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc.params, alice, message, "labs", rng)
        assert scheme.decrypt(ciphertext, alice) == message
        proxy_key = scheme.pextract(alice, "bob", "labs", kgc2.params, rng)
        transformed = scheme.preenc(ciphertext, proxy_key)
        assert scheme.decrypt_reencrypted(transformed, bob) == message
