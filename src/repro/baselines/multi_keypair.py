"""The naive alternative the paper dismisses: one key pair per type.

Section 1.1: *"an alternative solution would be that the delegator chooses
a different key pair for each delegatee [and type], which is also
unrealistic."*  To quantify that claim (experiment E3), this module
implements the strawman faithfully: for every message type the delegator
registers a **separate identity** ``id_i#t`` at his KGC, obtains a separate
private key, and delegates with plain Green--Ateniese IBP1 (which has no
type granularity, so granularity must come from key multiplicity).

Functionally this matches the paper's scheme — per-type delegation with no
extra proxy trust — but the delegator's key-material and the KGC's
extraction load grow linearly with the number of types, and every new type
requires a round-trip to the KGC instead of a local ``Pextract``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.green_ateniese import (
    GaProxyKey,
    GaReEncryptedCiphertext,
    GreenAtenieseIbp1,
)
from repro.ibe.kgc import KeyGenerationCenter
from repro.ibe.keys import IbeCiphertext, IbeParams, IbePrivateKey
from repro.math.drbg import RandomSource, system_random
from repro.math.fields import Fp2Element
from repro.pairing.group import PairingGroup

__all__ = ["MultiKeypairDelegation"]


@dataclass
class MultiKeypairDelegation:
    """Per-type keys + Green--Ateniese delegation: the E3 strawman.

    ``kgc`` is the delegator's KGC (it must answer one Extract query per
    type); ``base_identity`` is the delegator's real identity.
    """

    group: PairingGroup
    kgc: KeyGenerationCenter
    base_identity: str
    _type_keys: dict[str, IbePrivateKey] = field(default_factory=dict)
    _scheme: GreenAtenieseIbp1 = field(init=False)

    def __post_init__(self):
        self._scheme = GreenAtenieseIbp1(self.group)

    def type_identity(self, type_label: str) -> str:
        """The synthetic identity registered for one type."""
        return "%s#%s" % (self.base_identity, type_label)

    def key_for_type(self, type_label: str) -> IbePrivateKey:
        """Fetch (extracting on first use) the per-type private key.

        Every *new* type costs a KGC Extract round-trip — the cost E3
        charges against this baseline.
        """
        if type_label not in self._type_keys:
            self._type_keys[type_label] = self.kgc.extract(self.type_identity(type_label))
        return self._type_keys[type_label]

    def key_count(self) -> int:
        """Number of private keys the delegator must store."""
        return len(self._type_keys)

    def key_storage_bytes(self) -> int:
        """Bytes of private-key material held by the delegator."""
        return self.key_count() * self.group.g1_element_size()

    def encrypt(
        self, message: Fp2Element, type_label: str, rng: RandomSource | None = None
    ) -> IbeCiphertext:
        """Encrypt under the per-type identity (ensures the key exists)."""
        self.key_for_type(type_label)
        return self._scheme.encrypt(
            self.kgc.params, message, self.type_identity(type_label), rng or system_random()
        )

    def decrypt(self, ciphertext: IbeCiphertext, type_label: str) -> Fp2Element:
        return self._scheme.decrypt(ciphertext, self.key_for_type(type_label))

    def delegate(
        self,
        type_label: str,
        delegatee_identity: str,
        delegatee_params: IbeParams,
        rng: RandomSource | None = None,
    ) -> GaProxyKey:
        """Produce the per-type proxy key (GA rkgen under the type identity)."""
        return self._scheme.rkgen(
            self.key_for_type(type_label), delegatee_identity, delegatee_params, rng
        )

    def reencrypt(self, ciphertext: IbeCiphertext, key: GaProxyKey) -> GaReEncryptedCiphertext:
        return self._scheme.reencrypt(ciphertext, key)

    def decrypt_reencrypted(
        self, ciphertext: GaReEncryptedCiphertext, delegatee_key: IbePrivateKey
    ) -> Fp2Element:
        return self._scheme.decrypt_reencrypted(ciphertext, delegatee_key)
