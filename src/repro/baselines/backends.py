"""The related-work schemes as registered :class:`PreBackend` s.

Each backend wires one baseline scheme into the scheme-agnostic gateway
API: parties are (domain, identity) pairs, ciphertexts and proxy keys
travel inside the generic wrapped envelopes (the native containers of
these schemes carry no routing metadata), and every backend supplies the
payload codecs the wrapped serialization needs — so the durable key
table, the wire protocol and the benchmarks move their envelopes exactly
like the paper's own.

Re-encryption never touches party state: a serving process deserializes
a wrapped key and transforms with group operations only, which is what
lets ``repro-pre serve --http --scheme afgh/v1`` run with nothing but
the pairing group.
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.baselines.afgh import (
    AfghFirstLevelCiphertext,
    AfghKeyPair,
    AfghScheme,
    AfghSecondLevelCiphertext,
)
from repro.baselines.bb1 import Bb1Ciphertext, Bb1Ibe, Bb1MasterKey, Bb1Params, Bb1PrivateKey
from repro.baselines.bbs import BbsCiphertext, BbsProxyScheme
from repro.baselines.dodis_ivan import DodisIvanScheme, PartiallyDecrypted, SecretShares
from repro.baselines.elgamal import ElGamalCiphertext, ElGamalKeyPair
from repro.baselines.green_ateniese import (
    GaProxyKey,
    GaReEncryptedCiphertext,
    GreenAtenieseIbp1,
)
from repro.baselines.matsuo import MatsuoProxyKey, MatsuoReEncrypted, MatsuoStylePre
from repro.core.api import (
    PreBackend,
    SchemeCapabilities,
    WrappedCiphertext,
    WrappedProxyKey,
    WrappedReEncrypted,
    register_backend,
)
from repro.core.scheme import DelegationError
from repro.core.tipre_backend import KgcPartyMixin
from repro.serialization.containers import (
    deserialize_ibe_ciphertext,
    serialize_ibe_ciphertext,
)
from repro.serialization.encoding import Reader, Writer

__all__ = [
    "GreenAtenieseBackend",
    "AfghBackend",
    "BbsBackend",
    "MatsuoBackend",
    "DodisIvanBackend",
]

# One payload kind byte per envelope slot, shared by every wrapped
# backend — the scheme id is enforced by the envelope layer above.
_PAYLOAD_KINDS = {"ciphertext": 40, "proxy-key": 41, "reencrypted": 42}


class _WrappingBackend(PreBackend):
    """Shared plumbing: envelope construction and the metadata guard."""

    def _wrap_ciphertext(self, domain: str, identity: str, type_label: str, payload: Any):
        return WrappedCiphertext(
            scheme_id=self.scheme_id,
            domain=domain,
            identity=identity,
            type_label=type_label,
            payload=payload,
        )

    def _wrap_key(self, index: tuple[str, str, str, str, str], payload: Any):
        delegator_domain, delegator, delegatee_domain, delegatee, type_label = index
        return WrappedProxyKey(
            scheme_id=self.scheme_id,
            delegator_domain=delegator_domain,
            delegator=delegator,
            delegatee_domain=delegatee_domain,
            delegatee=delegatee,
            type_label=type_label,
            payload=payload,
        )

    def _wrap_reencrypted(self, key: WrappedProxyKey, payload: Any):
        return WrappedReEncrypted(
            scheme_id=self.scheme_id,
            delegator_domain=key.delegator_domain,
            delegator=key.delegator,
            delegatee_domain=key.delegatee_domain,
            delegatee=key.delegatee,
            type_label=key.type_label,
            payload=payload,
        )

    def _guard(self, ciphertext: WrappedCiphertext, key: WrappedProxyKey) -> None:
        """The gateway-level policy check every transformation pays.

        For schemes without cryptographic type granularity this guard is
        the *only* thing scoping a key to its label — which is exactly
        the contrast experiment E7 demonstrates.
        """
        if not key.matches(ciphertext):
            raise DelegationError(
                "proxy key %s->%s (type %r) does not match ciphertext of %s (type %r)"
                % (
                    key.delegator,
                    key.delegatee,
                    key.type_label,
                    ciphertext.identity,
                    ciphertext.type_label,
                )
            )

    def _payload_writer(self, kind: str) -> Writer:
        return Writer(_PAYLOAD_KINDS[kind])

    def _payload_reader(self, kind: str, blob: bytes) -> Reader:
        return Reader(blob, _PAYLOAD_KINDS[kind])


# --------------------------------------------------------- Green--Ateniese


@register_backend
class GreenAtenieseBackend(KgcPartyMixin, _WrappingBackend):
    """Green--Ateniese IBP1: IBE-to-IBE, no type granularity."""

    scheme_id: ClassVar[str] = "green-ateniese/v1"
    display_name: ClassVar[str] = "Green-Ateniese IBP1"
    capabilities: ClassVar[SchemeCapabilities] = SchemeCapabilities(
        unidirectional=True,
        non_interactive=True,
        collusion_safe=True,
        identity_based=True,
        type_granular=False,
        deterministic_reencrypt=True,
    )

    def __init__(self, group):
        super().__init__(group)
        self.scheme = GreenAtenieseIbp1(group)
        self._init_party_state()

    def encrypt(self, domain: str, identity: str, message, type_label: str, rng):
        ciphertext = self.scheme.encrypt(self._kgc(domain).params, message, identity, rng)
        return self._wrap_ciphertext(domain, identity, type_label, ciphertext)

    def rekey(self, delegator_domain, delegator, delegatee_domain, delegatee, type_label, rng):
        payload = self.scheme.rkgen(
            self._key(delegator_domain, delegator),
            delegatee,
            self._kgc(delegatee_domain).params,
            rng,
        )
        return self._wrap_key(
            (delegator_domain, delegator, delegatee_domain, delegatee, type_label), payload
        )

    def reencrypt(self, ciphertext, proxy_key):
        self._guard(ciphertext, proxy_key)
        return self._wrap_reencrypted(
            proxy_key, self.scheme.reencrypt(ciphertext.payload, proxy_key.payload)
        )

    def decrypt_original(self, ciphertext, domain: str, identity: str):
        return self.scheme.decrypt(ciphertext.payload, self._key(domain, identity))

    def decrypt_reencrypted(self, ciphertext, domain: str, identity: str):
        return self.scheme.decrypt_reencrypted(
            ciphertext.payload, self._key(domain, identity)
        )

    # -------------------------------------------------------- payload codecs

    def _encode_payload(self, kind: str, payload) -> bytes:
        writer = self._payload_writer(kind)
        if kind == "ciphertext":
            writer.write_bytes(serialize_ibe_ciphertext(self.group, payload))
        elif kind == "proxy-key":
            writer.write_str(payload.delegator_domain).write_str(payload.delegator)
            writer.write_str(payload.delegatee_domain).write_str(payload.delegatee)
            writer.write_bytes(self.group.serialize_g1(payload.rk_point))
            writer.write_bytes(serialize_ibe_ciphertext(self.group, payload.encrypted_blind))
        else:  # reencrypted
            writer.write_str(payload.delegatee_domain).write_str(payload.delegatee)
            writer.write_bytes(self.group.serialize_g1(payload.c1))
            writer.write_bytes(self.group.serialize_gt(payload.c2))
            writer.write_bytes(serialize_ibe_ciphertext(self.group, payload.encrypted_blind))
        return writer.getvalue()

    def _decode_payload(self, kind: str, blob: bytes):
        reader = self._payload_reader(kind, blob)
        if kind == "ciphertext":
            payload = deserialize_ibe_ciphertext(self.group, reader.read_bytes())
        elif kind == "proxy-key":
            payload = GaProxyKey(
                delegator_domain=reader.read_str(),
                delegator=reader.read_str(),
                delegatee_domain=reader.read_str(),
                delegatee=reader.read_str(),
                rk_point=self.group.deserialize_g1(reader.read_bytes()),
                encrypted_blind=deserialize_ibe_ciphertext(self.group, reader.read_bytes()),
            )
        else:
            payload = GaReEncryptedCiphertext(
                delegatee_domain=reader.read_str(),
                delegatee=reader.read_str(),
                c1=self.group.deserialize_g1(reader.read_bytes()),
                c2=self.group.deserialize_gt(reader.read_bytes()),
                encrypted_blind=deserialize_ibe_ciphertext(self.group, reader.read_bytes()),
            )
        reader.finish()
        return payload


# -------------------------------------------------------------------- AFGH


@register_backend
class AfghBackend(_WrappingBackend):
    """AFGH (TISSEC'06): key pairs, second-level to first-level transform."""

    scheme_id: ClassVar[str] = "afgh/v1"
    display_name: ClassVar[str] = "AFGH (TISSEC'06)"
    capabilities: ClassVar[SchemeCapabilities] = SchemeCapabilities(
        unidirectional=True,
        non_interactive=True,
        collusion_safe=True,
        identity_based=False,
        type_granular=False,
        deterministic_reencrypt=True,
    )

    def __init__(self, group):
        super().__init__(group)
        self.scheme = AfghScheme(group)
        self._pairs: dict[tuple[str, str], AfghKeyPair] = {}

    def setup(self, rng) -> None:
        self._pairs = {}

    def create_party(self, domain: str, identity: str, rng) -> None:
        if (domain, identity) not in self._pairs:
            self._pairs[(domain, identity)] = self.scheme.keygen(rng)

    def sample_message(self, rng):
        return self.group.random_gt(rng)

    def encrypt(self, domain: str, identity: str, message, type_label: str, rng):
        pair = self._pairs[(domain, identity)]
        ciphertext = self.scheme.encrypt_second(identity, pair.public, message, rng)
        return self._wrap_ciphertext(domain, identity, type_label, ciphertext)

    def rekey(self, delegator_domain, delegator, delegatee_domain, delegatee, type_label, rng):
        payload = self.scheme.rekey(
            self._pairs[(delegator_domain, delegator)].secret,
            self._pairs[(delegatee_domain, delegatee)].public,
        )
        return self._wrap_key(
            (delegator_domain, delegator, delegatee_domain, delegatee, type_label), payload
        )

    def reencrypt(self, ciphertext, proxy_key):
        self._guard(ciphertext, proxy_key)
        return self._wrap_reencrypted(
            proxy_key,
            self.scheme.reencrypt(ciphertext.payload, proxy_key.payload, proxy_key.delegatee),
        )

    def decrypt_original(self, ciphertext, domain: str, identity: str):
        return self.scheme.decrypt_second(
            ciphertext.payload, self._pairs[(domain, identity)].secret
        )

    def decrypt_reencrypted(self, ciphertext, domain: str, identity: str):
        return self.scheme.decrypt_first(
            ciphertext.payload, self._pairs[(domain, identity)].secret
        )

    def _encode_payload(self, kind: str, payload) -> bytes:
        writer = self._payload_writer(kind)
        if kind == "ciphertext":
            writer.write_str(payload.owner)
            writer.write_bytes(self.group.serialize_g1(payload.c1))
            writer.write_bytes(self.group.serialize_gt(payload.c2))
        elif kind == "proxy-key":
            writer.write_bytes(self.group.serialize_g1(payload))
        else:  # reencrypted: first-level, both components in GT
            writer.write_str(payload.owner)
            writer.write_bytes(self.group.serialize_gt(payload.c1))
            writer.write_bytes(self.group.serialize_gt(payload.c2))
        return writer.getvalue()

    def _decode_payload(self, kind: str, blob: bytes):
        reader = self._payload_reader(kind, blob)
        if kind == "ciphertext":
            payload = AfghSecondLevelCiphertext(
                owner=reader.read_str(),
                c1=self.group.deserialize_g1(reader.read_bytes()),
                c2=self.group.deserialize_gt(reader.read_bytes()),
            )
        elif kind == "proxy-key":
            payload = self.group.deserialize_g1(reader.read_bytes())
        else:
            payload = AfghFirstLevelCiphertext(
                owner=reader.read_str(),
                c1=self.group.deserialize_gt(reader.read_bytes()),
                c2=self.group.deserialize_gt(reader.read_bytes()),
            )
        reader.finish()
        return payload


# --------------------------------------------------------------------- BBS


@register_backend
class BbsBackend(_WrappingBackend):
    """BBS (EUROCRYPT'98): bidirectional, interactive ElGamal proxy."""

    scheme_id: ClassVar[str] = "bbs/v1"
    display_name: ClassVar[str] = "BBS (EUROCRYPT'98)"
    capabilities: ClassVar[SchemeCapabilities] = SchemeCapabilities(
        unidirectional=False,
        non_interactive=False,
        collusion_safe=False,
        identity_based=False,
        type_granular=False,
        deterministic_reencrypt=True,
    )

    def __init__(self, group):
        super().__init__(group)
        self.scheme = BbsProxyScheme(group)
        self._pairs: dict[tuple[str, str], ElGamalKeyPair] = {}

    def setup(self, rng) -> None:
        self._pairs = {}

    def create_party(self, domain: str, identity: str, rng) -> None:
        if (domain, identity) not in self._pairs:
            self._pairs[(domain, identity)] = self.scheme.keygen(rng)

    def sample_message(self, rng):
        return self.group.random_g1(rng)

    def encrypt(self, domain: str, identity: str, message, type_label: str, rng):
        pair = self._pairs[(domain, identity)]
        ciphertext = self.scheme.encrypt(identity, pair.public, message, rng)
        return self._wrap_ciphertext(domain, identity, type_label, ciphertext)

    def rekey(self, delegator_domain, delegator, delegatee_domain, delegatee, type_label, rng):
        # Interactive: the dealer needs both secrets (the scheme's
        # documented weakness, not an accident of this backend).
        payload = self.scheme.rekey(
            self._pairs[(delegator_domain, delegator)].secret,
            self._pairs[(delegatee_domain, delegatee)].secret,
        )
        return self._wrap_key(
            (delegator_domain, delegator, delegatee_domain, delegatee, type_label), payload
        )

    def reencrypt(self, ciphertext, proxy_key):
        self._guard(ciphertext, proxy_key)
        return self._wrap_reencrypted(
            proxy_key,
            self.scheme.reencrypt(ciphertext.payload, proxy_key.payload, proxy_key.delegatee),
        )

    def decrypt_original(self, ciphertext, domain: str, identity: str):
        return self.scheme.decrypt(ciphertext.payload, self._pairs[(domain, identity)].secret)

    def decrypt_reencrypted(self, ciphertext, domain: str, identity: str):
        return self.scheme.decrypt(ciphertext.payload, self._pairs[(domain, identity)].secret)

    def _encode_payload(self, kind: str, payload) -> bytes:
        writer = self._payload_writer(kind)
        if kind == "proxy-key":
            writer.write_int(payload)
        else:  # ciphertext and reencrypted share the BbsCiphertext shape
            writer.write_str(payload.owner)
            writer.write_bytes(self.group.serialize_g1(payload.c1))
            writer.write_bytes(self.group.serialize_g1(payload.c2))
        return writer.getvalue()

    def _decode_payload(self, kind: str, blob: bytes):
        reader = self._payload_reader(kind, blob)
        if kind == "proxy-key":
            payload = reader.read_int()
        else:
            payload = BbsCiphertext(
                owner=reader.read_str(),
                c1=self.group.deserialize_g1(reader.read_bytes()),
                c2=self.group.deserialize_g1(reader.read_bytes()),
            )
        reader.finish()
        return payload


# ------------------------------------------------------------ Matsuo (BB1)


@register_backend
class MatsuoBackend(_WrappingBackend):
    """Matsuo-style BB1 IBE-to-IBE PRE (same-KGC reconstruction)."""

    scheme_id: ClassVar[str] = "matsuo/v1"
    display_name: ClassVar[str] = "Matsuo-style (BB1)"
    single_authority: ClassVar[bool] = True
    capabilities: ClassVar[SchemeCapabilities] = SchemeCapabilities(
        unidirectional=True,
        non_interactive=True,
        collusion_safe=True,
        identity_based=True,
        type_granular=False,
        deterministic_reencrypt=True,
    )

    def __init__(self, group):
        super().__init__(group)
        self._domains: dict[str, tuple[Bb1Ibe, Bb1Params, Bb1MasterKey]] = {}
        self._keys: dict[tuple[str, str], Bb1PrivateKey] = {}

    def setup(self, rng) -> None:
        self._domains = {}
        self._keys = {}

    def _domain(self, domain: str, rng=None) -> tuple[Bb1Ibe, Bb1Params, Bb1MasterKey]:
        if domain not in self._domains:
            if rng is None:
                raise ValueError("no BB1 domain %r; create a party there first" % domain)
            ibe = Bb1Ibe(self.group, domain)
            params, master = ibe.setup(rng)
            self._domains[domain] = (ibe, params, master)
        return self._domains[domain]

    def create_party(self, domain: str, identity: str, rng) -> None:
        if (domain, identity) not in self._keys:
            ibe, params, master = self._domain(domain, rng)
            self._keys[(domain, identity)] = ibe.extract(params, master, identity, rng)

    def sample_message(self, rng):
        return self.group.random_gt(rng)

    def encrypt(self, domain: str, identity: str, message, type_label: str, rng):
        ibe, params, _master = self._domain(domain)
        ciphertext = MatsuoStylePre(self.group, ibe).encrypt(params, message, identity, rng)
        return self._wrap_ciphertext(domain, identity, type_label, ciphertext)

    def rekey(self, delegator_domain, delegator, delegatee_domain, delegatee, type_label, rng):
        if delegator_domain != delegatee_domain:
            raise DelegationError(
                "Matsuo-style PRE requires delegator and delegatee under one KGC"
            )
        ibe, params, _master = self._domain(delegator_domain)
        payload = MatsuoStylePre(self.group, ibe).rkgen(
            params, self._keys[(delegator_domain, delegator)], delegatee, rng
        )
        return self._wrap_key(
            (delegator_domain, delegator, delegatee_domain, delegatee, type_label), payload
        )

    def reencrypt(self, ciphertext, proxy_key):
        self._guard(ciphertext, proxy_key)
        # Transformation is pure group arithmetic; the Bb1Ibe instance is
        # stateless, so a serving process needs no domain setup.
        scheme = MatsuoStylePre(self.group, Bb1Ibe(self.group, ciphertext.domain))
        return self._wrap_reencrypted(
            proxy_key, scheme.reencrypt(ciphertext.payload, proxy_key.payload)
        )

    def decrypt_original(self, ciphertext, domain: str, identity: str):
        ibe, _params, _master = self._domain(domain)
        return MatsuoStylePre(self.group, ibe).decrypt(
            ciphertext.payload, self._keys[(domain, identity)]
        )

    def decrypt_reencrypted(self, ciphertext, domain: str, identity: str):
        ibe, _params, _master = self._domain(domain)
        return MatsuoStylePre(self.group, ibe).decrypt_reencrypted(
            ciphertext.payload, self._keys[(domain, identity)]
        )

    def ciphertext_components(self, ciphertext) -> int:
        return 3

    def _bb1_to_writer(self, writer: Writer, ciphertext: Bb1Ciphertext) -> None:
        writer.write_str(ciphertext.domain).write_str(ciphertext.identity)
        writer.write_bytes(self.group.serialize_gt(ciphertext.a))
        writer.write_bytes(self.group.serialize_g1(ciphertext.b))
        writer.write_bytes(self.group.serialize_g1(ciphertext.c))

    def _bb1_from_reader(self, reader: Reader) -> Bb1Ciphertext:
        return Bb1Ciphertext(
            domain=reader.read_str(),
            identity=reader.read_str(),
            a=self.group.deserialize_gt(reader.read_bytes()),
            b=self.group.deserialize_g1(reader.read_bytes()),
            c=self.group.deserialize_g1(reader.read_bytes()),
        )

    def _encode_payload(self, kind: str, payload) -> bytes:
        writer = self._payload_writer(kind)
        if kind == "ciphertext":
            self._bb1_to_writer(writer, payload)
        elif kind == "proxy-key":
            writer.write_str(payload.delegator).write_str(payload.delegatee)
            writer.write_bytes(self.group.serialize_g1(payload.rk0))
            writer.write_bytes(self.group.serialize_g1(payload.rk1))
            self._bb1_to_writer(writer, payload.encrypted_blind)
        else:  # reencrypted
            writer.write_str(payload.delegatee)
            writer.write_bytes(self.group.serialize_gt(payload.a))
            writer.write_bytes(self.group.serialize_g1(payload.b))
            self._bb1_to_writer(writer, payload.encrypted_blind)
        return writer.getvalue()

    def _decode_payload(self, kind: str, blob: bytes):
        reader = self._payload_reader(kind, blob)
        if kind == "ciphertext":
            payload = self._bb1_from_reader(reader)
        elif kind == "proxy-key":
            payload = MatsuoProxyKey(
                delegator=reader.read_str(),
                delegatee=reader.read_str(),
                rk0=self.group.deserialize_g1(reader.read_bytes()),
                rk1=self.group.deserialize_g1(reader.read_bytes()),
                encrypted_blind=self._bb1_from_reader(reader),
            )
        else:
            payload = MatsuoReEncrypted(
                delegatee=reader.read_str(),
                a=self.group.deserialize_gt(reader.read_bytes()),
                b=self.group.deserialize_g1(reader.read_bytes()),
                encrypted_blind=self._bb1_from_reader(reader),
            )
        reader.finish()
        return payload


# -------------------------------------------------------------- Dodis-Ivan


@register_backend
class DodisIvanBackend(_WrappingBackend):
    """Dodis--Ivan (NDSS'03): secret splitting, proxy partially decrypts.

    The proxy key envelope carries only the *proxy* share; the delegatee
    share stays with the backend that ran :meth:`rekey` (the delegator's
    side), mirroring the scheme's out-of-band share hand-off.
    """

    scheme_id: ClassVar[str] = "dodis-ivan/v1"
    display_name: ClassVar[str] = "Dodis-Ivan (NDSS'03)"
    capabilities: ClassVar[SchemeCapabilities] = SchemeCapabilities(
        unidirectional=True,
        non_interactive=True,
        collusion_safe=False,
        identity_based=False,
        type_granular=False,
        deterministic_reencrypt=True,
    )

    def __init__(self, group):
        super().__init__(group)
        self.scheme = DodisIvanScheme(group)
        self._pairs: dict[tuple[str, str], ElGamalKeyPair] = {}
        self._delegatee_shares: dict[tuple[str, str, str, str, str], int] = {}

    def setup(self, rng) -> None:
        self._pairs = {}
        self._delegatee_shares = {}

    def create_party(self, domain: str, identity: str, rng) -> None:
        if (domain, identity) not in self._pairs:
            self._pairs[(domain, identity)] = self.scheme.keygen(rng)

    def sample_message(self, rng):
        return self.group.random_g1(rng)

    def encrypt(self, domain: str, identity: str, message, type_label: str, rng):
        pair = self._pairs[(domain, identity)]
        return self._wrap_ciphertext(
            domain, identity, type_label, self.scheme.encrypt(pair.public, message, rng)
        )

    def rekey(self, delegator_domain, delegator, delegatee_domain, delegatee, type_label, rng):
        index = (delegator_domain, delegator, delegatee_domain, delegatee, type_label)
        shares: SecretShares = self.scheme.split(
            self._pairs[(delegator_domain, delegator)].secret, rng
        )
        self._delegatee_shares[index] = shares.delegatee_share
        return self._wrap_key(index, shares.proxy_share)

    def reencrypt(self, ciphertext, proxy_key):
        self._guard(ciphertext, proxy_key)
        return self._wrap_reencrypted(
            proxy_key, self.scheme.proxy_transform(ciphertext.payload, proxy_key.payload)
        )

    def decrypt_original(self, ciphertext, domain: str, identity: str):
        return self.scheme.decrypt(ciphertext.payload, self._pairs[(domain, identity)].secret)

    def decrypt_reencrypted(self, ciphertext, domain: str, identity: str):
        index = (
            ciphertext.delegator_domain,
            ciphertext.delegator,
            ciphertext.delegatee_domain,
            ciphertext.delegatee,
            ciphertext.type_label,
        )
        try:
            share = self._delegatee_shares[index]
        except KeyError:
            raise DelegationError(
                "no delegatee share for %s->%s; rekey ran elsewhere"
                % (ciphertext.delegator, ciphertext.delegatee)
            ) from None
        return self.scheme.delegatee_decrypt(ciphertext.payload, share)

    def _encode_payload(self, kind: str, payload) -> bytes:
        writer = self._payload_writer(kind)
        if kind == "ciphertext":
            writer.write_bytes(self.group.serialize_g1(payload.c1))
            writer.write_bytes(self.group.serialize_g1(payload.c2))
        elif kind == "proxy-key":
            writer.write_int(payload)
        else:  # reencrypted: partially decrypted pair
            writer.write_bytes(self.group.serialize_g1(payload.c1))
            writer.write_bytes(self.group.serialize_g1(payload.c2))
        return writer.getvalue()

    def _decode_payload(self, kind: str, blob: bytes):
        reader = self._payload_reader(kind, blob)
        if kind == "ciphertext":
            payload = ElGamalCiphertext(
                c1=self.group.deserialize_g1(reader.read_bytes()),
                c2=self.group.deserialize_g1(reader.read_bytes()),
            )
        elif kind == "proxy-key":
            payload = reader.read_int()
        else:
            payload = PartiallyDecrypted(
                c1=self.group.deserialize_g1(reader.read_bytes()),
                c2=self.group.deserialize_g1(reader.read_bytes()),
            )
        reader.finish()
        return payload
