"""Timing helpers for the experiment harness.

``pytest-benchmark`` drives the statistical measurement in
``benchmarks/``; these helpers serve the *tables* — quick wall-clock
medians and operation counts printed in the paper-style rows that
EXPERIMENTS.md records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.counters import count_operations

__all__ = ["TimedResult", "measure"]


@dataclass(frozen=True)
class TimedResult:
    """Median wall time plus the group-operation profile of one callable."""

    label: str
    median_ms: float
    min_ms: float
    repeats: int
    operations: dict[str, int]

    def operations_summary(self) -> str:
        """Compact ``pairing=2 g1_mul=1`` style summary."""
        if not self.operations:
            return "-"
        return " ".join("%s=%d" % (k, v) for k, v in sorted(self.operations.items()))


def measure(label: str, fn, repeats: int = 5) -> TimedResult:
    """Run ``fn`` ``repeats`` times; report median/min time and op counts.

    The operation counter is active only on the first run (the counts are
    deterministic), so counting overhead does not pollute the timings.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    with count_operations() as counter:
        start = time.perf_counter()
        fn()
        first = (time.perf_counter() - start) * 1000.0
    times = [first]
    for _ in range(repeats - 1):
        start = time.perf_counter()
        fn()
        times.append((time.perf_counter() - start) * 1000.0)
    times.sort()
    median = times[len(times) // 2]
    return TimedResult(
        label=label,
        median_ms=median,
        min_ms=times[0],
        repeats=repeats,
        operations=counter.as_dict(),
    )
