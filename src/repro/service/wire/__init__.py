"""HTTP/JSON wire protocol for the re-encryption gateway.

The paper's proxy is a *server* patients and clinicians reach over a
network; this package makes that literal.  Three layers:

* :mod:`repro.service.wire.codec` — versioned JSON messages for every
  gateway request/response dataclass, reusing the canonical container
  serialization for group elements; malformed input is rejected with
  the stable ``invalid-request`` code;
* :mod:`repro.service.wire.server` — :class:`GatewayHttpServer`, one or
  several scheme fleets behind stdlib ``ThreadingHTTPServer``
  (scheme-id-prefixed routes, ``GET /v1/schemes`` enumeration) with the
  error taxonomy mapped to HTTP statuses;
* :mod:`repro.service.wire.client` — :class:`RemoteGateway`, the same
  typed API as the in-process gateway, so drivers and benchmarks run
  unchanged against either.
"""

from repro.service.wire.client import RemoteGateway, SchemeMismatchError, WireTransportError
from repro.service.wire.codec import (
    ERROR_TYPES,
    WIRE_FORMAT,
    GrantBatchRequest,
    GrantBatchResponse,
    ReEncryptBatchRequest,
    ReEncryptBatchResponse,
    ResizeRequest,
    from_wire,
    neutral_error_to_wire,
    scheme_document,
    to_wire,
)
from repro.service.wire.server import STATUS_BY_CODE, GatewayHttpServer

__all__ = [
    "ERROR_TYPES",
    "GatewayHttpServer",
    "GrantBatchRequest",
    "GrantBatchResponse",
    "ReEncryptBatchRequest",
    "ReEncryptBatchResponse",
    "RemoteGateway",
    "SchemeMismatchError",
    "ResizeRequest",
    "STATUS_BY_CODE",
    "WIRE_FORMAT",
    "WireTransportError",
    "from_wire",
    "neutral_error_to_wire",
    "scheme_document",
    "to_wire",
]
