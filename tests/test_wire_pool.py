"""The pooled RemoteGateway under concurrent fire: bounded, crosstalk-free.

The PR-4 client held one persistent connection, so concurrent callers
serialized on a socket; the pooled client checks connections out of a
bounded keep-alive pool instead.  Three contracts, each asserted here:

* **No cross-talk** — N threads hammering one server each get back
  exactly the transformation their own request maps to, byte-identical
  to driving the same requests sequentially (HTTP/1.1 framing on a
  shared connection pool must never interleave responses);
* **Boundedness** — the pool never holds more than ``pool_size`` live
  connections, however many threads contend (checkout blocks);
* **Reuse** — a sequential caller still rides a single dial, the E11
  guarantee the pool must not regress.

The concurrency shape (thread count, pool size, which requests each
thread replays) is property-based via Hypothesis, so the schedule space
gets explored rather than hand-picked.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serialization.containers import serialize_reencrypted
from repro.service.driver import DELEGATEE_DOMAIN, build_setting
from repro.service.gateway import ReEncryptRequest
from repro.service.wire import GatewayHttpServer, RemoteGateway


@pytest.fixture(scope="module")
def pool_server():
    """One live server over a seeded fleet, plus the expected responses.

    Expected bytes are computed by driving every request sequentially
    in-process — the reference any concurrent schedule must reproduce.
    """
    setting = build_setting(
        group_name="TOY",
        shard_count=2,
        n_patients=2,
        n_delegatees=2,
        n_types=2,
        ciphertexts_per_pair=1,
        seed="wire-pool",
    )
    requests = []
    for (patient, _type_label), entries in sorted(setting.pool.items()):
        ciphertext, _message = entries[0]
        for delegatee in setting.delegatees:
            requests.append(
                ReEncryptRequest(
                    tenant=patient,
                    ciphertext=ciphertext,
                    delegatee_domain=DELEGATEE_DOMAIN,
                    delegatee=delegatee,
                )
            )
    expected = [
        serialize_reencrypted(setting.group, setting.gateway.reencrypt(r).ciphertext)
        for r in requests
    ]
    # Distinct expectations make cross-talk *observable*: a swapped
    # response can never masquerade as the right one.
    assert len(set(expected)) == len(expected)
    with GatewayHttpServer(setting.gateway) as server:
        yield server, setting.group, requests, expected
    setting.gateway.close()


def _hammer(client, requests, expected, assignment):
    """Run one thread per index list; returns transport-level errors."""
    barrier = threading.Barrier(len(assignment))
    errors: list[BaseException] = []
    mismatches: list[tuple[int, int]] = []
    lock = threading.Lock()

    def worker(thread_id: int, indices: list[int]) -> None:
        try:
            barrier.wait(timeout=30)
            for index in indices:
                response = client.reencrypt(requests[index])
                blob = serialize_reencrypted(client.group, response.ciphertext)
                if blob != expected[index]:
                    with lock:
                        mismatches.append((thread_id, index))
        except BaseException as error:  # noqa: BLE001 - reported to the test
            with lock:
                errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(i, indices), daemon=True)
        for i, indices in enumerate(assignment)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "a pooled worker thread hung"
    return errors, mismatches


class TestPooledConcurrency:
    @settings(max_examples=12, deadline=None)
    @given(
        pool_size=st.integers(min_value=1, max_value=4),
        assignment=st.lists(
            st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=6),
            min_size=2,
            max_size=5,
        ),
    )
    def test_any_schedule_is_crosstalk_free_and_bounded(
        self, pool_server, pool_size, assignment
    ):
        """Property: for every (pool size, thread schedule), concurrent
        responses are byte-identical to the sequential reference and the
        pool bound holds."""
        server, group, requests, expected = pool_server
        client = RemoteGateway(server.url, group, pool_size=pool_size)
        try:
            errors, mismatches = _hammer(client, requests, expected, assignment)
            assert not errors, errors
            assert not mismatches, "cross-talk between pooled responses: %r" % mismatches
            assert client.peak_connections <= pool_size
            live = client.connections_opened - client.connections_closed
            assert live <= pool_size
        finally:
            client.close()

    def test_eight_threads_share_a_bounded_pool(self, pool_server):
        """The deterministic anchor: 8 threads, pool of 3, every thread
        replaying the full request set — bounded, correct, reused."""
        server, group, requests, expected = pool_server
        client = RemoteGateway(server.url, group, pool_size=3)
        try:
            assignment = [list(range(len(requests))) for _ in range(8)]
            errors, mismatches = _hammer(client, requests, expected, assignment)
            assert not errors, errors
            assert not mismatches
            assert client.peak_connections <= 3
            assert client.connections_opened - client.connections_closed <= 3
            # 8 threads x 8 requests over at most 3 connections: reuse is
            # the norm, not the exception.
            assert client.connections_opened <= 3
        finally:
            client.close()

    def test_sequential_caller_still_rides_one_dial(self, pool_server):
        server, group, requests, expected = pool_server
        client = RemoteGateway(server.url, group, pool_size=4)
        try:
            for index, request in enumerate(requests):
                response = client.reencrypt(request)
                assert serialize_reencrypted(group, response.ciphertext) == expected[index]
            assert client.connections_opened == 1
            assert client.peak_connections == 1
        finally:
            client.close()

    def test_batch_and_single_paths_share_the_pool(self, pool_server):
        server, group, requests, expected = pool_server
        client = RemoteGateway(server.url, group, pool_size=2)
        try:
            responses = client.reencrypt_batch(requests)
            for response, blob in zip(responses, expected):
                assert serialize_reencrypted(group, response.ciphertext) == blob
            assert client.peak_connections <= 2
        finally:
            client.close()

    def test_pool_size_must_be_positive(self, group):
        with pytest.raises(ValueError, match="pool_size"):
            RemoteGateway("http://127.0.0.1:9", group, pool_size=0)

    def test_close_drains_idle_connections(self, pool_server):
        server, group, requests, _expected = pool_server
        client = RemoteGateway(server.url, group, pool_size=2)
        client.reencrypt(requests[0])
        opened = client.connections_opened
        client.close()
        assert client.connections_closed == opened
        # The pool refills transparently on next use (old close semantics).
        client.reencrypt(requests[0])
        assert client.connections_opened == opened + 1
        client.close()
