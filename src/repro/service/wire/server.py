"""The gateway behind HTTP: stdlib threading server, stable error bodies.

:class:`GatewayHttpServer` puts one
:class:`~repro.service.gateway.ReEncryptionGateway` (or anything with its
typed API) behind ``http.server.ThreadingHTTPServer`` — the paper's
semi-trusted proxy finally answers over a socket instead of a method
call.  Endpoints:

    ==========================  ====================================
    POST /v1/grant              install a proxy key
    POST /v1/revoke             remove a delegation
    POST /v1/reencrypt          transform one ciphertext, or a batch
    POST /v1/fetch              read stored ciphertext blobs
    POST /v1/resize             rebalance the shard fleet
    GET  /v1/metrics            the live metrics snapshot
    GET  /v1/scheme             scheme negotiation: id, group, capabilities
    GET  /v1/health             liveness probe (no gateway call)
    ==========================  ====================================

The server speaks exactly one scheme backend — the gateway's own when
it has one, else the backend resolved from the ``group`` argument — and
``GET /v1/scheme`` publishes its id so a
:class:`~repro.service.wire.client.RemoteGateway` can refuse to talk to
a fleet running a different scheme before any element envelope crosses
the wire.  Mismatched messages that arrive anyway are rejected by the
codec as ``invalid-request``.

Every failure body is ``{"wire": ..., "type": "error", "body": {code,
message}}`` with the taxonomy's stable ``code``, and the HTTP status is
derived from that code (`429` rate-limited, `404` no-delegation /
entry-not-found, `400` invalid-request, `503` no-store, `500` anything
else), so HTTP-level callers and :class:`RemoteGateway` agree on
semantics without parsing prose.

Thread-safety comes for free: the gateway already serializes on its
shard locks, so the threading server can hand every connection its own
handler thread.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.api import PreBackend, resolve_backend
from repro.pairing.group import PairingGroup
from repro.service.gateway import (
    FetchRequest,
    GatewayError,
    GrantRequest,
    InvalidRequestError,
    ReEncryptRequest,
    RevokeRequest,
)
from repro.service.wire.codec import (
    ReEncryptBatchRequest,
    ReEncryptBatchResponse,
    ResizeRequest,
    from_wire,
    to_wire,
)

__all__ = ["GatewayHttpServer", "STATUS_BY_CODE"]

# Taxonomy code -> HTTP status.  Codes not listed map to 500.
STATUS_BY_CODE = {
    "rate-limited": 429,
    "no-delegation": 404,
    "entry-not-found": 404,
    "invalid-request": 400,
    "no-store": 503,
}

_MAX_BODY_BYTES = 64 * 1024 * 1024  # refuse absurd Content-Length up front


class _GatewayRequestHandler(BaseHTTPRequestHandler):
    """One HTTP request -> one gateway call, errors mapped to the taxonomy."""

    server_version = "repro-gateway/1.0"
    # HTTP/1.1 + explicit Content-Length on every response enables client
    # keep-alive without chunked encoding.
    protocol_version = "HTTP/1.1"
    # Persistent connections interleave small writes both ways; leaving
    # Nagle on stalls every keep-alive round trip behind a delayed ACK.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        pass  # the gateway's audit log is the record of requests, not stderr

    # ------------------------------------------------------------- plumbing

    def _send_json(self, status: int, payload: str, close: bool = False) -> None:
        data = payload.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if close:
            # Also flips self.close_connection in the base class, so the
            # keep-alive loop ends after this response.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(data)

    def _send_gateway_error(self, error: GatewayError, close: bool = False) -> None:
        status = STATUS_BY_CODE.get(error.code, 500)
        self._send_json(status, to_wire(self.server.wire_backend, error), close=close)

    def _read_body(self) -> bytes:
        if self.headers.get("Transfer-Encoding"):
            # Chunked bodies are never drained here, which would leave
            # framing bytes to desync the keep-alive stream; the caller
            # closes the connection on this rejection.
            raise InvalidRequestError("Transfer-Encoding is not supported")
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise InvalidRequestError("invalid Content-Length") from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise InvalidRequestError("unacceptable Content-Length %d" % length)
        return self.rfile.read(length)

    # ------------------------------------------------------------ endpoints

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
        group = self.server.wire_backend
        gateway = self.server.wire_gateway
        if self.path == "/v1/metrics":
            self._send_json(200, to_wire(group, gateway.snapshot()))
        elif self.path == "/v1/scheme":
            backend = self.server.wire_backend
            self._send_json(
                200,
                json.dumps(
                    {
                        "scheme": backend.scheme_id,
                        "name": backend.display_name,
                        "group": backend.group.params.name,
                        "capabilities": backend.capabilities.as_dict(),
                    },
                    sort_keys=True,
                ),
            )
        elif self.path == "/v1/health":
            self._send_json(200, json.dumps({"status": "ok"}))
        else:
            self._send_json(
                404,
                to_wire(group, InvalidRequestError("unknown endpoint %r" % self.path)),
            )

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler name
        group = self.server.wire_backend
        gateway = self.server.wire_gateway
        try:
            raw = self._read_body()
        except InvalidRequestError as error:
            # The body was never read, so this HTTP/1.1 connection is
            # desynchronized — close it with the rejection instead of
            # letting unread body bytes masquerade as the next request.
            self._send_gateway_error(error, close=True)
            return
        try:
            if self.path == "/v1/grant":
                request = from_wire(group, raw, expect=GrantRequest)
                response = gateway.grant(request)
            elif self.path == "/v1/revoke":
                request = from_wire(group, raw, expect=RevokeRequest)
                response = gateway.revoke(request)
            elif self.path == "/v1/reencrypt":
                request = from_wire(
                    group, raw, expect=(ReEncryptRequest, ReEncryptBatchRequest)
                )
                if isinstance(request, ReEncryptBatchRequest):
                    response = ReEncryptBatchResponse(
                        responses=tuple(gateway.reencrypt_batch(list(request.requests)))
                    )
                else:
                    response = gateway.reencrypt(request)
            elif self.path == "/v1/fetch":
                request = from_wire(group, raw, expect=FetchRequest)
                response = gateway.fetch(request)
            elif self.path == "/v1/resize":
                request = from_wire(group, raw, expect=ResizeRequest)
                response = gateway.resize(request.shard_count, tenant=request.tenant)
            else:
                raise _UnknownEndpoint(self.path)
        except _UnknownEndpoint as error:
            self._send_json(
                404,
                to_wire(group, InvalidRequestError("unknown endpoint %r" % error.path)),
            )
        except GatewayError as error:
            self._send_gateway_error(error)
        except Exception as error:  # noqa: BLE001 - wire boundary
            # Nothing library-internal may leak as a stack trace; the
            # closed taxonomy's base code is the catch-all.
            self._send_gateway_error(GatewayError("internal error: %s" % error))
        else:
            self._send_json(200, to_wire(group, response))


class _UnknownEndpoint(Exception):
    def __init__(self, path: str):
        super().__init__(path)
        self.path = path


class GatewayHttpServer:
    """Serve one gateway over HTTP/JSON; start in-thread or block forever.

    ``port=0`` binds an ephemeral port (tests, loopback benchmarks);
    :attr:`url` reports the bound address either way.  :meth:`start` runs
    the accept loop in a daemon thread and returns; :meth:`serve_forever`
    blocks the caller (the CLI's ``serve --http`` mode).  Closing the
    server stops the accept loop but deliberately leaves the gateway
    open — the owner decides when to release the shard fleet.
    """

    def __init__(
        self,
        gateway,
        group: PairingGroup | PreBackend | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.gateway = gateway
        # The wire speaks the gateway's own backend when it has one (an
        # in-process ReEncryptionGateway always does); ``group`` is the
        # legacy spelling and the fallback for bare gateway-like objects.
        backend = getattr(gateway, "backend", None)
        if backend is None:
            if group is None:
                raise ValueError("gateway has no backend; pass group or backend")
            backend = resolve_backend(group)
        self.backend = backend
        self.group = backend.group
        self._httpd = ThreadingHTTPServer((host, port), _GatewayRequestHandler)
        self._httpd.daemon_threads = True
        self._httpd.wire_gateway = gateway
        self._httpd.wire_backend = backend
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def start(self) -> "GatewayHttpServer":
        """Run the accept loop in a daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="gateway-http", daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`close` (or KeyboardInterrupt)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop accepting, join the serving thread, release the socket."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "GatewayHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
