"""Per-tenant credentials, roles and policy limits, backed by one JSON file.

The file is the deployment's source of truth (checked into a secrets
manager, mounted into containers); the store reads it lazily and
re-reads it whenever the file changes on disk, so ``repro-pre tenants
rotate`` against a live server takes effect on the next request without
a restart.  A half-written or corrupt file never takes down a running
server: reload failures keep the last good snapshot.

File format (``"version": 1``)::

    {
      "version": 1,
      "roles": {"admin": ["*"], "client": ["grant", "revoke", ...]},
      "tenants": {
        "clinic-a": {"secret": "...", "roles": ["client"],
                      "rate_per_s": 50.0, "burst": 100.0,
                      "max_batch": 64, "quota": 100000}
      }
    }

All mutations (`add`/`rotate`/`revoke`) rewrite the file atomically
(tempfile + ``os.replace``) so a concurrent reader sees either the old
or the new document, never a torn one.
"""

from __future__ import annotations

import json
import os
import secrets
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "DEFAULT_ROLES",
    "TenantCredential",
    "TenantCredentialStore",
]

# Built-in role vocabulary; a config file's "roles" map extends/overrides
# it.  "*" grants every operation (including resize/export, the
# operator-only surface).
DEFAULT_ROLES: dict[str, tuple[str, ...]] = {
    "admin": ("*",),
    "client": ("grant", "revoke", "reencrypt", "fetch"),
}


@dataclass(frozen=True)
class TenantCredential:
    """One tenant's secret, roles and per-tenant policy limits."""

    tenant: str
    secret: str
    roles: tuple[str, ...] = ("client",)
    rate_per_s: float | None = None
    burst: float | None = None
    max_batch: int | None = None
    quota: int | None = None

    def to_document(self) -> dict:
        doc: dict = {"secret": self.secret, "roles": list(self.roles)}
        for key in ("rate_per_s", "burst", "max_batch", "quota"):
            value = getattr(self, key)
            if value is not None:
                doc[key] = value
        return doc

    @classmethod
    def from_document(cls, tenant: str, doc: dict) -> "TenantCredential":
        if not isinstance(doc, dict) or not isinstance(doc.get("secret"), str):
            raise ValueError("tenant %r entry needs a string 'secret'" % tenant)
        roles = doc.get("roles", ["client"])
        if not isinstance(roles, list) or not all(isinstance(r, str) for r in roles):
            raise ValueError("tenant %r roles must be a list of strings" % tenant)
        def _num(key):
            value = doc.get(key)
            if value is not None and not isinstance(value, (int, float)):
                raise ValueError("tenant %r field %r must be numeric" % (tenant, key))
            return value
        max_batch = _num("max_batch")
        quota = _num("quota")
        return cls(
            tenant=tenant,
            secret=doc["secret"],
            roles=tuple(roles),
            rate_per_s=_num("rate_per_s"),
            burst=_num("burst"),
            max_batch=int(max_batch) if max_batch is not None else None,
            quota=int(quota) if quota is not None else None,
        )


def _parse_document(raw: str) -> tuple[dict[str, TenantCredential], dict[str, tuple[str, ...]]]:
    document = json.loads(raw)
    if not isinstance(document, dict) or document.get("version") != 1:
        raise ValueError("tenant config must be a JSON object with \"version\": 1")
    tenants_doc = document.get("tenants", {})
    if not isinstance(tenants_doc, dict):
        raise ValueError("\"tenants\" must be an object")
    tenants = {
        name: TenantCredential.from_document(name, entry)
        for name, entry in tenants_doc.items()
    }
    roles = dict(DEFAULT_ROLES)
    roles_doc = document.get("roles", {})
    if not isinstance(roles_doc, dict):
        raise ValueError("\"roles\" must be an object")
    for role, ops in roles_doc.items():
        if not isinstance(ops, list) or not all(isinstance(op, str) for op in ops):
            raise ValueError("role %r must map to a list of operation names" % role)
        roles[role] = tuple(ops)
    return tenants, roles


class TenantCredentialStore:
    """The tenant registry: lazy-reloading reads, atomic writes."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._tenants: dict[str, TenantCredential] = {}
        self._roles: dict[str, tuple[str, ...]] = dict(DEFAULT_ROLES)
        self._stamp: tuple[float, int] | None = None
        self._reload(initial=True)

    # ------------------------------------------------------------------ reads

    def _reload(self, initial: bool = False) -> None:
        try:
            stat = self.path.stat()
        except OSError:
            if initial:
                raise
            return
        stamp = (stat.st_mtime, stat.st_size)
        if stamp == self._stamp:
            return
        try:
            tenants, roles = _parse_document(self.path.read_text("utf-8"))
        except (OSError, ValueError, json.JSONDecodeError):
            if initial:
                raise
            # Keep serving the last good snapshot; a later rewrite (new
            # mtime/size) retries the parse.
            self._stamp = stamp
            return
        self._tenants = tenants
        self._roles = roles
        self._stamp = stamp

    def lookup(self, tenant: str) -> TenantCredential | None:
        with self._lock:
            self._reload()
            return self._tenants.get(tenant)

    def tenants(self) -> list[TenantCredential]:
        with self._lock:
            self._reload()
            return sorted(self._tenants.values(), key=lambda c: c.tenant)

    def allowed_ops(self, credential: TenantCredential) -> frozenset[str]:
        """The union of operations the credential's roles grant."""
        with self._lock:
            self._reload()
            ops: set[str] = set()
            for role in credential.roles:
                ops.update(self._roles.get(role, ()))
        return frozenset(ops)

    def allows(self, credential: TenantCredential, op: str) -> bool:
        ops = self.allowed_ops(credential)
        return "*" in ops or op in ops

    # ----------------------------------------------------------------- writes

    @classmethod
    def initialize(cls, path: str | Path) -> "TenantCredentialStore":
        """Create an empty v1 config file (refusing to clobber one)."""
        path = Path(path)
        if path.exists():
            raise FileExistsError("tenant config %s already exists" % path)
        cls._write_document(path, {})
        return cls(path)

    @staticmethod
    def _write_document(path: Path, tenants: dict[str, TenantCredential]) -> None:
        document = {
            "version": 1,
            "tenants": {name: cred.to_document() for name, cred in sorted(tenants.items())},
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name + ".")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _mutate(self, fn) -> TenantCredential | None:
        with self._lock:
            self._reload()
            tenants = dict(self._tenants)
            result = fn(tenants)
            self._write_document(self.path, tenants)
            self._tenants = tenants
            stat = self.path.stat()
            self._stamp = (stat.st_mtime, stat.st_size)
            return result

    def add(
        self,
        tenant: str,
        secret: str | None = None,
        roles: tuple[str, ...] = ("client",),
        rate_per_s: float | None = None,
        burst: float | None = None,
        max_batch: int | None = None,
        quota: int | None = None,
    ) -> TenantCredential:
        """Register a tenant (generating a secret when none is given)."""

        def apply(tenants: dict[str, TenantCredential]) -> TenantCredential:
            if tenant in tenants:
                raise ValueError("tenant %r already exists (rotate instead?)" % tenant)
            credential = TenantCredential(
                tenant=tenant,
                secret=secret if secret is not None else secrets.token_hex(32),
                roles=tuple(roles),
                rate_per_s=rate_per_s,
                burst=burst,
                max_batch=max_batch,
                quota=quota,
            )
            tenants[tenant] = credential
            return credential

        return self._mutate(apply)

    def rotate(self, tenant: str, secret: str | None = None) -> TenantCredential:
        """Replace a tenant's secret, keeping roles and limits."""

        def apply(tenants: dict[str, TenantCredential]) -> TenantCredential:
            if tenant not in tenants:
                raise KeyError("unknown tenant %r" % tenant)
            old = tenants[tenant]
            credential = TenantCredential(
                tenant=tenant,
                secret=secret if secret is not None else secrets.token_hex(32),
                roles=old.roles,
                rate_per_s=old.rate_per_s,
                burst=old.burst,
                max_batch=old.max_batch,
                quota=old.quota,
            )
            tenants[tenant] = credential
            return credential

        return self._mutate(apply)

    def revoke(self, tenant: str) -> None:
        def apply(tenants: dict[str, TenantCredential]) -> None:
            if tenant not in tenants:
                raise KeyError("unknown tenant %r" % tenant)
            del tenants[tenant]

        self._mutate(apply)
