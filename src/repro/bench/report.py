"""Plain-text table rendering for the experiment harness.

Every bench prints its results as an aligned table (the "same rows the
paper would report"); EXPERIMENTS.md embeds the captured output.
"""

from __future__ import annotations

__all__ = ["render_table", "print_table"]


def render_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Render an aligned monospace table with a title rule."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must match the header width")
    columns = [headers] + rows
    widths = [max(len(str(row[i])) for row in columns) for i in range(len(headers))]
    def fmt(row):
        return "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)).rstrip()
    rule = "-" * min(96, sum(widths) + 2 * (len(widths) - 1))
    lines = ["", "== %s ==" % title, fmt(headers), rule]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def print_table(title: str, headers: list[str], rows: list[list[str]]) -> None:
    """Print a table to stdout (captured by ``pytest -s`` / tee)."""
    print(render_table(title, headers, rows))
