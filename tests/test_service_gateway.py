"""Tests for the sharded re-encryption gateway (routing, caches, limits)."""

import pytest

from repro.phr.store import EncryptedPhrStore
from repro.service.gateway import (
    DelegationNotFoundError,
    EntryMissingError,
    FetchRequest,
    GatewayError,
    GrantRequest,
    InvalidRequestError,
    RateLimitedError,
    ReEncryptionGateway,
    ReEncryptRequest,
    RevokeRequest,
    StoreUnavailableError,
    TokenBucket,
)


class ManualClock:
    """A clock the tests advance explicitly (no sleeping)."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


@pytest.fixture()
def setting(pre_setting, group, rng):
    """Gateway over 4 shards with one granted delegation and a ciphertext."""
    scheme, kgc1, kgc2, alice, bob = pre_setting
    gateway = ReEncryptionGateway(scheme, shard_count=4)
    proxy_key = scheme.pextract(alice, "bob", "labs", kgc2.params, rng)
    gateway.grant(GrantRequest(tenant="alice", proxy_key=proxy_key))
    message = group.random_gt(rng)
    ciphertext = scheme.encrypt(kgc1.params, alice, message, "labs", rng)
    return scheme, gateway, message, ciphertext, bob


def _reencrypt_request(ciphertext, delegatee="bob"):
    return ReEncryptRequest(
        tenant="tenant-1", ciphertext=ciphertext, delegatee_domain="KGC2", delegatee=delegatee
    )


class TestRoundTrip:
    def test_granted_request_served_and_decrypts(self, setting):
        scheme, gateway, message, ciphertext, bob = setting
        response = gateway.reencrypt(_reencrypt_request(ciphertext))
        assert not response.cache_hit
        assert scheme.decrypt_reencrypted(response.ciphertext, bob) == message

    def test_key_lands_on_the_routed_shard(self, setting):
        _, gateway, _, ciphertext, _ = setting
        response = gateway.reencrypt(_reencrypt_request(ciphertext))
        # Exactly one shard owns the delegation and it is the routed one.
        counts = gateway.shard_key_counts()
        assert counts[response.shard] == 1
        assert sum(counts.values()) == 1
        assert gateway.shard_named(response.shard).transformations_total == 1

    def test_no_delegation_is_a_typed_error(self, setting):
        _, gateway, _, ciphertext, _ = setting
        with pytest.raises(DelegationNotFoundError) as excinfo:
            gateway.reencrypt(_reencrypt_request(ciphertext, delegatee="mallory"))
        assert excinfo.value.code == "no-delegation"
        assert isinstance(excinfo.value, GatewayError)

    def test_repeat_request_is_a_cache_hit(self, setting):
        scheme, gateway, message, ciphertext, bob = setting
        first = gateway.reencrypt(_reencrypt_request(ciphertext))
        second = gateway.reencrypt(_reencrypt_request(ciphertext))
        assert second.cache_hit
        assert second.ciphertext == first.ciphertext
        assert scheme.decrypt_reencrypted(second.ciphertext, bob) == message
        stats = gateway.cache_stats()["result_cache"]
        assert stats.hits == 1
        # The shard did the pairing work exactly once.
        assert gateway.shard_named(first.shard).transformations_total == 1


class TestRevocation:
    def test_revoke_refuses_future_requests(self, setting):
        _, gateway, _, ciphertext, _ = setting
        gateway.reencrypt(_reencrypt_request(ciphertext))
        response = gateway.revoke(
            RevokeRequest(
                tenant="alice",
                delegator_domain="KGC1",
                delegator="alice",
                delegatee_domain="KGC2",
                delegatee="bob",
                type_label="labs",
            )
        )
        assert response.removed
        # The cached transformation must not outlive the key.
        with pytest.raises(DelegationNotFoundError):
            gateway.reencrypt(_reencrypt_request(ciphertext))

    def test_revoke_unknown_delegation_reports_removed_false(self, setting):
        _, gateway, _, _, _ = setting
        response = gateway.revoke(
            RevokeRequest(
                tenant="alice",
                delegator_domain="KGC1",
                delegator="alice",
                delegatee_domain="KGC2",
                delegatee="nobody",
                type_label="labs",
            )
        )
        assert not response.removed


class TestBatching:
    def test_batched_equals_sequential(self, pre_setting, group, rng):
        """The acceptance property: batching never changes the bits."""
        scheme, kgc1, kgc2, alice, bob = pre_setting
        sequential = ReEncryptionGateway(scheme, shard_count=3)
        batched = ReEncryptionGateway(scheme, shard_count=3)
        for type_label in ("labs", "meds"):
            key = scheme.pextract(alice, "bob", type_label, kgc2.params, rng)
            for gateway in (sequential, batched):
                gateway.grant(GrantRequest(tenant="alice", proxy_key=key))
        requests = []
        messages = []
        for i in range(6):
            type_label = "labs" if i % 2 else "meds"
            message = group.random_gt(rng)
            ciphertext = scheme.encrypt(kgc1.params, alice, message, type_label, rng)
            requests.append(_reencrypt_request(ciphertext))
            messages.append(message)

        sequential_out = [sequential.reencrypt(r).ciphertext for r in requests]
        batched_out = [r.ciphertext for r in batched.reencrypt_batch(requests)]
        assert batched_out == sequential_out  # bit-identical, not just equivalent
        for transformed, message in zip(batched_out, messages):
            assert scheme.decrypt_reencrypted(transformed, bob) == message

    def test_batch_amortizes_key_lookups(self, setting, pre_setting, group, rng):
        scheme, gateway, _, _, _ = setting
        _, kgc1, _, alice, _ = pre_setting
        requests = [
            _reencrypt_request(scheme.encrypt(kgc1.params, alice, group.random_gt(rng), "labs", rng))
            for _ in range(5)
        ]
        gateway.reencrypt_batch(requests)
        stats = gateway.cache_stats()["key_cache"]
        assert stats.misses == 1  # one table lookup for five same-delegation items

    def test_batch_with_missing_delegation_fails_typed(self, setting):
        _, gateway, _, ciphertext, _ = setting
        with pytest.raises(DelegationNotFoundError):
            gateway.reencrypt_batch(
                [_reencrypt_request(ciphertext), _reencrypt_request(ciphertext, "mallory")]
            )

    def test_empty_batch_rejected(self, setting):
        _, gateway, _, _, _ = setting
        with pytest.raises(InvalidRequestError):
            gateway.reencrypt_batch([])


class TestRateLimiting:
    def test_burst_exhaustion_then_refill(self, pre_setting, group, rng):
        scheme, kgc1, kgc2, alice, _ = pre_setting
        clock = ManualClock()
        gateway = ReEncryptionGateway(
            scheme, shard_count=2, rate_per_s=1.0, burst=2.0, clock=clock
        )
        gateway.grant(GrantRequest(tenant="alice", proxy_key=scheme.pextract(alice, "bob", "labs", kgc2.params, rng)))
        ciphertext = scheme.encrypt(kgc1.params, alice, group.random_gt(rng), "labs", rng)
        request = _reencrypt_request(ciphertext)  # tenant-1: fresh bucket of 2
        gateway.reencrypt(request)
        gateway.reencrypt(request)
        with pytest.raises(RateLimitedError) as excinfo:
            gateway.reencrypt(request)
        assert excinfo.value.code == "rate-limited"
        clock.advance(1.0)  # one token refilled
        gateway.reencrypt(request)
        assert gateway.snapshot().rate_limited == 1

    def test_tenants_have_independent_buckets(self):
        clock = ManualClock()
        bucket = TokenBucket(rate_per_s=1.0, burst=1.0, clock=clock)
        assert bucket.allow("a")
        assert not bucket.allow("a")
        assert bucket.allow("b")  # tenant b unaffected by a's exhaustion

    def test_no_rate_limit_by_default(self, setting):
        _, gateway, _, ciphertext, _ = setting
        for _ in range(50):
            gateway.reencrypt(_reencrypt_request(ciphertext))
        assert gateway.snapshot().rate_limited == 0


class TestTokenBucketRefill:
    """Deterministic refill edge cases on the injectable clock."""

    def test_fractional_refill_accumulates_across_denials(self):
        clock = ManualClock()
        bucket = TokenBucket(rate_per_s=10.0, burst=1.0, clock=clock)
        assert bucket.allow("t")
        clock.advance(0.05)  # half a token — not enough yet
        assert not bucket.allow("t")
        clock.advance(0.05)  # the denial banked the first half
        assert bucket.allow("t")

    def test_refill_caps_at_burst(self):
        clock = ManualClock()
        bucket = TokenBucket(rate_per_s=100.0, burst=3.0, clock=clock)
        clock.advance(1000.0)  # an idle tenant does not bank 100k tokens
        assert bucket.available("idle") == 3.0
        for _ in range(3):
            assert bucket.allow("idle")
        assert not bucket.allow("idle")

    def test_cost_above_burst_is_never_admitted_but_spends_nothing(self):
        clock = ManualClock()
        bucket = TokenBucket(rate_per_s=1.0, burst=2.0, clock=clock)
        assert not bucket.allow("t", cost=5.0)
        assert bucket.available("t") == 2.0  # tokens never went negative
        assert bucket.allow("t", cost=2.0)  # normal costs still work

    def test_zero_elapsed_time_refills_nothing(self):
        clock = ManualClock()
        bucket = TokenBucket(rate_per_s=1000.0, burst=1.0, clock=clock)
        assert bucket.allow("t")
        # Same timestamp, many attempts: no refill, no drift.
        for _ in range(5):
            assert not bucket.allow("t")
        assert bucket.available("t") == 0.0

    def test_clock_defaults_to_monotonic(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=1.0)
        assert bucket.allow("t")
        assert bucket.available("t") <= 1.0

    def test_gateway_limiter_uses_the_injected_clock(self, pre_setting):
        """The gateway's rate-limit path never reads the wall clock."""
        scheme = pre_setting[0]
        clock = ManualClock()
        gateway = ReEncryptionGateway(
            scheme, shard_count=1, rate_per_s=1.0, burst=1.0, clock=clock
        )
        assert gateway._limiter._clock is clock
        assert gateway._limiter.allow("t")
        assert not gateway._limiter.allow("t")
        clock.advance(1.0)
        assert gateway._limiter.allow("t")


class TestFetch:
    def test_fetch_requires_a_store(self, setting):
        _, gateway, _, _, _ = setting
        with pytest.raises(StoreUnavailableError):
            gateway.fetch(FetchRequest(tenant="t", patient="alice"))

    def test_fetch_by_entry_and_by_category(self, pre_setting):
        scheme, _, _, _, _ = pre_setting
        store = EncryptedPhrStore()
        store.put("alice", "labs", "e1", b"blob-1")
        store.put("alice", "meds", "e2", b"blob-2")
        gateway = ReEncryptionGateway(scheme, shard_count=2, store=store)
        one = gateway.fetch(FetchRequest(tenant="t", patient="alice", entry_id="e1"))
        assert [r.blob for r in one.records] == [b"blob-1"]
        labs = gateway.fetch(FetchRequest(tenant="t", patient="alice", category="labs"))
        assert [r.entry_id for r in labs.records] == ["e1"]
        everything = gateway.fetch(FetchRequest(tenant="t", patient="alice"))
        assert len(everything.records) == 2

    def test_fetch_missing_entry_is_typed(self, pre_setting):
        scheme, _, _, _, _ = pre_setting
        gateway = ReEncryptionGateway(scheme, shard_count=2, store=EncryptedPhrStore())
        with pytest.raises(EntryMissingError) as excinfo:
            gateway.fetch(FetchRequest(tenant="t", patient="alice", entry_id="nope"))
        assert excinfo.value.code == "entry-not-found"


class TestAuditAndMetrics:
    def test_audit_records_outcomes(self, setting):
        _, gateway, _, ciphertext, _ = setting
        gateway.reencrypt(_reencrypt_request(ciphertext))
        with pytest.raises(DelegationNotFoundError):
            gateway.reencrypt(_reencrypt_request(ciphertext, "mallory"))
        outcomes = [(event.action, event.outcome) for event in gateway.audit]
        assert ("grant", "ok") in outcomes
        assert ("reencrypt", "ok") in outcomes
        assert ("reencrypt", "no-delegation") in outcomes

    def test_audit_is_bounded(self, pre_setting):
        scheme, _, _, _, _ = pre_setting
        gateway = ReEncryptionGateway(
            scheme, shard_count=1, store=EncryptedPhrStore(), max_audit_entries=5
        )
        for i in range(9):
            with pytest.raises(EntryMissingError):
                gateway.fetch(FetchRequest(tenant="t", patient="p", entry_id="e%d" % i))
        audit = gateway.audit
        assert len(audit) == 5
        # Oldest dropped, newest kept, sequence numbers keep counting.
        assert [event.sequence for event in audit] == [4, 5, 6, 7, 8]

    def test_snapshot_accounts_requests(self, setting):
        _, gateway, _, ciphertext, _ = setting
        gateway.reencrypt(_reencrypt_request(ciphertext))
        gateway.reencrypt(_reencrypt_request(ciphertext))
        with pytest.raises(DelegationNotFoundError):
            gateway.reencrypt(_reencrypt_request(ciphertext, "mallory"))
        snapshot = gateway.snapshot()
        assert snapshot.served == 3  # the grant + two served re-encryptions
        assert snapshot.rejected == 1
        assert snapshot.requests_total == 4
        assert snapshot.caches["result_cache"].hits == 1
        assert sum(snapshot.shard_requests.values()) == 3


class TestBatchCacheReporting:
    def test_duplicate_items_in_one_batch_report_the_hit(self, setting):
        """The second occurrence of a duplicate is served from cache — and says so."""
        _, gateway, _, ciphertext, _ = setting
        request = _reencrypt_request(ciphertext)
        responses = gateway.reencrypt_batch([request, request])
        assert [r.cache_hit for r in responses] == [False, True]
        assert responses[0].ciphertext == responses[1].ciphertext
        # Only one transformation reached the shard.
        assert gateway.shard_named(responses[0].shard).transformations_total == 1

    def test_failed_batch_leaves_no_cached_transformations(self, setting):
        """A batch with a missing delegation aborts before any pairing work."""
        _, gateway, _, ciphertext, _ = setting
        with pytest.raises(DelegationNotFoundError):
            gateway.reencrypt_batch(
                [_reencrypt_request(ciphertext), _reencrypt_request(ciphertext, "mallory")]
            )
        # The granted item was not transformed behind the caller's back.
        assert gateway.cache_stats()["result_cache"].size == 0
        assert all(
            gateway.shard_named(name).transformations_total == 0
            for name in gateway.shard_names
        )

    def test_explicit_zero_burst_rejected(self, pre_setting):
        scheme = pre_setting[0]
        with pytest.raises(ValueError):
            ReEncryptionGateway(scheme, shard_count=1, rate_per_s=10.0, burst=0.0)
