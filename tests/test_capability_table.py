"""The generated E4 property table vs. the hand-written copies.

`repro.bench.properties` renders the E4 comparison table from the
scheme registry's declared capabilities.  The README still carries a
hand-written markdown copy of the same table — the one a reader sees
first — so this suite pins the two together: if a backend's declared
flags change (or a new backend registers) without the README following,
the drift is a test failure instead of a quietly lying document.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.bench.properties import (
    declared_capability_matrix,
    declared_property_matrix,
    property_table_rows,
)
from repro.core.api import CAPABILITY_NAMES, PROPERTY_NAMES, available_schemes

README = Path(__file__).resolve().parents[1] / "README.md"

_SCHEME_ID = re.compile(r"^[a-z][a-z0-9-]*/v\d+$")


def _readme_capability_matrix() -> dict[str, dict[str, bool]]:
    """Parse the hand-written "Scheme backends" markdown table.

    Rows look like ``| `tipre/v1` | type-and-identity (this paper) | ✓ |
    ... |``; the six flag columns follow the scheme and name columns in
    ``CAPABILITY_NAMES`` order (the table header says so).
    """
    matrix = {}
    for line in README.read_text().splitlines():
        if not line.startswith("| `"):
            continue
        cells = [cell.strip() for cell in line.strip().strip("|").split("|")]
        scheme_id = cells[0].strip("`")
        if not _SCHEME_ID.match(scheme_id):
            continue  # a row of some other table (error codes, endpoints)
        flags = cells[2 : 2 + len(CAPABILITY_NAMES)]
        assert all(flag in ("✓", "—") for flag in flags), line
        matrix[scheme_id] = dict(zip(CAPABILITY_NAMES, (flag == "✓" for flag in flags)))
    return matrix


class TestGeneratedTableMatchesHandWritten:
    def test_readme_table_matches_registry_capabilities(self):
        """Every scheme, every flag: README == declared capabilities."""
        written = _readme_capability_matrix()
        generated = declared_capability_matrix()
        assert written == generated

    def test_readme_covers_every_registered_scheme(self):
        assert sorted(_readme_capability_matrix()) == sorted(available_schemes())


class TestTableGeneration:
    def test_rows_cover_the_registry_paper_first(self):
        rows = property_table_rows()
        assert [row[0] for row in rows] == available_schemes()
        assert rows[0][0] == "tipre/v1"
        assert all(len(row) == 2 + len(PROPERTY_NAMES) for row in rows)
        assert all(cell in ("yes", "no") for row in rows for cell in row[2:])

    def test_rows_agree_with_the_matrix(self):
        matrix = declared_property_matrix()
        for row in property_table_rows():
            scheme_id, _name, *flags = row
            assert [flag == "yes" for flag in flags] == [
                matrix[scheme_id][name] for name in PROPERTY_NAMES
            ]

    def test_full_capability_rows_add_the_operational_flag(self):
        rows = property_table_rows(flags=CAPABILITY_NAMES)
        assert all(len(row) == 2 + len(CAPABILITY_NAMES) for row in rows)

    def test_unknown_flags_are_rejected(self):
        with pytest.raises(ValueError, match="unknown capability"):
            property_table_rows(flags=("unidirectional", "nonsense"))

    def test_property_matrix_is_the_capability_matrix_restricted(self):
        properties = declared_property_matrix()
        capabilities = declared_capability_matrix()
        for scheme_id, flags in properties.items():
            assert flags == {
                name: capabilities[scheme_id][name] for name in PROPERTY_NAMES
            }
