"""E12 — one gateway, many schemes: the PRE platform measured.

PR 4 promoted the bench-only adapter lifecycle into the backend API the
whole service stack runs on; this experiment is the payoff measured: the
E9-style gateway workload (sharded fleet, key + result caches, grouped
batching, decrypt-and-compare verification) swept across the registered
scheme backends.  Three readings per scheme:

1. **Gateway throughput** — the same seeded request stream, so the
   differences are the schemes' transformation costs, not workload
   shape.
2. **Cache efficacy** — hit rates of the proxy-key and KEM-result
   caches.  Every current backend declares ``deterministic_reencrypt``,
   so the result cache is live for all of them; the sweep shows how much
   of each scheme's pairing cost the cache actually absorbs.
3. **Batching gain** — batched vs unbatched wall clock, per scheme.

TOY parameters: like E9/E10/E11 this measures workload structure, not
key size.
"""

from __future__ import annotations

import time

from repro.bench.report import print_table
from repro.core.api import REGISTRY, available_schemes
from repro.service.driver import build_scheme_setting, drive_scheme_requests

REQUESTS = 72
BATCH = 6
SHARDS = 3


def _run_one(scheme_id: str, batch_size: int):
    setting = build_scheme_setting(
        scheme_id=scheme_id,
        group_name="TOY",
        shard_count=SHARDS,
        n_patients=3,
        n_delegatees=2,
        n_types=2,
        ciphertexts_per_pair=2,
        seed="e12-" + scheme_id,
    )
    try:
        start = time.perf_counter()
        verified = drive_scheme_requests(
            setting,
            REQUESTS,
            seed="e12-requests",
            batch_size=batch_size,
            verify_every=8,
        )
        elapsed_s = time.perf_counter() - start
        snapshot = setting.gateway.snapshot()
        return elapsed_s, verified, snapshot
    finally:
        setting.gateway.close()


def test_e12_multischeme_gateway_sweep():
    """Every registered backend serves the identical gateway workload."""
    scheme_ids = available_schemes()
    assert len(scheme_ids) >= 3, "the platform claim needs at least 3 schemes"

    rows = []
    for scheme_id in scheme_ids:
        unbatched_s, verified_u, _snap = _run_one(scheme_id, batch_size=0)
        batched_s, verified_b, snapshot = _run_one(scheme_id, batch_size=BATCH)
        assert verified_u > 0 and verified_b > 0, (
            "end-to-end verification failed for %s" % scheme_id
        )
        key_cache = snapshot.caches["key_cache"]
        result_cache = snapshot.caches["result_cache"]
        rows.append(
            [
                scheme_id,
                REGISTRY.backend_class(scheme_id).display_name,
                "%.0f" % (REQUESTS / unbatched_s),
                "%.0f" % (REQUESTS / batched_s),
                "%.2fx" % (unbatched_s / batched_s),
                "%.0f%%" % (100 * key_cache.hit_rate),
                "%.0f%%" % (100 * result_cache.hit_rate),
                str(verified_u + verified_b),
            ]
        )

    print_table(
        "E12: one gateway, %d schemes — %d requests, %d shards, batch=%d"
        % (len(scheme_ids), REQUESTS, SHARDS, BATCH),
        [
            "scheme",
            "name",
            "req/s",
            "req/s batched",
            "batch gain",
            "key-cache hits",
            "result-cache hits",
            "verified",
        ],
        rows,
    )


def test_e12_result_cache_absorbs_repeat_traffic():
    """A repeated-delegatee stream must hit the result cache for every
    deterministic backend — the cache works identically across schemes."""
    for scheme_id in available_schemes():
        if not REGISTRY.backend_class(scheme_id).capabilities.deterministic_reencrypt:
            continue
        _elapsed, _verified, snapshot = _run_one(scheme_id, batch_size=0)
        result_cache = snapshot.caches["result_cache"]
        assert result_cache.hits > 0, (
            "%s served %d repeat requests without one result-cache hit"
            % (scheme_id, REQUESTS)
        )
