"""Patient key backup and recovery via Shamir sharing.

The paper's architecture hinges on the patient's single key pair — losing
the private key would orphan every ciphertext.  Real PHR deployments pair
the scheme with *social backup*: the serialized private key is
Shamir-shared among ``n`` custodians (family doctor, notary, relatives)
so that any ``t`` of them can restore it, while ``t - 1`` learn nothing.

The share field is chosen per key: the serialized key bytes are read as
an integer and shared over the smallest pinned prime field exceeding it,
reusing :mod:`repro.math.shamir` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ibe.keys import IbePrivateKey
from repro.math.drbg import RandomSource, system_random
from repro.math.ntheory import bytes_to_int, int_to_bytes
from repro.math.primes import next_prime
from repro.math.shamir import Share, reconstruct_secret, split_secret
from repro.pairing.group import PairingGroup
from repro.serialization.containers import deserialize_private_key, serialize_private_key

__all__ = ["KeyCustodianShare", "backup_private_key", "recover_private_key"]

_FIELD_CACHE: dict[int, int] = {}


def _share_field(byte_length: int) -> int:
    """The smallest cached prime above ``2^(8*byte_length)``."""
    if byte_length not in _FIELD_CACHE:
        _FIELD_CACHE[byte_length] = next_prime(1 << (8 * byte_length))
    return _FIELD_CACHE[byte_length]


@dataclass(frozen=True)
class KeyCustodianShare:
    """One custodian's share of a patient's private key.

    ``byte_length`` and ``threshold`` ride along so recovery needs no
    out-of-band metadata; the share value alone is useless below the
    threshold.
    """

    custodian: str
    identity: str
    threshold: int
    byte_length: int
    share: Share


def backup_private_key(
    group: PairingGroup,
    key: IbePrivateKey,
    custodians: list[str],
    threshold: int,
    rng: RandomSource | None = None,
) -> list[KeyCustodianShare]:
    """Split a private key among named custodians (t-of-n)."""
    if len(set(custodians)) != len(custodians):
        raise ValueError("custodian names must be distinct")
    blob = serialize_private_key(group, key)
    modulus = _share_field(len(blob))
    shares = split_secret(
        bytes_to_int(blob), threshold, len(custodians), modulus, rng or system_random()
    )
    return [
        KeyCustodianShare(
            custodian=name,
            identity=key.identity,
            threshold=threshold,
            byte_length=len(blob),
            share=share,
        )
        for name, share in zip(custodians, shares)
    ]


def recover_private_key(
    group: PairingGroup, shares: list[KeyCustodianShare]
) -> IbePrivateKey:
    """Reassemble the key from at least ``threshold`` custodian shares."""
    if not shares:
        raise ValueError("no shares provided")
    threshold = shares[0].threshold
    byte_length = shares[0].byte_length
    identity = shares[0].identity
    if any(
        s.threshold != threshold or s.byte_length != byte_length or s.identity != identity
        for s in shares
    ):
        raise ValueError("shares belong to different backups")
    if len(shares) < threshold:
        raise ValueError("need %d shares, got %d" % (threshold, len(shares)))
    modulus = _share_field(byte_length)
    secret = reconstruct_secret([s.share for s in shares[:threshold]], modulus)
    blob = int_to_bytes(secret, byte_length)
    return deserialize_private_key(group, blob)
