"""Hybrid (KEM/DEM) encryption over the type-and-identity PRE scheme.

The paper's PHR application stores real byte payloads (lab reports,
medication lists), while the scheme encrypts GT elements.  The standard
bridge is a KEM/DEM hybrid: a uniformly random GT element is encrypted
with the PRE scheme (the KEM), its serialisation is fed through HKDF to a
DEM key, and the payload travels under the authenticated symmetric cipher.

Because the KEM ciphertext is an ordinary :class:`TypedCiphertext`, the
proxy can re-encrypt it with the usual ``Preenc`` — the DEM part is
untouched — so hybrid ciphertexts inherit all the delegation machinery,
including type granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ciphertexts import ReEncryptedCiphertext, TypedCiphertext
from repro.core.scheme import TypeAndIdentityPre
from repro.hybrid.kdf import hkdf
from repro.hybrid.symmetric import KEY_LEN, open_sealed, seal
from repro.ibe.keys import IbeParams, IbePrivateKey
from repro.math.drbg import RandomSource, system_random
from repro.math.fields import Fp2Element
from repro.pairing.group import PairingGroup

__all__ = ["HybridPre", "HybridCiphertext", "HybridReEncrypted"]

_KDF_INFO = b"tipre-hybrid-v1"


@dataclass(frozen=True)
class HybridCiphertext:
    """``(KEM: TypedCiphertext, DEM: sealed bytes)``."""

    kem: TypedCiphertext
    dem: bytes

    @property
    def type_label(self) -> str:
        return self.kem.type_label


@dataclass(frozen=True)
class HybridReEncrypted:
    """The re-encrypted form: KEM transformed, DEM untouched."""

    kem: ReEncryptedCiphertext
    dem: bytes


class HybridPre:
    """KEM/DEM wrapper around :class:`TypeAndIdentityPre` for byte payloads."""

    def __init__(self, group: PairingGroup, scheme: TypeAndIdentityPre | None = None):
        self.group = group
        self.scheme = scheme or TypeAndIdentityPre(group)

    def _dem_key(self, shared: Fp2Element) -> bytes:
        return hkdf(self.group.serialize_gt(shared), _KDF_INFO, KEY_LEN)

    def encrypt(
        self,
        delegator_params: IbeParams,
        delegator_key: IbePrivateKey,
        payload: bytes,
        type_label: str,
        rng: RandomSource | None = None,
    ) -> HybridCiphertext:
        """Encrypt arbitrary bytes under a type label."""
        rng = rng or system_random()
        shared = self.group.random_gt(rng)
        kem = self.scheme.encrypt(delegator_params, delegator_key, shared, type_label, rng)
        dem = seal(self._dem_key(shared), payload, type_label.encode("utf-8"), rng)
        return HybridCiphertext(kem=kem, dem=dem)

    def decrypt(self, ciphertext: HybridCiphertext, delegator_key: IbePrivateKey) -> bytes:
        """Delegator-side decryption."""
        shared = self.scheme.decrypt(ciphertext.kem, delegator_key)
        return open_sealed(
            self._dem_key(shared), ciphertext.dem, ciphertext.kem.type_label.encode("utf-8")
        )

    def reencrypt(self, ciphertext: HybridCiphertext, proxy_key) -> HybridReEncrypted:
        """Proxy transformation: only the KEM component changes."""
        return HybridReEncrypted(
            kem=self.scheme.preenc(ciphertext.kem, proxy_key), dem=ciphertext.dem
        )

    def decrypt_reencrypted(
        self, ciphertext: HybridReEncrypted, delegatee_key: IbePrivateKey
    ) -> bytes:
        """Delegatee-side decryption of a re-encrypted hybrid ciphertext."""
        shared = self.scheme.decrypt_reencrypted(ciphertext.kem, delegatee_key)
        return open_sealed(
            self._dem_key(shared), ciphertext.dem, ciphertext.kem.type_label.encode("utf-8")
        )
