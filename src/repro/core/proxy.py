"""The proxy actor: a semi-trusted re-encryption service.

The proxy of the paper holds re-encryption keys and transforms ciphertexts
on request.  It never sees a private key or a plaintext; its entire state
is the table of :class:`~repro.core.ciphertexts.ProxyKey` objects installed
by delegators.  The class enforces the scheme's fine-grained policy
mechanically: a transformation happens only when a key exists for exactly
the (delegator, delegatee, type) triple of the request.

The key table lives in its own class, :class:`ProxyKeyTable`, so that a
sharded deployment (:mod:`repro.service`) can partition state across many
proxies while every shard speaks the same table interface.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.core.api import PreBackend, resolve_backend
from repro.core.ciphertexts import ProxyKey, ReEncryptedCiphertext, TypedCiphertext
from repro.core.scheme import DelegationError, TypeAndIdentityPre

__all__ = [
    "ProxyService",
    "ProxyKeyTable",
    "KeyTableBackend",
    "NoProxyKeyError",
    "ReEncryptionLogEntry",
    "DEFAULT_MAX_LOG_ENTRIES",
]

# A long-running proxy must not grow memory without bound; the log keeps
# the most recent transformations and drops the oldest beyond this cap.
DEFAULT_MAX_LOG_ENTRIES = 10_000

KeyIndex = tuple[str, str, str, str, str]


class NoProxyKeyError(KeyError):
    """Raised when the proxy holds no key for the requested transformation."""


@runtime_checkable
class KeyTableBackend(Protocol):
    """Storage observing a :class:`ProxyKeyTable`'s mutations.

    A backend sees every *effective* mutation — installs always, revokes
    only when a key was actually removed — which is exactly the sequence a
    write-ahead log needs to reconstruct the table.  The in-memory table
    is always authoritative; the backend never answers reads.
    """

    def on_install(self, key: ProxyKey) -> None:
        """``key`` was installed (or replaced) in the table."""

    def on_revoke(self, index: KeyIndex) -> None:
        """The key at ``index`` was removed from the table."""


@dataclass(frozen=True)
class ReEncryptionLogEntry:
    """One entry of the proxy's transformation log."""

    delegator: str
    delegatee: str
    type_label: str
    sequence: int


class ProxyKeyTable:
    """The pure key state of one proxy: (delegator, delegatee, type) -> key.

    This is the unit a sharded gateway partitions — it carries no scheme
    object and no log, only the table and its lookups, so shards stay
    cheap to create and easy to reason about.

    An optional :class:`KeyTableBackend` observes every effective mutation,
    which is how :class:`repro.service.persistence.DurableProxyKeyTable`
    mirrors the table into an append log without the table knowing about
    files.  :meth:`load` installs without notifying the backend — it is
    the bootstrap path a backend uses to replay its own history.
    """

    def __init__(self, backend: KeyTableBackend | None = None) -> None:
        self._keys: dict[KeyIndex, ProxyKey] = {}
        self._backend = backend

    @staticmethod
    def index_of(key: ProxyKey) -> KeyIndex:
        return (
            key.delegator_domain,
            key.delegator,
            key.delegatee_domain,
            key.delegatee,
            key.type_label,
        )

    @staticmethod
    def request_index(
        ciphertext: TypedCiphertext, delegatee_domain: str, delegatee: str
    ) -> KeyIndex:
        return (
            ciphertext.domain,
            ciphertext.identity,
            delegatee_domain,
            delegatee,
            ciphertext.type_label,
        )

    def install(self, key: ProxyKey) -> None:
        """Install (or replace) a re-encryption key."""
        self._keys[self.index_of(key)] = key
        if self._backend is not None:
            self._backend.on_install(key)

    def revoke(self, index: KeyIndex) -> bool:
        """Remove a key; returns False when no such key was installed."""
        removed = self._keys.pop(index, None) is not None
        if removed and self._backend is not None:
            self._backend.on_revoke(index)
        return removed

    def load(self, keys: Iterable[ProxyKey]) -> None:
        """Install ``keys`` without notifying the backend (replay/bootstrap)."""
        for key in keys:
            self._keys[self.index_of(key)] = key

    def get(self, index: KeyIndex) -> ProxyKey | None:
        return self._keys.get(index)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, index: KeyIndex) -> bool:
        return index in self._keys

    def __iter__(self) -> Iterator[ProxyKey]:
        return iter(self._keys.values())

    def delegations_for(
        self, delegator: str, delegator_domain: str | None = None
    ) -> list[tuple[str, str]]:
        """All (delegatee, type) pairs served for one delegator identity.

        Identities are only unique *within* a KGC domain, so the domain is
        part of the question.  When ``delegator_domain`` is omitted and the
        name exists in exactly one domain the answer is still unambiguous;
        if the name appears in several domains the call refuses rather than
        silently merging unrelated identities.
        """
        domains = {
            key.delegator_domain for key in self._keys.values() if key.delegator == delegator
        }
        if delegator_domain is None:
            if len(domains) > 1:
                raise DelegationError(
                    "delegator %r exists in domains %s; pass delegator_domain"
                    % (delegator, sorted(domains))
                )
        elif delegator_domain not in domains:
            return []
        return sorted(
            (key.delegatee, key.type_label)
            for key in self._keys.values()
            if key.delegator == delegator
            and (delegator_domain is None or key.delegator_domain == delegator_domain)
        )


@dataclass
class ProxyService:
    """A re-encryption proxy holding keys for (delegator, delegatee, type) triples.

    ``scheme`` may be the paper's raw :class:`TypeAndIdentityPre` (the
    historical spelling) or any :class:`~repro.core.api.PreBackend` —
    the proxy itself is scheme-agnostic: it routes on envelope metadata
    and delegates the transformation to the backend.
    """

    scheme: TypeAndIdentityPre | PreBackend
    name: str = "proxy"
    max_log_entries: int = DEFAULT_MAX_LOG_ENTRIES
    table: ProxyKeyTable = field(default_factory=ProxyKeyTable)
    _log: deque[ReEncryptionLogEntry] = field(default_factory=deque)
    _sequence: int = 0
    backend: PreBackend = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_log_entries < 1:
            raise ValueError("max_log_entries must be positive")
        self.backend = resolve_backend(self.scheme)
        self._log = deque(self._log, maxlen=self.max_log_entries)

    def install_key(self, key: ProxyKey) -> None:
        """Install (or replace) a re-encryption key."""
        self.table.install(key)

    def revoke_key(
        self,
        delegator_domain: str,
        delegator: str,
        delegatee_domain: str,
        delegatee: str,
        type_label: str,
    ) -> bool:
        """Remove a key; returns False when no such key was installed."""
        return self.table.revoke(
            (delegator_domain, delegator, delegatee_domain, delegatee, type_label)
        )

    def key_count(self) -> int:
        return len(self.table)

    def delegations_for(
        self, delegator: str, delegator_domain: str | None = None
    ) -> list[tuple[str, str]]:
        """All (delegatee, type) pairs this proxy can serve for a delegator."""
        return self.table.delegations_for(delegator, delegator_domain)

    def can_reencrypt(
        self, ciphertext: TypedCiphertext, delegatee_domain: str, delegatee: str
    ) -> bool:
        return self.table.request_index(ciphertext, delegatee_domain, delegatee) in self.table

    def get_key(
        self, ciphertext: TypedCiphertext, delegatee_domain: str, delegatee: str
    ) -> ProxyKey:
        """Look up the key that would transform ``ciphertext`` for a delegatee.

        Raises :class:`NoProxyKeyError` when no matching key is installed.
        """
        key = self.table.get(self.table.request_index(ciphertext, delegatee_domain, delegatee))
        if key is None:
            raise NoProxyKeyError(
                "no proxy key for delegator=%r delegatee=%r type=%r"
                % (ciphertext.identity, delegatee, ciphertext.type_label)
            )
        return key

    def reencrypt(
        self, ciphertext: TypedCiphertext, delegatee_domain: str, delegatee: str
    ) -> ReEncryptedCiphertext:
        """Transform ``ciphertext`` for the named delegatee.

        Raises :class:`NoProxyKeyError` when the delegator never delegated
        this ciphertext's type to that delegatee — the fine-grained control
        the paper's construction provides.
        """
        key = self.get_key(ciphertext, delegatee_domain, delegatee)
        return self.reencrypt_with_key(ciphertext, key)

    def reencrypt_with_key(
        self, ciphertext: TypedCiphertext, key: ProxyKey
    ) -> ReEncryptedCiphertext:
        """Transform with an already-resolved key (a cached table lookup).

        The key must still match the ciphertext — the backend's
        transformation guard runs regardless, so a stale cache entry
        cannot cross the policy boundary.
        """
        result = self.backend.reencrypt(ciphertext, key)
        self._log.append(
            ReEncryptionLogEntry(
                delegator=ciphertext.identity,
                delegatee=key.delegatee,
                type_label=ciphertext.type_label,
                sequence=self._sequence,
            )
        )
        self._sequence += 1
        return result

    def reencrypt_many_with_key(
        self, ciphertexts: list[TypedCiphertext], key: ProxyKey
    ) -> list[ReEncryptedCiphertext]:
        """Transform a batch sharing one resolved key (one log entry each).

        Routes through the backend's batched transformation so
        pairing-based schemes amortise the Miller precomputation for the
        re-encryption-key point across the whole group.  On failure no log
        entries are appended (the backend validates every guard before
        transforming).
        """
        results = self.backend.reencrypt_batch(ciphertexts, key)
        for ciphertext in ciphertexts:
            self._log.append(
                ReEncryptionLogEntry(
                    delegator=ciphertext.identity,
                    delegatee=key.delegatee,
                    type_label=ciphertext.type_label,
                    sequence=self._sequence,
                )
            )
            self._sequence += 1
        return results

    @property
    def log(self) -> list[ReEncryptionLogEntry]:
        """The transformation log (copy; bounded to ``max_log_entries``)."""
        return list(self._log)

    @property
    def transformations_total(self) -> int:
        """Lifetime transformation count (survives log truncation)."""
        return self._sequence
