"""RemoteGateway: the gateway's typed API, spoken over HTTP/JSON.

A :class:`RemoteGateway` is a drop-in stand-in for
:class:`~repro.service.gateway.ReEncryptionGateway` wherever code only
*calls* the gateway — the driver, the benchmarks and the examples run
unchanged whether the object in their hands is the in-process fleet or
this client pointed at a remote one.  Every method encodes its request
with :mod:`repro.service.wire.codec`, POSTs it, and decodes the response
back into the same dataclasses; a non-2xx reply carries a wire ``error``
body whose stable code selects the taxonomy class to raise, so callers
catch :class:`~repro.service.gateway.RateLimitedError` (and friends)
identically in both deployments.

Transport: one persistent HTTP/1.1 keep-alive connection per client
(the server sends ``Content-Length`` on every response exactly so this
works), re-established transparently when the server drops it — an idle
timeout, a restart.  A request that dies mid-flight is retried once on
a fresh connection when replaying it is sound — grants are idempotent
installs, transformations and fetches are deterministic reads — while
revoke and resize (whose replay against mutated state would mis-report
the outcome) fail fast instead.  :attr:`connections_opened` counts
dials so benchmarks can *assert* reuse rather than assume it.

Scheme negotiation: before the first request the client fetches
``GET /v1/scheme`` and refuses (with :class:`SchemeMismatchError`) to
proceed when the server runs a different scheme backend or pairing
group than this client was built with — version skew dies before any
element envelope is misread.  TLS and auth remain named follow-ups in
the roadmap, not accidental omissions.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import urllib.parse
from typing import Sequence

from repro.core.api import PreBackend, resolve_backend
from repro.pairing.group import PairingGroup
from repro.service.gateway import (
    FetchRequest,
    FetchResponse,
    GatewayError,
    GrantRequest,
    GrantResponse,
    InvalidRequestError,
    ReEncryptRequest,
    ReEncryptResponse,
    ResizeReport,
    RevokeRequest,
    RevokeResponse,
)
from repro.service.metrics import MetricsSnapshot
from repro.service.wire.codec import (
    ReEncryptBatchRequest,
    ReEncryptBatchResponse,
    ResizeRequest,
    from_wire,
    to_wire,
)

__all__ = ["RemoteGateway", "WireTransportError", "SchemeMismatchError"]


class WireTransportError(GatewayError):
    """The server could not be reached or spoke something unintelligible.

    Distinct from the server-side taxonomy: those codes mean the gateway
    *decided* something; this one means no decision arrived at all.
    """

    code = "wire-transport"


class SchemeMismatchError(GatewayError):
    """Negotiation failed: the server runs a different scheme or group."""

    code = "scheme-mismatch"


_RETRYABLE = (ConnectionError, http.client.HTTPException, TimeoutError, OSError)


class RemoteGateway:
    """A typed HTTP client for one :class:`GatewayHttpServer`.

    ``url`` is the server base (e.g. ``http://127.0.0.1:8080``);
    ``context`` is the scheme backend the client speaks — a bare
    :class:`~repro.pairing.group.PairingGroup` selects the paper's
    ``tipre/v1`` backend, the historical spelling.  It must match what
    the server serves; the first request verifies that via
    ``GET /v1/scheme``.

    The client is thread-safe, but requests serialize on the single
    persistent connection; use one client per concurrent caller for
    parallel load.
    """

    def __init__(
        self,
        url: str,
        context: PairingGroup | PreBackend,
        timeout: float = 30.0,
        negotiate: bool = True,
    ):
        self.url = url.rstrip("/")
        self.backend = resolve_backend(context)
        self.group = self.backend.group
        self.timeout = timeout
        self.connections_opened = 0
        self._negotiate = negotiate
        self._negotiated = False
        self._lock = threading.RLock()
        self._conn: http.client.HTTPConnection | None = None
        parts = urllib.parse.urlsplit(self.url)
        if parts.scheme not in ("http", "https") or not parts.netloc:
            raise ValueError("gateway url must be http(s)://host[:port], got %r" % url)
        self._conn_class = (
            http.client.HTTPSConnection if parts.scheme == "https" else http.client.HTTPConnection
        )
        self._netloc = parts.netloc

    # -------------------------------------------------------------- plumbing

    def _ensure_conn(self) -> http.client.HTTPConnection:
        if self._conn is None:
            conn = self._conn_class(self._netloc, timeout=self.timeout)
            conn.connect()
            # A reused connection interleaves small request/response
            # writes; without TCP_NODELAY, Nagle + delayed ACK add ~40ms
            # to every round trip and erase the keep-alive win.
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._conn = conn
            self.connections_opened += 1
        return self._conn

    def _drop_conn(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def _raw_request(
        self, method: str, path: str, data: bytes | None, replayable: bool = True
    ) -> tuple[int, bytes]:
        """One HTTP exchange on the persistent connection, status + body.

        A transport failure drops the connection and — for ``replayable``
        requests only — retries exactly once on a fresh one: the
        reconnect-on-drop path a long-lived client needs when the server
        restarts or reaps idle connections.  Grants (idempotent
        installs), transformations and fetches (deterministic reads) and
        the GET endpoints are safe to replay; revoke and resize are NOT
        (a drop after the server acted would replay against the mutated
        state and mis-report the outcome).  Those are instead sent on a
        freshly-dialed connection — a stale idle socket is the common
        drop, and a new dial cannot be one — and then fail fast as
        :class:`WireTransportError`, leaving the decision to the caller;
        only a server that really died mid-request surfaces that way.
        """
        if not replayable:
            # An extra dial per revoke/resize is cheap; silently failing
            # (or replaying) a mutation is not.
            self._drop_conn()
        headers = {"Content-Type": "application/json"}
        last_error: Exception | None = None
        for attempt in (0, 1) if replayable else (0,):
            try:
                conn = self._ensure_conn()
                conn.request(method, path, body=data, headers=headers)
                response = conn.getresponse()
                body = response.read()
                if response.will_close:
                    # The server asked to close (error paths do); honor it
                    # so the next request dials fresh instead of failing.
                    self._drop_conn()
                return response.status, body
            except _RETRYABLE as error:
                self._drop_conn()
                last_error = error
        raise WireTransportError(
            "cannot reach %s%s: %s" % (self.url, path, last_error)
        ) from last_error

    def _negotiate_scheme(self) -> None:
        """Verify the server speaks this client's scheme and group."""
        info = self.scheme_info()
        remote_scheme = info.get("scheme")
        remote_group = info.get("group")
        if remote_scheme is None or remote_group is None:
            raise WireTransportError(
                "scheme negotiation failed: /v1/scheme body lacks scheme/group"
            )
        if remote_scheme != self.backend.scheme_id or remote_group != self.group.params.name:
            raise SchemeMismatchError(
                "server %s runs %s on group %s; this client speaks %s on %s"
                % (
                    self.url,
                    remote_scheme,
                    remote_group,
                    self.backend.scheme_id,
                    self.group.params.name,
                )
            )
        self._negotiated = True

    def _round_trip(
        self, method: str, path: str, message: object | None, replayable: bool = True
    ):
        data = (
            to_wire(self.backend, message).encode("utf-8") if message is not None else None
        )
        with self._lock:
            if self._negotiate and not self._negotiated:
                self._negotiate_scheme()
            status, body = self._raw_request(method, path, data, replayable=replayable)
        text = body.decode("utf-8", errors="replace")
        if status >= 400:
            # The body should be a wire error; reconstruct and raise the
            # taxonomy class the in-process gateway would have raised.
            try:
                decoded = from_wire(self.backend, text)
            except GatewayError:
                raise WireTransportError(
                    "HTTP %d from %s with undecodable body" % (status, path)
                ) from None
            if isinstance(decoded, GatewayError):
                raise decoded from None
            raise WireTransportError(
                "HTTP %d from %s carried a non-error message" % (status, path)
            )
        try:
            return from_wire(self.backend, text)
        except InvalidRequestError as decode_error:
            # A 2xx body that is not wire JSON (an interposed proxy, a
            # version-skewed server) is a transport fault, not the gateway
            # judging *our* request invalid.
            raise WireTransportError(
                "undecodable 2xx body from %s: %s" % (path, decode_error)
            ) from decode_error

    def _call(
        self,
        method: str,
        path: str,
        message: object | None,
        expect: type,
        replayable: bool = True,
    ):
        decoded = self._round_trip(method, path, message, replayable=replayable)
        if not isinstance(decoded, expect):
            raise WireTransportError(
                "%s returned %s, expected %s"
                % (path, type(decoded).__name__, expect.__name__)
            )
        return decoded

    # ------------------------------------------------------------ operations

    def scheme_info(self) -> dict:
        """The server's ``/v1/scheme`` document (id, group, capabilities)."""
        with self._lock:
            status, body = self._raw_request("GET", "/v1/scheme", None)
        if status != 200:
            raise WireTransportError("HTTP %d from /v1/scheme" % status)
        try:
            return json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise WireTransportError("undecodable /v1/scheme body") from error

    def grant(self, request: GrantRequest) -> GrantResponse:
        return self._call("POST", "/v1/grant", request, GrantResponse)

    def revoke(self, request: RevokeRequest) -> RevokeResponse:
        # Not replayed on a connection drop: a retry after the server
        # already removed the key would report removed=False for a
        # revocation that happened.
        return self._call("POST", "/v1/revoke", request, RevokeResponse, replayable=False)

    def reencrypt(self, request: ReEncryptRequest) -> ReEncryptResponse:
        return self._call("POST", "/v1/reencrypt", request, ReEncryptResponse)

    def reencrypt_batch(
        self, requests: Sequence[ReEncryptRequest]
    ) -> list[ReEncryptResponse]:
        """One POST for the whole batch; order matches submission order."""
        message = ReEncryptBatchRequest(requests=tuple(requests))
        response = self._call("POST", "/v1/reencrypt", message, ReEncryptBatchResponse)
        return list(response.responses)

    def fetch(self, request: FetchRequest) -> FetchResponse:
        return self._call("POST", "/v1/fetch", request, FetchResponse)

    def resize(self, shard_count: int, tenant: str = "admin") -> ResizeReport:
        # Not replayed: a second resize against an already-resized fleet
        # would run (and report) a spurious zero-move migration.
        message = ResizeRequest(tenant=tenant, shard_count=shard_count)
        return self._call("POST", "/v1/resize", message, ResizeReport, replayable=False)

    # --------------------------------------------------------- observability

    def snapshot(self) -> MetricsSnapshot:
        return self._call("GET", "/v1/metrics", None, MetricsSnapshot)

    def close(self) -> None:
        """Release the persistent connection (reopened on next use)."""
        with self._lock:
            self._drop_conn()

    def __enter__(self) -> "RemoteGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
