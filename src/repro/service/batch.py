"""Request batching: group same-delegation re-encryptions.

A clinical workload re-encrypts many ciphertexts for the same (delegator,
delegatee, type) triple in bursts — a doctor opening a patient's history
pulls every entry of a category at once.  Each transformation needs the
same proxy key, so the batcher resolves the key **once per group** and
applies the pairing-side transformation per item, instead of paying a
routing hop and table/cache lookup per ciphertext.

The batcher is deliberately pure orchestration: it never touches shards
or caches itself.  The gateway hands it two callables — one that resolves
a group's key and one that transforms a single ciphertext with a resolved
key — which keeps the grouping logic trivially testable and reusable over
any execution backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.core.ciphertexts import ProxyKey, ReEncryptedCiphertext, TypedCiphertext

__all__ = ["BatchGroup", "ReEncryptBatcher", "BatchItemError"]

# (delegator_domain, delegator, delegatee_domain, delegatee, type_label)
GroupKey = tuple[str, str, str, str, str]
T = TypeVar("T")


class BatchItemError(Exception):
    """Wraps a per-item failure with the position it occurred at."""

    def __init__(self, position: int, cause: Exception):
        super().__init__("batch item %d failed: %s" % (position, cause))
        self.position = position
        self.cause = cause


@dataclass(frozen=True)
class BatchGroup:
    """All items of one batch sharing a single delegation triple."""

    group_key: GroupKey
    positions: tuple[int, ...]
    ciphertexts: tuple[TypedCiphertext, ...]


class ReEncryptBatcher:
    """Groups (ciphertext, delegatee) pairs by delegation and executes them."""

    @staticmethod
    def group(
        items: Sequence[tuple[TypedCiphertext, str, str]],
    ) -> list[BatchGroup]:
        """Partition ``(ciphertext, delegatee_domain, delegatee)`` items.

        Returns groups in first-appearance order; each group remembers the
        original positions so results can be restored to submission order.
        """
        buckets: dict[GroupKey, list[int]] = {}
        for position, (ciphertext, delegatee_domain, delegatee) in enumerate(items):
            key = (
                ciphertext.domain,
                ciphertext.identity,
                delegatee_domain,
                delegatee,
                ciphertext.type_label,
            )
            buckets.setdefault(key, []).append(position)
        return [
            BatchGroup(
                group_key=key,
                positions=tuple(positions),
                ciphertexts=tuple(items[i][0] for i in positions),
            )
            for key, positions in buckets.items()
        ]

    @staticmethod
    def resolve_all(
        groups: Sequence[BatchGroup],
        resolve_key: Callable[[GroupKey], ProxyKey],
    ) -> dict[GroupKey, ProxyKey]:
        """Resolve every group's key before any transformation runs.

        A missing delegation (the realistic failure) aborts the batch
        with :class:`BatchItemError` carrying the group's first position,
        before side effects accumulate — the gateway relies on this to
        run the transformation phase concurrently without partial work
        becoming visible on that failure mode.
        """
        keys: dict[GroupKey, ProxyKey] = {}
        for group in groups:
            try:
                keys[group.group_key] = resolve_key(group.group_key)
            except Exception as error:  # noqa: BLE001 - rewrapped with position
                raise BatchItemError(group.positions[0], error) from error
        return keys

    @staticmethod
    def execute(
        items: Sequence[tuple[TypedCiphertext, str, str]],
        resolve_key: Callable[[GroupKey], ProxyKey],
        transform: Callable[[TypedCiphertext, ProxyKey, int], ReEncryptedCiphertext],
    ) -> list[ReEncryptedCiphertext]:
        """Run a batch: one ``resolve_key`` per group, one ``transform`` per item.

        Results come back in submission order; ``transform`` also receives
        the item's submission position, so callers can attribute per-item
        state (shard, cache hit) without re-deriving it.  *Every* group's
        key is resolved (via :meth:`resolve_all`) before *any*
        transformation runs.  A mid-batch ``transform`` failure still
        aborts with the offending position.
        """
        groups = ReEncryptBatcher.group(items)
        keys = ReEncryptBatcher.resolve_all(groups, resolve_key)
        results: list[ReEncryptedCiphertext | None] = [None] * len(items)
        for group in groups:
            key = keys[group.group_key]
            for position, ciphertext in zip(group.positions, group.ciphertexts):
                try:
                    results[position] = transform(ciphertext, key, position)
                except Exception as error:  # noqa: BLE001 - rewrapped with position
                    raise BatchItemError(position, error) from error
        return results  # type: ignore[return-value]  # every slot filled above
