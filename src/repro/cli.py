"""Command-line interface: the full delegation lifecycle over files.

Every artifact (params, keys, ciphertexts, proxy keys) lives on disk in
the library's JSON envelope format, so the CLI doubles as an
interoperability test of :mod:`repro.serialization`.  The seven
subcommands mirror the scheme's algorithms:

    setup      create a KGC domain (params + master key files)
    extract    issue a user private key
    encrypt    hybrid-encrypt a file under a type label
    decrypt    delegator-side decryption
    pextract   create a proxy re-encryption key
    preenc     proxy transformation
    redecrypt  delegatee-side decryption
    serve      drive the sharded re-encryption gateway and print metrics;
               with --http PORT it becomes a long-running HTTP/JSON
               gateway process, and with --connect URL it drives the
               same workload against such a process over the wire.
               --scheme NAME selects any registered PRE backend
               (tipre/v1, afgh/v1, green-ateniese/v1, ...) for all
               three modes; repeated --scheme flags make one --http
               process host several scheme fleets side by side, each
               under its scheme-id-prefixed routes.  --pool-size N
               gives a --connect client a bounded keep-alive
               connection pool for concurrent callers
    schemes    list every registered scheme backend and its capabilities
    tenants    manage the tenant credential file a --tenant-config server
               verifies signed requests against (init/add/rotate/revoke/list)
    trace      fetch a distributed trace from a --http gateway by id and
               render it as a per-span waterfall (server stages included)

Example round trip::

    repro-pre setup --group TOY --domain KGC1 --out kgc1
    repro-pre setup --group TOY --domain KGC2 --out kgc2
    repro-pre extract --kgc kgc1 --identity alice --out alice.key
    repro-pre extract --kgc kgc2 --identity bob --out bob.key
    repro-pre encrypt --params kgc1/params.json --key alice.key \
        --type labs --in report.txt --out report.ct
    repro-pre pextract --key alice.key --delegatee bob \
        --delegatee-params kgc2/params.json --type labs --out labs.rk
    repro-pre preenc --rk labs.rk --in report.ct --out report.re
    repro-pre redecrypt --key bob.key --in report.re --out report.out

The master-key file is written in the clear — this CLI is a research
demonstrator, not a key-management product.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path

from repro.core.scheme import TypeAndIdentityPre
from repro.hybrid.kem import HybridPre
from repro.ibe.boneh_franklin import BonehFranklinIbe
from repro.ibe.keys import IbeMasterKey
from repro.math.drbg import HmacDrbg, system_random
from repro.pairing.group import PairingGroup
from repro.serialization.containers import (
    deserialize_hybrid,
    deserialize_hybrid_reencrypted,
    deserialize_params,
    deserialize_private_key,
    deserialize_proxy_key,
    from_json_envelope,
    serialize_hybrid,
    serialize_hybrid_reencrypted,
    serialize_params,
    serialize_private_key,
    serialize_proxy_key,
    to_json_envelope,
)

__all__ = ["main"]


def _rng(args):
    return HmacDrbg(args.seed) if args.seed else system_random()


def _write_envelope(group: PairingGroup, blob: bytes, path: Path) -> None:
    path.write_text(to_json_envelope(group, blob))


def _read_envelope(group: PairingGroup, path: Path) -> bytes:
    return from_json_envelope(group, path.read_text())


def _group_of(path: Path) -> PairingGroup:
    """Infer the pairing group from any envelope file."""
    envelope = json.loads(path.read_text())
    return PairingGroup.shared(envelope["group"])


def _cmd_setup(args) -> int:
    group = PairingGroup.shared(args.group)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    params, master = BonehFranklinIbe(group, args.domain).setup(_rng(args))
    _write_envelope(group, serialize_params(group, params), out / "params.json")
    (out / "master.json").write_text(
        json.dumps({"domain": master.domain, "group": group.params.name, "alpha": master.alpha})
    )
    print("created domain %r on %s in %s" % (args.domain, args.group, out))
    return 0


def _cmd_extract(args) -> int:
    kgc_dir = Path(args.kgc)
    master_data = json.loads((kgc_dir / "master.json").read_text())
    group = PairingGroup.shared(master_data["group"])
    master = IbeMasterKey(domain=master_data["domain"], alpha=master_data["alpha"])
    key = BonehFranklinIbe(group, master.domain).extract(master, args.identity)
    _write_envelope(group, serialize_private_key(group, key), Path(args.out))
    print("extracted key for %r in domain %r" % (args.identity, master.domain))
    return 0


def _cmd_encrypt(args) -> int:
    group = _group_of(Path(args.params))
    params = deserialize_params(group, _read_envelope(group, Path(args.params)))
    key = deserialize_private_key(group, _read_envelope(group, Path(args.key)))
    payload = Path(args.infile).read_bytes()
    ciphertext = HybridPre(group).encrypt(params, key, payload, args.type, _rng(args))
    _write_envelope(group, serialize_hybrid(group, ciphertext), Path(args.out))
    print("encrypted %d bytes under type %r" % (len(payload), args.type))
    return 0


def _cmd_decrypt(args) -> int:
    group = _group_of(Path(args.infile))
    key = deserialize_private_key(group, _read_envelope(group, Path(args.key)))
    ciphertext = deserialize_hybrid(group, _read_envelope(group, Path(args.infile)))
    payload = HybridPre(group).decrypt(ciphertext, key)
    Path(args.out).write_bytes(payload)
    print("decrypted %d bytes (type %r)" % (len(payload), ciphertext.type_label))
    return 0


def _cmd_pextract(args) -> int:
    group = _group_of(Path(args.key))
    key = deserialize_private_key(group, _read_envelope(group, Path(args.key)))
    delegatee_params = deserialize_params(
        group, _read_envelope(group, Path(args.delegatee_params))
    )
    proxy_key = TypeAndIdentityPre(group).pextract(
        key, args.delegatee, args.type, delegatee_params, _rng(args)
    )
    _write_envelope(group, serialize_proxy_key(group, proxy_key), Path(args.out))
    print(
        "proxy key: %s -> %s for type %r" % (key.identity, args.delegatee, args.type)
    )
    return 0


def _cmd_preenc(args) -> int:
    group = _group_of(Path(args.infile))
    proxy_key = deserialize_proxy_key(group, _read_envelope(group, Path(args.rk)))
    ciphertext = deserialize_hybrid(group, _read_envelope(group, Path(args.infile)))
    transformed = HybridPre(group).reencrypt(ciphertext, proxy_key)
    _write_envelope(group, serialize_hybrid_reencrypted(group, transformed), Path(args.out))
    print("re-encrypted for %r (type %r)" % (proxy_key.delegatee, proxy_key.type_label))
    return 0


def _cmd_redecrypt(args) -> int:
    group = _group_of(Path(args.infile))
    key = deserialize_private_key(group, _read_envelope(group, Path(args.key)))
    ciphertext = deserialize_hybrid_reencrypted(group, _read_envelope(group, Path(args.infile)))
    payload = HybridPre(group).decrypt_reencrypted(ciphertext, key)
    Path(args.out).write_bytes(payload)
    print("decrypted %d bytes as delegatee %r" % (len(payload), key.identity))
    return 0


def _cmd_schemes(args) -> int:
    """List every registered scheme backend with its capability flags."""
    from repro.bench.report import print_table
    from repro.core.api import CAPABILITY_NAMES, load_builtin_backends

    registry = load_builtin_backends()
    rows = []
    for scheme_id in registry.ids():
        backend_class = registry.backend_class(scheme_id)
        flags = backend_class.capabilities.as_dict()
        rows.append(
            [scheme_id, backend_class.display_name]
            + ["yes" if flags[name] else "-" for name in CAPABILITY_NAMES]
        )
    short = {
        "unidirectional": "unidir",
        "non_interactive": "non-int",
        "collusion_safe": "coll-safe",
        "identity_based": "id-based",
        "type_granular": "typed",
        "deterministic_reencrypt": "det-reenc",
    }
    print_table(
        "registered PRE scheme backends",
        ["scheme", "name"] + [short[name] for name in CAPABILITY_NAMES],
        rows,
    )
    return 0


def _render_trace(trace_id: str, spans) -> list[str]:
    """Render one trace as an indented waterfall, oldest span first.

    Client- and server-side spans of the same trace nest by parent id;
    a span whose parent is not in the retrieved set (the client's root,
    on a server-side-only retrieval) sits at depth zero.  The timeline
    bar is scaled to the whole trace window.
    """
    if not spans:
        return ["trace %s: no spans" % trace_id]
    by_id = {span.span_id: span for span in spans}

    def depth(span, hops: int = 0) -> int:
        parent = by_id.get(span.parent_id)
        # hops guards a malformed cyclic parent chain from looping forever.
        if parent is None or hops > len(spans):
            return 0
        return 1 + depth(parent, hops + 1)

    ordered = sorted(spans, key=lambda span: (span.start_ms, span.span_id))
    t0 = min(span.start_ms for span in ordered)
    window = max(span.start_ms + span.duration_ms for span in ordered) - t0
    bar_width = 28
    lines = ["trace %s (%d spans, %.2f ms)" % (trace_id, len(ordered), window)]
    for span in ordered:
        offset = span.start_ms - t0
        left = int(offset / window * bar_width) if window > 0 else 0
        length = max(1, int(span.duration_ms / window * bar_width)) if window > 0 else 1
        bar = " " * left + "#" * min(length, bar_width - left)
        attributes = " ".join("%s=%s" % pair for pair in span.attributes)
        lines.append(
            "  [%-*s] %8.2fms %8.2fms  %s%s%s%s"
            % (
                bar_width,
                bar,
                offset,
                span.duration_ms,
                "  " * depth(span),
                span.name,
                "" if span.status == "ok" else " !%s" % span.status,
                " (%s)" % attributes if attributes else "",
            )
        )
    return lines


def _cmd_trace(args) -> int:
    """Fetch one trace from a remote gateway and print its waterfall."""
    from repro.pairing.group import PairingGroup
    from repro.service.wire.client import RemoteGateway

    # The trace endpoint is scheme-neutral, so no negotiation: any group
    # context decodes the error taxonomy, which is all this client needs.
    remote = RemoteGateway(
        args.connect,
        PairingGroup.shared(args.group),
        negotiate=False,
        trace_requests=False,
    )
    try:
        spans = remote.fetch_trace(args.trace_id)
    finally:
        remote.close()
    for line in _render_trace(args.trace_id, spans):
        print(line)
    return 0


def _cmd_tenants(args) -> int:
    """Manage a gateway tenant credential file (see repro.service.auth)."""
    from repro.bench.report import print_table
    from repro.service.auth import TenantCredentialStore

    path = Path(args.config)
    if args.tenants_command == "init":
        TenantCredentialStore.initialize(path)
        print("created empty tenant config %s" % path)
        return 0
    store = TenantCredentialStore(path)
    if args.tenants_command == "add":
        credential = store.add(
            args.name,
            secret=args.secret,
            roles=tuple(args.role) if args.role else ("client",),
            rate_per_s=args.rate,
            burst=args.burst,
            max_batch=args.max_batch,
            quota=args.quota,
        )
        print(
            "added tenant %r (roles: %s)"
            % (credential.tenant, ", ".join(credential.roles))
        )
        if args.secret is None:
            # Printed exactly once: the file holds it, but the operator
            # needs it now to configure the client side.
            print("secret: %s" % credential.secret)
        return 0
    if args.tenants_command == "rotate":
        credential = store.rotate(args.name, secret=args.secret)
        print("rotated secret for tenant %r" % args.name)
        if args.secret is None:
            print("secret: %s" % credential.secret)
        return 0
    if args.tenants_command == "revoke":
        store.revoke(args.name)
        print("revoked tenant %r" % args.name)
        return 0
    rows = [
        [
            credential.tenant,
            ", ".join(credential.roles),
            "-" if credential.rate_per_s is None else "%g/s" % credential.rate_per_s,
            "-" if credential.max_batch is None else str(credential.max_batch),
            "-" if credential.quota is None else str(credential.quota),
        ]
        for credential in store.tenants()
    ]
    print_table(
        "tenants in %s" % path,
        ["tenant", "roles", "rate", "max-batch", "quota"],
        rows,
    )
    return 0


def _cmd_serve(args) -> int:
    from repro.bench.report import print_table
    from repro.core.api import TIPRE_SCHEME_ID, available_schemes
    from repro.service.driver import (
        run_demo,
        run_remote_demo,
        run_remote_scheme_demo,
        run_scheme_demo,
    )

    if args.http is not None and args.connect is not None:
        print("error: --http and --connect are mutually exclusive", file=sys.stderr)
        return 2
    # Repeated --scheme flags are only meaningful for a multi-fleet HTTP
    # server; the demo and --connect modes drive exactly one scheme.
    scheme_ids = list(dict.fromkeys(args.scheme)) if args.scheme else [TIPRE_SCHEME_ID]
    for scheme_id in scheme_ids:
        if scheme_id not in available_schemes():
            print(
                "error: unknown scheme %r (run `repro-pre schemes`)" % scheme_id,
                file=sys.stderr,
            )
            return 2
    if len(scheme_ids) > 1 and args.http is None:
        print(
            "error: multiple --scheme values require --http (one process, "
            "several hosted fleets)",
            file=sys.stderr,
        )
        return 2
    args.scheme = scheme_ids[0]
    if args.fleet is not None:
        if args.http is None:
            print("error: --fleet requires --http", file=sys.stderr)
            return 2
        if len(scheme_ids) > 1:
            print(
                "error: --fleet hosts one scheme per routing process",
                file=sys.stderr,
            )
            return 2
        if args.fleet < 1:
            print("error: --fleet must be positive", file=sys.stderr)
            return 2
        return _serve_fleet(args)
    if args.http is not None:
        return _serve_http(args, scheme_ids)
    if args.connect is not None:
        ignored = [
            flag
            for flag, is_set in (
                # Literals mirror the parser defaults in _build_parser.
                ("--shards", args.shards != 4),
                ("--rate", args.rate is not None),
                ("--workers", args.workers != 0),
                ("--state-dir", args.state_dir is not None),
                ("--host", args.host != "127.0.0.1"),
                ("--event-log", args.event_log is not None),
                ("--tls-cert", args.tls_cert is not None),
                ("--tls-key", args.tls_key is not None),
                ("--tenant-config", args.tenant_config is not None),
            )
            if is_set
        ]
        if ignored:
            print(
                "note: %s configure the server process, not a --connect "
                "client; ignored" % ", ".join(ignored),
                file=sys.stderr,
            )
        if (args.auth_tenant is None) != (args.auth_secret is None):
            print(
                "error: --auth-tenant and --auth-secret must be given together",
                file=sys.stderr,
            )
            return 2
        if args.scheme == TIPRE_SCHEME_ID:
            report = run_remote_demo(
                args.connect,
                group_name=args.group,
                n_requests=args.requests,
                seed=args.seed or "gateway-demo",
                batch_size=args.batch,
                pool_size=args.pool_size,
                tenant=args.auth_tenant,
                secret=args.auth_secret,
                tls_ca=args.tls_ca,
                trace_requests=args.trace_sample,
            )
        else:
            report = run_remote_scheme_demo(
                args.connect,
                scheme_id=args.scheme,
                group_name=args.group,
                n_requests=args.requests,
                seed=args.seed or "gateway-demo",
                batch_size=args.batch,
                pool_size=args.pool_size,
                tenant=args.auth_tenant,
                secret=args.auth_secret,
                tls_ca=args.tls_ca,
                trace_requests=args.trace_sample,
            )
        print_table(
            "remote gateway %s: %d requests" % (args.connect, args.requests),
            ["metric", "value"],
            report.rows(),
        )
        return 0
    if args.scheme == TIPRE_SCHEME_ID:
        # The original seeded workload, kept bit-stable for E9/E10/E11.
        report = run_demo(
            group_name=args.group,
            shard_count=args.shards,
            n_requests=args.requests,
            seed=args.seed or "gateway-demo",
            batch_size=args.batch,
            rate_per_s=args.rate,
            workers=args.workers,
            state_dir=args.state_dir,
        )
    else:
        report = run_scheme_demo(
            scheme_id=args.scheme,
            group_name=args.group,
            shard_count=args.shards,
            n_requests=args.requests,
            seed=args.seed or "gateway-demo",
            batch_size=args.batch,
            rate_per_s=args.rate,
            workers=args.workers,
            state_dir=args.state_dir,
        )
    print_table(
        "gateway: %d requests over %d shards" % (args.requests, args.shards),
        ["metric", "value"],
        report.rows(),
    )
    return 0


def _state_dirs_for(state_dir, scheme_ids: list[str]) -> list:
    """Resolve each hosted scheme's durable directory under ``--state-dir``.

    A single-scheme server keeps the historical layout (logs directly in
    the state dir); several schemes get isolated per-scheme
    subdirectories.  Two restart transitions are handled explicitly so a
    layout change can never silently hide previously granted keys:

    * single -> multi: if the root still holds single-scheme logs, refuse
      to start (the new per-scheme subdirectory would open empty while
      the old log sits unread);
    * multi -> single: if the root is empty but the scheme's own
      subdirectory holds logs, keep serving from the subdirectory.
    """
    from repro.service.persistence import scheme_state_subdir

    if state_dir is None:
        return [None] * len(scheme_ids)
    root = Path(state_dir)
    root_logs = sorted(root.glob("*.log")) if root.is_dir() else []
    if len(scheme_ids) == 1:
        subdir = scheme_state_subdir(root, scheme_ids[0])
        if not root_logs and subdir.is_dir() and any(subdir.glob("*.log")):
            return [subdir]
        return [root]
    if root_logs:
        raise ValueError(
            "state dir %s holds single-scheme logs at its root (%s, ...); move "
            "them into %s/ before hosting multiple schemes, or they would be "
            "silently ignored" % (root, root_logs[0].name, scheme_state_subdir(root, scheme_ids[0]).name)
        )
    return [scheme_state_subdir(root, scheme_id) for scheme_id in scheme_ids]


def _serve_http(args, scheme_ids: list[str]) -> int:
    """Run one or several bare gateway fleets behind HTTP until interrupted.

    The process starts with empty shard tables (or whatever a durable
    ``--state-dir`` holds): grants, re-encryptions and admin resizes all
    arrive over the wire, e.g. from ``repro-pre serve --connect``.  The
    server holds no party secrets for *any* scheme — it only ever sees
    proxy keys and ciphertexts, the paper's semi-trusted proxy trust
    model.  With several ``--scheme`` flags every fleet is isolated —
    its own shards, caches, metrics, and (under ``--state-dir``) its own
    per-scheme durable subdirectory — behind scheme-id-prefixed routes.
    """
    from repro.core.api import create_backend
    from repro.pairing.group import PairingGroup
    from repro.service.gateway import ReEncryptionGateway
    from repro.service.telemetry import EventLog, jsonl_sink
    from repro.service.wire import AsyncGatewayServer, GatewayHttpServer

    server_class = AsyncGatewayServer if args.async_wire else GatewayHttpServer
    tls, verifier, policy = _security_from_args(args)
    # One hosted scheme keeps the historical shared group (existing
    # clients negotiate against its name); several schemes each get a
    # deterministically derived group of the same size, so no two fleets
    # in one process ever share group parameters (or moduli).
    if len(scheme_ids) == 1:
        groups = {scheme_ids[0]: PairingGroup.shared(args.group)}
    else:
        groups = {
            scheme_id: PairingGroup.for_scheme(args.group, scheme_id)
            for scheme_id in scheme_ids
        }
    state_dirs = _state_dirs_for(args.state_dir, scheme_ids)
    # One event log shared by every fleet and the HTTP layer: with
    # --event-log PATH each event is also appended as one JSON line, so a
    # single stream tells the whole multi-scheme story in order.
    event_stream = None
    if args.event_log is not None:
        event_stream = Path(args.event_log).open("a", encoding="utf-8")
        event_log = EventLog(sink=jsonl_sink(event_stream))
    else:
        event_log = EventLog()
    gateways = []
    try:
        for scheme_id, state_dir in zip(scheme_ids, state_dirs):
            gateways.append(
                ReEncryptionGateway(
                    create_backend(scheme_id, groups[scheme_id]),
                    shard_count=args.shards,
                    rate_per_s=args.rate,
                    workers=args.workers,
                    state_dir=state_dir,
                    event_log=event_log,
                    policy=policy,
                )
            )
        server = server_class(
            gateways=gateways,
            host=args.host,
            port=args.http,
            event_log=event_log,
            tls=tls,
            auth=verifier,
            trace_sample=args.trace_sample,
        )
        if args.async_wire:
            # The asyncio server binds inside start(); the banner below
            # must print the real (possibly ephemeral) port.
            server.start()
    except BaseException:
        for gateway in gateways:
            gateway.close()
        if event_stream is not None:
            event_stream.close()
        raise
    shard_label = "shard %s, " % args.shard if args.shard else ""
    print(
        "gateway listening on %s (%sschemes %s, group %s, %d shards, %d keys loaded)"
        % (
            server.url,
            shard_label,
            "+".join(scheme_ids),
            args.group if len(scheme_ids) == 1 else "%s (per-scheme derived)" % args.group,
            args.shards,
            sum(gateway.key_count() for gateway in gateways),
        ),
        flush=True,
    )
    _install_sigterm_interrupt()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        for gateway in gateways:
            gateway.close()
        if event_stream is not None:
            event_stream.close()
    return 0


def _security_from_args(args):
    """TLS context, request verifier and policy engine from serve flags.

    All three are None when the corresponding flag is absent, so a bare
    ``serve --http`` stays the historical anonymous plaintext server.
    """
    from repro.service.auth import (
        PolicyEngine,
        RequestVerifier,
        TenantCredentialStore,
        server_context,
    )

    tls = None
    if args.tls_cert is not None:
        tls = server_context(args.tls_cert, args.tls_key)
    elif args.tls_key is not None:
        raise ValueError("--tls-key given without --tls-cert")
    verifier = None
    policy = None
    if args.tenant_config is not None:
        store = TenantCredentialStore(args.tenant_config)
        verifier = RequestVerifier(store)
        policy = PolicyEngine(store)
    return tls, verifier, policy


def _install_sigterm_interrupt() -> None:
    """Make SIGTERM run the same clean-shutdown path as Ctrl-C.

    The long-running serve loops release their resources (worker
    subprocesses, durable logs, event streams) in ``finally`` blocks
    reached via ``KeyboardInterrupt``; without this, ``kill``/systemd
    stop the routing process but orphan the fleet's shard workers.
    """

    def handler(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, handler)
    except ValueError:  # not in the main thread (embedded use)
        pass


def _serve_fleet(args) -> int:
    """Run the multi-process fleet: worker shards plus the routing tier.

    Spawns ``--fleet N`` single-shard worker processes (each a full
    ``serve --http 0 --shards 1`` gateway server, durable under
    ``--state-dir/<shard>/``), then serves a
    :class:`~repro.service.fleet.FleetGateway` routing tier over them on
    ``--http PORT``.  Clients connect to the routing tier exactly as
    they would to a single-process server; resizes migrate keys between
    worker processes without stopping traffic.
    """
    from repro.service.fleet import FleetGateway, FleetSupervisor
    from repro.service.telemetry import EventLog, jsonl_sink
    from repro.service.wire import AsyncGatewayServer, GatewayHttpServer

    server_class = AsyncGatewayServer if args.async_wire else GatewayHttpServer
    event_stream = None
    if args.event_log is not None:
        event_stream = Path(args.event_log).open("a", encoding="utf-8")
        event_log = EventLog(sink=jsonl_sink(event_stream))
    else:
        event_log = EventLog()
    supervisor = None
    gateway = None
    try:
        tls, verifier, _policy = _security_from_args(args)
        supervisor = FleetSupervisor(
            args.scheme,
            shard_count=args.fleet,
            state_root=args.state_dir,
            group_name=args.group,
            host=args.host,
            rate_per_s=args.rate,
            pool_size=max(args.pool_size, 2),
            event_log=event_log,
            # The worker links inherit the routing tier's security
            # posture: same cert for intra-fleet TLS, and per-worker
            # HMAC credentials whenever end clients must sign too.
            tls_cert=args.tls_cert,
            tls_key=args.tls_key,
            worker_auth=args.tenant_config is not None,
            # Async fleets dial their workers over mux links too: one
            # multiplexed socket per worker instead of a pool.
            async_workers=args.async_wire,
        )
        gateway = FleetGateway(supervisor, event_log=event_log)
        server = server_class(
            gateways=[gateway],
            host=args.host,
            port=args.http,
            event_log=event_log,
            tls=tls,
            auth=verifier,
            trace_sample=args.trace_sample,
        )
        if args.async_wire:
            server.start()
    except BaseException:
        if gateway is not None:
            gateway.close()
        elif supervisor is not None:
            supervisor.close()
        if event_stream is not None:
            event_stream.close()
        raise
    print(
        "fleet gateway listening on %s (scheme %s, group %s, %d shard processes)"
        % (server.url, args.scheme, args.group, args.fleet),
        flush=True,
    )
    _install_sigterm_interrupt()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        gateway.close()
        if event_stream is not None:
            event_stream.close()
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pre",
        description="Type-and-identity-based proxy re-encryption over files.",
    )
    parser.add_argument("--seed", help="deterministic RNG seed (testing only)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("setup", help="create a KGC domain")
    p.add_argument("--group", default="SS256", help="parameter set (TOY/SS256/SS512/SS1024)")
    p.add_argument("--domain", required=True)
    p.add_argument("--out", required=True, help="output directory")
    p.set_defaults(func=_cmd_setup)

    p = sub.add_parser("extract", help="issue a user private key")
    p.add_argument("--kgc", required=True, help="KGC directory from `setup`")
    p.add_argument("--identity", required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_extract)

    p = sub.add_parser("encrypt", help="hybrid-encrypt a file under a type")
    p.add_argument("--params", required=True)
    p.add_argument("--key", required=True, help="the delegator's own private key")
    p.add_argument("--type", required=True)
    p.add_argument("--in", dest="infile", required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_encrypt)

    p = sub.add_parser("decrypt", help="delegator-side decryption")
    p.add_argument("--key", required=True)
    p.add_argument("--in", dest="infile", required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_decrypt)

    p = sub.add_parser("pextract", help="create a proxy re-encryption key")
    p.add_argument("--key", required=True)
    p.add_argument("--delegatee", required=True)
    p.add_argument("--delegatee-params", required=True)
    p.add_argument("--type", required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_pextract)

    p = sub.add_parser("preenc", help="proxy transformation")
    p.add_argument("--rk", required=True)
    p.add_argument("--in", dest="infile", required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_preenc)

    p = sub.add_parser("redecrypt", help="delegatee-side decryption")
    p.add_argument("--key", required=True)
    p.add_argument("--in", dest="infile", required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_redecrypt)

    p = sub.add_parser("schemes", help="list registered PRE scheme backends")
    p.set_defaults(func=_cmd_schemes)

    p = sub.add_parser("serve", help="drive the sharded gateway on a synthetic workload")
    p.add_argument("--group", default="TOY", help="parameter set (TOY/SS256/SS512/SS1024)")
    p.add_argument("--scheme", action="append", default=None,
                   help="registered scheme backend to serve (see `repro-pre "
                        "schemes`); default tipre/v1.  Repeat the flag with "
                        "--http to host several scheme fleets in one process, "
                        "each under /v1/<scheme>/... routes")
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--requests", type=int, default=200)
    p.add_argument("--batch", type=int, default=0, help="batch size (0/1 = unbatched)")
    p.add_argument("--rate", type=float, default=None, help="per-tenant requests/second cap")
    p.add_argument("--workers", type=int, default=0,
                   help="shard-pool threads (0 = sequential batch execution)")
    p.add_argument("--state-dir", default=None,
                   help="directory for durable per-shard key logs (survives restarts)")
    p.add_argument("--http", type=int, default=None, metavar="PORT",
                   help="serve the gateway over HTTP/JSON on PORT (0 = ephemeral) "
                        "instead of driving the synthetic workload")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address for --http (default 127.0.0.1)")
    p.add_argument("--async", dest="async_wire", action="store_true",
                   help="with --http: serve on the asyncio event-loop stack "
                        "(mux framing + HTTP/1.1 on one port) instead of the "
                        "thread-per-connection server; prints a mux:// URL "
                        "that --connect auto-negotiates")
    p.add_argument("--connect", default=None, metavar="URL",
                   help="drive the synthetic workload against a remote "
                        "gateway, e.g. http://127.0.0.1:8080 (mux://host:port "
                        "selects the multiplexed framed transport of an "
                        "--async server)")
    p.add_argument("--pool-size", type=int, default=1,
                   help="keep-alive connection pool size for the --connect "
                        "client (default 1: the single persistent connection)")
    p.add_argument("--event-log", default=None, metavar="PATH",
                   help="with --http: append every structured event (audit, "
                        "http access, server errors) as one JSON line to PATH")
    p.add_argument("--fleet", type=int, default=None, metavar="N",
                   help="with --http: spawn N single-shard worker processes "
                        "and serve a routing gateway over them (multi-process "
                        "fleet mode); --state-dir gives each worker a durable "
                        "subdirectory")
    p.add_argument("--shard", default=None, metavar="NAME",
                   help="worker mode: label this process as fleet shard NAME "
                        "(set by the fleet supervisor; informational)")
    p.add_argument("--tls-cert", default=None, metavar="PEM",
                   help="with --http: terminate TLS with this certificate "
                        "(generate a dev cert with tools/gen_dev_cert.py)")
    p.add_argument("--tls-key", default=None, metavar="PEM",
                   help="private key for --tls-cert (omit when the cert file "
                        "bundles the key)")
    p.add_argument("--tls-ca", default=None, metavar="PEM",
                   help="with --connect: CA bundle that must have signed the "
                        "server certificate (pin the dev cert file itself)")
    p.add_argument("--tenant-config", default=None, metavar="PATH",
                   help="with --http: require HMAC-signed requests, verified "
                        "against this credential file (manage it with "
                        "`repro-pre tenants`); per-tenant rate/quota/role "
                        "policy from the same file is enforced")
    p.add_argument("--auth-tenant", default=None, metavar="NAME",
                   help="with --connect: sign requests as this tenant")
    p.add_argument("--auth-secret", default=None, metavar="HEX",
                   help="with --connect: the tenant's signing secret")
    p.add_argument("--trace-sample", type=float, default=1.0, metavar="FRACTION",
                   help="head-sample traces at this rate (server-side with "
                        "--http, client-side with --connect); metrics still "
                        "count every request (default 1.0)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("tenants", help="manage a gateway tenant credential file")
    tsub = p.add_subparsers(dest="tenants_command", required=True)
    tp = tsub.add_parser("init", help="create an empty tenant config file")
    tp.add_argument("--config", required=True, metavar="PATH")
    tp.set_defaults(func=_cmd_tenants)
    tp = tsub.add_parser("add", help="register a tenant (prints the secret)")
    tp.add_argument("name")
    tp.add_argument("--config", required=True, metavar="PATH")
    tp.add_argument("--secret", default=None,
                    help="signing secret (generated when omitted)")
    tp.add_argument("--role", action="append", default=None,
                    help="role for the tenant (repeatable; default client)")
    tp.add_argument("--rate", type=float, default=None,
                    help="per-tenant requests/second cap")
    tp.add_argument("--burst", type=float, default=None,
                    help="token-bucket burst for --rate (default: the rate)")
    tp.add_argument("--max-batch", type=int, default=None, dest="max_batch",
                    help="largest accepted re-encryption batch")
    tp.add_argument("--quota", type=int, default=None,
                    help="lifetime request quota")
    tp.set_defaults(func=_cmd_tenants)
    tp = tsub.add_parser("rotate", help="replace a tenant's signing secret")
    tp.add_argument("name")
    tp.add_argument("--config", required=True, metavar="PATH")
    tp.add_argument("--secret", default=None)
    tp.set_defaults(func=_cmd_tenants)
    tp = tsub.add_parser("revoke", help="remove a tenant")
    tp.add_argument("name")
    tp.add_argument("--config", required=True, metavar="PATH")
    tp.set_defaults(func=_cmd_tenants)
    tp = tsub.add_parser("list", help="list tenants, roles and limits")
    tp.add_argument("--config", required=True, metavar="PATH")
    tp.set_defaults(func=_cmd_tenants)

    p = sub.add_parser("trace", help="fetch and render a gateway trace by id")
    p.add_argument("trace_id", help="32-hex trace id (the X-Repro-Trace prefix, "
                                    "or a driver report's sample trace id)")
    p.add_argument("--connect", required=True, metavar="URL",
                   help="the --http gateway to query, e.g. http://127.0.0.1:8080")
    p.add_argument("--group", default="TOY",
                   help="parameter set used to decode error bodies (default TOY)")
    p.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, KeyError, OSError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    except Exception as error:
        # Service-layer errors (GatewayError subclasses) land here; import
        # locally so the lifecycle commands never pay for the service layer.
        from repro.service.gateway import GatewayError

        if isinstance(error, GatewayError):
            print("error[%s]: %s" % (error.code, error), file=sys.stderr)
            return 1
        raise


if __name__ == "__main__":
    sys.exit(main())
