"""The actors of the fine-grained PHR disclosure scheme (Section 5).

* :class:`Patient` — the delegator: owns one key pair, categorises and
  encrypts her PHR, and produces per-(requester, category) proxy keys
  locally (``Pextract``) without contacting anyone.
* :class:`Requester` — a delegatee (doctor, insurer, emergency service)
  registered at *their own* KGC; decrypts re-encrypted records.
* :class:`CategoryProxy` — the per-category semi-trusted proxy the paper
  prescribes ("For each type of PHR, Alice finds a proxy"): a
  :class:`~repro.core.proxy.ProxyService` bound to one category plus a
  ciphertext store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ciphertexts import ProxyKey
from repro.core.proxy import NoProxyKeyError, ProxyService
from repro.core.scheme import TypeAndIdentityPre
from repro.hybrid.kem import HybridPre, HybridReEncrypted
from repro.ibe.keys import IbeParams, IbePrivateKey
from repro.math.drbg import RandomSource, system_random
from repro.pairing.group import PairingGroup
from repro.phr.policy import DisclosurePolicy
from repro.phr.records import PhrEntry
from repro.phr.store import EncryptedPhrStore
from repro.serialization.containers import (
    deserialize_hybrid,
    serialize_hybrid,
)

__all__ = ["Patient", "Requester", "CategoryProxy", "AccessDeniedError"]


class AccessDeniedError(PermissionError):
    """The proxy refused a request that no grant covers."""


@dataclass
class Patient:
    """The PHR owner; the scheme's delegator."""

    name: str
    params: IbeParams
    private_key: IbePrivateKey
    group: PairingGroup
    rng: RandomSource = field(default_factory=system_random)
    policy: DisclosurePolicy = field(init=False)
    _hybrid: HybridPre = field(init=False)

    def __post_init__(self):
        self.policy = DisclosurePolicy(patient=self.name)
        self._hybrid = HybridPre(self.group)

    @property
    def scheme(self) -> TypeAndIdentityPre:
        return self._hybrid.scheme

    def encrypt_entry(self, entry: PhrEntry) -> bytes:
        """Encrypt one PHR entry under its category; returns storage bytes."""
        ciphertext = self._hybrid.encrypt(
            self.params, self.private_key, entry.to_bytes(), entry.category, self.rng
        )
        return serialize_hybrid(self.group, ciphertext)

    def decrypt_entry(self, blob: bytes) -> PhrEntry:
        """Read back one of her own stored entries."""
        ciphertext = deserialize_hybrid(self.group, blob)
        return PhrEntry.from_bytes(self._hybrid.decrypt(ciphertext, self.private_key))

    def make_grant(
        self, requester: "Requester", category: str
    ) -> ProxyKey:
        """``Pextract`` for (requester, category) and record the policy row.

        Purely local: uses only the requester's *identity* and her KGC's
        *public* parameters.
        """
        proxy_key = self.scheme.pextract(
            self.private_key, requester.name, category, requester.params, self.rng
        )
        self.policy.grant(requester.name, requester.params.domain, category)
        return proxy_key

    def record_revocation(self, requester: "Requester", category: str) -> bool:
        return self.policy.revoke(requester.name, requester.params.domain, category)


@dataclass
class Requester:
    """A delegatee: doctor, insurer, researcher or emergency service."""

    name: str
    role: str
    params: IbeParams  # the requester's own KGC's public parameters
    private_key: IbePrivateKey
    group: PairingGroup
    _hybrid: HybridPre = field(init=False)

    def __post_init__(self):
        self._hybrid = HybridPre(self.group)

    def read_entry(self, reencrypted: HybridReEncrypted) -> PhrEntry:
        """Decrypt a re-encrypted PHR record."""
        payload = self._hybrid.decrypt_reencrypted(reencrypted, self.private_key)
        return PhrEntry.from_bytes(payload)


@dataclass
class CategoryProxy:
    """One proxy serving exactly one category of one or more patients."""

    category: str
    group: PairingGroup
    scheme: TypeAndIdentityPre
    store: EncryptedPhrStore = field(default_factory=EncryptedPhrStore)
    _service: ProxyService = field(init=False)
    _hybrid: HybridPre = field(init=False)

    def __post_init__(self):
        self._service = ProxyService(self.scheme, name="proxy-%s" % self.category)
        self._hybrid = HybridPre(self.group, self.scheme)

    def accept_record(self, patient: str, entry_id: str, blob: bytes) -> None:
        """Store an encrypted record (category checked against the label)."""
        ciphertext = deserialize_hybrid(self.group, blob)
        if ciphertext.type_label != self.category:
            raise ValueError(
                "this proxy stores category %r, record is %r"
                % (self.category, ciphertext.type_label)
            )
        self.store.put(patient, self.category, entry_id, blob)

    def install_grant(self, proxy_key: ProxyKey) -> None:
        if proxy_key.type_label != self.category:
            raise ValueError(
                "proxy key is for type %r, this proxy serves %r"
                % (proxy_key.type_label, self.category)
            )
        self._service.install_key(proxy_key)

    def revoke_grant(
        self, patient_domain: str, patient: str, requester_domain: str, requester: str
    ) -> bool:
        return self._service.revoke_key(
            patient_domain, patient, requester_domain, requester, self.category
        )

    def serve(
        self, patient: str, entry_id: str, requester_domain: str, requester: str
    ) -> HybridReEncrypted:
        """Fetch + re-encrypt one record for a requester.

        Raises :class:`AccessDeniedError` when no grant (= proxy key)
        exists; the proxy cannot transform without one even if it wanted
        to serve the request.
        """
        record = self.store.get(patient, entry_id)
        ciphertext = deserialize_hybrid(self.group, record.blob)
        try:
            key = self._service.get_key(ciphertext.kem, requester_domain, requester)
        except NoProxyKeyError as exc:
            raise AccessDeniedError(str(exc)) from exc
        return self._hybrid.reencrypt(ciphertext, key)

    def grant_count(self) -> int:
        return self._service.key_count()
