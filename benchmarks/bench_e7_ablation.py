"""E7 — ablation of the type-binding design choice.

Section 1.1 motivates the construction against two alternatives; this
experiment measures all three designs on the same disclosure task
(delegate category ``food-stats``, keep ``illness-history`` sealed) and
reports the *isolation violation rate* when the proxy is corrupted:

* **this paper** (``H2(sk||t)`` binding): violation rate 0% — a corrupted
  proxy applying the wrong-type key produces garbage;
* **label-only / trusted proxy** (plain Green--Ateniese + policy table):
  violation rate 100% under a corrupted proxy;
* **multi-keypair strawman**: violation rate 0%, bought with linear key
  storage (quantified in E3).

Also benchmarks the per-design re-encryption path so the isolation
guarantee can be priced.
"""

from __future__ import annotations

from repro.baselines.multi_keypair import MultiKeypairDelegation
from repro.bench.report import print_table
from repro.core.scheme import TypeAndIdentityPre
from repro.ibe.kgc import KgcRegistry
from repro.math.drbg import HmacDrbg
from repro.pairing.group import PairingGroup
from repro.security.ablation import LabelOnlyPre

N_SECRETS = 10


def _kgcs(seed: str):
    group = PairingGroup.shared("TOY")
    rng = HmacDrbg(seed)
    registry = KgcRegistry(group, rng)
    return group, rng, registry.create("KGC1"), registry.create("KGC2")


def _violation_rate_paper(seed: str) -> float:
    """Corrupted proxy applies the food-stats key to illness ciphertexts."""
    group, rng, kgc1, kgc2 = _kgcs(seed)
    scheme = TypeAndIdentityPre(group)
    alice, bob = kgc1.extract("alice"), kgc2.extract("bob")
    proxy_key = scheme.pextract(alice, "bob", "food-stats", kgc2.params, rng)
    violations = 0
    for _ in range(N_SECRETS):
        secret = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, alice, secret, "illness-history", rng)
        mixed = scheme.preenc(ciphertext, proxy_key, unchecked=True)
        violations += scheme.decrypt_reencrypted(mixed, bob) == secret
    return violations / N_SECRETS


def _violation_rate_label_only(seed: str, corrupt: bool) -> float:
    group, rng, kgc1, kgc2 = _kgcs(seed)
    scheme = LabelOnlyPre(group, corrupt_proxy=corrupt)
    alice, bob = kgc1.extract("alice"), kgc2.extract("bob")
    scheme.install_delegation(alice, "bob", kgc2.params, ["food-stats"], rng)
    violations = 0
    for _ in range(N_SECRETS):
        secret = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, secret, "alice", "illness-history", rng)
        try:
            leaked = scheme.reencrypt(ciphertext, "alice", "bob")
        except PermissionError:
            continue  # the honest proxy refused
        violations += scheme.decrypt_reencrypted(leaked, bob) == secret
    return violations / N_SECRETS


def _violation_rate_multi_keypair(seed: str) -> float:
    """The strawman's wrong-type key simply doesn't fit: structural refusal."""
    group, rng, kgc1, kgc2 = _kgcs(seed)
    strawman = MultiKeypairDelegation(group=group, kgc=kgc1, base_identity="alice")
    bob = kgc2.extract("bob")
    food_key = strawman.delegate("food-stats", "bob", kgc2.params, rng)
    violations = 0
    for _ in range(N_SECRETS):
        secret = group.random_gt(rng)
        ciphertext = strawman.encrypt(secret, "illness-history", rng)
        try:
            leaked = strawman.reencrypt(ciphertext, food_key)
        except ValueError:
            continue  # identity mismatch: the key cannot even be applied
        violations += strawman.decrypt_reencrypted(leaked, bob) == secret
    return violations / N_SECRETS


def test_e7_ablation_report(benchmark):
    rows = [
        ["this paper (H2(sk||t) binding)", "corrupted",
         "%.0f%%" % (100 * _violation_rate_paper("e7-paper"))],
        ["label-only (trusted proxy)", "honest",
         "%.0f%%" % (100 * _violation_rate_label_only("e7-label-honest", corrupt=False))],
        ["label-only (trusted proxy)", "corrupted",
         "%.0f%%" % (100 * _violation_rate_label_only("e7-label-corrupt", corrupt=True))],
        ["multi-keypair strawman", "corrupted",
         "%.0f%%" % (100 * _violation_rate_multi_keypair("e7-straw"))],
    ]
    print_table(
        "E7: isolation violation rate (%d sealed secrets per design)" % N_SECRETS,
        ["design", "proxy behaviour", "violation rate"],
        rows,
    )
    assert _violation_rate_paper("e7-assert-paper") == 0.0
    assert _violation_rate_label_only("e7-assert-corrupt", corrupt=True) == 1.0
    assert _violation_rate_label_only("e7-assert-honest", corrupt=False) == 0.0
    assert _violation_rate_multi_keypair("e7-assert-straw") == 0.0

    # Benchmark anchor: the paper's guarded re-encryption path.
    group, rng, kgc1, kgc2 = _kgcs("e7-anchor")
    scheme = TypeAndIdentityPre(group)
    alice = kgc1.extract("alice")
    ciphertext = scheme.encrypt(kgc1.params, alice, group.random_gt(rng), "food-stats", rng)
    proxy_key = scheme.pextract(alice, "bob", "food-stats", kgc2.params, rng)
    benchmark.pedantic(lambda: scheme.preenc(ciphertext, proxy_key), rounds=5, iterations=1)


def test_e7_reencryption_cost_paper(benchmark):
    group, rng, kgc1, kgc2 = _kgcs("e7-cost-paper")
    scheme = TypeAndIdentityPre(group)
    alice = kgc1.extract("alice")
    ciphertext = scheme.encrypt(kgc1.params, alice, group.random_gt(rng), "t", rng)
    proxy_key = scheme.pextract(alice, "bob", "t", kgc2.params, rng)
    benchmark.group = "E7 re-encryption cost"
    benchmark.pedantic(lambda: scheme.preenc(ciphertext, proxy_key), rounds=5, iterations=1)


def test_e7_reencryption_cost_label_only(benchmark):
    group, rng, kgc1, kgc2 = _kgcs("e7-cost-label")
    scheme = LabelOnlyPre(group)
    alice = kgc1.extract("alice")
    scheme.install_delegation(alice, "bob", kgc2.params, ["t"], rng)
    ciphertext = scheme.encrypt(kgc1.params, group.random_gt(rng), "alice", "t", rng)
    benchmark.group = "E7 re-encryption cost"
    benchmark.pedantic(lambda: scheme.reencrypt(ciphertext, "alice", "bob"), rounds=5, iterations=1)
