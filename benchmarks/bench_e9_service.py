"""E9 — the re-encryption gateway under a repeated-delegatee workload.

The deployment question behind :mod:`repro.service`: what does the
sharded, cached gateway buy over calling one ``ProxyService`` directly?
The workload repeats (delegator, delegatee, type) triples the way a
clinical day does — the same doctor opening the same patient's history —
so the KEM-result cache converts repeat transformations into lookups.

Measured: direct-proxy baseline throughput, gateway throughput across
shard counts (unbatched and batched), cache hit rates and shard balance;
plus the correctness anchor that batched and unbatched execution produce
identical plaintexts after delegatee decryption.

TOY parameters: like E5 this measures workload structure, not key size.
"""

from __future__ import annotations

import time

from repro.bench.report import print_table
from repro.core.proxy import ProxyService
from repro.math.drbg import HmacDrbg
from repro.service.driver import (
    DELEGATEE_DOMAIN,
    build_setting,
    drive_requests,
)
from repro.service.gateway import ReEncryptRequest

N_REQUESTS = 120
SHARD_COUNTS = (1, 4)


def _request_stream(setting, n_requests, seed):
    """The same seeded stream the driver replays, materialized as tuples."""
    rng = HmacDrbg(seed)
    for _ in range(n_requests):
        patient = rng.choice(setting.patients)
        type_label = rng.choice(setting.types)
        delegatee = rng.choice(setting.delegatees)
        ciphertext, message = rng.choice(setting.pool[(patient, type_label)])
        yield ciphertext, delegatee, message


def _direct_baseline(setting, seed):
    """One monolithic ProxyService holding every key — the seed's design."""
    proxy = ProxyService(setting.scheme)
    for shard_name in setting.gateway.shard_names:
        for key in setting.gateway.shard_named(shard_name).table:
            proxy.install_key(key)
    start = time.perf_counter()
    for ciphertext, delegatee, _ in _request_stream(setting, N_REQUESTS, seed):
        proxy.reencrypt(ciphertext, DELEGATEE_DOMAIN, delegatee)
    elapsed = time.perf_counter() - start
    return N_REQUESTS / elapsed


def test_e9_gateway_throughput(benchmark):
    rows = []
    baseline_setting = build_setting(group_name="TOY", shard_count=1, seed="e9-baseline")
    rows.append(
        ["direct ProxyService", "-", "%.0f" % _direct_baseline(baseline_setting, "e9-stream"), "-", "-"]
    )

    last_setting = None
    for shard_count in SHARD_COUNTS:
        for batch_size, label in ((0, "gateway"), (8, "gateway batch=8")):
            setting = build_setting(
                group_name="TOY", shard_count=shard_count, seed="e9-run"
            )
            # Time the request stream alone: grants and the per-sample
            # verification decrypts stay out of the throughput number.
            start = time.perf_counter()
            drive_requests(
                setting,
                N_REQUESTS,
                seed="e9-stream",
                batch_size=batch_size,
                verify_every=N_REQUESTS + 1,
            )
            elapsed = time.perf_counter() - start
            snapshot = setting.gateway.snapshot()
            hit_rate = snapshot.caches["result_cache"].hit_rate
            rows.append(
                [
                    label,
                    str(shard_count),
                    "%.0f" % (N_REQUESTS / elapsed),
                    "%.0f%%" % (100 * hit_rate),
                    "%.2f" % snapshot.shard_imbalance,
                ]
            )
            # The repeated-delegatee workload must actually hit the cache.
            assert hit_rate > 0
            last_setting = setting

    print_table(
        "E9: gateway vs direct proxy (%d requests, TOY)" % N_REQUESTS,
        ["configuration", "shards", "req/s", "result-cache hits", "imbalance"],
        rows,
    )

    # Benchmark anchor: one gateway request on a warm cache.
    ciphertext, delegatee, _ = next(_request_stream(last_setting, 1, "e9-anchor"))
    request = ReEncryptRequest(
        tenant="bench",
        ciphertext=ciphertext,
        delegatee_domain=DELEGATEE_DOMAIN,
        delegatee=delegatee,
    )
    benchmark.pedantic(lambda: last_setting.gateway.reencrypt(request), rounds=5, iterations=1)


def test_e9_batching_equivalence():
    """Batched and sequential paths recover identical plaintexts."""
    sequential = build_setting(group_name="TOY", shard_count=2, seed="e9-eq")
    batched = build_setting(group_name="TOY", shard_count=2, seed="e9-eq")

    checked = 0
    batch_requests, batch_messages = [], []
    for ciphertext, delegatee, message in _request_stream(sequential, 24, "e9-eq-stream"):
        request = ReEncryptRequest(
            tenant="eq",
            ciphertext=ciphertext,
            delegatee_domain=DELEGATEE_DOMAIN,
            delegatee=delegatee,
        )
        response = sequential.gateway.reencrypt(request)
        recovered = sequential.scheme.decrypt_reencrypted(
            response.ciphertext, sequential.delegatee_keys[delegatee]
        )
        assert recovered == message
        batch_requests.append((request, delegatee))
        batch_messages.append(message)

    responses = batched.gateway.reencrypt_batch([r for r, _ in batch_requests])
    for response, (_, delegatee), message in zip(responses, batch_requests, batch_messages):
        recovered = batched.scheme.decrypt_reencrypted(
            response.ciphertext, batched.delegatee_keys[delegatee]
        )
        assert recovered == message
        checked += 1
    assert checked == 24

    print_table(
        "E9: batching equivalence",
        ["property", "value"],
        [
            ["requests cross-checked", str(checked)],
            ["batched == sequential plaintexts", "True"],
        ],
    )
