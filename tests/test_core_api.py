"""Tests for the scheme-agnostic backend API (:mod:`repro.core.api`).

The seams the gateway redesign introduced: the registry (stable ids,
duplicate/unknown rejection), the full lifecycle and the envelope codec
round trips for *every* registered backend, cross-scheme envelope
rejection, capability flags, and the durable log's scheme stamp.
"""

from __future__ import annotations

import pytest

from repro.core.api import (
    CAPABILITY_NAMES,
    PROPERTY_NAMES,
    REGISTRY,
    TIPRE_SCHEME_ID,
    DuplicateSchemeError,
    PreBackend,
    SchemeCapabilities,
    SchemeRegistry,
    UnknownSchemeError,
    available_schemes,
    create_backend,
    resolve_backend,
)
from repro.core.scheme import DelegationError, TypeAndIdentityPre
from repro.core.tipre_backend import TipreBackend
from repro.serialization.encoding import EncodingError
from repro.service.persistence import DurableProxyKeyTable, LogFormatError

DELEGATOR_DOMAIN = "KGC1"
DELEGATEE_DOMAIN = "KGC2"


def _ready_backend(scheme_id, group, rng):
    """A backend with two parties, ready to encrypt/rekey."""
    backend = create_backend(scheme_id, group)
    backend.setup(rng)
    delegatee_domain = DELEGATOR_DOMAIN if backend.single_authority else DELEGATEE_DOMAIN
    backend.create_party(DELEGATOR_DOMAIN, "alice", rng)
    backend.create_party(delegatee_domain, "bob", rng)
    return backend, delegatee_domain


class TestRegistry:
    def test_builtins_registered_with_stable_ids(self):
        ids = available_schemes()
        for expected in (
            "tipre/v1",
            "afgh/v1",
            "green-ateniese/v1",
            "bbs/v1",
            "matsuo/v1",
            "dodis-ivan/v1",
        ):
            assert expected in ids
        assert ids[0] == TIPRE_SCHEME_ID, "the paper's scheme leads the listing"

    def test_create_returns_backend_with_matching_id(self, group):
        for scheme_id in available_schemes():
            backend = create_backend(scheme_id, group)
            assert isinstance(backend, PreBackend)
            assert backend.scheme_id == scheme_id
            assert backend.group is group

    def test_unknown_scheme_id_rejected(self, group):
        with pytest.raises(UnknownSchemeError, match="unknown scheme id"):
            create_backend("quantum/v9", group)

    def test_duplicate_registration_rejected(self):
        registry = SchemeRegistry()
        registry.register(TipreBackend)

        class Impostor(TipreBackend):
            pass

        Impostor.scheme_id = TIPRE_SCHEME_ID
        with pytest.raises(DuplicateSchemeError):
            registry.register(Impostor)
        # Same class twice is a no-op, and replace=True is an override.
        registry.register(TipreBackend)
        registry.register(Impostor, replace=True)
        assert registry.backend_class(TIPRE_SCHEME_ID) is Impostor

    def test_global_registry_contains_and_iterates(self):
        assert TIPRE_SCHEME_ID in REGISTRY
        assert list(REGISTRY) == REGISTRY.ids()

    def test_capability_flags_complete_and_boolean(self):
        for scheme_id in available_schemes():
            flags = REGISTRY.backend_class(scheme_id).capabilities.as_dict()
            assert set(flags) == set(CAPABILITY_NAMES), scheme_id
            assert all(isinstance(v, bool) for v in flags.values())

    def test_capabilities_round_trip_through_dict(self):
        caps = TipreBackend.capabilities
        assert SchemeCapabilities.from_dict(caps.as_dict()) == caps
        assert set(caps.properties()) == set(PROPERTY_NAMES)
        with pytest.raises(ValueError, match="missing capability flags"):
            SchemeCapabilities.from_dict({"unidirectional": True})

    def test_only_the_paper_scheme_is_type_granular(self):
        granular = [
            scheme_id
            for scheme_id in available_schemes()
            if REGISTRY.backend_class(scheme_id).capabilities.type_granular
        ]
        assert granular == [TIPRE_SCHEME_ID]


class TestResolveBackend:
    def test_backend_passes_through(self, group):
        backend = create_backend("afgh/v1", group)
        assert resolve_backend(backend) is backend

    def test_raw_scheme_wraps_sharing_the_instance(self, group):
        scheme = TypeAndIdentityPre(group)
        backend = resolve_backend(scheme)
        assert isinstance(backend, TipreBackend)
        assert backend.scheme is scheme

    def test_bare_group_selects_tipre(self, group):
        assert resolve_backend(group).scheme_id == TIPRE_SCHEME_ID

    def test_anything_else_is_a_type_error(self):
        with pytest.raises(TypeError):
            resolve_backend("tipre/v1")


class TestEveryBackendLifecycle:
    @pytest.mark.parametrize("scheme_id", [
        "tipre/v1", "afgh/v1", "bbs/v1", "dodis-ivan/v1", "green-ateniese/v1", "matsuo/v1",
    ])
    def test_full_lifecycle_and_envelope_round_trips(self, group, rng, scheme_id):
        backend, delegatee_domain = _ready_backend(scheme_id, group, rng)
        message = backend.sample_message(rng)
        ciphertext = backend.encrypt(DELEGATOR_DOMAIN, "alice", message, "labs", rng)
        assert backend.decrypt_original(ciphertext, DELEGATOR_DOMAIN, "alice") == message
        key = backend.rekey(
            DELEGATOR_DOMAIN, "alice", delegatee_domain, "bob", "labs", rng
        )
        transformed = backend.reencrypt(ciphertext, key)
        assert backend.decrypt_reencrypted(transformed, delegatee_domain, "bob") == message
        assert backend.ciphertext_components(ciphertext) >= 2

        # Scheme-tagged envelope codec: serialize -> deserialize is exact.
        assert backend.deserialize_ciphertext(backend.serialize_ciphertext(ciphertext)) == ciphertext
        assert backend.deserialize_proxy_key(backend.serialize_proxy_key(key)) == key
        assert (
            backend.deserialize_reencrypted(backend.serialize_reencrypted(transformed))
            == transformed
        )
        # Envelopes must be usable as cache keys.
        hash(ciphertext)
        hash(key)

    @pytest.mark.parametrize("scheme_id", [
        "afgh/v1", "bbs/v1", "dodis-ivan/v1", "green-ateniese/v1", "matsuo/v1",
    ])
    def test_mismatched_delegation_metadata_refused(self, group, rng, scheme_id):
        """The wrapper guard scopes a key to its delegation triple."""
        backend, delegatee_domain = _ready_backend(scheme_id, group, rng)
        message = backend.sample_message(rng)
        other = backend.encrypt(DELEGATOR_DOMAIN, "alice", message, "other-type", rng)
        key = backend.rekey(DELEGATOR_DOMAIN, "alice", delegatee_domain, "bob", "labs", rng)
        with pytest.raises(DelegationError):
            backend.reencrypt(other, key)

    def test_cross_scheme_envelope_rejected(self, group, rng):
        """Bytes serialized under one scheme id refuse to open under another."""
        afgh, _ = _ready_backend("afgh/v1", group, rng)
        bbs, _ = _ready_backend("bbs/v1", group, rng)
        ciphertext = afgh.encrypt(DELEGATOR_DOMAIN, "alice", afgh.sample_message(rng), "t", rng)
        blob = afgh.serialize_ciphertext(ciphertext)
        with pytest.raises(EncodingError, match="scheme"):
            bbs.deserialize_ciphertext(blob)

    def test_tipre_envelope_bytes_are_the_canonical_containers(self, group, rng):
        """tipre/v1 keeps byte compatibility with pre-API serialization."""
        from repro.serialization.containers import serialize_typed_ciphertext

        backend, _ = _ready_backend("tipre/v1", group, rng)
        ciphertext = backend.encrypt(DELEGATOR_DOMAIN, "alice", backend.sample_message(rng), "t", rng)
        assert backend.serialize_ciphertext(ciphertext) == serialize_typed_ciphertext(
            group, ciphertext
        )


class TestDurableLogSchemeStamp:
    @pytest.mark.parametrize("writer_id,reader_id", [
        ("tipre/v1", "green-ateniese/v1"),
        ("afgh/v1", "tipre/v1"),
        ("green-ateniese/v1", "afgh/v1"),
    ])
    def test_log_written_under_one_scheme_refuses_another(
        self, group, rng, tmp_path, writer_id, reader_id
    ):
        backend, delegatee_domain = _ready_backend(writer_id, group, rng)
        path = tmp_path / "shard.log"
        table = DurableProxyKeyTable(path, backend)
        table.install(
            backend.rekey(DELEGATOR_DOMAIN, "alice", delegatee_domain, "bob", "labs", rng)
        )
        table.close()
        reader = create_backend(reader_id, group)
        with pytest.raises(LogFormatError, match="scheme"):
            DurableProxyKeyTable(path, reader)

    def test_log_reopens_under_the_same_scheme(self, group, rng, tmp_path):
        backend, delegatee_domain = _ready_backend("afgh/v1", group, rng)
        path = tmp_path / "shard.log"
        table = DurableProxyKeyTable(path, backend)
        key = backend.rekey(DELEGATOR_DOMAIN, "alice", delegatee_domain, "bob", "labs", rng)
        table.install(key)
        table.close()
        reopened = DurableProxyKeyTable(path, create_backend("afgh/v1", group))
        assert list(reopened) == [key]
        reopened.close()

    def test_legacy_header_without_scheme_field_is_tipre(self, group, rng, tmp_path):
        """Logs from before the backend API opened as the paper's scheme."""
        import json

        backend, _ = _ready_backend("tipre/v1", group, rng)
        path = tmp_path / "legacy.log"
        table = DurableProxyKeyTable(path, backend)
        table.install(backend.rekey(DELEGATOR_DOMAIN, "alice", DELEGATEE_DOMAIN, "bob", "t", rng))
        table.close()
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        del header["scheme"]
        path.write_text("\n".join([json.dumps(header, sort_keys=True)] + lines[1:]) + "\n")
        reopened = DurableProxyKeyTable(path, group)  # bare group = tipre
        assert len(reopened) == 1
        reopened.close()
        with pytest.raises(LogFormatError, match="scheme"):
            DurableProxyKeyTable(path, create_backend("bbs/v1", group))
