"""E5 — the Section-5 PHR deployment under a clinical request workload.

A small patient population uploads synthetic histories; doctors, insurers
and emergency services hold category-scoped grants; requests arrive
according to the clinical mix (labs- and medication-heavy, rare emergency
access).  Measured: end-to-end request latency (proxy re-encryption +
delegatee decryption), upload latency, grant latency and the
served/denied split that demonstrates the policy is enforced by the
cryptography.
"""

from __future__ import annotations

import time

from repro.bench.report import print_table
from repro.math.drbg import HmacDrbg
from repro.pairing.group import PairingGroup
from repro.phr.actors import AccessDeniedError
from repro.phr.generator import PhrGenerator, WorkloadMix
from repro.phr.workflow import PhrSystem

N_PATIENTS = 4
ENTRIES_PER_CATEGORY = 1
N_REQUESTS = 40

# Grants per role: the doctor sees clinical data, the insurer almost
# nothing, the emergency service exactly the emergency profile.
ROLE_GRANTS = {
    "doctor": ["lab-results", "medication", "illness-history", "vitals"],
    "insurer": ["vaccinations"],
    "emergency": ["emergency-profile"],
}


def _build_system(seed: str) -> tuple[PhrSystem, list[str]]:
    group = PairingGroup.shared("TOY")  # workload structure, not key size
    system = PhrSystem(group=group, rng=HmacDrbg(seed))
    system.register_requester("dr-house", role="doctor", domain="hospital")
    system.register_requester("acme-ins", role="insurer", domain="insurer")
    system.register_requester("ems", role="emergency", domain="ems")
    patients = ["patient-%02d" % i for i in range(N_PATIENTS)]
    for name in patients:
        system.register_patient(name)
        generator = PhrGenerator(HmacDrbg("gen-" + name), name)
        for entry in generator.history(ENTRIES_PER_CATEGORY):
            system.store_entry(name, entry)
        for requester, role in (("dr-house", "doctor"), ("acme-ins", "insurer"), ("ems", "emergency")):
            for category in ROLE_GRANTS[role]:
                system.grant(name, requester, category)
    return system, patients


def test_e5_workload_report(benchmark):
    system, patients = _build_system("e5-report")
    mix = WorkloadMix.clinical_default()
    rng = HmacDrbg("e5-requests")
    requesters = ["dr-house", "acme-ins", "ems"]

    served = denied = 0
    latencies = []
    for _ in range(N_REQUESTS):
        requester = rng.choice(requesters)
        patient = rng.choice(patients)
        category = mix.draw(rng)
        start = time.perf_counter()
        try:
            entries = system.request_category(requester, patient, category)
            served += 1
            assert all(e.category == category for e in entries)
        except AccessDeniedError:
            denied += 1
        latencies.append((time.perf_counter() - start) * 1000)

    latencies.sort()
    print_table(
        "E5: clinical workload (%d requests, %d patients)" % (N_REQUESTS, N_PATIENTS),
        ["metric", "value"],
        [
            ["requests served", str(served)],
            ["requests denied (no grant)", str(denied)],
            ["median request ms", "%.1f" % latencies[len(latencies) // 2]],
            ["p90 request ms", "%.1f" % latencies[int(len(latencies) * 0.9)]],
            ["store ciphertext bytes",
             str(sum(system.proxy_for(c).store.size_bytes() for c in system.categories()))],
            ["audit events", str(len(system.audit))],
            ["audit chain valid", str(system.audit.verify_chain())],
        ],
    )
    assert served > 0 and denied > 0  # the mix exercises both paths
    assert system.audit.verify_chain()

    # Benchmark anchor: one served request end-to-end.
    benchmark.pedantic(
        lambda: system.request_category("dr-house", patients[0], "lab-results"),
        rounds=5,
        iterations=1,
    )


def test_e5_upload_latency(benchmark):
    system, patients = _build_system("e5-upload")
    generator = PhrGenerator(HmacDrbg("e5-upload-gen"), patients[0])

    def upload():
        system.store_entry(patients[0], generator.entry_for("vitals"))

    benchmark.group = "E5 operations"
    benchmark.pedantic(upload, rounds=5, iterations=1)


def test_e5_grant_latency(benchmark):
    system, patients = _build_system("e5-grant")
    system.register_requester("new-doctor", role="doctor", domain="hospital2")
    categories = iter("grant-%d" % i for i in range(10**6))

    def grant():
        # Fresh (requester, category) pair each round; category must exist,
        # so grant an existing category to the new requester per patient.
        system.grant(patients[0], "new-doctor", "allergies")

    benchmark.group = "E5 operations"
    benchmark.pedantic(grant, rounds=5, iterations=1)


def test_e5_emergency_access_latency(benchmark):
    system, patients = _build_system("e5-emergency")

    def emergency():
        entries = system.emergency_access("ems", patients[0])
        assert entries

    benchmark.group = "E5 operations"
    benchmark.pedantic(emergency, rounds=5, iterations=1)
