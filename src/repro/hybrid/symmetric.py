"""An authenticated symmetric cipher built from SHA-256 primitives.

The sandbox has no AES implementation available, so the DEM is a
hash-based construction: SHA-256 in counter mode as the keystream and
HMAC-SHA256 in encrypt-then-MAC composition.  This mirrors the standard
KEM/DEM hybrid structure; the construction is IND-CPA/INT-CTXT under the
usual PRF assumptions on HMAC, and is clearly labelled as a research
artefact (see DESIGN.md's security caveat).

Wire format of :func:`seal`: ``nonce (16) || ciphertext || tag (32)``.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.hybrid.kdf import hkdf
from repro.math.drbg import RandomSource, system_random

__all__ = ["seal", "open_sealed", "AuthenticationError", "NONCE_LEN", "TAG_LEN", "KEY_LEN"]

NONCE_LEN = 16
TAG_LEN = 32
KEY_LEN = 32
_BLOCK = 32


class AuthenticationError(ValueError):
    """The ciphertext failed integrity verification."""


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """SHA-256 counter-mode keystream."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest())
        counter += 1
    return bytes(out[:length])


def _split_keys(key: bytes) -> tuple[bytes, bytes]:
    """Derive independent encryption and MAC keys."""
    if len(key) != KEY_LEN:
        raise ValueError("key must be %d bytes" % KEY_LEN)
    material = hkdf(key, b"repro-dem-v1", 2 * KEY_LEN)
    return material[:KEY_LEN], material[KEY_LEN:]


def seal(
    key: bytes,
    plaintext: bytes,
    associated_data: bytes = b"",
    rng: RandomSource | None = None,
) -> bytes:
    """Encrypt-then-MAC: returns ``nonce || ciphertext || tag``.

    ``associated_data`` is authenticated but not encrypted (used to bind
    the DEM to its KEM header).
    """
    rng = rng or system_random()
    enc_key, mac_key = _split_keys(key)
    nonce = rng.randbytes(NONCE_LEN)
    stream = _keystream(enc_key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac.new(
        mac_key,
        nonce + len(associated_data).to_bytes(8, "big") + associated_data + ciphertext,
        hashlib.sha256,
    ).digest()
    return nonce + ciphertext + tag


def open_sealed(key: bytes, sealed: bytes, associated_data: bytes = b"") -> bytes:
    """Verify-then-decrypt; raises :class:`AuthenticationError` on tamper."""
    if len(sealed) < NONCE_LEN + TAG_LEN:
        raise AuthenticationError("sealed blob too short")
    enc_key, mac_key = _split_keys(key)
    nonce = sealed[:NONCE_LEN]
    ciphertext = sealed[NONCE_LEN:-TAG_LEN]
    tag = sealed[-TAG_LEN:]
    expected = hmac.new(
        mac_key,
        nonce + len(associated_data).to_bytes(8, "big") + associated_data + ciphertext,
        hashlib.sha256,
    ).digest()
    if not hmac.compare_digest(tag, expected):
        raise AuthenticationError("authentication tag mismatch")
    stream = _keystream(enc_key, nonce, len(ciphertext))
    return bytes(c ^ s for c, s in zip(ciphertext, stream))
