"""E11 — the wire: HTTP round-trip overhead, batching, restart recovery.

PR 2 made the shard fleet elastic and durable but still in-process; this
experiment measures what the paper's actual deployment shape — a proxy
*server* reached over a network — costs and guarantees:

1. **Round-trip overhead** — the same request stream driven in-process
   and through a live :class:`GatewayHttpServer` via
   :class:`RemoteGateway`.  Fidelity is asserted, not assumed: every wire
   response must serialize to the *same bytes* as the in-process one.

2. **Batching over the wire** — N single POSTs vs one batch POST.  The
   batch pays one HTTP round trip and one JSON envelope per N items, so
   this is where the wire's fixed costs are amortized.

3. **Kill/restart recovery** — grants arrive *over the wire* into a
   gateway on a durable ``--state-dir``; the server is killed (no
   graceful gateway close) and a fresh process on the same directory
   must serve every delegation again, zero lost keys — asserted.

TOY parameters: like E9/E10 this measures workload structure and
transport, not key size.
"""

from __future__ import annotations

import shutil
import tempfile
import time

from repro.bench.report import print_table
from repro.core.proxy import ProxyKeyTable
from repro.serialization.containers import serialize_reencrypted
from repro.service.driver import DELEGATEE_DOMAIN, build_setting
from repro.service.gateway import GrantRequest, ReEncryptionGateway, ReEncryptRequest
from repro.service.wire import GatewayHttpServer, RemoteGateway

SHARDS = 3


def _setting():
    """3 patients x 2 types x 2 delegatees: 12 delegations over 3 shards."""
    return build_setting(
        group_name="TOY",
        shard_count=SHARDS,
        n_patients=3,
        n_types=2,
        n_delegatees=2,
        ciphertexts_per_pair=2,
        seed="e11-wire",
    )


def _installed_keys(gateway):
    keys = []
    for name in gateway.shard_names:
        keys.extend(gateway.shard_named(name).table)
    return keys


def _request_stream(setting, repeat: int = 2):
    """Every delegation ``repeat`` times: misses first, then cache hits."""
    requests = []
    for _ in range(repeat):
        for (patient, _type_label), entries in sorted(setting.pool.items()):
            ciphertext, _message = entries[0]
            for delegatee in setting.delegatees:
                requests.append(
                    ReEncryptRequest(
                        tenant=patient,
                        ciphertext=ciphertext,
                        delegatee_domain=DELEGATEE_DOMAIN,
                        delegatee=delegatee,
                    )
                )
    return requests


def _fresh_gateway(scheme, keys):
    gateway = ReEncryptionGateway(scheme, shard_count=SHARDS)
    for key in keys:
        gateway.grant(GrantRequest(tenant="bench", proxy_key=key))
    return gateway


def test_e11_wire_roundtrip_overhead_and_byte_fidelity():
    setting = _setting()
    keys = _installed_keys(setting.gateway)
    requests = _request_stream(setting)
    group = setting.group

    # In-process reference: a fresh fleet, cold caches.
    local_gateway = _fresh_gateway(setting.scheme, keys)
    start = time.perf_counter()
    local_responses = [local_gateway.reencrypt(request) for request in requests]
    local_s = time.perf_counter() - start
    local_gateway.close()

    # The same stream through a real HTTP server, also cold.
    wire_gateway = _fresh_gateway(setting.scheme, keys)
    with GatewayHttpServer(wire_gateway, group) as server:
        client = RemoteGateway(server.url, group)
        start = time.perf_counter()
        wire_responses = [client.reencrypt(request) for request in requests]
        wire_s = time.perf_counter() - start
        connections_opened = client.connections_opened
    wire_gateway.close()
    setting.gateway.close()

    # The client must reuse one persistent keep-alive connection for the
    # whole stream (negotiation included), not dial per request.
    assert connections_opened == 1, (
        "expected 1 persistent connection for %d requests, opened %d"
        % (len(requests), connections_opened)
    )

    # The acceptance anchor: wire responses decode to the *same bytes*.
    for wire_response, local_response in zip(wire_responses, local_responses):
        assert serialize_reencrypted(group, wire_response.ciphertext) == (
            serialize_reencrypted(group, local_response.ciphertext)
        ), "wire transport changed a transformation"

    n = len(requests)
    print_table(
        "E11: wire round-trip overhead (%d requests, %d shards)" % (n, SHARDS),
        ["path", "total ms", "ms/request", "overhead", "connections"],
        [
            [
                "in-process",
                "%.1f" % (local_s * 1000),
                "%.2f" % (local_s * 1000 / n),
                "1.00x",
                "-",
            ],
            [
                "HTTP/JSON wire",
                "%.1f" % (wire_s * 1000),
                "%.2f" % (wire_s * 1000 / n),
                "%.2fx" % (wire_s / local_s),
                "%d (keep-alive, asserted)" % connections_opened,
            ],
        ],
    )


def test_e11_batched_beats_sequential_over_the_wire():
    setting = _setting()
    keys = _installed_keys(setting.gateway)
    # The persistent keep-alive client cut sequential overhead to a few
    # hundred microseconds per POST, so the batch's amortization margin
    # needs a longer stream — and a best-of-3 timing, so one scheduler
    # hiccup on a loaded runner cannot flip the comparison.
    requests = _request_stream(setting, repeat=8)
    group = setting.group
    n = len(requests)

    sequential_gateway = _fresh_gateway(setting.scheme, keys)
    with GatewayHttpServer(sequential_gateway, group) as server:
        client = RemoteGateway(server.url, group)
        sequential_s = float("inf")
        for _round in range(3):
            start = time.perf_counter()
            sequential_responses = [client.reencrypt(request) for request in requests]
            sequential_s = min(sequential_s, time.perf_counter() - start)
    sequential_gateway.close()

    batched_gateway = _fresh_gateway(setting.scheme, keys)
    with GatewayHttpServer(batched_gateway, group) as server:
        client = RemoteGateway(server.url, group)
        batched_s = float("inf")
        for _round in range(3):
            start = time.perf_counter()
            batched_responses = client.reencrypt_batch(requests)
            batched_s = min(batched_s, time.perf_counter() - start)
    batched_gateway.close()
    setting.gateway.close()

    assert [r.ciphertext for r in batched_responses] == [
        r.ciphertext for r in sequential_responses
    ]

    print_table(
        "E11: wire throughput, %d requests" % n,
        ["mode", "total ms", "req/s", "HTTP round trips"],
        [
            [
                "sequential POSTs",
                "%.1f" % (sequential_s * 1000),
                "%.0f" % (n / sequential_s),
                str(n),
            ],
            [
                "one batch POST",
                "%.1f" % (batched_s * 1000),
                "%.0f" % (n / batched_s),
                "1",
            ],
        ],
    )

    # One round trip and one envelope per batch must beat N of each.
    assert batched_s < sequential_s, (
        "batched wire execution (%.1fms) did not beat sequential (%.1fms)"
        % (batched_s * 1000, sequential_s * 1000)
    )


def test_e11_kill_restart_serves_every_delegation_from_state_dir():
    state_dir = tempfile.mkdtemp(prefix="e11-state-")
    try:
        setting = _setting()
        keys = _installed_keys(setting.gateway)
        group = setting.group

        # Process 1: a durable fleet; every grant arrives over the wire.
        gateway_1 = ReEncryptionGateway(
            setting.scheme, shard_count=SHARDS, state_dir=state_dir
        )
        server_1 = GatewayHttpServer(gateway_1, group).start()
        client_1 = RemoteGateway(server_1.url, group)
        for key in keys:
            client_1.grant(GrantRequest(tenant="bench", proxy_key=key))
        installed = {ProxyKeyTable.index_of(key) for key in _installed_keys(gateway_1)}
        # "Kill": stop the HTTP server and drop the gateway without close();
        # the durable appends are already flushed — that is the guarantee.
        server_1.close()
        del gateway_1

        # Process 2: same state dir, fresh fleet, fresh server.
        start = time.perf_counter()
        gateway_2 = ReEncryptionGateway(
            setting.scheme, shard_count=SHARDS, state_dir=state_dir
        )
        restart_ms = (time.perf_counter() - start) * 1000
        recovered = {ProxyKeyTable.index_of(key) for key in _installed_keys(gateway_2)}
        assert recovered == installed, "restart lost or invented delegations"

        verified = 0
        with GatewayHttpServer(gateway_2, group) as server_2:
            client_2 = RemoteGateway(server_2.url, group)
            for (patient, _type_label), entries in sorted(setting.pool.items()):
                ciphertext, message = entries[0]
                for delegatee in setting.delegatees:
                    response = client_2.reencrypt(
                        ReEncryptRequest(
                            tenant=patient,
                            ciphertext=ciphertext,
                            delegatee_domain=DELEGATEE_DOMAIN,
                            delegatee=delegatee,
                        )
                    )
                    recovered_message = setting.scheme.decrypt_reencrypted(
                        response.ciphertext, setting.delegatee_keys[delegatee]
                    )
                    assert recovered_message == message
                    verified += 1
        gateway_2.close()
        setting.gateway.close()

        print_table(
            "E11: HTTP server kill/restart on a durable state dir",
            ["metric", "value"],
            [
                ["delegations granted over the wire", str(len(installed))],
                ["delegations recovered after restart", str(len(recovered))],
                ["delegations lost", str(len(installed - recovered))],
                ["plaintexts verified over the wire", str(verified)],
                ["restart (reload state dir) ms", "%.1f" % restart_ms],
            ],
        )
        assert installed - recovered == set(), "zero lost keys is the contract"
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)
