"""A sharded, cached re-encryption gateway over :class:`~repro.core.proxy.ProxyService`.

The paper's deployment is a semi-trusted proxy serving many patients and
delegatees.  This package turns the single-object proxy into a
request-serving system:

* :mod:`repro.service.router` — consistent-hash sharding of
  (delegator domain, delegator, type) onto N proxy shards;
* :mod:`repro.service.cache` — LRU caches for proxy keys and KEM
  transformation results, with hit/miss accounting;
* :mod:`repro.service.batch` — grouping of same-delegation requests so
  key lookups are amortized;
* :mod:`repro.service.gateway` — the typed request/response front door
  with per-tenant rate limiting, bounded audit and an error taxonomy;
* :mod:`repro.service.metrics` — latency / throughput / shard-balance
  snapshots, including resize/migration counters;
* :mod:`repro.service.telemetry` — distributed trace contexts and spans,
  fixed-bucket latency histograms with Prometheus text exposition, and
  the bounded structured event log;
* :mod:`repro.service.persistence` — the durable append-log key table
  that lets shards survive restarts and fleet resizes;
* :mod:`repro.service.pool` — per-shard locks plus an optional thread
  pool for concurrent shard execution;
* :mod:`repro.service.driver` — a self-contained synthetic workload used
  by ``repro-pre serve`` and the E9/E10/E11 benchmarks;
* :mod:`repro.service.wire` — the HTTP/JSON wire protocol
  (:class:`~repro.service.wire.server.GatewayHttpServer` and
  :class:`~repro.service.wire.client.RemoteGateway`) that makes the
  gateway a real remote process;
* :mod:`repro.service.fleet` — the wire protocol at the shard boundary:
  a :class:`~repro.service.fleet.FleetSupervisor` of independent shard
  *processes* behind a :class:`~repro.service.fleet.FleetGateway`
  routing tier, with health-checked failover and traffic-continuing
  resize migration.
"""

from repro.service.batch import BatchGroup, BatchItemError, ReEncryptBatcher
from repro.service.cache import CacheStats, LruCache
from repro.service.driver import (
    DemoReport,
    DemoSetting,
    SchemeDemoSetting,
    build_scheme_setting,
    build_setting,
    drive_scheme_requests,
    resolve_remote_group,
    run_demo,
    run_scheme_demo,
)
from repro.service.fleet import FleetGateway, FleetSupervisor, StaticFleet
from repro.service.gateway import (
    AuditEvent,
    DelegationNotFoundError,
    EntryMissingError,
    FetchRequest,
    FetchResponse,
    GatewayError,
    GrantRequest,
    GrantResponse,
    InvalidRequestError,
    RateLimitedError,
    ReEncryptionGateway,
    ReEncryptRequest,
    ReEncryptResponse,
    ResizeReport,
    RevokeRequest,
    RevokeResponse,
    StoreUnavailableError,
    TokenBucket,
)
from repro.service.metrics import GatewayMetrics, LatencySummary, MetricsSnapshot
from repro.service.persistence import (
    AppendLogKeyStore,
    DurableProxyKeyTable,
    LogFormatError,
    scheme_state_subdir,
)
from repro.service.pool import ShardPool
from repro.service.router import ShardRouter
from repro.service.telemetry import (
    TRACE_HEADER,
    EventLog,
    Histogram,
    HistogramSnapshot,
    Span,
    TraceContext,
    Tracer,
    jsonl_sink,
    render_prometheus,
)
from repro.service.wire import (
    GatewayHttpServer,
    RemoteGateway,
    SchemeMismatchError,
    WireTransportError,
)

__all__ = [
    "AppendLogKeyStore",
    "AuditEvent",
    "BatchGroup",
    "BatchItemError",
    "CacheStats",
    "DurableProxyKeyTable",
    "DelegationNotFoundError",
    "DemoReport",
    "DemoSetting",
    "EntryMissingError",
    "EventLog",
    "FetchRequest",
    "FetchResponse",
    "FleetGateway",
    "FleetSupervisor",
    "GatewayError",
    "GatewayHttpServer",
    "GatewayMetrics",
    "GrantRequest",
    "GrantResponse",
    "Histogram",
    "HistogramSnapshot",
    "InvalidRequestError",
    "LatencySummary",
    "LogFormatError",
    "LruCache",
    "MetricsSnapshot",
    "RateLimitedError",
    "ReEncryptBatcher",
    "ReEncryptRequest",
    "ReEncryptResponse",
    "ReEncryptionGateway",
    "RemoteGateway",
    "ResizeReport",
    "RevokeRequest",
    "RevokeResponse",
    "SchemeDemoSetting",
    "SchemeMismatchError",
    "ShardPool",
    "StaticFleet",
    "ShardRouter",
    "Span",
    "StoreUnavailableError",
    "TokenBucket",
    "TraceContext",
    "Tracer",
    "TRACE_HEADER",
    "WireTransportError",
    "build_scheme_setting",
    "build_setting",
    "drive_scheme_requests",
    "jsonl_sink",
    "render_prometheus",
    "resolve_remote_group",
    "run_demo",
    "run_scheme_demo",
    "scheme_state_subdir",
]
